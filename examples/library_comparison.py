#!/usr/bin/env python
"""Library-design study: ensemble + heuristic vs one Stream-K kernel.

Sweeps a random slice of the evaluation corpus and contrasts the two ways
of building a GEMM library the paper discusses:

* a cuBLAS-like ensemble — 24 precompiled kernel variants plus a trained
  selection heuristic that must guess the right one per problem;
* the Stream-K library — one kernel plus four calibrated model constants.

Prints the selection histogram of the ensemble (how many variants its
heuristic actually needs), the cases where the heuristic guessed wrong
(measured against the oracle over the same blockings), and the relative
performance of the single Stream-K kernel.

Run:  python examples/library_comparison.py
"""

from collections import Counter

import numpy as np

from repro.corpus import CorpusSpec, compute_bound_mask, generate_corpus
from repro.gemm import FP16_FP32
from repro.gpu import A100
from repro.harness import evaluate_corpus
from repro.metrics import relative_performance


def main() -> None:
    spec = CorpusSpec(size=3000, seed=21)
    shapes = generate_corpus(spec)
    print("Evaluating %d corpus shapes (FP16->32) on simulated %s ...\n"
          % (spec.size, A100.name))
    res = evaluate_corpus(shapes, FP16_FP32, A100)

    print("cuBLAS-like ensemble: variant selection histogram")
    counts = Counter(
        res.cublas_variant_names[i] for i in res.cublas_choice
    )
    for name, count in counts.most_common():
        print("  %-32s %5d problems (%4.1f%%)"
              % (name, count, 100 * count / len(shapes)))
    print(
        "  -> the heuristic exercised %d of %d shipped variants\n"
        % (len(counts), len(res.cublas_variant_names))
    )

    # Heuristic quality: how often did selection leave performance behind?
    miss = res.cublas > res.oracle * 1.05
    print(
        "heuristic left >5%% performance on the table (vs same-blocking "
        "oracle) on %.1f%% of problems\n" % (100 * float(np.mean(miss)))
    )

    cb = compute_bound_mask(shapes, FP16_FP32)
    print("Stream-K (ONE kernel) relative performance:")
    print("  vs CUTLASS singleton : %s" % relative_performance(res.singleton, res.streamk))
    print("  vs cuBLAS-like       : %s" % relative_performance(res.cublas, res.streamk))
    print("  vs cuBLAS-like (CB)  : %s" % relative_performance(res.cublas[cb], res.streamk[cb]))
    print("  vs oracle            : %s" % relative_performance(res.oracle, res.streamk))
    print(
        "\nDistribution-size argument (paper Sec. 7): the ensemble ships %d "
        "kernels;\nStream-K ships 1 kernel + 4 calibrated constants per "
        "precision." % len(res.cublas_variant_names)
    )


if __name__ == "__main__":
    main()
