#!/usr/bin/env python
"""Quickstart: decompose one GEMM every way the paper describes.

Builds a single problem, runs the classic data-parallel decomposition,
fixed-split, basic Stream-K, and the shipped two-tile hybrid on the
simulated A100 — validating every result against the numpy reference —
and prints the utilization/time comparison that motivates the paper.

Run:  python examples/quickstart.py
"""

from repro.ensembles import StreamKLibrary
from repro.gemm import FP16_FP32, Blocking, GemmProblem, TileGrid
from repro.gpu import A100
from repro.harness import run_schedule
from repro.schedules import (
    data_parallel_schedule,
    fixed_split_schedule,
    stream_k_schedule,
)


def main() -> None:
    # A shape that quantizes badly: 10 x 12 = 120 output tiles on 108 SMs
    # means a data-parallel kernel runs one full wave and one 89%-empty one.
    problem = GemmProblem(1280, 1536, 4096, dtype=FP16_FP32)
    blocking = Blocking(*problem.dtype.default_blocking)
    grid = TileGrid(problem, blocking)
    print("Problem:  %s" % problem)
    print(
        "Tiling:   %s -> %d tiles x %d MAC-loop iterations"
        % (blocking, grid.num_tiles, grid.iters_per_tile)
    )
    print("Machine:  %s (%d SMs, %.1f TFLOP/s peak)\n"
          % (A100.name, A100.num_sms, A100.peak_tflops(problem.dtype)))

    # The shipped library plans its own schedule (two-tile hybrid here).
    library = StreamKLibrary(A100, problem.dtype)
    schedules = [
        data_parallel_schedule(grid),
        fixed_split_schedule(grid, s=2),
        stream_k_schedule(grid, g=A100.num_sms),
        library.build_schedule(problem),
    ]

    print(
        "%-24s %6s %10s %10s %12s %10s"
        % ("schedule", "g", "quant-eff", "util", "time (us)", "TFLOP/s")
    )
    baseline = None
    for sched in schedules:
        run = run_schedule(sched, A100, execute_numeric=True)
        baseline = baseline or run.time_s
        print(
            "%-24s %6d %9.1f%% %9.1f%% %12.1f %10.1f   (%.2fx)"
            % (
                sched.name,
                run.g,
                100 * run.quantization_efficiency,
                100 * run.result.trace.utilization(),
                run.time_s * 1e6,
                run.tflops,
                baseline / run.time_s,
            )
        )
        assert run.max_rel_error is not None  # numerics were validated

    plan = library.plan(problem)
    print(
        "\nLibrary plan: kind=%s, g=%d, %.0f%% of iterations temporally "
        "aligned, %d partial-sum exchanges"
        % (plan.kind, plan.g, 100 * plan.k_aligned_fraction, plan.fixup_stores)
    )


if __name__ == "__main__":
    main()
