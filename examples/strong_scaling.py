#!/usr/bin/env python
"""Strong-scaling study: the regime the paper's peak speedups come from.

Fixes the output size at a single 128x128 tile and grows the accumulation
depth k, reproducing the Figure 8c / Figure 9 scenario: a data-parallel
decomposition strands the entire k axis on one SM while Stream-K spreads
it across the machine, with the analytical model picking how far to split
before fixup costs turn the trade negative.

Run:  python examples/strong_scaling.py
"""

from repro.ensembles import StreamKLibrary, singleton_variant, variant_time_s
from repro.gemm import FP16_FP32, GemmProblem, TileGrid
from repro.gpu import A100
from repro.model import select_grid_size


def main() -> None:
    library = StreamKLibrary(A100, FP16_FP32)
    singleton = singleton_variant(FP16_FP32)
    print(
        "Strong scaling of a single 128x128 output tile on simulated %s\n"
        % A100.name
    )
    print(
        "%-22s %6s %8s %12s %12s %9s"
        % ("shape", "iters", "g_model", "DP (us)", "Stream-K", "speedup")
    )
    for k in (1024, 2048, 4096, 8192, 16384, 32768, 65536):
        problem = GemmProblem(128, 128, k, dtype=FP16_FP32)
        grid = TileGrid(problem, library.blocking)
        decision = select_grid_size(grid, library.params, A100.num_sms)
        t_dp = variant_time_s(singleton, problem, A100)
        t_sk = library.time_s(problem)
        print(
            "%-22s %6d %8d %11.1f %11.1fus %8.2fx"
            % (
                str(problem),
                grid.iters_per_tile,
                decision.g,
                t_dp * 1e6,
                t_sk * 1e6,
                t_dp / t_sk,
            )
        )

    print(
        "\nThe model's chosen grid grows with k until the serial fixup "
        "reduction\ncaps it (Figure 8c picks g=8 at k=16384), and the "
        "speedup over the\nsingle-CTA data-parallel schedule grows with "
        "the exploitable k-parallelism."
    )

    # Show one full model curve, Figure-8 style.
    problem = GemmProblem(128, 128, 16384, dtype=FP16_FP32)
    grid = TileGrid(problem, library.blocking)
    decision = select_grid_size(grid, library.params, A100.num_sms)
    print("\nModeled Stream-K time vs grid size for %s:" % problem)
    for g in (1, 2, 4, 8, 16, 32, 64, 108):
        cycles = float(decision.predictions[g - 1])
        marker = "  <- g_best" if g == decision.g else ""
        print("  g=%3d  %9.0f cycles%s" % (g, cycles, marker))


if __name__ == "__main__":
    main()
