#!/usr/bin/env python
"""Deep-learning workload study: one transformer layer's GEMMs.

The paper's introduction motivates GEMM through deep learning
("transformer architectures ... are almost entirely limited by the
performance of large matrix products").  This example takes the six GEMMs
of a transformer layer at several batch sizes and asks the paper's
question: how much does work-centric decomposition buy over the
tile-centric alternatives a library would otherwise dispatch?

Small decode-time batches produce exactly the strong-scaling shapes where
Stream-K shines; large prefill batches quantize well and everything ties.

Run:  python examples/transformer_layers.py
"""

import numpy as np

from repro.corpus import transformer_shapes
from repro.ensembles import StreamKLibrary, cublas_select, oracle_select, singleton_variant, variant_time_s
from repro.gemm import FP16_FP32
from repro.gpu import A100


def main() -> None:
    library = StreamKLibrary(A100, FP16_FP32)
    print(
        "Transformer layer GEMMs on simulated %s (FP16->32, one %s kernel "
        "vs tile-based libraries)\n" % (A100.name, library.blocking)
    )
    for tokens in (512, 4096, 16384):
        shapes = transformer_shapes(batch_tokens=tokens, d_model=1024, d_ff=4096)
        print("== batch of %d tokens" % tokens)
        print(
            "%-16s %-18s %10s %10s %10s %12s %9s"
            % ("gemm", "m x n x k", "streamk", "cutlass", "cublas", "oracle", "best?")
        )
        layer_totals = {"streamk": 0.0, "cutlass": 0.0, "cublas": 0.0, "oracle": 0.0}
        for name, problem in shapes.items():
            t_sk = library.time_s(problem)
            t_dp = variant_time_s(singleton_variant(problem.dtype), problem, A100)
            t_cb = cublas_select(problem, A100).time_s
            t_or = oracle_select(problem, A100).time_s
            layer_totals["streamk"] += t_sk
            layer_totals["cutlass"] += t_dp
            layer_totals["cublas"] += t_cb
            layer_totals["oracle"] += t_or
            best = min(t_sk, t_dp, t_cb, t_or)
            print(
                "%-16s %-18s %9.1fus %9.1fus %9.1fus %11.1fus %9s"
                % (
                    name,
                    "%dx%dx%d" % problem.shape,
                    t_sk * 1e6,
                    t_dp * 1e6,
                    t_cb * 1e6,
                    t_or * 1e6,
                    "streamk" if t_sk <= best * 1.001 else "",
                )
            )
        sk = layer_totals["streamk"]
        print(
            "   layer total: streamk %.1fus | vs cutlass %.2fx | vs cublas "
            "%.2fx | vs oracle %.2fx\n"
            % (
                sk * 1e6,
                layer_totals["cutlass"] / sk,
                layer_totals["cublas"] / sk,
                layer_totals["oracle"] / sk,
            )
        )

    # The punchline the paper's conclusion draws: one kernel, no heuristics.
    print(
        "Stream-K dispatched ONE kernel per precision for every shape above;"
    )
    print(
        "the cuBLAS-like ensemble selected among 24 variants with a trained "
        "heuristic."
    )


if __name__ == "__main__":
    main()
