#!/usr/bin/env python
"""ASCII schedule diagrams: the paper's Figures 1-3 as terminal Gantt art.

Renders the per-SM execution timeline of each decomposition for the
paper's illustrative problems on the 4-SM GPU using
:meth:`repro.gpu.ExecutionTrace.render_ascii`: one character column per
time slice, a glyph per CTA, '.' idle, '~' spin-waiting on a peer's flag.

Run:  python examples/schedule_visualizer.py
"""

from repro.gemm import FP16_FP32, Blocking, GemmProblem, TileGrid
from repro.gpu import HYPOTHETICAL_4SM, Executor, KernelCostModel
from repro.schedules import (
    data_parallel_schedule,
    dp_one_tile_schedule,
    fixed_split_schedule,
    stream_k_schedule,
    two_tile_schedule,
)

GPU = HYPOTHETICAL_4SM


def render(schedule, title: str) -> None:
    cost = KernelCostModel(
        gpu=GPU, blocking=schedule.grid.blocking, dtype=schedule.grid.problem.dtype
    )
    trace = Executor(GPU.total_cta_slots).run(cost.build_tasks(schedule))
    print(
        "%s  (g=%d, makespan %.0f cycles, utilization %.1f%%)"
        % (title, schedule.g, trace.makespan, 100 * trace.utilization())
    )
    print(trace.render_ascii(width=96))
    print()


def main() -> None:
    # Figures 1 and 2: 384x384x128 (9 tiles of 128x128, BLK_K=4 -> 32
    # iterations per tile, as in the paper's illustration).
    p1 = GemmProblem(384, 384, 128, dtype=FP16_FP32)
    g1 = TileGrid(p1, Blocking(128, 128, 4))
    g1b = TileGrid(p1, Blocking(128, 64, 4))
    print("Figure 1/2 problem: %s on 4 SMs\n" % p1)
    render(data_parallel_schedule(g1), "Fig 1a  data-parallel, 128x128 tiles")
    render(data_parallel_schedule(g1b), "Fig 1b  data-parallel, 128x64 tiles")
    render(fixed_split_schedule(g1, 2), "Fig 2a  fixed-split s=2")
    render(stream_k_schedule(g1, 4), "Fig 2b  basic Stream-K g=4")

    # Figure 3: 896x384x128 (21 tiles).
    p3 = GemmProblem(896, 384, 128, dtype=FP16_FP32)
    g3 = TileGrid(p3, Blocking(128, 128, 4))
    print("Figure 3 problem: %s on 4 SMs\n" % p3)
    render(stream_k_schedule(g3, 4), "Fig 3a  basic Stream-K")
    render(dp_one_tile_schedule(g3, 4), "Fig 3b  data-parallel + one-tile Stream-K")
    render(two_tile_schedule(g3, 4), "Fig 3c  two-tile Stream-K + data-parallel")


if __name__ == "__main__":
    main()
