"""Stream-K reproduction: work-centric GEMM decomposition on a simulated GPU.

Public API highlights
---------------------
- :mod:`repro.gemm` — problems, blockings, reference GEMMs, the MacLoop.
- :mod:`repro.schedules` — data-parallel, fixed-split, Stream-K, hybrids.
- :mod:`repro.gpu` — the discrete-event GPU simulator and cost models.
- :mod:`repro.model` — the Appendix A.1 analytical grid-size model.
- :mod:`repro.ensembles` — CUTLASS/cuBLAS-like library emulations.
- :mod:`repro.corpus` — the 32,824-shape evaluation corpus.
- :mod:`repro.harness` — experiment runners for every paper table/figure.
"""

from .errors import (
    CalibrationError,
    ConfigurationError,
    DeadlockError,
    ReproError,
    SimulationError,
    ValidationError,
)
from .gemm import (
    FP16_FP32,
    FP32,
    FP64,
    Blocking,
    DtypeConfig,
    GemmProblem,
    TileGrid,
    random_operands,
    reference_gemm,
    validate_result,
)
from .schedules import (
    DataParallel,
    FixedSplit,
    Schedule,
    StreamK,
    TwoTileStreamK,
    data_parallel_schedule,
    fixed_split_schedule,
    make_decomposition,
    stream_k_schedule,
    two_tile_schedule,
)

__version__ = "1.0.0"

__all__ = [
    "Blocking",
    "CalibrationError",
    "ConfigurationError",
    "DataParallel",
    "DeadlockError",
    "DtypeConfig",
    "FP16_FP32",
    "FP32",
    "FP64",
    "FixedSplit",
    "GemmProblem",
    "ReproError",
    "Schedule",
    "SimulationError",
    "StreamK",
    "TileGrid",
    "TwoTileStreamK",
    "ValidationError",
    "__version__",
    "data_parallel_schedule",
    "fixed_split_schedule",
    "make_decomposition",
    "random_operands",
    "reference_gemm",
    "stream_k_schedule",
    "two_tile_schedule",
    "validate_result",
]
