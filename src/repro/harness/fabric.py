"""Lease-based multi-worker sweep fabric: work-centric shard claiming.

The WAL shard journal (:mod:`repro.harness.journal`) makes a sweep
durable for *one* process; this module promotes it into a coordination
substrate so many worker processes — cooperating children launched by
``repro sweep --workers N``, or fully independent ``repro sweep --join
DIR`` invocations that merely share a filesystem — evaluate one corpus
together.  The design mirrors the paper's thesis at the process level:
Stream-K replaces static ownership of output tiles with work-centric
claiming of the iteration domain, and the fabric replaces static shard
assignment with work-centric claiming of the shard domain.  A fixed
worker-to-shard partition strands work on the slowest or deadest
worker; a claim queue lets whoever is alive finish the sweep.

How a shard flows through the fabric:

1. **Claim** — a worker creates ``leases/shard_NNNNN.lease`` with
   ``O_CREAT | O_EXCL``, binding the lease to its identity
   (``host:pid:nonce``).  Exactly one creator wins; the claim is then
   journaled as ``shard_claimed`` (forensics).
2. **Heartbeat** — while evaluating, a daemon thread atomically
   rewrites the lease file with an incrementing sequence number every
   ``heartbeat_seconds`` and journals ``shard_heartbeat``.
3. **Commit** — the result goes through the journal's existing
   artifact-then-``shard_done`` protocol (npz published + fsync'd
   *before* the record lands), then the lease is released.
4. **Reclaim** — a worker with nothing left to claim watches the open
   shards' lease files.  A lease whose *content* has not changed for
   longer than ``lease_seconds`` — measured on the observer's own
   monotonic clock from when it first saw that content, so no
   cross-process clock comparison is ever made — belongs to a dead,
   SIGKILLed, or wedged worker: the observer journals
   ``shard_reclaimed``, unlinks the lease, and the shard is claimable
   again (``fabric.lease_expired`` / ``fabric.reclaims``).

**Why double execution is safe.**  Leases are liveness metadata, never
a safety mechanism.  Shard evaluation is deterministic — the same rows
on the same engine produce bitwise-identical ``SystemTimings`` — and a
commit is a digest-carrying ``shard_done`` whose artifact is verified
on load.  If a lease expires while its holder is merely slow (not
dead) and a second worker re-evaluates the shard, both commit the same
bytes under the same digest; replay keeps one canonical completion
(``journal.duplicate_done``) and the merge is byte-identical to an
uninterrupted single-process run.  The worst race costs wasted work,
never a wrong answer — exactly Stream-K's fixup argument transplanted
to the harness.

**Degradation ladder.**  Any ``OSError`` on lease or journal I/O
degrades: a worker falls back to plain in-process evaluation of the
remaining shards (``fabric.degraded``), and the ``--workers`` parent
finishes the sweep itself if every child dies
(``fabric.parent_fallback``).  The fabric never aborts a sweep that
plain evaluation could finish.

Chaos coverage (:class:`repro.faults.chaos.ChaosWorkerKill`, the CI
``fabric`` job) SIGKILLs workers at the claim, mid-evaluation, and
pre-commit boundaries and asserts the surviving workers' merged
``.npz`` is byte-identical to the reference.  See
``docs/CHECKPOINTING.md`` for the full contract.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import tempfile
import threading
import time

import numpy as np

from ..errors import SweepInterrupted
from ..faults.chaos import ChaosWorkerKill
from ..gemm.dtypes import DtypeConfig, get_dtype_config
from ..gemm.tiling import Blocking
from ..gpu.spec import GpuSpec
from ..model.paramcache import calibrate_cached
from ..obs import counters as _counters
from ..obs.profiler import span
from .journal import ShardJournal
from .parallel import (
    _check_drain,
    _drain_signals,
    _shard_bounds,
    _shard_content_fp,
    corpus_fingerprint,
    merge_timings,
)
from .vectorized import SystemTimings, evaluate_corpus

__all__ = [
    "DEFAULT_HEARTBEAT_FRACTION",
    "DEFAULT_LEASE_SECONDS",
    "LeaseManager",
    "fabric_sweep",
    "join_sweep",
    "make_worker_id",
    "resolve_heartbeat_seconds",
    "resolve_lease_seconds",
]

_ENV_LEASE_SECONDS = "REPRO_LEASE_SECONDS"
_ENV_HEARTBEAT_SECONDS = "REPRO_HEARTBEAT_SECONDS"

#: Lease expiry budget: a claim whose heartbeat content is unchanged for
#: this long (on the observer's monotonic clock) is reclaimable.
DEFAULT_LEASE_SECONDS = 30.0

#: Default heartbeat interval as a fraction of the lease budget — six
#: renewals per budget means several must be *lost* before a live
#: worker's shard is stolen (stealing is safe anyway, just wasteful).
DEFAULT_HEARTBEAT_FRACTION = 1.0 / 6.0

_LEASES_SUBDIR = "leases"

#: Poll interval when a worker has nothing claimable and no lease has
#: expired yet, and for the ``--workers`` parent's completion watch.
_FABRIC_POLL_S = 0.05

#: How long the ``--workers`` parent waits for a child that has seen
#: the sweep complete to exit on its own before terminating it.
_CHILD_JOIN_TIMEOUT_S = 10.0


def resolve_lease_seconds(value: "float | None" = None) -> float:
    """Explicit value, else ``$REPRO_LEASE_SECONDS``, else 30s."""
    if value is not None:
        return max(0.05, float(value))
    raw = os.environ.get(_ENV_LEASE_SECONDS)
    if raw:
        try:
            return max(0.05, float(raw))
        except ValueError:
            pass
    return DEFAULT_LEASE_SECONDS


def resolve_heartbeat_seconds(
    value: "float | None", lease_seconds: float
) -> float:
    """Explicit value, else ``$REPRO_HEARTBEAT_SECONDS``, else lease/6.

    Clamped to at most half the lease budget: a heartbeat slower than
    the expiry clock would make every live worker look dead.
    """
    resolved = None
    if value is not None:
        resolved = float(value)
    else:
        raw = os.environ.get(_ENV_HEARTBEAT_SECONDS)
        if raw:
            try:
                resolved = float(raw)
            except ValueError:
                resolved = None
    if resolved is None:
        resolved = lease_seconds * DEFAULT_HEARTBEAT_FRACTION
    return max(0.01, min(resolved, lease_seconds / 2.0))


def make_worker_id(index: "int | None" = None) -> str:
    """Unique worker identity: ``host:pid:nonce[:wN]``.

    The nonce distinguishes two incarnations with a recycled pid — a
    reclaimed worker's stale lease must never be mistaken for the
    replacement's live one.
    """
    try:
        host = socket.gethostname() or "localhost"
    except OSError:  # pragma: no cover - exotic resolver failure
        host = "localhost"
    wid = "%s:%d:%s" % (host, os.getpid(), os.urandom(4).hex())
    if index is not None:
        wid += ":w%d" % int(index)
    return wid


class LeaseManager:
    """Atomic O_EXCL shard leases with observer-clock expiry.

    One instance per worker.  ``try_claim`` creates the lease file
    exclusively; ``heartbeat`` atomically rewrites it with a fresh
    sequence number; ``expired_shards`` tracks, per open shard, the
    last lease *content* seen and when this observer first saw it — a
    lease is expired when its content has sat unchanged past the
    budget.  Measuring age on the observer's own monotonic clock makes
    expiry immune to cross-host clock skew and catches wedged workers
    (process alive, heartbeat thread stopped) exactly like dead ones.

    Raises ``OSError`` only where the caller is expected to degrade
    (directory creation, claim-file write); observation and release are
    best-effort.
    """

    def __init__(
        self, directory: str, worker_id: str, lease_seconds: float
    ):
        self.lease_dir = os.path.join(directory, _LEASES_SUBDIR)
        os.makedirs(self.lease_dir, exist_ok=True)
        self.worker_id = worker_id
        self.lease_seconds = float(lease_seconds)
        self._held: "set[int]" = set()
        #: shard -> (last content bytes, monotonic time first seen)
        self._observed: "dict[int, tuple[bytes, float]]" = {}

    def lease_path(self, shard: int) -> str:
        return os.path.join(self.lease_dir, "shard_%05d.lease" % shard)

    def _payload(self, seq: int) -> bytes:
        return (
            json.dumps(
                {
                    "worker": self.worker_id,
                    "seq": int(seq),
                    "wall": time.time(),  # human forensics only
                },
                sort_keys=True,
            ).encode("utf-8")
            + b"\n"
        )

    def try_claim(self, shard: int) -> bool:
        """Atomically claim ``shard``; False when someone else holds it."""
        try:
            fd = os.open(
                self.lease_path(shard),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(self._payload(0))
                fh.flush()
                os.fsync(fh.fileno())
        except OSError:
            # Claim file exists but may be empty: release and re-raise
            # so the worker degrades rather than holding a husk.
            self.release(shard)
            raise
        self._held.add(shard)
        return True

    def heartbeat(self, shard: int, seq: int) -> None:
        """Renew the lease: atomic rewrite with a fresh sequence number."""
        fd, tmp = tempfile.mkstemp(
            dir=self.lease_dir, prefix=".hb_", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(self._payload(seq))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.lease_path(shard))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def release(self, shard: int) -> None:
        """Drop a lease this worker holds (best-effort)."""
        self._held.discard(shard)
        try:
            os.unlink(self.lease_path(shard))
        except OSError:
            pass

    def expired_shards(self, shards: "list[int]") -> "list[int]":
        """Open shards whose lease content has outlived the budget.

        Never reports a shard this worker holds, a shard with no lease
        file (that one is simply claimable), or a lease whose content
        changed since the last observation (its holder is heartbeating).
        """
        now = time.monotonic()
        expired = []
        for shard in shards:
            if shard in self._held:
                continue
            try:
                with open(self.lease_path(shard), "rb") as fh:
                    content = fh.read()
            except OSError:
                self._observed.pop(shard, None)
                continue
            prev = self._observed.get(shard)
            if prev is None or prev[0] != content:
                self._observed[shard] = (content, now)
                continue
            if now - prev[1] > self.lease_seconds:
                expired.append(shard)
        return expired

    def reclaim(self, shard: int) -> bool:
        """Unlink an expired lease; False when a peer won the race.

        Losing the unlink race (``FileNotFoundError``) is benign: some
        other observer reclaimed it first and the shard is — or is
        about to be — claimable again.
        """
        self._observed.pop(shard, None)
        try:
            os.unlink(self.lease_path(shard))
        except FileNotFoundError:
            return False
        except OSError:
            return False
        return True


class _HeartbeatThread(threading.Thread):
    """Renews one shard's lease until stopped (daemon: dies with worker).

    A renewal failure stops the thread quietly
    (``fabric.heartbeat_failed``): the shard will eventually look
    expired to peers and be re-evaluated — wasted work, never a wrong
    answer — while this worker's own commit still stands if it lands
    first.
    """

    def __init__(
        self,
        lease: LeaseManager,
        journal: ShardJournal,
        shard: int,
        worker_id: str,
        interval_s: float,
    ):
        super().__init__(name="fabric-heartbeat", daemon=True)
        self._lease = lease
        self._journal = journal
        self._shard = shard
        self._worker_id = worker_id
        self._interval_s = interval_s
        self._stop_evt = threading.Event()

    def run(self) -> None:
        seq = 0
        while not self._stop_evt.wait(self._interval_s):
            seq += 1
            try:
                self._lease.heartbeat(self._shard, seq)
            except OSError:
                _counters.inc_counter("fabric.heartbeat_failed")
                return
            self._journal.record_heartbeat(
                self._shard, self._worker_id, seq
            )
            _counters.inc_counter("fabric.heartbeats")

    def stop(self) -> None:
        self._stop_evt.set()
        self.join(timeout=5.0)


def _as_worker_chaos(chaos) -> "ChaosWorkerKill | None":
    if chaos is None or isinstance(chaos, ChaosWorkerKill):
        return chaos
    return ChaosWorkerKill.parse(chaos)


def _chaos_spec(chaos) -> "str | None":
    """Serialize a chaos config for a child process (specs only — an
    in-process ``action`` seam cannot cross a process boundary)."""
    if chaos is None:
        return None
    if isinstance(chaos, ChaosWorkerKill):
        return "%s:%d" % (chaos.point, chaos.after)
    return str(chaos)


def _worker_loop(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    jr: ShardJournal,
    lease: LeaseManager,
    worker_id: str,
    heartbeat_seconds: float,
    claim_offset: int = 0,
    chaos: "ChaosWorkerKill | None" = None,
    check_drain=None,
) -> None:
    """Claim/evaluate/commit until every shard is durably done.

    The loop is the fabric's heart: refresh peers' commits, claim the
    next open shard (starting ``claim_offset`` shards in, so cohort
    workers fan out instead of contending on shard 0), heartbeat while
    evaluating, commit through the journal, release.  When nothing is
    claimable, run a reclaim pass over expired leases; when nothing is
    expired either, sleep briefly and re-check.  Raises ``OSError``
    only for lease/journal I/O failure — the caller degrades to serial
    evaluation.
    """
    bounds = jr.bounds
    nshards = len(bounds)
    reclaimed: "set[int]" = set()
    while True:
        if check_drain is not None:
            check_drain()
        done = jr.refresh_completed()
        open_shards = [i for i in range(nshards) if i not in done]
        if not open_shards:
            return
        off = claim_offset % len(open_shards)
        progressed = False
        for i in open_shards[off:] + open_shards[:off]:
            if check_drain is not None:
                check_drain()
            if not lease.try_claim(i):
                continue
            # A peer may have committed (and released) this shard
            # between our refresh and the claim: don't re-evaluate it.
            if i in jr.refresh_completed():
                lease.release(i)
                continue
            progressed = True
            _counters.inc_counter("fabric.claims")
            if i in reclaimed:
                _counters.inc_counter("fabric.steals")
            jr.record_claimed(i, worker_id)
            if chaos is not None:
                chaos.on_event("claim")
            hb = _HeartbeatThread(
                lease, jr, i, worker_id, heartbeat_seconds
            )
            hb.start()
            try:
                lo, hi = bounds[i]
                if chaos is not None:
                    chaos.on_event("eval")
                with span("fabric_shard"):
                    res = evaluate_corpus(shapes[lo:hi], dtype, gpu)
                if chaos is not None:
                    chaos.on_event("commit")
                jr.record_done(
                    i, res, fingerprint=_shard_content_fp(shapes[lo:hi])
                )
                _counters.inc_counter("fabric.commits")
            finally:
                hb.stop()
                lease.release(i)
        if progressed:
            continue
        done = jr.refresh_completed()
        open_shards = [i for i in range(nshards) if i not in done]
        if not open_shards:
            return
        expired = lease.expired_shards(open_shards)
        for i in expired:
            _counters.inc_counter("fabric.lease_expired")
            if lease.reclaim(i):
                _counters.inc_counter("fabric.reclaims")
                jr.record_reclaimed(i, worker_id)
                reclaimed.add(i)
        if not expired:
            time.sleep(_FABRIC_POLL_S)


def _serial_finish(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    jr: ShardJournal,
    check_drain=None,
) -> None:
    """Degradation terminal: evaluate every open shard in-process.

    Ignores leases entirely — re-evaluating a shard some silent peer is
    also working on is safe (digest-idempotent commits) and finishing
    the sweep beats deadlocking on unreadable lease state.
    """
    done = jr.refresh_completed()
    for i, (lo, hi) in enumerate(jr.bounds):
        if i in done:
            continue
        if check_drain is not None:
            check_drain()
        _counters.inc_counter("fabric.serial_fallback_shards")
        with span("fabric_serial_shard"):
            res = evaluate_corpus(shapes[lo:hi], dtype, gpu)
        jr.record_done(i, res, fingerprint=_shard_content_fp(shapes[lo:hi]))


def _merge_from_journal(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    jr: ShardJournal,
) -> SystemTimings:
    """Merge barrier: digest-verified load of every shard, in order.

    Any shard whose artifact is missing or fails digest verification is
    re-evaluated in-process (``fabric.merge_reevaluated``) — the merge
    never trusts an unverified byte, and determinism makes the repaired
    result identical to the journaled one.
    """
    jr.refresh_completed()
    parts: "list[SystemTimings]" = []
    for i, (lo, hi) in enumerate(jr.bounds):
        res = jr.load_completed(i)
        if res is None:
            _counters.inc_counter("fabric.merge_reevaluated")
            res = evaluate_corpus(shapes[lo:hi], dtype, gpu)
            jr.record_done(
                i, res, fingerprint=_shard_content_fp(shapes[lo:hi])
            )
        parts.append(res)
    with span("merge_shards"):
        return merge_timings(parts)


def _interrupt_info(exc: SweepInterrupted, jr: ShardJournal, directory: str):
    exc.completed = len(jr.refresh_completed())
    exc.total = len(jr.bounds)
    exc.journal_dir = directory


def join_sweep(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    journal_dir: str,
    shard_rows: "int | None" = None,
    lease_seconds: "float | None" = None,
    heartbeat_seconds: "float | None" = None,
    chaos=None,
    worker_id: "str | None" = None,
) -> SystemTimings:
    """Join a (possibly already running) fabric sweep as one worker.

    Independent invocations pointed at the same ``journal_dir`` on a
    shared filesystem cooperate with no parent process: the first
    arrival initializes the shared journal, every worker claims shards
    until none are open, and **each** invocation then runs the merge
    barrier and returns the full digest-verified result — byte-identical
    across all of them and to a single-process run.  The journal is
    deliberately not compacted here (a peer may still be appending).
    """
    shapes = np.asarray(shapes, dtype=np.int64)
    lease_s = resolve_lease_seconds(lease_seconds)
    hb_s = resolve_heartbeat_seconds(heartbeat_seconds, lease_s)
    chaos = _as_worker_chaos(chaos)
    key = corpus_fingerprint(shapes, dtype, gpu)
    bounds = _shard_bounds(shapes.shape[0], 1, shard_rows)
    jr = ShardJournal.open_shared(
        journal_dir, key, bounds, dtype.name, gpu.name
    )
    wid = worker_id or make_worker_id()
    try:
        if jr.degraded:
            _counters.inc_counter("fabric.degraded")
            return evaluate_corpus(shapes, dtype, gpu)
        calibrate_cached(gpu, Blocking(*dtype.default_blocking), dtype)
        with span("fabric_join"), _drain_signals():
            try:
                lease = LeaseManager(journal_dir, wid, lease_s)
                _worker_loop(
                    shapes, dtype, gpu, jr, lease, wid, hb_s,
                    chaos=chaos, check_drain=_check_drain,
                )
            except SweepInterrupted as exc:
                _interrupt_info(exc, jr, journal_dir)
                raise
            except OSError:
                _counters.inc_counter("fabric.degraded")
                _serial_finish(
                    shapes, dtype, gpu, jr, check_drain=_check_drain
                )
            return _merge_from_journal(shapes, dtype, gpu, jr)
    finally:
        jr.close()


def _fabric_worker_main(
    shapes: np.ndarray,
    dtype_name: str,
    gpu: GpuSpec,
    journal_dir: str,
    corpus_key: str,
    bounds: "list[tuple[int, int]]",
    worker_index: int,
    lease_seconds: float,
    heartbeat_seconds: float,
    chaos_spec: "str | None",
) -> None:
    """Child-process entry point for one ``--workers`` fabric worker."""
    # Forked children inherit the parent's drain handler; restore the
    # default so the parent's terminate() can always kill us, and
    # ignore Ctrl-C so only the parent drains (see _pool_worker_init).
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    dtype = get_dtype_config(dtype_name)
    chaos = (
        ChaosWorkerKill.parse(chaos_spec) if chaos_spec else None
    )
    jr = ShardJournal.open_shared(
        journal_dir, corpus_key, bounds, dtype.name, gpu.name
    )
    try:
        if jr.degraded:
            return  # the parent's fallback finishes the sweep
        wid = make_worker_id(worker_index)
        try:
            lease = LeaseManager(journal_dir, wid, lease_seconds)
            _worker_loop(
                shapes, dtype, gpu, jr, lease, wid, heartbeat_seconds,
                claim_offset=worker_index, chaos=chaos,
            )
        except OSError:
            _counters.inc_counter("fabric.degraded")
            _serial_finish(shapes, dtype, gpu, jr)
    finally:
        jr.close()


def fabric_sweep(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    journal_dir: str,
    workers: int = 2,
    shard_rows: "int | None" = None,
    lease_seconds: "float | None" = None,
    heartbeat_seconds: "float | None" = None,
    chaos_worker=None,
) -> SystemTimings:
    """Run a corpus sweep across ``workers`` lease-claiming processes.

    The parent initializes the shared journal, warms the calibration
    cache, launches the workers, and watches the journal until every
    shard is committed — then joins the children, runs the merge
    barrier, and compacts.  ``chaos_worker`` (a
    :class:`~repro.faults.chaos.ChaosWorkerKill` or its ``POINT[:K]``
    spec) is armed in worker 0 only, so chaos runs always have a
    survivor to finish the sweep.  If every child dies with shards
    still open, the parent finishes them in-process
    (``fabric.parent_fallback``) — losing all workers degrades, never
    aborts.
    """
    shapes = np.asarray(shapes, dtype=np.int64)
    workers = max(1, int(workers))
    lease_s = resolve_lease_seconds(lease_seconds)
    hb_s = resolve_heartbeat_seconds(heartbeat_seconds, lease_s)
    chaos_spec = _chaos_spec(chaos_worker)
    key = corpus_fingerprint(shapes, dtype, gpu)
    bounds = _shard_bounds(shapes.shape[0], workers, shard_rows)
    jr = ShardJournal.open_shared(
        journal_dir, key, bounds, dtype.name, gpu.name
    )
    procs: "list" = []
    try:
        if jr.degraded:
            _counters.inc_counter("fabric.degraded")
            return evaluate_corpus(shapes, dtype, gpu)
        # Warm the persistent calibration cache before forking so the
        # workers hit the memo instead of racing on microbenchmarks.
        calibrate_cached(gpu, Blocking(*dtype.default_blocking), dtype)
        nshards = len(jr.bounds)
        try:
            ctx = multiprocessing.get_context()
            for w in range(workers):
                p = ctx.Process(
                    target=_fabric_worker_main,
                    args=(
                        shapes, dtype.name, gpu, journal_dir, key,
                        jr.bounds, w, lease_s, hb_s,
                        chaos_spec if w == 0 else None,
                    ),
                )
                p.start()
                procs.append(p)
        except Exception:
            # Fork limits/sandboxing: no workers at all — run serial.
            _counters.inc_counter("fabric.pool_unusable")
        with span("fabric_sweep"), _drain_signals():
            try:
                while True:
                    _check_drain()
                    done = jr.refresh_completed()
                    if len(done) >= nshards:
                        break
                    if not any(p.is_alive() for p in procs):
                        _counters.inc_counter("fabric.parent_fallback")
                        _serial_finish(
                            shapes, dtype, gpu, jr,
                            check_drain=_check_drain,
                        )
                        break
                    time.sleep(_FABRIC_POLL_S)
                # Workers exit on their own once they observe the sweep
                # complete; reap them before compacting so no appender
                # races the WAL rewrite.
                for p in procs:
                    p.join(timeout=_CHILD_JOIN_TIMEOUT_S)
                for p in procs:
                    if p.is_alive():  # pragma: no cover - wedged child
                        p.terminate()
                        p.join(timeout=_CHILD_JOIN_TIMEOUT_S)
                merged = _merge_from_journal(shapes, dtype, gpu, jr)
                jr.compact()
                return merged
            except SweepInterrupted as exc:
                _interrupt_info(exc, jr, journal_dir)
                raise
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=_CHILD_JOIN_TIMEOUT_S)
        jr.close()
