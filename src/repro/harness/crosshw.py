"""Cross-hardware sweep engine: one corpus, many GPUs, one table.

The paper evaluates on a single device (A100, 108 SMs, Section 6), but
Stream-K's quantization-free utilization is claimed to be *structural* —
a property of the work-centric decomposition, not of one SM count.  This
module runs the Figure-7-style schedule comparison across a set of
:class:`~repro.gpu.spec.GpuSpec` points (registered presets or custom
JSON devices, see docs/HARDWARE.md) in one sharded/memoized pass per
device, and reduces each (device, schedule) cell to:

* the geometric-mean kernel time over the corpus (the ranking metric —
  robust to the corpus's orders-of-magnitude volume spread);
* the mean **quantization efficiency**: useful MAC-loop iterations
  divided by occupied iteration slots, the utilization ceiling work
  placement alone imposes (Figures 1/2 arithmetic, vectorized over the
  corpus);
* the slowdown vs the device's winning schedule.

Evaluations go through
:func:`repro.harness.parallel.evaluate_corpus_cached`, so each device
costs one vectorized corpus pass (sharded across ``jobs`` workers) and
repeated sweeps are free.  Pass ``journal=DIR`` (``repro crosshw
--journal DIR [--resume]``) to make the multi-device sweep durable: each
device's corpus pass commits shard-by-shard to its own write-ahead
journal under ``DIR/<device>/`` and resumes from wherever a crash left
it (docs/CHECKPOINTING.md).  The sweep is instrumented: ``crosshw`` /
``crosshw/device`` spans and ``crosshw.devices`` /
``crosshw.evaluations`` counters (see :mod:`repro.obs`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig
from ..gemm.tiling import Blocking
from ..gpu.spec import GpuSpec, resolve_gpu
from ..metrics.report import format_table, format_utilization
from ..obs.counters import inc_counter
from ..obs.profiler import span
from .parallel import evaluate_corpus_cached
from .vectorized import fixed_split_times

__all__ = [
    "CROSSHW_SCHEDULES",
    "CrossHwCell",
    "CrossHwResult",
    "run_crosshw",
    "format_crosshw_table",
    "quantization_efficiency_corpus",
]

#: Schedule families the sweep can compare.  ``data_parallel``,
#: ``stream_k``, ``cublas`` and ``oracle`` fall out of the standard
#: four-system corpus evaluation; ``fixed_split`` adds the s=2 splitting
#: kernel of the same blocking.  The ensemble rows (``cublas``/``oracle``)
#: mix decompositions per problem, so they report no single quantization
#: efficiency.
CROSSHW_SCHEDULES = (
    "data_parallel",
    "fixed_split",
    "stream_k",
    "cublas",
    "oracle",
)

_DEFAULT_FIXED_SPLIT_S = 2


def _ceil_div(a, b):
    return -(-a // b)


def quantization_efficiency_corpus(
    shapes: np.ndarray, schedule: str, dtype: DtypeConfig, gpu: GpuSpec
) -> "np.ndarray | None":
    """Per-problem quantization efficiency for one schedule family.

    Vectorized twin of
    :func:`repro.metrics.efficiency.quantization_efficiency` for the
    canonical launch configurations: data-parallel launches one CTA per
    tile, fixed-split ``s_eff`` CTAs per tile, and Stream-K
    ``min(p, total_iters)`` CTAs over the iteration space (so its
    per-slot spread is at most one iteration — the structural claim).
    Returns ``None`` for the ensemble rows, which mix decompositions.
    """
    shapes = np.asarray(shapes, dtype=np.int64)
    blocking = Blocking(*dtype.default_blocking)
    m, n, k = shapes[:, 0], shapes[:, 1], shapes[:, 2]
    t = _ceil_div(m, blocking.blk_m) * _ceil_div(n, blocking.blk_n)
    ipt = _ceil_div(k, blocking.blk_k)
    total = (t * ipt).astype(np.float64)
    p = gpu.num_sms
    if schedule == "data_parallel":
        # t tile-sized CTAs, list-scheduled on p slots: ceil(t/p) waves.
        return total / (p * _ceil_div(t, p) * ipt)
    if schedule == "fixed_split":
        s_eff = np.minimum(_DEFAULT_FIXED_SPLIT_S, ipt)
        share = _ceil_div(ipt, s_eff)
        return total / (p * _ceil_div(t * s_eff, p) * share)
    if schedule == "stream_k":
        # g = min(p, total) CTAs splitting the iteration space evenly:
        # the longest CTA owns ceil(total/g) iterations, one wave.
        g = np.minimum(p, t * ipt)
        return total / (p * _ceil_div(t * ipt, g))
    if schedule in ("cublas", "oracle"):
        return None
    raise ConfigurationError(
        "unknown schedule %r; cross-hardware sweep supports: %s"
        % (schedule, ", ".join(CROSSHW_SCHEDULES))
    )


@dataclass(frozen=True)
class CrossHwCell:
    """One (device, schedule) cell of the sweep."""

    gpu_name: str
    schedule: str
    geomean_time_s: float
    mean_time_s: float
    #: Mean quantization efficiency in [0, 1], or None for ensembles.
    mean_quant_eff: "float | None"
    #: geomean time / device winner's geomean time (1.0 for the winner).
    vs_winner: float = float("nan")


@dataclass
class CrossHwResult:
    """Full sweep: per-device cells + per-device winner."""

    dtype_name: str
    corpus_size: int
    cells: "list[CrossHwCell]" = field(default_factory=list)
    #: gpu name -> winning schedule (lowest geomean corpus time).
    winners: "dict[str, str]" = field(default_factory=dict)
    #: gpu name -> SM count (for the report header).
    num_sms: "dict[str, int]" = field(default_factory=dict)

    def cell(self, gpu_name: str, schedule: str) -> CrossHwCell:
        for c in self.cells:
            if c.gpu_name == gpu_name and c.schedule == schedule:
                return c
        raise KeyError((gpu_name, schedule))


def _schedule_times(
    schedule: str,
    res,
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
) -> np.ndarray:
    if schedule == "data_parallel":
        return res.singleton
    if schedule == "stream_k":
        return res.streamk
    if schedule == "cublas":
        return res.cublas
    if schedule == "oracle":
        return res.oracle
    if schedule == "fixed_split":
        return fixed_split_times(
            shapes,
            Blocking(*dtype.default_blocking),
            _DEFAULT_FIXED_SPLIT_S,
            dtype,
            gpu,
        )
    raise ConfigurationError(
        "unknown schedule %r; cross-hardware sweep supports: %s"
        % (schedule, ", ".join(CROSSHW_SCHEDULES))
    )


def run_crosshw(
    gpus: "list[str | GpuSpec]",
    schedules: "list[str]",
    shapes: np.ndarray,
    dtype: DtypeConfig,
    jobs: "int | None" = None,
    journal: "str | None" = None,
    resume: bool = False,
) -> CrossHwResult:
    """Sweep ``schedules`` x ``gpus`` over one corpus.

    ``gpus`` entries are anything :func:`repro.gpu.spec.resolve_gpu`
    accepts — preset names, spec-JSON paths, or :class:`GpuSpec`
    instances.  Each device costs one memoized corpus evaluation
    (sharded across ``jobs`` workers); unknown schedule names and
    precisions a device does not support raise
    :class:`~repro.errors.ConfigurationError` up front.

    ``journal=DIR`` makes the sweep durable: device ``name`` journals
    under ``DIR/name/`` (see :mod:`repro.harness.journal`), so a killed
    multi-device sweep re-run with ``resume=True`` skips every
    journal-committed shard and finished devices resolve from the
    evaluation cache — bitwise identical to an uninterrupted sweep.
    """
    if not gpus:
        raise ConfigurationError("need at least one GPU to sweep")
    if not schedules:
        raise ConfigurationError("need at least one schedule to compare")
    for s in schedules:
        if s not in CROSSHW_SCHEDULES:
            raise ConfigurationError(
                "unknown schedule %r; cross-hardware sweep supports: %s"
                % (s, ", ".join(CROSSHW_SCHEDULES))
            )
    specs = [resolve_gpu(g) for g in gpus]
    seen: "set[str]" = set()
    for spec in specs:
        if spec.name in seen:
            raise ConfigurationError(
                "device %r listed twice in the sweep" % spec.name
            )
        seen.add(spec.name)
        if not spec.supports_dtype(dtype):
            raise ConfigurationError(
                "device %r has no %s rate (supported: %s)"
                % (
                    spec.name,
                    dtype.name,
                    ", ".join(sorted(spec.macs_per_sm_per_cycle)),
                )
            )

    shapes = np.asarray(shapes, dtype=np.int64)
    out = CrossHwResult(dtype_name=dtype.name, corpus_size=shapes.shape[0])
    with span("crosshw"):
        for spec in specs:
            with span("device"):
                inc_counter("crosshw.devices")
                res = evaluate_corpus_cached(
                    shapes,
                    dtype,
                    spec,
                    jobs=jobs,
                    journal=(
                        os.path.join(journal, spec.name)
                        if journal is not None
                        else None
                    ),
                    resume=resume,
                )
                inc_counter("crosshw.evaluations")
                device_cells = []
                for sched in schedules:
                    times = _schedule_times(sched, res, shapes, dtype, spec)
                    qe = quantization_efficiency_corpus(
                        shapes, sched, dtype, spec
                    )
                    device_cells.append(
                        CrossHwCell(
                            gpu_name=spec.name,
                            schedule=sched,
                            geomean_time_s=float(
                                np.exp(np.mean(np.log(times)))
                            ),
                            mean_time_s=float(np.mean(times)),
                            mean_quant_eff=(
                                float(np.mean(qe)) if qe is not None else None
                            ),
                        )
                    )
                best = min(device_cells, key=lambda c: c.geomean_time_s)
                out.winners[spec.name] = best.schedule
                out.num_sms[spec.name] = spec.num_sms
                for c in device_cells:
                    out.cells.append(
                        CrossHwCell(
                            gpu_name=c.gpu_name,
                            schedule=c.schedule,
                            geomean_time_s=c.geomean_time_s,
                            mean_time_s=c.mean_time_s,
                            mean_quant_eff=c.mean_quant_eff,
                            vs_winner=c.geomean_time_s / best.geomean_time_s,
                        )
                    )
    return out


def format_crosshw_table(result: CrossHwResult) -> str:
    """Render the sweep as the per-device winner/efficiency table."""
    headers = [
        "device", "SMs", "schedule", "geomean us", "quant eff", "vs winner",
    ]
    rows = []
    for c in result.cells:
        marker = "  <-- winner" if result.winners[c.gpu_name] == c.schedule else ""
        rows.append(
            [
                c.gpu_name,
                str(result.num_sms[c.gpu_name]),
                c.schedule,
                "%.2f" % (c.geomean_time_s * 1e6),
                format_utilization(c.mean_quant_eff)
                if c.mean_quant_eff is not None
                else "-",
                "%.2fx%s" % (c.vs_winner, marker),
            ]
        )
    return format_table(
        headers,
        rows,
        title="cross-hardware sweep: %d-shape %s corpus"
        % (result.corpus_size, result.dtype_name),
    )
