"""Artifact export: CSV/JSON files for benchmark outputs.

Benchmark runs drop their regenerated tables and figure data under
``artifacts/`` so results can be diffed across runs and inspected without
re-running the sweeps.
"""

from __future__ import annotations

import csv
import json
import os

import numpy as np

from ..errors import ConfigurationError
from ..metrics.stats import RelativePerformance

__all__ = ["write_csv", "write_json", "timings_to_rows"]


def _jsonable(obj):
    if isinstance(obj, RelativePerformance):
        return {
            "average": obj.average,
            "stddev": obj.stddev,
            "min": obj.minimum,
            "max": obj.maximum,
            "count": obj.count,
        }
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def write_json(path: str, payload) -> str:
    """Write a JSON artifact (numpy-aware); returns the path."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(_jsonable(payload), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def write_csv(path: str, headers: "list[str]", rows: "list[list]") -> str:
    """Write a CSV artifact; returns the path."""
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                "row of %d cells does not match %d headers"
                % (len(row), len(headers))
            )
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def timings_to_rows(shapes: np.ndarray, **system_times: np.ndarray) -> "tuple[list[str], list[list]]":
    """Tabulate per-problem times: (headers, rows) for write_csv."""
    headers = ["m", "n", "k"] + list(system_times)
    cols = [np.asarray(v, dtype=np.float64) for v in system_times.values()]
    rows = []
    for i in range(shapes.shape[0]):
        rows.append(
            [int(shapes[i, 0]), int(shapes[i, 1]), int(shapes[i, 2])]
            + [float(c[i]) for c in cols]
        )
    return headers, rows
