"""Vectorized corpus evaluation: every system over 32,824 shapes in seconds.

Per the hpc-parallel guides, the hot path is numpy array arithmetic, not
Python loops: each system's kernel time is expressed as closed-form
element-wise math over the (N,) shape arrays.  The closed forms are the
ones in :mod:`repro.gpu.analytic` — exact for data-parallel and the
Stream-K hybrid (validated against the discrete-event executor), and a
bounded approximation for multi-wave fixed-split.

The only per-problem Python loop left is the small-problem Stream-K regime
(``tiles < SMs``), where the grid size comes from the analytical model and
the exact one-wave walk is O(g + t) with t < 108 — a few thousand corpus
problems at microseconds each.

Systems evaluated (the paper's four comparison columns):

* ``streamk``   — the shipped one-kernel Stream-K library;
* ``singleton`` — the data-parallel CUTLASS kernel of the same blocking;
* ``cublas``    — the heuristic-selected DP/fixed-split ensemble;
* ``oracle``    — best data-parallel blocking per problem, by measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ensembles.cublas import cublas_variants
from ..ensembles.cutlass import ORACLE_BLOCKINGS
from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig
from ..gemm.tiling import Blocking
from ..gpu.analytic import basic_streamk_makespan
from ..gpu.costmodel import KernelCostModel
from ..gpu.spec import GpuSpec
from ..model.calibrate import calibrate
from ..model.cost import StreamKModelParams

__all__ = ["SystemTimings", "evaluate_corpus", "streamk_times", "dp_times", "fixed_split_times"]

_L2_RESIDENCY = 0.8
_PIPELINE_STAGES = 2

_PARAMS_CACHE: "dict[tuple, StreamKModelParams]" = {}


def _cached_params(
    gpu: GpuSpec, blocking: Blocking, dtype: DtypeConfig
) -> StreamKModelParams:
    key = (gpu.name, blocking.as_tuple, dtype.name)
    if key not in _PARAMS_CACHE:
        _PARAMS_CACHE[key] = calibrate(gpu, blocking, dtype)
    return _PARAMS_CACHE[key]


def _ceil_div(a: np.ndarray, b) -> np.ndarray:
    return -(-a // b)


def _split_shapes(shapes: np.ndarray) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    shapes = np.asarray(shapes, dtype=np.int64)
    if shapes.ndim != 2 or shapes.shape[1] != 3:
        raise ConfigurationError("shapes must be an (N, 3) array of m, n, k")
    return shapes[:, 0], shapes[:, 1], shapes[:, 2]


# --------------------------------------------------------------------- #
# Vectorized analytical memory model (mirrors gpu.memory)               #
# --------------------------------------------------------------------- #


def _traffic_bytes(
    m: np.ndarray,
    n: np.ndarray,
    k: np.ndarray,
    tiles_m: np.ndarray,
    tiles_n: np.ndarray,
    g: np.ndarray,
    aligned_fraction: np.ndarray,
    fixup_stores: np.ndarray,
    blocking: Blocking,
    dtype: DtypeConfig,
    gpu: GpuSpec,
) -> np.ndarray:
    """Element-wise port of AnalyticalMemoryModel.traffic (alpha=1, beta=0)."""
    in_b = dtype.input_bytes
    out_b = dtype.output_bytes
    a_pass = tiles_m.astype(np.float64) * blocking.blk_m * k * in_b
    b_pass = tiles_n.astype(np.float64) * blocking.blk_n * k * in_b

    usable_l2 = gpu.l2_bytes * _L2_RESIDENCY
    w = np.clip(g, 1, gpu.total_cta_slots)
    w_n = np.minimum(w, tiles_n)
    w_m = np.minimum(tiles_m, _ceil_div(w, tiles_n))
    working_set = (
        _PIPELINE_STAGES
        * (w_m * blocking.blk_m + w_n * blocking.blk_n)
        * blocking.blk_k
        * in_b
    )
    amp_a_aligned = np.where(working_set > usable_l2, tiles_n, tiles_n / w_n)
    amp_b_aligned = np.where(working_set > usable_l2, tiles_m, tiles_m / w_m)
    # Skewed schedules keep most L2 reuse; cap their extra traffic at 2x
    # the aligned wave (see repro.gpu.memory._SKEW_AMPLIFICATION).
    amp_a_skewed = np.minimum(tiles_n, 2.0 * amp_a_aligned)
    amp_b_skewed = np.minimum(tiles_m, 2.0 * amp_b_aligned)
    f = aligned_fraction
    amp_a = f * amp_a_aligned + (1.0 - f) * amp_a_skewed
    amp_b = f * amp_b_aligned + (1.0 - f) * amp_b_skewed
    resident = (a_pass + b_pass) <= usable_l2
    amp_a = np.where(resident, 1.0, amp_a)
    amp_b = np.where(resident, 1.0, amp_b)

    out = m.astype(np.float64) * n * out_b
    tile_accum = blocking.blk_m * blocking.blk_n * out_b
    partials = fixup_stores.astype(np.float64) * tile_accum * 2.0
    return a_pass * amp_a + b_pass * amp_b + out + partials


def _roofline_time(
    makespan_cycles: np.ndarray,
    dram_bytes: np.ndarray,
    g: np.ndarray,
    gpu: GpuSpec,
) -> np.ndarray:
    """max(compute, memory) + launch, with memory bandwidth capped by the
    number of CTAs actually resident (sparse grids cannot saturate HBM)."""
    bandwidth = gpu.achieved_bandwidth(g)
    return (
        np.maximum(makespan_cycles / gpu.clock_hz, dram_bytes / bandwidth)
        + gpu.launch_latency_s
    )


# --------------------------------------------------------------------- #
# Variant families                                                      #
# --------------------------------------------------------------------- #


def dp_times(
    shapes: np.ndarray, blocking: Blocking, dtype: DtypeConfig, gpu: GpuSpec
) -> np.ndarray:
    """Data-parallel kernel times (exact makespans)."""
    m, n, k = _split_shapes(shapes)
    cost = KernelCostModel(gpu=gpu, blocking=blocking, dtype=dtype)
    tiles_m = _ceil_div(m, blocking.blk_m)
    tiles_n = _ceil_div(n, blocking.blk_n)
    t = tiles_m * tiles_n
    ipt = _ceil_div(k, blocking.blk_k)
    cta = cost.prologue_cycles + cost.cycles_per_iter * ipt + cost.store_tile_cycles
    makespan = _ceil_div(t, gpu.num_sms) * cta
    traffic = _traffic_bytes(
        m, n, k, tiles_m, tiles_n, t,
        np.ones_like(t, dtype=np.float64), np.zeros_like(t),
        blocking, dtype, gpu,
    )
    return _roofline_time(makespan, traffic, t, gpu)


def fixed_split_times(
    shapes: np.ndarray,
    blocking: Blocking,
    s: int,
    dtype: DtypeConfig,
    gpu: GpuSpec,
) -> np.ndarray:
    """Fixed-split kernel times (bounded approximation; see gpu.analytic)."""
    if s < 2:
        return dp_times(shapes, blocking, dtype, gpu)
    m, n, k = _split_shapes(shapes)
    cost = KernelCostModel(gpu=gpu, blocking=blocking, dtype=dtype)
    p = gpu.num_sms
    tiles_m = _ceil_div(m, blocking.blk_m)
    tiles_n = _ceil_div(n, blocking.blk_n)
    t = tiles_m * tiles_n
    ipt = _ceil_div(k, blocking.blk_k)
    s_eff = np.minimum(s, ipt)
    share = _ceil_div(ipt, s_eff)
    c = cost.cycles_per_iter
    d_c = cost.prologue_cycles + c * share + cost.store_partials_cycles
    fixup_tail = (s_eff - 1) * cost.fixup_cycles_per_peer + cost.store_tile_cycles
    d_o = np.where(
        s_eff <= p, d_c + fixup_tail, cost.prologue_cycles + c * share + fixup_tail
    )
    total = t * ((s_eff - 1) * d_c + d_o)
    multiwave = np.maximum(d_o, total / p + 0.5 * (p - 1) / p * d_o)
    dp_cta = cost.prologue_cycles + c * ipt + cost.store_tile_cycles
    makespan = np.where(
        s_eff == 1,
        _ceil_div(t, p) * dp_cta,
        np.where(t * s_eff <= p, d_o, multiwave),
    )
    stores = t * (s_eff - 1)
    traffic = _traffic_bytes(
        m, n, k, tiles_m, tiles_n, t * s_eff,
        (s_eff == 1).astype(np.float64), stores,
        blocking, dtype, gpu,
    )
    return _roofline_time(makespan, traffic, t * s_eff, gpu)


# --------------------------------------------------------------------- #
# Stream-K                                                              #
# --------------------------------------------------------------------- #


def _two_tile_walk(
    t: np.ndarray, ipt: np.ndarray, p: int, cost: KernelCostModel
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Vectorized exact two-tile-hybrid makespan for the ``w >= 1,
    t % p != 0`` regime.  Returns (makespan, aligned_fraction, stores).

    Broadcasts the per-CTA timeline of
    :func:`repro.gpu.analytic.two_tile_hybrid_makespan` over an (N, p)
    grid: head contribution, fully-owned tiles, the at-most-one-peer
    fixup, then the ``w - 1`` data-parallel tiles.
    """
    c = cost.cycles_per_iter
    pro = cost.prologue_cycles
    sp = cost.store_partials_cycles
    fx = cost.fixup_cycles_per_peer
    st = cost.store_tile_cycles

    t = t[:, None].astype(np.int64)
    ipt_c = ipt[:, None].astype(np.int64)
    w = t // p
    sk_tiles = t - (w - 1) * p
    region = sk_tiles * ipt_c
    base, rem = np.divmod(region, p)
    x = np.arange(p + 1, dtype=np.int64)[None, :]
    begins = x * base + np.minimum(x, rem)  # (N, p+1) range boundaries
    b = begins[:, :-1]
    e = begins[:, 1:]
    head = (-b) % ipt_c
    head_next = (-e) % ipt_c  # == head of CTA x+1 (or 0 at the region end)
    last_part = e % ipt_c
    n_owned = _ceil_div(e, ipt_c) - _ceil_div(b, ipt_c)
    fully = n_owned - (last_part > 0)

    now = pro + np.where(head > 0, c * head + sp, 0.0)
    now = now + fully * (c * ipt_c + st)
    own_end = now + np.where(last_part > 0, c * last_part, 0.0)
    peer_signal = pro + c * head_next + sp
    now = np.where(
        last_part > 0, np.maximum(own_end, peer_signal) + fx + st, own_end
    )
    finish = now + (w - 1) * (c * ipt_c + st)
    makespan = finish.max(axis=1)

    total = (t * ipt_c).astype(np.float64)
    aligned_fraction = ((t - sk_tiles) * ipt_c) / total
    stores = np.count_nonzero(b[:, 1:] % ipt_c, axis=1)
    return makespan, aligned_fraction.ravel(), stores


def streamk_times(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    params: "StreamKModelParams | None" = None,
) -> np.ndarray:
    """Shipped Stream-K library times across a shape corpus."""
    m, n, k = _split_shapes(shapes)
    blocking = Blocking(*dtype.default_blocking)
    cost = KernelCostModel(gpu=gpu, blocking=blocking, dtype=dtype)
    if params is None:
        params = _cached_params(gpu, blocking, dtype)
    p = gpu.num_sms

    tiles_m = _ceil_div(m, blocking.blk_m)
    tiles_n = _ceil_div(n, blocking.blk_n)
    t = tiles_m * tiles_n
    ipt = _ceil_div(k, blocking.blk_k)
    total = t * ipt

    makespan = np.zeros(len(t), dtype=np.float64)
    f = np.zeros(len(t), dtype=np.float64)
    g_arr = np.zeros(len(t), dtype=np.int64)
    stores = np.zeros(len(t), dtype=np.int64)

    # Regime A: perfect quantization -> persistent data-parallel.
    mask_a = t % p == 0
    if mask_a.any():
        g_a = np.minimum(p, t[mask_a])
        makespan[mask_a] = cost.prologue_cycles + _ceil_div(t[mask_a], g_a) * (
            cost.cycles_per_iter * ipt[mask_a] + cost.store_tile_cycles
        )
        f[mask_a] = 1.0
        g_arr[mask_a] = g_a

    # Regime C: two-tile hybrid (exact vectorized walk).
    mask_c = (~mask_a) & (t >= p)
    if mask_c.any():
        span, frac, n_stores = _two_tile_walk(t[mask_c], ipt[mask_c], p, cost)
        makespan[mask_c] = span
        f[mask_c] = frac
        g_arr[mask_c] = p
        stores[mask_c] = n_stores

    # Regime B: fewer tiles than SMs -> model-selected grid, exact walk.
    mask_b = (~mask_a) & (t < p)
    if mask_b.any():
        idx = np.flatnonzero(mask_b)
        max_grid = gpu.total_cta_slots
        for i in idx:
            ti, ipti, tot = int(t[i]), int(ipt[i]), int(total[i])
            g = _select_g(tot, ipti, max_grid, params)
            makespan[i] = basic_streamk_makespan(ti, g, ipti, cost)
            g_eff = min(g, tot)
            base, rem = divmod(tot, g_eff)
            bounds = np.arange(1, g_eff, dtype=np.int64)
            begins = bounds * base + np.minimum(bounds, rem)
            mis = int(np.count_nonzero(begins % ipti))
            stores[i] = mis
            f[i] = 1.0 if mis == 0 else 0.0
            g_arr[i] = g_eff

    traffic = _traffic_bytes(
        m, n, k, tiles_m, tiles_n, g_arr, f, stores, blocking, dtype, gpu
    )
    return _roofline_time(makespan, traffic, g_arr, gpu)


def _select_g(
    total_iters: int, ipt: int, max_grid: int, params: StreamKModelParams
) -> int:
    """Grid-size selection (vectorized Appendix A.1 argmin) for one problem."""
    hi = min(max_grid, total_iters)
    g = np.arange(1, hi + 1, dtype=np.int64)
    ipc = -(-total_iters // g)
    peers = -(-ipt // ipc)
    time = params.a + params.b * (peers > 1) + params.c * ipc + params.d * (peers - 1)
    return int(g[np.argmin(time)])


# --------------------------------------------------------------------- #
# Full-corpus evaluation                                                 #
# --------------------------------------------------------------------- #


@dataclass
class SystemTimings:
    """Per-problem kernel times (seconds) for every compared system."""

    shapes: np.ndarray
    dtype_name: str
    gpu_name: str
    streamk: np.ndarray
    singleton: np.ndarray
    cublas: np.ndarray
    oracle: np.ndarray
    #: Index into the cuBLAS variant list chosen per problem.
    cublas_choice: np.ndarray = field(default=None)
    #: Names of the cuBLAS ensemble variants, aligned with cublas_choice.
    cublas_variant_names: "list[str]" = field(default_factory=list)

    def __len__(self) -> int:
        return self.shapes.shape[0]


def evaluate_corpus(
    shapes: np.ndarray, dtype: DtypeConfig, gpu: GpuSpec
) -> SystemTimings:
    """Evaluate all four systems over a shape corpus.

    cuBLAS evaluation mirrors reality: the proxy heuristic *selects* a
    variant per problem, then the selected kernel's simulated time is what
    gets reported — selection mistakes show up as measured slowness.
    """
    shapes = np.asarray(shapes, dtype=np.int64)
    m, n, k = _split_shapes(shapes)
    p = gpu.num_sms

    streamk = streamk_times(shapes, dtype, gpu)
    singleton = dp_times(shapes, Blocking(*dtype.default_blocking), dtype, gpu)

    # Oracle: best *measured* data-parallel blocking.
    dp_matrix = np.stack(
        [
            dp_times(shapes, Blocking(*b), dtype, gpu)
            for b in ORACLE_BLOCKINGS[dtype.name]
        ],
        axis=1,
    )
    oracle = dp_matrix.min(axis=1)

    # cuBLAS-like: proxy-score selection over the full DP+split ensemble.
    variants = cublas_variants(dtype)
    times_matrix = np.empty((len(shapes), len(variants)), dtype=np.float64)
    scores = np.empty_like(times_matrix)
    for j, v in enumerate(variants):
        if v.family == "data_parallel":
            col = dp_matrix[:, _oracle_index(dtype, v.blocking)]
        else:
            col = fixed_split_times(shapes, v.blocking, v.s, dtype, gpu)
        times_matrix[:, j] = col
        scores[:, j] = _proxy_scores(m, n, k, v.blocking, v.s, p, dtype)
    choice = scores.argmin(axis=1)
    cublas = times_matrix[np.arange(len(shapes)), choice]

    return SystemTimings(
        shapes=shapes,
        dtype_name=dtype.name,
        gpu_name=gpu.name,
        streamk=streamk,
        singleton=singleton,
        cublas=cublas,
        oracle=oracle,
        cublas_choice=choice,
        cublas_variant_names=[v.name for v in variants],
    )


def _oracle_index(dtype: DtypeConfig, blocking: Blocking) -> int:
    blockings = ORACLE_BLOCKINGS[dtype.name]
    return blockings.index(blocking.as_tuple)


def _proxy_scores(
    m: np.ndarray,
    n: np.ndarray,
    k: np.ndarray,
    blocking: Blocking,
    s: int,
    p: int,
    dtype: DtypeConfig,
) -> np.ndarray:
    """Vectorized twin of :func:`repro.ensembles.heuristics.proxy_score`."""
    from ..ensembles.heuristics import _CTA_MAC_EQUIV, _FIXUP_MAC_EQUIV

    tiles = _ceil_div(m, blocking.blk_m) * _ceil_div(n, blocking.blk_n)
    ipt = _ceil_div(k, blocking.blk_k)
    s_eff = np.minimum(s, ipt)
    waves = _ceil_div(tiles * s_eff, p)
    share = _ceil_div(ipt, s_eff)
    default_macs = (
        dtype.default_blocking[0]
        * dtype.default_blocking[1]
        * dtype.default_blocking[2]
    )
    eff = min(1.0, (blocking.tile_macs / default_macs) ** 0.5)
    compute = waves.astype(np.float64) * share * blocking.tile_macs / eff
    fixup = (
        tiles.astype(np.float64)
        * (s_eff - 1)
        * blocking.blk_m
        * blocking.blk_n
        * _FIXUP_MAC_EQUIV
    )
    overhead = tiles.astype(np.float64) * s_eff * _CTA_MAC_EQUIV
    return compute + fixup + overhead
