"""Vectorized corpus evaluation: every system over 32,824 shapes in seconds.

Per the hpc-parallel guides, the hot path is numpy array arithmetic, not
Python loops: each system's kernel time is expressed as closed-form
element-wise math over the (N,) shape arrays.  The closed forms are the
ones in :mod:`repro.gpu.analytic` — exact for data-parallel and the
Stream-K hybrid (validated against the discrete-event executor), and a
bounded approximation for multi-wave fixed-split.

There are no per-problem Python loops left: the small-problem Stream-K
regime (``tiles < SMs``) runs through the batched Appendix A.1 argmin
(:func:`repro.model.gridsize.select_grid_sizes_batch`) and the batched
exact walk (:func:`repro.gpu.analytic.basic_streamk_makespan_batch`), both
cross-validated element-for-element against their scalar twins.  Every
(N, G) transient is processed in fixed-size row chunks, so peak memory is
bounded regardless of corpus size.

Systems evaluated (the paper's four comparison columns):

* ``streamk``   — the shipped one-kernel Stream-K library;
* ``singleton`` — the data-parallel CUTLASS kernel of the same blocking;
* ``cublas``    — the heuristic-selected DP/fixed-split ensemble;
* ``oracle``    — best data-parallel blocking per problem, by measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ensembles.cublas import cublas_variants
from ..ensembles.cutlass import ORACLE_BLOCKINGS
from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig
from ..gemm.tiling import Blocking
from ..gpu.analytic import (
    basic_streamk_makespan_batch,
    fixed_split_makespan_batch,
)
from ..gpu.costmodel import KernelCostModel
from ..gpu.spec import GpuSpec
from ..model.cost import StreamKModelParams
from ..model.gridsize import select_grid_sizes_batch
from ..model.paramcache import calibrate_cached
from ..obs.profiler import span

__all__ = ["SystemTimings", "evaluate_corpus", "streamk_times", "dp_times", "fixed_split_times"]

_L2_RESIDENCY = 0.8
_PIPELINE_STAGES = 2

#: Row-chunk size bounding the transient (rows, p+1) matrices of the
#: two-tile walk (and the Regime-B boundary profile), so corpora far larger
#: than the paper's 32,824 shapes — or GPUs with huge ``total_cta_slots`` —
#: never scale peak memory with N.
_WALK_ROW_CHUNK = 8192


def _cached_params(
    gpu: GpuSpec, blocking: Blocking, dtype: DtypeConfig
) -> StreamKModelParams:
    """Calibrated constants via the persistent two-level cache."""
    return calibrate_cached(gpu, blocking, dtype)


def _ceil_div(a: np.ndarray, b) -> np.ndarray:
    return -(-a // b)


def _split_shapes(shapes: np.ndarray) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    shapes = np.asarray(shapes, dtype=np.int64)
    if shapes.ndim != 2 or shapes.shape[1] != 3:
        raise ConfigurationError("shapes must be an (N, 3) array of m, n, k")
    return shapes[:, 0], shapes[:, 1], shapes[:, 2]


# --------------------------------------------------------------------- #
# Vectorized analytical memory model (mirrors gpu.memory)               #
# --------------------------------------------------------------------- #


def _traffic_bytes(
    m: np.ndarray,
    n: np.ndarray,
    k: np.ndarray,
    tiles_m: np.ndarray,
    tiles_n: np.ndarray,
    g: np.ndarray,
    aligned_fraction: np.ndarray,
    fixup_stores: np.ndarray,
    blocking: Blocking,
    dtype: DtypeConfig,
    gpu: GpuSpec,
) -> np.ndarray:
    """Element-wise port of AnalyticalMemoryModel.traffic (alpha=1, beta=0)."""
    in_b = dtype.input_bytes
    out_b = dtype.output_bytes
    a_pass = tiles_m.astype(np.float64) * blocking.blk_m * k * in_b
    b_pass = tiles_n.astype(np.float64) * blocking.blk_n * k * in_b

    usable_l2 = gpu.l2_bytes * _L2_RESIDENCY
    w = np.clip(g, 1, gpu.total_cta_slots)
    w_n = np.minimum(w, tiles_n)
    w_m = np.minimum(tiles_m, _ceil_div(w, tiles_n))
    working_set = (
        _PIPELINE_STAGES
        * (w_m * blocking.blk_m + w_n * blocking.blk_n)
        * blocking.blk_k
        * in_b
    )
    amp_a_aligned = np.where(working_set > usable_l2, tiles_n, tiles_n / w_n)
    amp_b_aligned = np.where(working_set > usable_l2, tiles_m, tiles_m / w_m)
    # Skewed schedules keep most L2 reuse; cap their extra traffic at 2x
    # the aligned wave (see repro.gpu.memory._SKEW_AMPLIFICATION).
    amp_a_skewed = np.minimum(tiles_n, 2.0 * amp_a_aligned)
    amp_b_skewed = np.minimum(tiles_m, 2.0 * amp_b_aligned)
    f = aligned_fraction
    amp_a = f * amp_a_aligned + (1.0 - f) * amp_a_skewed
    amp_b = f * amp_b_aligned + (1.0 - f) * amp_b_skewed
    resident = (a_pass + b_pass) <= usable_l2
    amp_a = np.where(resident, 1.0, amp_a)
    amp_b = np.where(resident, 1.0, amp_b)

    out = m.astype(np.float64) * n * out_b
    tile_accum = blocking.blk_m * blocking.blk_n * out_b
    partials = fixup_stores.astype(np.float64) * tile_accum * 2.0
    return a_pass * amp_a + b_pass * amp_b + out + partials


def _roofline_time(
    makespan_cycles: np.ndarray,
    dram_bytes: np.ndarray,
    g: np.ndarray,
    gpu: GpuSpec,
) -> np.ndarray:
    """max(compute, memory) + launch, with memory bandwidth capped by the
    number of CTAs actually resident (sparse grids cannot saturate HBM)."""
    bandwidth = gpu.achieved_bandwidth(g)
    return (
        np.maximum(makespan_cycles / gpu.clock_hz, dram_bytes / bandwidth)
        + gpu.launch_latency_s
    )


# --------------------------------------------------------------------- #
# Variant families                                                      #
# --------------------------------------------------------------------- #


def dp_times(
    shapes: np.ndarray, blocking: Blocking, dtype: DtypeConfig, gpu: GpuSpec
) -> np.ndarray:
    """Data-parallel kernel times (exact makespans)."""
    m, n, k = _split_shapes(shapes)
    cost = KernelCostModel(gpu=gpu, blocking=blocking, dtype=dtype)
    tiles_m = _ceil_div(m, blocking.blk_m)
    tiles_n = _ceil_div(n, blocking.blk_n)
    t = tiles_m * tiles_n
    ipt = _ceil_div(k, blocking.blk_k)
    cta = cost.prologue_cycles + cost.cycles_per_iter * ipt + cost.store_tile_cycles
    makespan = _ceil_div(t, gpu.num_sms) * cta
    traffic = _traffic_bytes(
        m, n, k, tiles_m, tiles_n, t,
        np.ones_like(t, dtype=np.float64), np.zeros_like(t),
        blocking, dtype, gpu,
    )
    return _roofline_time(makespan, traffic, t, gpu)


def fixed_split_times(
    shapes: np.ndarray,
    blocking: Blocking,
    s: int,
    dtype: DtypeConfig,
    gpu: GpuSpec,
) -> np.ndarray:
    """Fixed-split kernel times (bounded approximation; see gpu.analytic)."""
    if s < 2:
        return dp_times(shapes, blocking, dtype, gpu)
    m, n, k = _split_shapes(shapes)
    cost = KernelCostModel(gpu=gpu, blocking=blocking, dtype=dtype)
    p = gpu.num_sms
    tiles_m = _ceil_div(m, blocking.blk_m)
    tiles_n = _ceil_div(n, blocking.blk_n)
    t = tiles_m * tiles_n
    ipt = _ceil_div(k, blocking.blk_k)
    s_eff = np.minimum(s, ipt)
    makespan = fixed_split_makespan_batch(t, s, p, ipt, cost)
    stores = t * (s_eff - 1)
    traffic = _traffic_bytes(
        m, n, k, tiles_m, tiles_n, t * s_eff,
        (s_eff == 1).astype(np.float64), stores,
        blocking, dtype, gpu,
    )
    return _roofline_time(makespan, traffic, t * s_eff, gpu)


# --------------------------------------------------------------------- #
# Stream-K                                                              #
# --------------------------------------------------------------------- #


def _two_tile_walk(
    t: np.ndarray,
    ipt: np.ndarray,
    p: int,
    cost: KernelCostModel,
    row_chunk: int = _WALK_ROW_CHUNK,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Vectorized exact two-tile-hybrid makespan for the ``w >= 1,
    t % p != 0`` regime.  Returns (makespan, aligned_fraction, stores).

    Broadcasts the per-CTA timeline of
    :func:`repro.gpu.analytic.two_tile_hybrid_makespan` over a (rows, p)
    grid, one fixed-size row chunk at a time (the transient (rows, p+1)
    boundary matrix is the largest allocation in the corpus engine): head
    contribution, fully-owned tiles, the at-most-one-peer fixup, then the
    ``w - 1`` data-parallel tiles.
    """
    n = t.shape[0]
    makespan = np.empty(n, dtype=np.float64)
    aligned_fraction = np.empty(n, dtype=np.float64)
    stores = np.empty(n, dtype=np.int64)
    for lo in range(0, n, max(1, row_chunk)):
        sl = slice(lo, min(lo + max(1, row_chunk), n))
        makespan[sl], aligned_fraction[sl], stores[sl] = _two_tile_walk_chunk(
            t[sl], ipt[sl], p, cost
        )
    return makespan, aligned_fraction, stores


def _two_tile_walk_chunk(
    t: np.ndarray, ipt: np.ndarray, p: int, cost: KernelCostModel
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """One row chunk of :func:`_two_tile_walk`."""
    c = cost.cycles_per_iter
    pro = cost.prologue_cycles
    sp = cost.store_partials_cycles
    fx = cost.fixup_cycles_per_peer
    st = cost.store_tile_cycles

    # Geometry is bounded by t * ipt; int32 halves memory traffic and
    # speeds the hot div/mod ops on the (rows, p) matrices when safe.
    geo = (
        np.int32
        if int(t.max()) * int(ipt.max()) < np.iinfo(np.int32).max
        else np.int64
    )
    t = t[:, None].astype(geo)
    ipt_c = ipt[:, None].astype(geo)
    w = t // geo(p)
    sk_tiles = t - (w - 1) * geo(p)
    region = sk_tiles * ipt_c
    base, rem = np.divmod(region, geo(p))
    x = np.arange(p + 1, dtype=geo)[None, :]
    begins = x * base + np.minimum(x, rem)  # (rows, p+1) range boundaries
    heads_all = (-begins) % ipt_c
    b_misaligned = heads_all[:, 1:-1]  # interior boundaries off tile edges
    head = heads_all[:, :-1]
    head_next = heads_all[:, 1:]  # == head of CTA x+1 (or 0 at region end)
    share = begins[:, 1:] - begins[:, :-1]
    # In this regime every share >= ipt, so b + head is tile-aligned and
    # the owned-tile count reduces to one integer division.
    last_part = np.where(head_next != 0, ipt_c - head_next, 0)
    fully = (share - head - last_part) // ipt_c

    now = pro + np.where(head > 0, c * head + sp, 0.0)
    now = now + fully * (c * ipt_c + st)
    own_end = now + np.where(last_part > 0, c * last_part, 0.0)
    peer_signal = pro + c * head_next + sp
    now = np.where(
        last_part > 0, np.maximum(own_end, peer_signal) + fx + st, own_end
    )
    finish = now + (w - 1) * (c * ipt_c + st)
    makespan = finish.max(axis=1)

    total = (t * ipt_c).astype(np.float64)
    aligned_fraction = ((t - sk_tiles) * ipt_c) / total
    stores = np.count_nonzero(b_misaligned, axis=1)
    return makespan, aligned_fraction.ravel(), stores


def streamk_times(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    params: "StreamKModelParams | None" = None,
) -> np.ndarray:
    """Shipped Stream-K library times across a shape corpus."""
    m, n, k = _split_shapes(shapes)
    blocking = Blocking(*dtype.default_blocking)
    cost = KernelCostModel(gpu=gpu, blocking=blocking, dtype=dtype)
    if params is None:
        params = _cached_params(gpu, blocking, dtype)
    p = gpu.num_sms

    tiles_m = _ceil_div(m, blocking.blk_m)
    tiles_n = _ceil_div(n, blocking.blk_n)
    t = tiles_m * tiles_n
    ipt = _ceil_div(k, blocking.blk_k)
    total = t * ipt

    makespan = np.zeros(len(t), dtype=np.float64)
    f = np.zeros(len(t), dtype=np.float64)
    g_arr = np.zeros(len(t), dtype=np.int64)
    stores = np.zeros(len(t), dtype=np.int64)

    # Regime A: perfect quantization -> persistent data-parallel.
    mask_a = t % p == 0
    if mask_a.any():
        g_a = np.minimum(p, t[mask_a])
        makespan[mask_a] = cost.prologue_cycles + _ceil_div(t[mask_a], g_a) * (
            cost.cycles_per_iter * ipt[mask_a] + cost.store_tile_cycles
        )
        f[mask_a] = 1.0
        g_arr[mask_a] = g_a

    # Regime C: two-tile hybrid (exact vectorized walk).
    mask_c = (~mask_a) & (t >= p)
    if mask_c.any():
        with span("two_tile_walk"):
            walk_span, frac, n_stores = _two_tile_walk(
                t[mask_c], ipt[mask_c], p, cost
            )
        makespan[mask_c] = walk_span
        f[mask_c] = frac
        g_arr[mask_c] = p
        stores[mask_c] = n_stores

    # Regime B: fewer tiles than SMs -> batched model-selected grids and the
    # batched exact walk (pure numpy; no per-problem Python loop).
    mask_b = (~mask_a) & (t < p)
    if mask_b.any():
        t_b, ipt_b, tot_b = t[mask_b], ipt[mask_b], total[mask_b]
        with span("gridsize_argmin"):
            g_b = select_grid_sizes_batch(
                tot_b, ipt_b, params, gpu.total_cta_slots
            )
        with span("makespan_batch"):
            makespan[mask_b] = basic_streamk_makespan_batch(
                t_b, g_b, ipt_b, cost
            )
        g_eff = np.minimum(g_b, tot_b)
        mis = _misaligned_boundaries_batch(tot_b, g_eff, ipt_b)
        stores[mask_b] = mis
        f[mask_b] = (mis == 0).astype(np.float64)
        g_arr[mask_b] = g_eff

    traffic = _traffic_bytes(
        m, n, k, tiles_m, tiles_n, g_arr, f, stores, blocking, dtype, gpu
    )
    return _roofline_time(makespan, traffic, g_arr, gpu)


def _misaligned_boundaries_batch(
    total: np.ndarray,
    g_eff: np.ndarray,
    ipt: np.ndarray,
    row_chunk: int = _WALK_ROW_CHUNK,
) -> np.ndarray:
    """Per problem, how many of the ``g_eff - 1`` interior partition
    boundaries fall off a tile edge (each costs one partial-sum exchange).
    Batched twin of the per-problem profile in
    :func:`repro.ensembles.streamk_library._region_fixup_profile`."""
    n = total.shape[0]
    out = np.empty(n, dtype=np.int64)
    for lo in range(0, n, max(1, row_chunk)):
        sl = slice(lo, min(lo + max(1, row_chunk), n))
        tot_c = total[sl]
        g_c = g_eff[sl]
        base = (tot_c // g_c)[:, None]
        rem = (tot_c % g_c)[:, None]
        gmax = int(g_c.max())
        bounds = np.arange(1, gmax, dtype=np.int64)[None, :]
        begins = bounds * base + np.minimum(bounds, rem)
        mis = (begins % ipt[sl][:, None] != 0) & (bounds < g_c[:, None])
        out[sl] = np.count_nonzero(mis, axis=1)
    return out


# --------------------------------------------------------------------- #
# Full-corpus evaluation                                                 #
# --------------------------------------------------------------------- #


@dataclass
class SystemTimings:
    """Per-problem kernel times (seconds) for every compared system."""

    shapes: np.ndarray
    dtype_name: str
    gpu_name: str
    streamk: np.ndarray
    singleton: np.ndarray
    cublas: np.ndarray
    oracle: np.ndarray
    #: Index into the cuBLAS variant list chosen per problem, or ``None``
    #: when the evaluation did not record selections (e.g. partial loads).
    cublas_choice: "np.ndarray | None" = None
    #: Names of the cuBLAS ensemble variants, aligned with cublas_choice.
    cublas_variant_names: "list[str]" = field(default_factory=list)

    def __len__(self) -> int:
        return int(self.shapes.shape[0])

    def chosen_variant_names(self) -> "list[str] | None":
        """Per-problem cuBLAS variant names, or ``None`` if unrecorded."""
        if self.cublas_choice is None or not self.cublas_variant_names:
            return None
        return [self.cublas_variant_names[int(i)] for i in self.cublas_choice]


def evaluate_corpus(
    shapes: np.ndarray, dtype: DtypeConfig, gpu: GpuSpec
) -> SystemTimings:
    """Evaluate all four systems over a shape corpus.

    cuBLAS evaluation mirrors reality: the proxy heuristic *selects* a
    variant per problem, then the selected kernel's simulated time is what
    gets reported — selection mistakes show up as measured slowness.
    """
    shapes = np.asarray(shapes, dtype=np.int64)
    m, n, k = _split_shapes(shapes)
    p = gpu.num_sms

    with span("evaluate_corpus"):
        with span("streamk"):
            streamk = streamk_times(shapes, dtype, gpu)
        with span("singleton"):
            singleton = dp_times(
                shapes, Blocking(*dtype.default_blocking), dtype, gpu
            )

        # Oracle: best *measured* data-parallel blocking.
        with span("oracle"):
            dp_matrix = np.stack(
                [
                    dp_times(shapes, Blocking(*b), dtype, gpu)
                    for b in ORACLE_BLOCKINGS[dtype.name]
                ],
                axis=1,
            )
            oracle = dp_matrix.min(axis=1)

        # cuBLAS-like: proxy-score selection over the DP+split ensemble.
        with span("cublas_ensemble"):
            variants = cublas_variants(dtype)
            times_matrix = np.empty(
                (len(shapes), len(variants)), dtype=np.float64
            )
            scores = np.empty_like(times_matrix)
            for j, v in enumerate(variants):
                if v.family == "data_parallel":
                    col = dp_matrix[:, _oracle_index(dtype, v.blocking)]
                else:
                    col = fixed_split_times(
                        shapes, v.blocking, v.s, dtype, gpu
                    )
                times_matrix[:, j] = col
                scores[:, j] = _proxy_scores(
                    m, n, k, v.blocking, v.s, p, dtype
                )
            choice = scores.argmin(axis=1)
            cublas = times_matrix[np.arange(len(shapes)), choice]

    return SystemTimings(
        shapes=shapes,
        dtype_name=dtype.name,
        gpu_name=gpu.name,
        streamk=streamk,
        singleton=singleton,
        cublas=cublas,
        oracle=oracle,
        cublas_choice=choice,
        cublas_variant_names=[v.name for v in variants],
    )


def _oracle_index(dtype: DtypeConfig, blocking: Blocking) -> int:
    blockings = ORACLE_BLOCKINGS[dtype.name]
    return blockings.index(blocking.as_tuple)


def _proxy_scores(
    m: np.ndarray,
    n: np.ndarray,
    k: np.ndarray,
    blocking: Blocking,
    s: int,
    p: int,
    dtype: DtypeConfig,
) -> np.ndarray:
    """Vectorized twin of :func:`repro.ensembles.heuristics.proxy_score`."""
    from ..ensembles.heuristics import _CTA_MAC_EQUIV, _FIXUP_MAC_EQUIV

    tiles = _ceil_div(m, blocking.blk_m) * _ceil_div(n, blocking.blk_n)
    ipt = _ceil_div(k, blocking.blk_k)
    s_eff = np.minimum(s, ipt)
    waves = _ceil_div(tiles * s_eff, p)
    share = _ceil_div(ipt, s_eff)
    default_macs = (
        dtype.default_blocking[0]
        * dtype.default_blocking[1]
        * dtype.default_blocking[2]
    )
    eff = min(1.0, (blocking.tile_macs / default_macs) ** 0.5)
    compute = waves.astype(np.float64) * share * blocking.tile_macs / eff
    fixup = (
        tiles.astype(np.float64)
        * (s_eff - 1)
        * blocking.blk_m
        * blocking.blk_n
        * _FIXUP_MAC_EQUIV
    )
    overhead = tiles.astype(np.float64) * s_eff * _CTA_MAC_EQUIV
    return compute + fixup + overhead
