"""Vectorized corpus evaluation: every system over 32,824 shapes in seconds.

This module is the **evaluate** side of the repo's plan/evaluate split:
the pure planning arithmetic (regime choice, grid-size argmin, two-tile
walk, memory roofline) lives in :mod:`repro.plan.core`, and this engine
*consumes* it — :func:`streamk_times` is now a thin wrapper over
:func:`repro.plan.core.plan_batch`, so corpus sweeps, cross-hardware
comparisons, and the serving daemon all price Stream-K through the exact
same batched code path.

Per the hpc-parallel guides, the hot path is numpy array arithmetic, not
Python loops: each system's kernel time is expressed as closed-form
element-wise math over the (N,) shape arrays.  The closed forms are the
ones in :mod:`repro.gpu.analytic` — exact for data-parallel and the
Stream-K hybrid (validated against the discrete-event executor), and a
bounded approximation for multi-wave fixed-split.

There are no per-problem Python loops left: the small-problem Stream-K
regime (``tiles < SMs``) runs through the batched Appendix A.1 argmin
(:func:`repro.model.gridsize.select_grid_sizes_batch`) and the batched
exact walk (:func:`repro.gpu.analytic.basic_streamk_makespan_batch`), both
cross-validated element-for-element against their scalar twins.  Every
(N, G) transient is processed in fixed-size row chunks, so peak memory is
bounded regardless of corpus size.

Systems evaluated (the paper's four comparison columns):

* ``streamk``   — the shipped one-kernel Stream-K library;
* ``singleton`` — the data-parallel CUTLASS kernel of the same blocking;
* ``cublas``    — the heuristic-selected DP/fixed-split ensemble;
* ``oracle``    — best data-parallel blocking per problem, by measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ensembles.cublas import cublas_variants
from ..ensembles.cutlass import ORACLE_BLOCKINGS
from ..gemm.dtypes import DtypeConfig
from ..gemm.tiling import Blocking
from ..gpu.analytic import fixed_split_makespan_batch
from ..gpu.costmodel import KernelCostModel
from ..gpu.spec import GpuSpec
from ..model.cost import StreamKModelParams
from ..model.paramcache import calibrate_cached
from ..obs.profiler import span
from ..plan.core import (
    _ceil_div,
    _split_shapes,
    plan_batch,
    roofline_time as _roofline_time,
    traffic_bytes as _traffic_bytes,
)

__all__ = ["SystemTimings", "evaluate_corpus", "streamk_times", "dp_times", "fixed_split_times"]


def _cached_params(
    gpu: GpuSpec, blocking: Blocking, dtype: DtypeConfig
) -> StreamKModelParams:
    """Calibrated constants via the persistent two-level cache."""
    return calibrate_cached(gpu, blocking, dtype)


# --------------------------------------------------------------------- #
# Variant families                                                      #
# --------------------------------------------------------------------- #


def dp_times(
    shapes: np.ndarray, blocking: Blocking, dtype: DtypeConfig, gpu: GpuSpec
) -> np.ndarray:
    """Data-parallel kernel times (exact makespans)."""
    m, n, k = _split_shapes(shapes)
    cost = KernelCostModel(gpu=gpu, blocking=blocking, dtype=dtype)
    tiles_m = _ceil_div(m, blocking.blk_m)
    tiles_n = _ceil_div(n, blocking.blk_n)
    t = tiles_m * tiles_n
    ipt = _ceil_div(k, blocking.blk_k)
    cta = cost.prologue_cycles + cost.cycles_per_iter * ipt + cost.store_tile_cycles
    makespan = _ceil_div(t, gpu.num_sms) * cta
    traffic = _traffic_bytes(
        m, n, k, tiles_m, tiles_n, t,
        np.ones_like(t, dtype=np.float64), np.zeros_like(t),
        blocking, dtype, gpu,
    )
    return _roofline_time(makespan, traffic, t, gpu)


def fixed_split_times(
    shapes: np.ndarray,
    blocking: Blocking,
    s: int,
    dtype: DtypeConfig,
    gpu: GpuSpec,
) -> np.ndarray:
    """Fixed-split kernel times (bounded approximation; see gpu.analytic)."""
    if s < 2:
        return dp_times(shapes, blocking, dtype, gpu)
    m, n, k = _split_shapes(shapes)
    cost = KernelCostModel(gpu=gpu, blocking=blocking, dtype=dtype)
    p = gpu.num_sms
    tiles_m = _ceil_div(m, blocking.blk_m)
    tiles_n = _ceil_div(n, blocking.blk_n)
    t = tiles_m * tiles_n
    ipt = _ceil_div(k, blocking.blk_k)
    s_eff = np.minimum(s, ipt)
    makespan = fixed_split_makespan_batch(t, s, p, ipt, cost)
    stores = t * (s_eff - 1)
    traffic = _traffic_bytes(
        m, n, k, tiles_m, tiles_n, t * s_eff,
        (s_eff == 1).astype(np.float64), stores,
        blocking, dtype, gpu,
    )
    return _roofline_time(makespan, traffic, t * s_eff, gpu)


# --------------------------------------------------------------------- #
# Stream-K                                                              #
# --------------------------------------------------------------------- #


def streamk_times(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    params: "StreamKModelParams | None" = None,
) -> np.ndarray:
    """Shipped Stream-K library times across a shape corpus.

    Thin wrapper over the planning layer: the regime decisions, grid
    sizes, makespans, and roofline composition are all computed by
    :func:`repro.plan.core.plan_batch` — the same call the serving
    daemon micro-batches — and this returns its ``time_s`` column.
    """
    return plan_batch(shapes, dtype, gpu, params=params).time_s


# --------------------------------------------------------------------- #
# Full-corpus evaluation                                                 #
# --------------------------------------------------------------------- #


@dataclass
class SystemTimings:
    """Per-problem kernel times (seconds) for every compared system."""

    shapes: np.ndarray
    dtype_name: str
    gpu_name: str
    streamk: np.ndarray
    singleton: np.ndarray
    cublas: np.ndarray
    oracle: np.ndarray
    #: Index into the cuBLAS variant list chosen per problem, or ``None``
    #: when the evaluation did not record selections (e.g. partial loads).
    cublas_choice: "np.ndarray | None" = None
    #: Names of the cuBLAS ensemble variants, aligned with cublas_choice.
    cublas_variant_names: "list[str]" = field(default_factory=list)

    def __len__(self) -> int:
        return int(self.shapes.shape[0])

    def chosen_variant_names(self) -> "list[str] | None":
        """Per-problem cuBLAS variant names, or ``None`` if unrecorded."""
        if self.cublas_choice is None or not self.cublas_variant_names:
            return None
        return [self.cublas_variant_names[int(i)] for i in self.cublas_choice]


def evaluate_corpus(
    shapes: np.ndarray, dtype: DtypeConfig, gpu: GpuSpec
) -> SystemTimings:
    """Evaluate all four systems over a shape corpus.

    cuBLAS evaluation mirrors reality: the proxy heuristic *selects* a
    variant per problem, then the selected kernel's simulated time is what
    gets reported — selection mistakes show up as measured slowness.
    """
    shapes = np.asarray(shapes, dtype=np.int64)
    m, n, k = _split_shapes(shapes)
    p = gpu.num_sms

    with span("evaluate_corpus"):
        with span("streamk"):
            streamk = streamk_times(shapes, dtype, gpu)
        with span("singleton"):
            singleton = dp_times(
                shapes, Blocking(*dtype.default_blocking), dtype, gpu
            )

        # Oracle: best *measured* data-parallel blocking.
        with span("oracle"):
            dp_matrix = np.stack(
                [
                    dp_times(shapes, Blocking(*b), dtype, gpu)
                    for b in ORACLE_BLOCKINGS[dtype.name]
                ],
                axis=1,
            )
            oracle = dp_matrix.min(axis=1)

        # cuBLAS-like: proxy-score selection over the DP+split ensemble.
        with span("cublas_ensemble"):
            variants = cublas_variants(dtype)
            times_matrix = np.empty(
                (len(shapes), len(variants)), dtype=np.float64
            )
            scores = np.empty_like(times_matrix)
            for j, v in enumerate(variants):
                if v.family == "data_parallel":
                    col = dp_matrix[:, _oracle_index(dtype, v.blocking)]
                else:
                    col = fixed_split_times(
                        shapes, v.blocking, v.s, dtype, gpu
                    )
                times_matrix[:, j] = col
                scores[:, j] = _proxy_scores(
                    m, n, k, v.blocking, v.s, p, dtype
                )
            choice = scores.argmin(axis=1)
            cublas = times_matrix[np.arange(len(shapes)), choice]

    return SystemTimings(
        shapes=shapes,
        dtype_name=dtype.name,
        gpu_name=gpu.name,
        streamk=streamk,
        singleton=singleton,
        cublas=cublas,
        oracle=oracle,
        cublas_choice=choice,
        cublas_variant_names=[v.name for v in variants],
    )


def _oracle_index(dtype: DtypeConfig, blocking: Blocking) -> int:
    blockings = ORACLE_BLOCKINGS[dtype.name]
    return blockings.index(blocking.as_tuple)


def _proxy_scores(
    m: np.ndarray,
    n: np.ndarray,
    k: np.ndarray,
    blocking: Blocking,
    s: int,
    p: int,
    dtype: DtypeConfig,
) -> np.ndarray:
    """Vectorized twin of :func:`repro.ensembles.heuristics.proxy_score`."""
    from ..ensembles.heuristics import _CTA_MAC_EQUIV, _FIXUP_MAC_EQUIV

    tiles = _ceil_div(m, blocking.blk_m) * _ceil_div(n, blocking.blk_n)
    ipt = _ceil_div(k, blocking.blk_k)
    s_eff = np.minimum(s, ipt)
    waves = _ceil_div(tiles * s_eff, p)
    share = _ceil_div(ipt, s_eff)
    default_macs = (
        dtype.default_blocking[0]
        * dtype.default_blocking[1]
        * dtype.default_blocking[2]
    )
    eff = min(1.0, (blocking.tile_macs / default_macs) ** 0.5)
    compute = waves.astype(np.float64) * share * blocking.tile_macs / eff
    fixup = (
        tiles.astype(np.float64)
        * (s_eff - 1)
        * blocking.blk_m
        * blocking.blk_n
        * _FIXUP_MAC_EQUIV
    )
    overhead = tiles.astype(np.float64) * s_eff * _CTA_MAC_EQUIV
    return compute + fixup + overhead
