"""One entry point per paper table/figure (the E-* index in DESIGN.md).

Every function regenerates the data behind one evaluation artifact and
returns it as plain dicts/arrays; the ``benchmarks/`` directory wraps each
in a pytest-benchmark target that also prints the paper-shaped rows.
EXPERIMENTS.md records paper-vs-measured for each.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..corpus.filters import compute_bound_mask, ops_per_byte
from ..corpus.generator import PAPER_CORPUS, CorpusSpec, generate_corpus
from ..gemm.dtypes import FP16_FP32, FP64, DtypeConfig
from ..gemm.problem import GemmProblem
from ..gemm.tiling import Blocking, TileGrid
from ..gpu.spec import HYPOTHETICAL_4SM, GpuSpec, default_gpu
from ..metrics.roofline import band_width, roofline_points, roofline_summary
from ..metrics.stats import RelativePerformance, relative_performance, slowdown_fraction
from ..model.calibrate import calibrate
from ..model.gridsize import sweep_grid_sizes
from ..obs.profiler import span
from ..schedules.data_parallel import data_parallel_schedule
from ..schedules.fixed_split import fixed_split_schedule
from ..schedules.hybrid import dp_one_tile_schedule, two_tile_schedule
from ..schedules.stream_k import stream_k_schedule
from .parallel import evaluate_corpus_cached
from .runner import run_schedule
from .vectorized import SystemTimings, evaluate_corpus  # noqa: F401 (re-export)

__all__ = [
    "fig1_data_parallel_quantization",
    "fig2_tile_splitting",
    "fig3_hybrid_schedules",
    "fig4_corpus_statistics",
    "roofline_landscapes",
    "fig7_speedup_vs_cublas",
    "relative_performance_table",
    "fig8_analytical_model",
    "fig9_strong_scaling",
    "corpus_timings",
]

# The illustrative figures use the paper's 4-SM GPU and BLK_K = 4 so the
# iteration counts match the text (72 MAC-loop iterations per CTA in
# Figure 2b).
_ILLUSTRATION_BLOCKING = Blocking(128, 128, 4)
_ILLUSTRATION_BLOCKING_HALF = Blocking(128, 64, 4)

def corpus_timings(
    dtype: DtypeConfig,
    gpu: "GpuSpec | None" = None,
    spec: CorpusSpec = PAPER_CORPUS,
) -> "tuple[np.ndarray, SystemTimings]":
    """(shapes, per-system times) for a corpus.

    ``gpu=None`` resolves to the registry default
    (:func:`repro.gpu.spec.default_gpu`, the paper's A100 testbed); pass
    any registered preset or a custom
    :meth:`~repro.gpu.spec.GpuSpec.from_json` device to sweep other
    hardware.

    Served through the content-keyed evaluation memo
    (:func:`repro.harness.parallel.evaluate_corpus_cached`), so Table 1,
    Figure 6, and Figure 7 share a single FP64 corpus evaluation — and any
    other identical corpus query is free.  Set ``REPRO_JOBS`` to shard the
    first (cold) evaluation across worker processes, and
    ``REPRO_EVAL_CACHE_DIR`` to persist evaluations across processes.
    """
    gpu = gpu if gpu is not None else default_gpu()
    with span("generate_corpus"):
        shapes = generate_corpus(spec)
    jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    res = evaluate_corpus_cached(shapes, dtype, gpu, jobs=jobs)
    return res.shapes, res


# --------------------------------------------------------------------- #
# Figures 1-3, 9: illustrative schedules on the 4-SM GPU                 #
# --------------------------------------------------------------------- #


def fig1_data_parallel_quantization() -> "dict":
    """Figure 1: DP schedules of 384x384x128 on 4 SMs.

    (a) 128x128 tiles: 9 tiles, 3 waves, 75% utilization ceiling;
    (b) 128x64 tiles: 18 tiles, 5 waves, 90% ceiling.
    """
    gpu = HYPOTHETICAL_4SM
    problem = GemmProblem(384, 384, 128, dtype=FP16_FP32)
    out = {}
    for label, blocking in (
        ("a_128x128", _ILLUSTRATION_BLOCKING),
        ("b_128x64", _ILLUSTRATION_BLOCKING_HALF),
    ):
        grid = TileGrid(problem, blocking)
        run = run_schedule(
            data_parallel_schedule(grid), gpu, execute_numeric=True
        )
        out[label] = {
            "tiles": grid.num_tiles,
            "waves": -(-grid.num_tiles // gpu.num_sms),
            "quantization_efficiency": run.quantization_efficiency,
            "utilization": run.result.trace.utilization(),
            "time_s": run.time_s,
            "max_rel_error": run.max_rel_error,
        }
    return out


def fig2_tile_splitting() -> "dict":
    """Figure 2: fixed-split s=2 (90%) vs basic Stream-K g=4 (~100%) on
    the same 384x384x128 problem; Stream-K CTAs carry 72 iterations."""
    gpu = HYPOTHETICAL_4SM
    problem = GemmProblem(384, 384, 128, dtype=FP16_FP32)
    grid = TileGrid(problem, _ILLUSTRATION_BLOCKING)
    fs = run_schedule(fixed_split_schedule(grid, 2), gpu)
    sk = run_schedule(stream_k_schedule(grid, 4), gpu)
    sk_sched = stream_k_schedule(grid, 4)
    return {
        "a_fixed_split_s2": {
            "g": fs.g,
            "quantization_efficiency": fs.quantization_efficiency,
            "utilization": fs.result.trace.utilization(),
            "time_s": fs.time_s,
        },
        "b_stream_k_g4": {
            "g": sk.g,
            "iters_per_cta": int(sk_sched.max_iters_per_cta),
            "quantization_efficiency": sk.quantization_efficiency,
            "utilization": sk.result.trace.utilization(),
            "time_s": sk.time_s,
        },
    }


def fig3_hybrid_schedules(memory_model: str = "cache_sim") -> "dict":
    """Figure 3: basic SK vs the two hybrids for 896x384x128 on 4 SMs.

    Reports utilization, wait cycles (the latency-hiding claim), DRAM
    traffic (the cache-skew claim, via the fragment-cache replay), and
    end-to-end time for each schedule.
    """
    gpu = HYPOTHETICAL_4SM
    problem = GemmProblem(896, 384, 128, dtype=FP16_FP32)
    grid = TileGrid(problem, _ILLUSTRATION_BLOCKING)
    out = {}
    for label, sched in (
        ("a_basic_stream_k", stream_k_schedule(grid, gpu.num_sms)),
        ("b_dp_one_tile", dp_one_tile_schedule(grid, gpu.num_sms)),
        ("c_two_tile_dp", two_tile_schedule(grid, gpu.num_sms)),
    ):
        run = run_schedule(sched, gpu, memory_model=memory_model)
        out[label] = {
            "g": run.g,
            "k_aligned_fraction": sched.k_aligned_fraction,
            "utilization": run.result.trace.utilization(),
            "wait_cycles": run.result.trace.total_wait_cycles,
            "dram_bytes": run.result.traffic.total,
            "input_dram_bytes": run.result.traffic.input_a
            + run.result.traffic.input_b,
            "time_s": run.time_s,
        }
    return out


def fig9_strong_scaling() -> "dict":
    """Figure 9: 128x128x384 on 4 SMs — DP serializes the k axis in one
    CTA; Stream-K spreads it across the machine."""
    gpu = HYPOTHETICAL_4SM
    problem = GemmProblem(128, 128, 384, dtype=FP16_FP32)
    grid = TileGrid(problem, _ILLUSTRATION_BLOCKING)
    dp = run_schedule(data_parallel_schedule(grid), gpu)
    sk = run_schedule(stream_k_schedule(grid, gpu.num_sms), gpu)
    return {
        "data_parallel": {
            "g": dp.g,
            "utilization": dp.result.trace.utilization(),
            "time_s": dp.time_s,
        },
        "stream_k": {
            "g": sk.g,
            "utilization": sk.result.trace.utilization(),
            "time_s": sk.time_s,
        },
        "speedup": dp.time_s / sk.time_s,
    }


# --------------------------------------------------------------------- #
# Figure 4: the corpus                                                   #
# --------------------------------------------------------------------- #


def fig4_corpus_statistics(spec: CorpusSpec = PAPER_CORPUS) -> "dict":
    """Figure 4: corpus size, per-axis domain, and volume span."""
    shapes = generate_corpus(spec)
    volume = shapes.astype(np.float64).prod(axis=1)
    return {
        "count": int(shapes.shape[0]),
        "axis_min": int(shapes.min()),
        "axis_max": int(shapes.max()),
        "volume_orders_of_magnitude": float(
            np.log10(volume.max() / volume.min())
        ),
        "volume_min": float(volume.min()),
        "volume_max": float(volume.max()),
    }


# --------------------------------------------------------------------- #
# Figures 5/6: roofline landscapes; Figure 7 + Tables 1/2: comparisons   #
# --------------------------------------------------------------------- #


def roofline_landscapes(
    dtype: DtypeConfig,
    gpu: "GpuSpec | None" = None,
    spec: CorpusSpec = PAPER_CORPUS,
    num_bins: int = 12,
) -> "dict":
    """Figures 5 (FP16->32) and 6 (FP64): per-system utilization bands.

    Returns, per system, the binned percentile envelope and the mean band
    width; the paper's claim is streamk < oracle < cublas <= singleton in
    spread.
    """
    gpu = gpu if gpu is not None else default_gpu()
    shapes, res = corpus_timings(dtype, gpu, spec)
    out = {}
    for system, times in (
        ("data_parallel_singleton", res.singleton),
        ("cublas_like", res.cublas),
        ("cutlass_oracle", res.oracle),
        ("stream_k", res.streamk),
    ):
        intensity, pct = roofline_points(shapes, times, gpu, dtype)
        out[system] = {
            "summary": roofline_summary(intensity, pct, num_bins=num_bins),
            "band_width": band_width(intensity, pct, num_bins=num_bins),
            "median_percent_of_peak": float(np.median(pct)),
        }
    return out


def relative_performance_table(
    dtype: DtypeConfig,
    gpu: "GpuSpec | None" = None,
    spec: CorpusSpec = PAPER_CORPUS,
) -> "dict[str, RelativePerformance]":
    """Tables 1 and 2: Stream-K relative performance columns.

    Columns: vs the same-blocking CUTLASS data-parallel kernel, vs the
    cuBLAS-like ensemble, vs that ensemble restricted to compute-bound
    problems, and vs the idealized data-parallel oracle.
    """
    shapes, res = corpus_timings(dtype, gpu, spec)
    cb = compute_bound_mask(shapes, dtype)
    cols = {
        "vs CUTLASS %dx%dx%d" % dtype.default_blocking: relative_performance(
            res.singleton, res.streamk
        ),
        "vs cuBLAS": relative_performance(res.cublas, res.streamk),
        "vs cuBLAS >%g ops/B" % dtype.compute_bound_ops_per_byte: (
            relative_performance(res.cublas[cb], res.streamk[cb])
        ),
        "vs CUTLASS oracle": relative_performance(res.oracle, res.streamk),
    }
    return cols


def fig7_speedup_vs_cublas(
    dtype: DtypeConfig,
    gpu: "GpuSpec | None" = None,
    spec: CorpusSpec = PAPER_CORPUS,
) -> "dict":
    """Figure 7: Stream-K speedup vs the cuBLAS-like ensemble, overall and
    in the compute-bound regime ("unilaterally higher performance")."""
    shapes, res = corpus_timings(dtype, gpu, spec)
    cb = compute_bound_mask(shapes, dtype)
    speedup = res.cublas / res.streamk
    intensity = ops_per_byte(shapes, dtype)
    return {
        "overall": relative_performance(res.cublas, res.streamk),
        "compute_bound": relative_performance(res.cublas[cb], res.streamk[cb]),
        "compute_bound_count": int(cb.sum()),
        "slowdown_fraction_overall": slowdown_fraction(res.cublas, res.streamk),
        "slowdown_fraction_compute_bound": slowdown_fraction(
            res.cublas[cb], res.streamk[cb], tol=0.02
        ),
        "intensity": intensity,
        "speedup": speedup,
    }


# --------------------------------------------------------------------- #
# Figure 8: the analytical model                                         #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig8Scenario:
    name: str
    problem: GemmProblem
    paper_g_best: int


FIG8_SCENARIOS = (
    Fig8Scenario("a_256x3584x8192", GemmProblem(256, 3584, 8192, dtype=FP16_FP32), 108),
    Fig8Scenario("b_1024x1024x1024", GemmProblem(1024, 1024, 1024, dtype=FP16_FP32), 64),
    Fig8Scenario("c_128x128x16384", GemmProblem(128, 128, 16384, dtype=FP16_FP32), 8),
)


def fig8_analytical_model(gpu: "GpuSpec | None" = None) -> "dict":
    """Figure 8: modeled runtime vs grid size for the three strong-scaling
    scenarios, plus the selected optimum vs the paper's."""
    gpu = gpu if gpu is not None else default_gpu()
    blocking = Blocking(128, 128, 32)
    params = calibrate(gpu, blocking, FP16_FP32)
    out = {"params": {"a": params.a, "b": params.b, "c": params.c, "d": params.d}}
    for sc in FIG8_SCENARIOS:
        grid = TileGrid(sc.problem, blocking)
        candidates, times = sweep_grid_sizes(grid, params, gpu.num_sms)
        best = int(candidates[int(np.argmin(times))])
        out[sc.name] = {
            "tiles": grid.num_tiles,
            "iters_per_tile": grid.iters_per_tile,
            "g_best": best,
            "paper_g_best": sc.paper_g_best,
            "candidates": candidates,
            "predicted_cycles": times,
        }
    return out


# Re-exported for the FP64 variants of the corpus experiments.
TABLE1_DTYPE = FP64
TABLE2_DTYPE = FP16_FP32
