"""Write-ahead shard journal: durable checkpoint/resume for corpus sweeps.

The paper's evaluation is a 32,824-shape corpus sweep per schedule
family and per device; :mod:`repro.harness.crosshw` multiplies that by a
registry of GPU presets.  PR 3's self-healing retries shards *within* a
living pool — but a SIGTERM, OOM-kill, ENOSPC, or machine sleep used to
discard the whole sweep.  This module gives every long-running sweep the
durability a training stack gets from checkpointing: kill the process at
any instant, resume, and the merged
:class:`~repro.harness.vectorized.SystemTimings` is **bitwise identical**
to the uninterrupted run.

Design (see ``docs/CHECKPOINTING.md`` for the full contract):

* **WAL** (``wal.bin``) — an append-only sequence of CRC-framed records:
  ``MAGIC | u32 length | u32 crc32(payload) | payload`` with a compact
  JSON payload.  Appends are single writes followed by ``fsync``; a
  record is committed iff its CRC verifies.  Replay stops at the first
  bad frame and **truncates the torn tail** (a crash mid-append leaves
  at most one torn record), counted in ``journal.torn_tail_truncated``.
* **Shard store** (``shards/shard_NNNNN.npz``) — each completed shard's
  :class:`SystemTimings`, written temp + fsync + atomic rename *before*
  the ``shard_done`` record is appended.  The record carries a SHA-256
  **result digest**; on replay every claimed completion is re-read and
  digest-verified, and a mismatch re-runs the shard
  (``journal.digest_mismatch``).
* **Checkpoint** (``checkpoint.json``) — compaction target.  When a
  sweep completes (or :meth:`ShardJournal.compact` is called), the done
  map is written atomically to the checkpoint and the WAL is reset to
  its header, so replay cost is O(open shards), not O(history).
* **Binding** — the WAL header and checkpoint carry the sweep's corpus
  key (:func:`repro.harness.parallel.corpus_fingerprint`: corpus bytes +
  dtype + GPU fingerprint + engine version) and the shard layout.  A
  journal written for a *different* corpus/device/engine is ignored with
  ``journal.fingerprint_mismatch`` and overwritten, never trusted.
* **Degradation** — ``ENOSPC``/``EROFS``/any ``OSError`` during journal
  or shard-store writes flips the journal into a no-op (**journal-less
  in-memory evaluation**) with a loud ``harness.journal.degraded``
  counter, instead of crashing the sweep.

Records (``kind`` field):

=================  ====================================================
``sweep_header``   journal format version, corpus key, shard bounds,
                   dtype and GPU names, creation time
``shard_started``  shard index + shard content fingerprint (forensics)
``shard_done``     shard index, content fingerprint, **result digest**
``shard_abandoned``  shard index + reason (watchdog deadline, etc.);
                   resume re-runs it
``shard_claimed``  shard index + claiming worker identity (lease
                   fabric, :mod:`repro.harness.fabric`); liveness-only
``shard_heartbeat``  shard index, worker identity, renewal sequence
                   number (forensics; replay ignores it)
``shard_reclaimed``  shard index + reclaiming worker: a prior claim's
                   lease expired and the shard is claimable again
=================  ====================================================

Lease records are **liveness metadata, never safety-critical**: replay
derives completion exclusively from digest-carrying ``shard_done``
records, so duplicate claims (``journal.duplicate_claim``), reclaims
without a visible prior claim (``journal.orphan_reclaim``), and lost
heartbeats can never corrupt a merged result.

**Shared mode** (:meth:`ShardJournal.open_shared`) relaxes exactly two
single-process assumptions so multiple worker processes can append to
one WAL: appends go through ``O_APPEND`` (atomic for these small
single-``write`` frames on POSIX filesystems), and replay **never
truncates** a torn tail — with a live concurrent writer, an apparently
torn frame may simply be another worker's append in flight.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import threading
import time
import zlib

import numpy as np

from ..obs.counters import inc_counter
from ..obs.profiler import span
from .vectorized import SystemTimings

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "RESUMABLE_EXIT_STATUS",
    "ShardJournal",
    "default_journal_dir",
    "read_wal_records",
    "read_timings_npz",
    "timings_digest",
    "write_timings_npz",
]

#: Bump whenever the on-disk record framing or payload schema changes;
#: journals from other format versions are ignored, never misparsed.
JOURNAL_FORMAT_VERSION = 1

#: Process exit status for a sweep that drained on SIGINT/SIGTERM with
#: its progress journaled — distinct from success (0) and failure (1),
#: modeled on BSD's ``EX_TEMPFAIL``: re-run with ``--resume``.
RESUMABLE_EXIT_STATUS = 75

_ENV_JOURNAL_DIR = "REPRO_JOURNAL_DIR"

_MAGIC = b"RKJ1"
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
_HEADER_LEN = len(_MAGIC) + _FRAME.size
#: Sanity bound on a single record; anything larger is a torn/corrupt
#: length field, not a legitimate payload.
_MAX_RECORD_BYTES = 1 << 20

_WAL_NAME = "wal.bin"
_CHECKPOINT_NAME = "checkpoint.json"
_SHARDS_SUBDIR = "shards"
_INIT_LOCK_NAME = ".init.lock"
#: How long a shared-mode joiner waits for another process to finish
#: initializing the journal before it steals the init lock (the
#: initializer died between taking the lock and writing the header).
_INIT_TIMEOUT_S = 20.0
_INIT_POLL_S = 0.02


def default_journal_dir() -> "str | None":
    """``$REPRO_JOURNAL_DIR`` or ``None`` (journaling is opt-in)."""
    return os.environ.get(_ENV_JOURNAL_DIR) or None


# --------------------------------------------------------------------- #
# Result digests + the shard npz codec                                   #
# --------------------------------------------------------------------- #


def timings_digest(res: SystemTimings) -> str:
    """SHA-256 over every byte of a :class:`SystemTimings`.

    Two results digest equal iff they are bitwise identical — the
    verification key recorded in ``shard_done`` and re-checked on
    replay, so a corrupted or stale shard artifact is re-run rather
    than silently merged.
    """
    h = hashlib.sha256()
    h.update(res.dtype_name.encode("utf-8") + b"\x00")
    h.update(res.gpu_name.encode("utf-8") + b"\x00")
    for name in res.cublas_variant_names:
        h.update(name.encode("utf-8") + b"\x00")
    for arr in (res.shapes, res.streamk, res.singleton, res.cublas, res.oracle):
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode("utf-8") + b"\x00")
        h.update(a.tobytes())
    if res.cublas_choice is not None:
        h.update(b"choice\x00")
        h.update(np.ascontiguousarray(res.cublas_choice).tobytes())
    return h.hexdigest()


def write_timings_npz(path: str, res: SystemTimings) -> None:
    """Durably persist one :class:`SystemTimings` (temp + fsync + rename).

    Raises :class:`OSError` on filesystem failure (``ENOSPC``, ``EROFS``,
    ...) — callers decide whether that degrades or propagates.
    """
    parent = os.path.dirname(path) or "."
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=parent, prefix=".shard_", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(
                fh,
                shapes=res.shapes,
                dtype_name=np.str_(res.dtype_name),
                gpu_name=np.str_(res.gpu_name),
                streamk=res.streamk,
                singleton=res.singleton,
                cublas=res.cublas,
                oracle=res.oracle,
                cublas_choice=res.cublas_choice
                if res.cublas_choice is not None
                else np.empty(0, dtype=np.int64),
                variant_names=np.asarray(res.cublas_variant_names),
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)  # atomic publish
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_timings_npz(path: str) -> "SystemTimings | None":
    """Load a persisted :class:`SystemTimings`, ``None`` if missing/unreadable."""
    if not os.path.exists(path):
        return None
    try:
        with np.load(path, allow_pickle=False) as doc:
            shapes = doc["shapes"]
            choice = doc["cublas_choice"]
            if choice.shape[0] != shapes.shape[0]:
                choice = None
            return SystemTimings(
                shapes=shapes,
                dtype_name=str(doc["dtype_name"]),
                gpu_name=str(doc["gpu_name"]),
                streamk=doc["streamk"],
                singleton=doc["singleton"],
                cublas=doc["cublas"],
                oracle=doc["oracle"],
                cublas_choice=choice,
                cublas_variant_names=[str(v) for v in doc["variant_names"]],
            )
    except Exception:
        return None  # treated as a digest mismatch by the caller


# --------------------------------------------------------------------- #
# WAL framing                                                            #
# --------------------------------------------------------------------- #


def _frame_record(obj: dict) -> bytes:
    payload = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    return _MAGIC + _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def read_wal_records(path: str) -> "tuple[list[dict], int, bool]":
    """Replay a WAL file: ``(records, good_bytes, torn_tail)``.

    Reads frames until EOF or the first bad frame (short header, wrong
    magic, impossible length, CRC mismatch, unparsable payload).
    ``good_bytes`` is the offset of the last fully-committed record —
    truncating the file there removes the torn tail without touching any
    committed record.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        return [], 0, False
    records: "list[dict]" = []
    off, n = 0, len(data)
    while off < n:
        if n - off < _HEADER_LEN or data[off : off + len(_MAGIC)] != _MAGIC:
            return records, off, True
        length, crc = _FRAME.unpack_from(data, off + len(_MAGIC))
        if length > _MAX_RECORD_BYTES or n - off - _HEADER_LEN < length:
            return records, off, True
        payload = data[off + _HEADER_LEN : off + _HEADER_LEN + length]
        if zlib.crc32(payload) != crc:
            return records, off, True
        try:
            obj = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return records, off, True
        if not isinstance(obj, dict):
            return records, off, True
        records.append(obj)
        off += _HEADER_LEN + length
    return records, off, False


# --------------------------------------------------------------------- #
# The journal                                                            #
# --------------------------------------------------------------------- #


class ShardJournal:
    """One sweep's durable shard ledger (WAL + shard store + checkpoint).

    Construct via :meth:`open`.  After opening, ``self.bounds`` is the
    authoritative shard layout (adopted from a resumed journal's header
    so resume never depends on the caller re-deriving identical shard
    sizes) and ``self.completed`` maps shard index -> result digest for
    every durably-committed shard.
    """

    def __init__(self, directory: str, corpus_key: str):
        self.directory = directory
        self.corpus_key = corpus_key
        self.bounds: "list[tuple[int, int]]" = []
        self.completed: "dict[int, str]" = {}
        #: shard index -> worker identity for the last unreclaimed
        #: ``shard_claimed`` seen during replay (forensics only; claim
        #: *liveness* is carried by lease files, not the WAL).
        self.claims: "dict[int, str]" = {}
        self.degraded = False
        self.shared = False
        self._fh = None
        # The lease fabric's heartbeat thread and the worker thread
        # append through the same handle.
        self._append_lock = threading.Lock()

    # -- paths --------------------------------------------------------- #

    @property
    def wal_path(self) -> str:
        return os.path.join(self.directory, _WAL_NAME)

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.directory, _CHECKPOINT_NAME)

    def shard_path(self, shard: int) -> str:
        return os.path.join(
            self.directory, _SHARDS_SUBDIR, "shard_%05d.npz" % shard
        )

    # -- lifecycle ----------------------------------------------------- #

    @classmethod
    def open(
        cls,
        directory: str,
        corpus_key: str,
        bounds: "list[tuple[int, int]]",
        resume: bool = False,
        dtype_name: str = "",
        gpu_name: str = "",
    ) -> "ShardJournal":
        """Open (and on ``resume=True`` replay) a journal directory.

        A journal whose header/checkpoint was written for a different
        corpus key is **ignored** (``journal.fingerprint_mismatch``) and
        re-initialized; without ``resume`` any existing journal is
        re-initialized unconditionally.  Filesystem failure at open time
        yields a *degraded* journal: every operation is a no-op and the
        sweep proceeds journal-less (``harness.journal.degraded``).
        """
        self = cls(directory, corpus_key)
        self.bounds = [(int(lo), int(hi)) for lo, hi in bounds]
        try:
            os.makedirs(
                os.path.join(directory, _SHARDS_SUBDIR), exist_ok=True
            )
        except OSError:
            self._degrade()
            return self
        matched = False
        if resume:
            with span("journal_replay"):
                matched = self._replay()
        try:
            if matched:
                self._fh = open(self.wal_path, "ab")
            else:
                self._initialize_fresh(dtype_name, gpu_name)
        except OSError:
            self._degrade()
        return self

    @classmethod
    def open_shared(
        cls,
        directory: str,
        corpus_key: str,
        bounds: "list[tuple[int, int]]",
        dtype_name: str = "",
        gpu_name: str = "",
        init_timeout_s: float = _INIT_TIMEOUT_S,
    ) -> "ShardJournal":
        """Open a journal that multiple worker processes append to.

        The first worker to arrive initializes the journal (guarded by
        an ``O_EXCL`` init-lock file so two concurrent fresh joiners
        cannot both truncate the WAL); every later worker *attaches*,
        adopting the existing header's shard bounds and absorbing
        already-committed shards.  A matching journal is always resumed
        — shared sweeps are cooperative by definition.  If the lock
        holder dies before writing the header, joiners steal the lock
        after ``init_timeout_s`` (``journal.init_lock_stolen``).

        Shared journals append via ``O_APPEND`` and never truncate torn
        tails (see the module docstring).  Filesystem failure degrades
        to a no-op journal exactly like :meth:`open`.
        """
        self = cls(directory, corpus_key)
        self.shared = True
        self.bounds = [(int(lo), int(hi)) for lo, hi in bounds]
        try:
            os.makedirs(
                os.path.join(directory, _SHARDS_SUBDIR), exist_ok=True
            )
        except OSError:
            self._degrade()
            return self
        lock_path = os.path.join(directory, _INIT_LOCK_NAME)
        deadline = time.monotonic() + init_timeout_s
        while True:
            with span("journal_replay"):
                matched = self._replay()
            if matched:
                try:
                    self._fh = open(self.wal_path, "ab")
                except OSError:
                    self._degrade()
                return self
            try:
                fd = os.open(
                    lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                # Another process is initializing: wait for its header.
                if time.monotonic() > deadline:
                    inc_counter("journal.init_lock_stolen")
                    try:
                        os.unlink(lock_path)
                    except OSError:
                        pass
                    deadline = time.monotonic() + init_timeout_s
                else:
                    time.sleep(_INIT_POLL_S)
                continue
            except OSError:
                self._degrade()
                return self
            try:
                os.close(fd)
                # Re-check under the lock: the initializer may have
                # finished between our replay and the lock grab.
                if self._replay():
                    self._fh = open(self.wal_path, "ab")
                else:
                    self._initialize_fresh(dtype_name, gpu_name)
                    if not self.degraded:
                        # A "wb" handle's position would not track the
                        # other workers' O_APPEND writes: reopen so
                        # every append lands at the true end of file.
                        self.close()
                        self._fh = open(self.wal_path, "ab")
            except OSError:
                self._degrade()
            finally:
                try:
                    os.unlink(lock_path)
                except OSError:
                    pass
            return self

    def _initialize_fresh(self, dtype_name: str, gpu_name: str) -> None:
        """Reset the directory to a new sweep: header-only WAL, no state."""
        self.completed = {}
        try:
            os.unlink(self.checkpoint_path)
        except OSError:
            pass
        self._fh = open(self.wal_path, "wb")
        self._append(
            {
                "kind": "sweep_header",
                "v": JOURNAL_FORMAT_VERSION,
                "corpus": self.corpus_key,
                "bounds": [[lo, hi] for lo, hi in self.bounds],
                "dtype": dtype_name,
                "gpu": gpu_name,
                "t": time.time(),
            }
        )

    def _replay(self) -> bool:
        """Load checkpoint + WAL; returns True iff the journal matches.

        On a match, adopts the journal's shard bounds (counted in
        ``journal.bounds_adopted`` when they differ from what the
        caller requested, so resumed multi-worker runs are observable)
        and fills ``self.completed``; counts replayed records,
        torn-tail truncations, duplicate completions/claims, orphan
        reclaims, and fingerprint mismatches.

        In shared mode the torn tail is **not** truncated: what looks
        torn may be a live concurrent writer's append in flight, and
        truncating would destroy its committed record.
        """
        requested = list(self.bounds)
        completed: "dict[int, str]" = {}
        claims: "dict[int, str]" = {}
        adopted: "list[tuple[int, int]] | None" = None
        ck = self._load_checkpoint()
        if ck is not None:
            adopted = ck["bounds"]
            completed.update(ck["done"])
        records, good, torn = read_wal_records(self.wal_path)
        if torn and not self.shared:
            inc_counter("journal.torn_tail_truncated")
            try:
                with open(self.wal_path, "rb+") as fh:
                    fh.truncate(good)
                    fh.flush()
                    os.fsync(fh.fileno())
            except OSError:
                pass  # unwritable tail: replay already ignores it
        header = records[0] if records else None
        if header is not None and header.get("kind") == "sweep_header":
            if (
                header.get("corpus") != self.corpus_key
                or header.get("v") != JOURNAL_FORMAT_VERSION
            ):
                inc_counter("journal.fingerprint_mismatch")
                return False
            adopted = [
                (int(lo), int(hi)) for lo, hi in header.get("bounds", [])
            ]
            for rec in records[1:]:
                kind = rec.get("kind")
                shard = int(rec.get("shard", -1))
                if kind == "shard_done":
                    if shard in completed:
                        inc_counter("journal.duplicate_done")
                    completed[shard] = str(rec.get("digest", ""))
                elif kind == "shard_claimed":
                    # Deterministic resolution: the first journaled
                    # claim wins; later duplicates are counted and
                    # ignored (safety never depends on this map).
                    if shard in claims:
                        inc_counter("journal.duplicate_claim")
                    else:
                        claims[shard] = str(rec.get("worker", ""))
                elif kind == "shard_reclaimed":
                    if shard not in claims:
                        inc_counter("journal.orphan_reclaim")
                    else:
                        claims.pop(shard, None)
            inc_counter("journal.replayed", len(records))
        elif header is not None:
            # First record is not a header: not our journal.
            inc_counter("journal.fingerprint_mismatch")
            return False
        elif ck is None:
            return False  # empty/absent WAL and no checkpoint: fresh sweep
        if not adopted:
            return False
        if requested and adopted != requested:
            inc_counter("journal.bounds_adopted")
        self.bounds = adopted
        nshards = len(self.bounds)
        self.completed = {
            s: d for s, d in completed.items() if 0 <= s < nshards and d
        }
        self.claims = {
            s: w for s, w in claims.items()
            if 0 <= s < nshards and s not in self.completed
        }
        return True

    def _load_checkpoint(self) -> "dict | None":
        try:
            with open(self.checkpoint_path) as fh:
                doc = json.load(fh)
            if (
                doc["version"] != JOURNAL_FORMAT_VERSION
                or doc["corpus"] != self.corpus_key
            ):
                if doc.get("corpus") != self.corpus_key:
                    inc_counter("journal.fingerprint_mismatch")
                return None
            return {
                "bounds": [(int(lo), int(hi)) for lo, hi in doc["bounds"]],
                "done": {
                    int(k): str(v) for k, v in doc["done"].items()
                },
            }
        except OSError:
            return None  # plain absence
        except (ValueError, KeyError, TypeError):
            inc_counter("journal.checkpoint_corrupt")
            return None

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def _degrade(self) -> None:
        """Flip into no-op mode: the sweep continues journal-less."""
        if not self.degraded:
            self.degraded = True
            inc_counter("harness.journal.degraded")
        self.close()

    # -- appends ------------------------------------------------------- #

    def _append(self, obj: dict) -> None:
        """fsync'd atomic-enough append: torn writes are CRC-detected.

        Serialized under a lock: the lease fabric's heartbeat thread
        appends concurrently with the worker thread, and interleaved
        buffered writes would tear both frames.  Cross-*process*
        atomicity in shared mode comes from ``O_APPEND`` plus each
        frame being a single ``write`` call.
        """
        if self.degraded or self._fh is None:
            return
        with self._append_lock:
            if self.degraded or self._fh is None:
                return
            try:
                self._fh.write(_frame_record(obj))
                self._fh.flush()
                os.fsync(self._fh.fileno())
            except OSError:
                self._degrade()

    def record_started(self, shard: int, fingerprint: str = "") -> None:
        self._append(
            {"kind": "shard_started", "shard": int(shard), "fp": fingerprint}
        )

    def record_done(
        self, shard: int, res: SystemTimings, fingerprint: str = ""
    ) -> "str | None":
        """Transactionally commit one shard: store the npz, then the record.

        The result artifact is durably published *before* the
        ``shard_done`` record is appended, so a committed record always
        points at a complete artifact (crash between the two leaves an
        orphan npz that replay simply re-verifies).  Returns the digest,
        or ``None`` when the journal is (or just became) degraded.
        """
        if self.degraded:
            return None
        digest = timings_digest(res)
        try:
            write_timings_npz(self.shard_path(shard), res)
        except OSError:
            self._degrade()
            return None
        self._append(
            {
                "kind": "shard_done",
                "shard": int(shard),
                "fp": fingerprint,
                "digest": digest,
            }
        )
        if self.degraded:
            return None
        self.completed[int(shard)] = digest
        return digest

    def record_abandoned(self, shard: int, reason: str) -> None:
        """Mark a hung/timed-out shard; resume will re-run it."""
        inc_counter("journal.abandoned_shards")
        self._append(
            {"kind": "shard_abandoned", "shard": int(shard), "reason": reason}
        )

    def record_claimed(self, shard: int, worker: str) -> None:
        """Journal a lease claim (forensics; liveness lives in the lease
        file, see :class:`repro.harness.fabric.LeaseManager`)."""
        self._append(
            {"kind": "shard_claimed", "shard": int(shard), "worker": worker}
        )

    def record_heartbeat(self, shard: int, worker: str, seq: int) -> None:
        """Journal a heartbeat renewal (forensics; replay ignores it)."""
        self._append(
            {
                "kind": "shard_heartbeat",
                "shard": int(shard),
                "worker": worker,
                "seq": int(seq),
            }
        )

    def record_reclaimed(self, shard: int, worker: str) -> None:
        """Journal that ``worker`` reclaimed an expired lease on ``shard``."""
        self._append(
            {"kind": "shard_reclaimed", "shard": int(shard), "worker": worker}
        )

    # -- replayed-state access ----------------------------------------- #

    def refresh_completed(self) -> "dict[int, str]":
        """Re-read the WAL to absorb *other* workers' durable commits.

        Shared-mode workers call this between claims so they never
        re-evaluate a shard a peer already committed.  Read-only (no
        truncation, no state reset beyond merging in new completions);
        returns a snapshot of the completion map.  Read failure is
        treated as "nothing new" — the degradation ladder, not an abort.
        """
        if self.degraded:
            return dict(self.completed)
        records, _, _ = read_wal_records(self.wal_path)
        nshards = len(self.bounds)
        for rec in records:
            if rec.get("kind") != "shard_done":
                continue
            shard = int(rec.get("shard", -1))
            digest = str(rec.get("digest", ""))
            if 0 <= shard < nshards and digest:
                self.completed[shard] = digest
        return dict(self.completed)

    def load_completed(self, shard: int) -> "SystemTimings | None":
        """Digest-verified load of a replayed completion.

        Returns ``None`` (and forgets the completion, counting
        ``journal.digest_mismatch``) when the artifact is missing,
        unreadable, or does not hash to the journaled digest — the shard
        is then re-run, preserving bitwise-exact resume semantics.
        """
        digest = self.completed.get(int(shard))
        if not digest:
            return None
        res = read_timings_npz(self.shard_path(shard))
        if res is None or timings_digest(res) != digest:
            inc_counter("journal.digest_mismatch")
            self.completed.pop(int(shard), None)
            return None
        return res

    # -- compaction ---------------------------------------------------- #

    def compact(self) -> None:
        """Checkpoint the done map and reset the WAL to its header.

        After compaction, replay cost is O(open shards): the checkpoint
        is one JSON document and the WAL holds a single header record.
        Best-effort — filesystem failure degrades instead of raising.
        """
        if self.degraded:
            return
        doc = {
            "version": JOURNAL_FORMAT_VERSION,
            "corpus": self.corpus_key,
            "bounds": [[lo, hi] for lo, hi in self.bounds],
            "done": {str(s): d for s, d in sorted(self.completed.items())},
        }
        try:
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=".ckpt_", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(doc, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.checkpoint_path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            # The checkpoint now carries every completion: rewrite the
            # WAL as header-only so replay never re-reads history.
            self.close()
            self._fh = open(self.wal_path, "wb")
            self._append(
                {
                    "kind": "sweep_header",
                    "v": JOURNAL_FORMAT_VERSION,
                    "corpus": self.corpus_key,
                    "bounds": [[lo, hi] for lo, hi in self.bounds],
                    "t": time.time(),
                }
            )
            inc_counter("journal.compacted")
        except OSError:
            self._degrade()
