"""Sharded + memoized corpus evaluation.

:func:`repro.harness.vectorized.evaluate_corpus` is embarrassingly
parallel over problems — every output element depends only on its own
(m, n, k) row — so a corpus can be split into contiguous shards, each
evaluated in a worker process, and the per-system arrays concatenated
back in order.  Sharding is **exact**: the merged
:class:`~repro.harness.vectorized.SystemTimings` is bitwise identical to
the single-process result for any shard size (asserted in the tests).

On top of sharding sits a **content-keyed memo**: evaluations are keyed
by SHA-256 of the shape array bytes plus the dtype name, the GPU
fingerprint (:func:`repro.model.paramcache.gpu_fingerprint`), and the
engine version — so Table 1, Figure 6, and Figure 7 share one FP64 corpus
evaluation instead of recomputing three, and *any* identical corpus
re-query is free.  The memo is in-process by default; point
``REPRO_EVAL_CACHE_DIR`` (or the ``cache_dir`` argument) at a directory
to persist evaluations across processes as ``.npz`` artifacts
(write-temp + atomic rename, safe under concurrent writers).

Workers re-derive calibration constants through the persistent
calibration cache (:mod:`repro.model.paramcache`), so a cold pool does
not re-run simulator microbenchmarks per worker.

The pool is **self-healing**: every shard is submitted asynchronously
with a monotonic watchdog deadline, retried with exponential backoff on
worker crash or timeout (``harness.shard_retries`` /
``harness.shard_timeouts`` counters), and — when the pool is unusable or
retries are exhausted — evaluated in-process instead
(``harness.shard_serial_fallbacks``).  Because shard evaluation is
deterministic, a sweep that loses workers mid-flight still returns the
bitwise-exact corpus result.  Corrupt persisted evaluation artifacts are
quarantined (renamed ``*.corrupt``, counted in
``evalcache.corrupt_quarantined``) and recomputed rather than re-parsed
forever; artifact *writes* that hit a full or read-only filesystem are
dropped (``evalcache.write_failed``) instead of crashing the sweep.

On top of self-healing sits **durability**
(:mod:`repro.harness.journal`, docs/CHECKPOINTING.md): pass
``journal=DIR`` and every shard completion is committed to a write-ahead
journal (fsync'd CRC-framed records + a digest-verified per-shard npz
store) the instant it lands.  ``resume=True`` replays the journal on
startup and skips completed shards (``journal.skipped_shards``), so a
sweep killed at *any* instant — SIGKILL included — resumes to the
bitwise-identical merged result.  During a sweep, SIGINT/SIGTERM install
a drain handler: dispatch stops, in-flight completions are journaled,
workers are terminated and joined (an ``atexit`` guard reaps any pool a
harder teardown leaves behind), and :class:`~repro.errors.SweepInterrupted`
propagates so the CLI can exit with the distinct resumable status.
"""

from __future__ import annotations

import atexit
import contextlib
import hashlib
import multiprocessing
import os
import signal
import tempfile
import threading
import time
import zipfile

import numpy as np

from ..errors import ConfigurationError, SweepInterrupted
from ..gemm.dtypes import DtypeConfig, get_dtype_config
from ..gemm.tiling import Blocking
from ..gpu.spec import GpuSpec
from ..model.paramcache import calibrate_cached, gpu_fingerprint
from ..obs import counters as _counters
from ..obs import profiler as _profiler
from ..obs.profiler import span
from .journal import ShardJournal
from .vectorized import SystemTimings, evaluate_corpus

__all__ = [
    "EVAL_ENGINE_VERSION",
    "corpus_fingerprint",
    "evaluate_corpus_cached",
    "evaluate_corpus_sharded",
    "merge_timings",
    "clear_eval_memo",
    "wipe_eval_cache",
]

#: Bump whenever the numerical output of ``evaluate_corpus`` changes, so
#: persisted evaluation artifacts from older engines are never reused.
EVAL_ENGINE_VERSION = 1

_ENV_EVAL_CACHE_DIR = "REPRO_EVAL_CACHE_DIR"

#: Minimum rows per shard: below this, process fan-out costs more than the
#: vectorized evaluation itself.
_MIN_SHARD_ROWS = 256

#: Default per-shard wall-clock budget (seconds).  Generous — a shard is
#: a vectorized evaluation of at most a few thousand rows — but finite,
#: so a crashed worker (whose result never arrives) cannot wedge a sweep.
_DEFAULT_SHARD_TIMEOUT_S = 300.0

#: Default retry budget per shard before falling back to in-process
#: evaluation, and the base of the exponential backoff between attempts.
_DEFAULT_MAX_RETRIES = 2
_DEFAULT_RETRY_BACKOFF_S = 0.05

#: Poll interval of the dispatch loop: bounds how quickly a drain signal
#: or a watchdog deadline is noticed without busy-waiting.
_POLL_INTERVAL_S = 0.02

#: Test seam: when set, called as ``hook(shard_index, attempt)`` inside
#: the worker before evaluating — lets the test suite crash or fail a
#: specific (shard, attempt) deterministically.  Inherited by forked
#: workers; never set in production code paths.
_SHARD_FAULT_HOOK = None

#: Test seam: when set, called as ``hook(event, shard_index)`` in the
#: *parent* dispatch loop (``event`` is ``"done"``) after each shard
#: completion is recorded — lets tests inject a signal/interrupt at a
#: deterministic point between shard boundaries.
_DISPATCH_HOOK = None

_MEMO: "dict[str, SystemTimings]" = {}


# --------------------------------------------------------------------- #
# Signal-safe lifecycle: drain on SIGINT/SIGTERM, reap pools at exit     #
# --------------------------------------------------------------------- #

#: Set by the drain handler; checked by the dispatch loop at shard
#: boundaries.  A plain Event keeps the handler async-signal-trivial.
_DRAIN_EVENT = threading.Event()

#: Pools currently alive, terminated by the ``atexit`` guard if a
#: non-local teardown (unhandled exception past our ``finally``,
#: interpreter shutdown) would otherwise orphan their worker children.
_LIVE_POOLS: "set" = set()


def _reap_live_pools() -> None:
    while _LIVE_POOLS:
        pool = _LIVE_POOLS.pop()
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - best-effort reaper
            pass


atexit.register(_reap_live_pools)


def _drain_handler(signum, frame) -> None:
    """SIGINT/SIGTERM: request a drain; never interrupt a journal write."""
    _DRAIN_EVENT.set()


@contextlib.contextmanager
def _drain_signals():
    """Install the drain handler for the duration of a sweep.

    Replacing Python's default KeyboardInterrupt delivery means a signal
    can no longer land *inside* a journal append or cache write — the
    handler only sets a flag, and the dispatch loop drains at the next
    shard boundary.  Outside the main thread (where ``signal.signal``
    is illegal) the sweep runs with default delivery; the ``finally``
    blocks and the atexit guard still reap the pool.
    """
    installed = []
    try:
        if threading.current_thread() is threading.main_thread():
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    previous = signal.signal(sig, _drain_handler)
                except (ValueError, OSError):  # pragma: no cover
                    continue
                installed.append((sig, previous))
        yield
    finally:
        for sig, previous in installed:
            try:
                signal.signal(sig, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        _DRAIN_EVENT.clear()


def _check_drain() -> None:
    """Raise :class:`SweepInterrupted` if a drain signal is pending."""
    if _DRAIN_EVENT.is_set():
        _counters.inc_counter("harness.drained_interrupts")
        _DRAIN_EVENT.clear()
        raise SweepInterrupted()


# --------------------------------------------------------------------- #
# Sharding                                                               #
# --------------------------------------------------------------------- #


def merge_timings(parts: "list[SystemTimings]") -> SystemTimings:
    """Concatenate shard results back into one :class:`SystemTimings`."""
    if not parts:
        raise ConfigurationError("cannot merge zero shards")
    first = parts[0]
    for p in parts[1:]:
        if p.dtype_name != first.dtype_name or p.gpu_name != first.gpu_name:
            raise ConfigurationError("shards disagree on dtype/GPU")
        if p.cublas_variant_names != first.cublas_variant_names:
            raise ConfigurationError("shards disagree on cuBLAS variants")
    if len(parts) == 1:
        return first
    choice = None
    if all(p.cublas_choice is not None for p in parts):
        choice = np.concatenate([p.cublas_choice for p in parts])
    return SystemTimings(
        shapes=np.concatenate([p.shapes for p in parts]),
        dtype_name=first.dtype_name,
        gpu_name=first.gpu_name,
        streamk=np.concatenate([p.streamk for p in parts]),
        singleton=np.concatenate([p.singleton for p in parts]),
        cublas=np.concatenate([p.cublas for p in parts]),
        oracle=np.concatenate([p.oracle for p in parts]),
        cublas_choice=choice,
        cublas_variant_names=list(first.cublas_variant_names),
    )


def _eval_shard(
    args: "tuple[np.ndarray, str, GpuSpec, bool, int, int]",
) -> "tuple[SystemTimings, dict, dict]":
    """Worker entry point: evaluate one contiguous shard.

    Returns the shard timings plus the worker's observability state — a
    profiler snapshot (empty unless profiling is on) and a counters
    snapshot — so the parent can merge worker telemetry into one profile
    (see :mod:`repro.obs`).
    """
    shapes, dtype_name, gpu, profile, shard_index, attempt = args
    if _SHARD_FAULT_HOOK is not None:
        _SHARD_FAULT_HOOK(shard_index, attempt)
    if profile:
        _profiler.enable_profiling()
    _profiler.reset_profile()
    _counters.reset_counters()
    with span("shard"):
        res = evaluate_corpus(shapes, get_dtype_config(dtype_name), gpu)
    return res, _profiler.snapshot_profile(), _counters.snapshot_counters()


def _resolve_jobs(jobs: "int | None") -> int:
    """``None``/``1`` => in-process; ``<= 0`` => one per *available* CPU.

    "Available" respects the process's CPU affinity mask
    (``os.sched_getaffinity``) — under cgroup/affinity-restricted
    runners, ``os.cpu_count()`` reports the machine, not the quota, and
    oversubscribing the mask makes every worker a straggler.  Constrained
    cgroups can expose an empty or one-element mask (and some runtimes
    raise ``ValueError``); the result is always clamped to >= 1 so the
    sweep degrades to in-process evaluation instead of building a
    zero-worker pool.
    """
    if jobs is None or jobs == 1:
        return 1
    if jobs <= 0:
        try:
            available = len(os.sched_getaffinity(0))
        except (AttributeError, OSError, ValueError):
            # non-Linux, or a runtime that refuses the syscall
            available = os.cpu_count() or 1
        return max(1, available)
    return jobs


def _eval_shard_inproc(
    shapes: np.ndarray, dtype: DtypeConfig, gpu: GpuSpec
) -> SystemTimings:
    """Evaluate one shard in the parent process (journaled serial sweeps)."""
    with span("shard"):
        return evaluate_corpus(shapes, dtype, gpu)


def _eval_shard_serial(
    shapes: np.ndarray, dtype: DtypeConfig, gpu: GpuSpec
) -> SystemTimings:
    """In-process shard evaluation (graceful-degradation path)."""
    _counters.inc_counter("harness.shard_serial_fallbacks")
    with span("shard_serial_fallback"):
        return evaluate_corpus(shapes, dtype, gpu)


def _shard_bounds(
    n: int, jobs: int, shard_rows: "int | None"
) -> "list[tuple[int, int]]":
    """Deterministic contiguous shard layout for an ``n``-row corpus."""
    if shard_rows is None:
        shard_rows = max(_MIN_SHARD_ROWS, -(-n // (4 * max(jobs, 1))))
    shard_rows = max(1, int(shard_rows))
    edges = list(range(0, n, shard_rows)) + [n]
    return [(lo, hi) for lo, hi in zip(edges[:-1], edges[1:]) if hi > lo]


def _shard_content_fp(shapes: np.ndarray) -> str:
    """Short content fingerprint of one shard's rows (journal forensics)."""
    return hashlib.sha256(
        np.ascontiguousarray(shapes).tobytes()
    ).hexdigest()[:16]


def _commit_shard(
    journal: "ShardJournal | None",
    chaos,
    shard_index: int,
    shard_args: tuple,
    res: SystemTimings,
) -> None:
    """Journal a completion, then evaluate the chaos kill point.

    Ordering is the crash contract: the result is durably committed
    (npz + fsync'd WAL record) *before* the kill point fires, so a chaos
    SIGKILL always leaves a journal that resumes past this shard.
    """
    if journal is not None:
        journal.record_done(
            shard_index, res, fingerprint=_shard_content_fp(shard_args[0])
        )
    if _DISPATCH_HOOK is not None:
        _DISPATCH_HOOK("done", shard_index)
    if chaos is not None:
        chaos.on_shard_done()


def _run_shards_self_healing(
    pool,
    shards: "list[tuple]",
    dtype: DtypeConfig,
    gpu: GpuSpec,
    max_retries: int,
    shard_timeout: "float | None",
    retry_backoff_s: float,
    results: "list[SystemTimings | None]",
    pending: "list[int]",
    journal: "ShardJournal | None" = None,
    chaos=None,
) -> None:
    """Drive ``pending`` shards through the pool with retry and fallback.

    Every shard is submitted asynchronously and watched against a
    monotonic deadline; a shard whose worker raises, crashes (its result
    never arrives => watchdog timeout, journaled as ``shard_abandoned``),
    or hangs past ``shard_timeout`` is resubmitted up to ``max_retries``
    times with exponential backoff, then evaluated in-process.  Shard
    evaluation is deterministic, so any path yields the bitwise-identical
    result.  The loop polls (never blocks unboundedly), so drain signals
    and watchdog deadlines are honored within ``_POLL_INTERVAL_S``.
    """
    now = time.monotonic
    outstanding = []
    for i in pending:
        if journal is not None:
            journal.record_started(
                i, fingerprint=_shard_content_fp(shards[i][0])
            )
        deadline = None if shard_timeout is None else now() + shard_timeout
        outstanding.append(
            (i, 0, pool.apply_async(_eval_shard, (shards[i],)), deadline)
        )
    while outstanding:
        _check_drain()
        progressed = False
        still, retry_queue = [], []
        for i, attempt, handle, deadline in outstanding:
            if handle.ready():
                progressed = True
                try:
                    res, prof_snap, counter_snap = handle.get()
                except Exception:
                    _counters.inc_counter("harness.shard_failures")
                    retry_queue.append((i, attempt))
                else:
                    # Fold worker telemetry into this process: spans from
                    # the shard land in one profile (distinguished by
                    # pid), counters add up.
                    _profiler.merge_profile(prof_snap)
                    _counters.merge_counters(counter_snap)
                    _counters.inc_counter("harness.shards_ok")
                    results[i] = res
                    _commit_shard(journal, chaos, i, shards[i], res)
            elif deadline is not None and now() > deadline:
                # Watchdog: the worker hung or died without a result.
                progressed = True
                _counters.inc_counter("harness.shard_timeouts")
                if journal is not None:
                    journal.record_abandoned(
                        i, "watchdog deadline (%.1fs) exceeded" % shard_timeout
                    )
                retry_queue.append((i, attempt))
            else:
                still.append((i, attempt, handle, deadline))
        for i, attempt in retry_queue:
            shapes_i = shards[i][0]
            if attempt >= max_retries:
                results[i] = _eval_shard_serial(shapes_i, dtype, gpu)
                _commit_shard(journal, chaos, i, shards[i], results[i])
                continue
            _counters.inc_counter("harness.shard_retries")
            if retry_backoff_s > 0.0:
                time.sleep(retry_backoff_s * (2.0 ** attempt))
            next_args = shards[i][:5] + (attempt + 1,)
            try:
                handle = pool.apply_async(_eval_shard, (next_args,))
            except Exception:
                # Pool itself is unusable (terminated, broken): degrade.
                _counters.inc_counter("harness.pool_unusable")
                results[i] = _eval_shard_serial(shapes_i, dtype, gpu)
                _commit_shard(journal, chaos, i, shards[i], results[i])
            else:
                deadline = (
                    None if shard_timeout is None else now() + shard_timeout
                )
                still.append((i, attempt + 1, handle, deadline))
        outstanding = still
        if outstanding and not progressed:
            time.sleep(_POLL_INTERVAL_S)


def _run_shards_serial(
    shards: "list[tuple]",
    dtype: DtypeConfig,
    gpu: GpuSpec,
    results: "list[SystemTimings | None]",
    pending: "list[int]",
    journal: "ShardJournal | None",
    chaos,
) -> None:
    """In-process shard loop (``jobs=1`` journaled sweeps, broken pools)."""
    for i in pending:
        _check_drain()
        if journal is not None:
            journal.record_started(
                i, fingerprint=_shard_content_fp(shards[i][0])
            )
        results[i] = _eval_shard_inproc(shards[i][0], dtype, gpu)
        _counters.inc_counter("harness.shards_ok")
        _commit_shard(journal, chaos, i, shards[i], results[i])


def _pool_worker_init() -> None:
    """Reset signal disposition in freshly-forked pool workers.

    Workers fork while the parent's drain handler is installed (the pool
    is created inside :func:`_drain_signals`), and ``fork`` inherits
    signal handlers — so without this reset a worker would *swallow* the
    ``SIGTERM`` that ``Pool.terminate()`` relies on, and the parent's
    ``join()`` would hang forever on a busy worker.  ``SIGTERM`` goes
    back to the default (die, so terminate/atexit reaping always works);
    ``SIGINT`` is ignored (a terminal Ctrl-C is delivered to the whole
    foreground process group — only the *parent* should drain, journal,
    and then reap the workers, instead of every worker dying mid-shard
    with a KeyboardInterrupt traceback).
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


@contextlib.contextmanager
def _managed_pool(ctx, processes: int):
    """A worker pool that cannot leak children.

    Registered in ``_LIVE_POOLS`` so the ``atexit`` guard reaps workers
    even if teardown is skipped (interpreter exit mid-sweep); the normal
    path terminates + joins in ``finally`` — including on
    :class:`SweepInterrupted` and KeyboardInterrupt — so no orphaned
    worker survives the parent.  ``_pool_worker_init`` restores default
    signal handling inside each worker so ``terminate()`` is always able
    to kill them (see its docstring for the fork-inheritance trap).
    """
    pool = ctx.Pool(processes=processes, initializer=_pool_worker_init)
    _LIVE_POOLS.add(pool)
    try:
        yield pool
    finally:
        _LIVE_POOLS.discard(pool)
        pool.terminate()
        pool.join()


def _sweep_shards(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    jobs: int,
    bounds: "list[tuple[int, int]]",
    results: "list[SystemTimings | None]",
    pending: "list[int]",
    max_retries: int,
    shard_timeout: "float | None",
    retry_backoff_s: float,
    journal: "ShardJournal | None",
    chaos,
) -> None:
    """Evaluate ``pending`` shards (pool when possible, else in-process)."""
    profiling = _profiler.profiling_enabled()
    shards = [
        (shapes[lo:hi], dtype.name, gpu, profiling, idx, 0)
        for idx, (lo, hi) in enumerate(bounds)
    ]
    # Warm the persistent calibration cache before forking so workers hit
    # the memo (fork) or the on-disk store (spawn) instead of racing on
    # the simulator microbenchmarks.
    calibrate_cached(gpu, Blocking(*dtype.default_blocking), dtype)
    with span("sharded_pool"), _drain_signals():
        if jobs == 1:
            _run_shards_serial(
                shards, dtype, gpu, results, pending, journal, chaos
            )
            return
        try:
            ctx = multiprocessing.get_context()
            pool_cm = _managed_pool(ctx, min(jobs, len(pending)))
            pool = pool_cm.__enter__()
        except Exception:
            # No pool at all (fork limits, sandboxing): evaluate serially.
            _counters.inc_counter("harness.pool_unusable")
            for i in pending:
                _check_drain()
                if journal is not None:
                    journal.record_started(
                        i, fingerprint=_shard_content_fp(shards[i][0])
                    )
                results[i] = _eval_shard_serial(shards[i][0], dtype, gpu)
                _commit_shard(journal, chaos, i, shards[i], results[i])
            return
        try:
            _run_shards_self_healing(
                pool,
                shards,
                dtype,
                gpu,
                max_retries=max_retries,
                shard_timeout=shard_timeout,
                retry_backoff_s=retry_backoff_s,
                results=results,
                pending=pending,
                journal=journal,
                chaos=chaos,
            )
        finally:
            pool_cm.__exit__(None, None, None)


def evaluate_corpus_sharded(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    jobs: "int | None" = None,
    shard_rows: "int | None" = None,
    max_retries: int = _DEFAULT_MAX_RETRIES,
    shard_timeout: "float | None" = _DEFAULT_SHARD_TIMEOUT_S,
    retry_backoff_s: float = _DEFAULT_RETRY_BACKOFF_S,
    journal: "str | None" = None,
    resume: bool = False,
    chaos=None,
    workers: "int | None" = None,
    join: bool = False,
    lease_seconds: "float | None" = None,
    heartbeat_seconds: "float | None" = None,
    chaos_worker=None,
) -> SystemTimings:
    """Evaluate a corpus across ``jobs`` worker processes, self-healing.

    ``jobs=None``/``1`` runs in-process (no pool); ``jobs<=0`` means "one
    per available CPU" (affinity-aware).  ``shard_rows`` overrides the
    shard size (default: roughly four shards per worker for load balance,
    never below ``_MIN_SHARD_ROWS``).  Results are independent of every
    knob: a worker crash, a hung shard (``shard_timeout`` seconds — also
    the per-shard watchdog deadline — ``None`` disables), exhausted
    retries (``max_retries``, exponential ``retry_backoff_s`` base), or
    an unusable pool all degrade to in-process evaluation of the affected
    shards, and the merged result stays bitwise identical to the
    single-process evaluation.

    ``journal=DIR`` makes the sweep **durable** (docs/CHECKPOINTING.md):
    each shard completion is committed to a write-ahead journal under
    ``DIR`` the moment it lands, ``resume=True`` replays the journal and
    skips digest-verified completed shards, and killing the process at
    any instant — including SIGKILL via ``chaos``
    (:class:`repro.faults.chaos.ChaosKill`) — loses at most the open
    shards.  SIGINT/SIGTERM during any sharded sweep drain cleanly:
    dispatch stops, workers are reaped, and
    :class:`~repro.errors.SweepInterrupted` is raised.

    ``workers > 1`` or ``join=True`` routes the sweep through the
    **lease fabric** (:mod:`repro.harness.fabric`): worker processes
    claim shards from the shared journal via atomic leases, heartbeat
    while evaluating, and dead workers' shards are reclaimed after
    ``lease_seconds`` — both require ``journal``.  ``chaos_worker``
    (:class:`repro.faults.chaos.ChaosWorkerKill` or a ``POINT[:K]``
    spec) arms a worker-targeted kill point.  A fabric that cannot run
    at all (lease-I/O failure, unusable journal) degrades to this
    function's ordinary journaled path (``fabric.unusable``) — never
    an abort.
    """
    shapes = np.asarray(shapes, dtype=np.int64)
    jobs = _resolve_jobs(jobs)
    n = shapes.shape[0]

    if join or (workers is not None and workers > 1):
        if journal is None:
            raise ConfigurationError(
                "the lease fabric (workers/join) requires a shared "
                "journal directory: pass journal=DIR"
            )
        from . import fabric  # local import: fabric imports this module

        try:
            if join:
                return fabric.join_sweep(
                    shapes, dtype, gpu, journal,
                    shard_rows=shard_rows,
                    lease_seconds=lease_seconds,
                    heartbeat_seconds=heartbeat_seconds,
                    chaos=chaos_worker,
                )
            return fabric.fabric_sweep(
                shapes, dtype, gpu, journal,
                workers=workers,
                shard_rows=shard_rows,
                lease_seconds=lease_seconds,
                heartbeat_seconds=heartbeat_seconds,
                chaos_worker=chaos_worker,
            )
        except (SweepInterrupted, ConfigurationError):
            raise
        except Exception:
            # Degradation ladder: a fabric that cannot run falls back
            # to the ordinary journaled single-process path below.
            _counters.inc_counter("fabric.unusable")
    if journal is None and (jobs == 1 or n <= _MIN_SHARD_ROWS):
        return evaluate_corpus(shapes, dtype, gpu)

    bounds = _shard_bounds(n, jobs, shard_rows)
    if journal is None:
        results: "list[SystemTimings | None]" = [None] * len(bounds)
        _sweep_shards(
            shapes, dtype, gpu, jobs, bounds, results,
            list(range(len(bounds))), max_retries, shard_timeout,
            retry_backoff_s, journal=None, chaos=chaos,
        )
        with span("merge_shards"):
            return merge_timings([r for r in results if r is not None])

    key = corpus_fingerprint(shapes, dtype, gpu)
    jr = ShardJournal.open(
        journal,
        corpus_key=key,
        bounds=bounds,
        resume=resume,
        dtype_name=dtype.name,
        gpu_name=gpu.name,
    )
    try:
        bounds = jr.bounds  # resumed journals own the shard layout
        results = [None] * len(bounds)
        for i in sorted(jr.completed):
            res = jr.load_completed(i)
            if res is not None:
                results[i] = res
                _counters.inc_counter("journal.skipped_shards")
        pending = [i for i, r in enumerate(results) if r is None]
        if pending:
            try:
                _sweep_shards(
                    shapes, dtype, gpu, jobs, bounds, results, pending,
                    max_retries, shard_timeout, retry_backoff_s,
                    journal=jr, chaos=chaos,
                )
            except SweepInterrupted as exc:
                exc.completed = sum(r is not None for r in results)
                exc.total = len(results)
                exc.journal_dir = journal
                raise
        with span("merge_shards"):
            merged = merge_timings([r for r in results if r is not None])
        jr.compact()
        return merged
    finally:
        jr.close()


# --------------------------------------------------------------------- #
# Content-keyed memoization                                              #
# --------------------------------------------------------------------- #


def corpus_fingerprint(
    shapes: np.ndarray, dtype: DtypeConfig, gpu: GpuSpec
) -> str:
    """Content key for one evaluation: corpus bytes + dtype + GPU + engine."""
    shapes = np.ascontiguousarray(np.asarray(shapes, dtype=np.int64))
    h = hashlib.sha256()
    h.update(b"repro-eval-v%d" % EVAL_ENGINE_VERSION)
    h.update(dtype.name.encode("utf-8"))
    h.update(gpu_fingerprint(gpu).encode("utf-8"))
    h.update(np.int64(shapes.shape[0]).tobytes())
    h.update(shapes.tobytes())
    return h.hexdigest()


def _eval_cache_dir(cache_dir: "str | None") -> "str | None":
    return cache_dir or os.environ.get(_ENV_EVAL_CACHE_DIR) or None


def _eval_entry_path(root: str, key: str) -> str:
    return os.path.join(
        root, "eval", "eval_v%d_%s.npz" % (EVAL_ENGINE_VERSION, key[:24])
    )


def _quarantine_artifact(path: str, counter: str) -> None:
    """Move a corrupt cache artifact aside so it is never re-parsed.

    The artifact is renamed to ``<path>.corrupt`` (kept for post-mortem,
    ignored by every loader) and the event counted — without this, a
    half-written or bit-rotted file would silently fail and be re-read on
    every single run.  Rename failures are swallowed: a read-only cache
    directory degrades to the old re-parse behavior rather than erroring.
    """
    try:
        os.replace(path, path + ".corrupt")
    except OSError:
        pass
    _counters.inc_counter(counter)


def _load_eval(path: str, key: str) -> "SystemTimings | None":
    if not os.path.exists(path):
        return None  # plain miss, not corruption
    try:
        with np.load(path, allow_pickle=False) as doc:
            if str(doc["key"]) != key:
                return None  # truncated-hash collision: a miss, keep it
            shapes = doc["shapes"]
            choice = doc["cublas_choice"]
            if choice.shape[0] != shapes.shape[0]:
                choice = None  # evaluation was stored without selections
            return SystemTimings(
                shapes=shapes,
                dtype_name=str(doc["dtype_name"]),
                gpu_name=str(doc["gpu_name"]),
                streamk=doc["streamk"],
                singleton=doc["singleton"],
                cublas=doc["cublas"],
                oracle=doc["oracle"],
                cublas_choice=choice,
                cublas_variant_names=[str(v) for v in doc["variant_names"]],
            )
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        # The file exists but cannot be parsed as this engine's artifact:
        # quarantine it and recompute instead of retrying forever.
        _quarantine_artifact(path, "evalcache.corrupt_quarantined")
        return None


def _store_eval(path: str, key: str, res: SystemTimings) -> None:
    """Persist one evaluation atomically; never raises.

    A full or read-only filesystem (``ENOSPC``/``EROFS``/any ``OSError``)
    removes the partial temporary file, bumps ``evalcache.write_failed``,
    and the sweep continues uncached instead of crashing.
    """
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".eval_", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(
                    fh,
                    key=np.str_(key),
                    shapes=res.shapes,
                    dtype_name=np.str_(res.dtype_name),
                    gpu_name=np.str_(res.gpu_name),
                    streamk=res.streamk,
                    singleton=res.singleton,
                    cublas=res.cublas,
                    oracle=res.oracle,
                    cublas_choice=res.cublas_choice
                    if res.cublas_choice is not None
                    else np.empty(0, dtype=np.int64),
                    variant_names=np.asarray(res.cublas_variant_names),
                )
            os.replace(tmp, path)  # atomic publish
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        # ENOSPC/EROFS/unwritable cache dir: stay in-memory only, loudly.
        _counters.inc_counter("evalcache.write_failed")


def evaluate_corpus_cached(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    jobs: "int | None" = None,
    cache_dir: "str | None" = None,
    journal: "str | None" = None,
    resume: bool = False,
) -> SystemTimings:
    """Content-memoized :func:`evaluate_corpus` (optionally sharded).

    Identical corpora (same shape bytes, dtype, GPU, engine version) are
    evaluated once per process; with a persistent cache directory, once
    per machine.  ``journal``/``resume`` thread through to
    :func:`evaluate_corpus_sharded` for sweeps that must survive being
    killed (a memo/disk hit returns immediately — the cached artifact
    already *is* the completed sweep).
    """
    shapes = np.asarray(shapes, dtype=np.int64)
    key = corpus_fingerprint(shapes, dtype, gpu)
    res = _MEMO.get(key)
    if res is not None:
        _counters.inc_counter("evalcache.memo_hit")
        return res
    root = _eval_cache_dir(cache_dir)
    if root is not None:
        res = _load_eval(_eval_entry_path(root, key), key)
        if res is not None:
            _counters.inc_counter("evalcache.disk_hit")
            _MEMO[key] = res
            return res
    _counters.inc_counter("evalcache.miss")
    res = evaluate_corpus_sharded(
        shapes, dtype, gpu, jobs=jobs, journal=journal, resume=resume
    )
    _MEMO[key] = res
    if root is not None:
        _store_eval(_eval_entry_path(root, key), key, res)
    return res


def clear_eval_memo() -> None:
    """Drop the in-process evaluation memo."""
    _MEMO.clear()


def wipe_eval_cache(cache_dir: "str | None" = None) -> int:
    """Delete persisted evaluation artifacts; returns the number removed."""
    root = _eval_cache_dir(cache_dir)
    if root is None:
        return 0
    removed = 0
    try:
        entries = os.listdir(os.path.join(root, "eval"))
    except OSError:
        return 0
    for name in entries:
        if name.startswith("eval_") and name.endswith((".npz", ".corrupt")):
            try:
                os.unlink(os.path.join(root, "eval", name))
                removed += 1
            except OSError:
                pass
    return removed
