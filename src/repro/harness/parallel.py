"""Sharded + memoized corpus evaluation.

:func:`repro.harness.vectorized.evaluate_corpus` is embarrassingly
parallel over problems — every output element depends only on its own
(m, n, k) row — so a corpus can be split into contiguous shards, each
evaluated in a worker process, and the per-system arrays concatenated
back in order.  Sharding is **exact**: the merged
:class:`~repro.harness.vectorized.SystemTimings` is bitwise identical to
the single-process result for any shard size (asserted in the tests).

On top of sharding sits a **content-keyed memo**: evaluations are keyed
by SHA-256 of the shape array bytes plus the dtype name, the GPU
fingerprint (:func:`repro.model.paramcache.gpu_fingerprint`), and the
engine version — so Table 1, Figure 6, and Figure 7 share one FP64 corpus
evaluation instead of recomputing three, and *any* identical corpus
re-query is free.  The memo is in-process by default; point
``REPRO_EVAL_CACHE_DIR`` (or the ``cache_dir`` argument) at a directory
to persist evaluations across processes as ``.npz`` artifacts
(write-temp + atomic rename, safe under concurrent writers).

Workers re-derive calibration constants through the persistent
calibration cache (:mod:`repro.model.paramcache`), so a cold pool does
not re-run simulator microbenchmarks per worker.

The pool is **self-healing**: every shard is submitted asynchronously
with a timeout, retried with exponential backoff on worker crash or
timeout (``harness.shard_retries`` / ``harness.shard_timeouts``
counters), and — when the pool is unusable or retries are exhausted —
evaluated in-process instead (``harness.shard_serial_fallbacks``).
Because shard evaluation is deterministic, a sweep that loses workers
mid-flight still returns the bitwise-exact corpus result.  Corrupt
persisted evaluation artifacts are quarantined (renamed ``*.corrupt``,
counted in ``evalcache.corrupt_quarantined``) and recomputed rather than
re-parsed forever.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import tempfile
import time
import zipfile

import numpy as np

from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig, get_dtype_config
from ..gemm.tiling import Blocking
from ..gpu.spec import GpuSpec
from ..model.paramcache import calibrate_cached, gpu_fingerprint
from ..obs import counters as _counters
from ..obs import profiler as _profiler
from ..obs.profiler import span
from .vectorized import SystemTimings, evaluate_corpus

__all__ = [
    "EVAL_ENGINE_VERSION",
    "corpus_fingerprint",
    "evaluate_corpus_cached",
    "evaluate_corpus_sharded",
    "merge_timings",
    "clear_eval_memo",
    "wipe_eval_cache",
]

#: Bump whenever the numerical output of ``evaluate_corpus`` changes, so
#: persisted evaluation artifacts from older engines are never reused.
EVAL_ENGINE_VERSION = 1

_ENV_EVAL_CACHE_DIR = "REPRO_EVAL_CACHE_DIR"

#: Minimum rows per shard: below this, process fan-out costs more than the
#: vectorized evaluation itself.
_MIN_SHARD_ROWS = 256

#: Default per-shard wall-clock budget (seconds).  Generous — a shard is
#: a vectorized evaluation of at most a few thousand rows — but finite,
#: so a crashed worker (whose result never arrives) cannot wedge a sweep.
_DEFAULT_SHARD_TIMEOUT_S = 300.0

#: Default retry budget per shard before falling back to in-process
#: evaluation, and the base of the exponential backoff between attempts.
_DEFAULT_MAX_RETRIES = 2
_DEFAULT_RETRY_BACKOFF_S = 0.05

#: Test seam: when set, called as ``hook(shard_index, attempt)`` inside
#: the worker before evaluating — lets the test suite crash or fail a
#: specific (shard, attempt) deterministically.  Inherited by forked
#: workers; never set in production code paths.
_SHARD_FAULT_HOOK = None

_MEMO: "dict[str, SystemTimings]" = {}


# --------------------------------------------------------------------- #
# Sharding                                                               #
# --------------------------------------------------------------------- #


def merge_timings(parts: "list[SystemTimings]") -> SystemTimings:
    """Concatenate shard results back into one :class:`SystemTimings`."""
    if not parts:
        raise ConfigurationError("cannot merge zero shards")
    first = parts[0]
    for p in parts[1:]:
        if p.dtype_name != first.dtype_name or p.gpu_name != first.gpu_name:
            raise ConfigurationError("shards disagree on dtype/GPU")
        if p.cublas_variant_names != first.cublas_variant_names:
            raise ConfigurationError("shards disagree on cuBLAS variants")
    if len(parts) == 1:
        return first
    choice = None
    if all(p.cublas_choice is not None for p in parts):
        choice = np.concatenate([p.cublas_choice for p in parts])
    return SystemTimings(
        shapes=np.concatenate([p.shapes for p in parts]),
        dtype_name=first.dtype_name,
        gpu_name=first.gpu_name,
        streamk=np.concatenate([p.streamk for p in parts]),
        singleton=np.concatenate([p.singleton for p in parts]),
        cublas=np.concatenate([p.cublas for p in parts]),
        oracle=np.concatenate([p.oracle for p in parts]),
        cublas_choice=choice,
        cublas_variant_names=list(first.cublas_variant_names),
    )


def _eval_shard(
    args: "tuple[np.ndarray, str, GpuSpec, bool, int, int]",
) -> "tuple[SystemTimings, dict, dict]":
    """Worker entry point: evaluate one contiguous shard.

    Returns the shard timings plus the worker's observability state — a
    profiler snapshot (empty unless profiling is on) and a counters
    snapshot — so the parent can merge worker telemetry into one profile
    (see :mod:`repro.obs`).
    """
    shapes, dtype_name, gpu, profile, shard_index, attempt = args
    if _SHARD_FAULT_HOOK is not None:
        _SHARD_FAULT_HOOK(shard_index, attempt)
    if profile:
        _profiler.enable_profiling()
    _profiler.reset_profile()
    _counters.reset_counters()
    with span("shard"):
        res = evaluate_corpus(shapes, get_dtype_config(dtype_name), gpu)
    return res, _profiler.snapshot_profile(), _counters.snapshot_counters()


def _resolve_jobs(jobs: "int | None") -> int:
    """``None``/``1`` => in-process; ``<= 0`` => one per *available* CPU.

    "Available" respects the process's CPU affinity mask
    (``os.sched_getaffinity``) — under cgroup/affinity-restricted
    runners, ``os.cpu_count()`` reports the machine, not the quota, and
    oversubscribing the mask makes every worker a straggler.
    """
    if jobs is None or jobs == 1:
        return 1
    if jobs <= 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except (AttributeError, OSError):  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    return jobs


def _eval_shard_serial(
    shapes: np.ndarray, dtype: DtypeConfig, gpu: GpuSpec
) -> SystemTimings:
    """In-process shard evaluation (graceful-degradation path)."""
    _counters.inc_counter("harness.shard_serial_fallbacks")
    with span("shard_serial_fallback"):
        return evaluate_corpus(shapes, dtype, gpu)


def _run_shards_self_healing(
    pool,
    shards: "list[tuple]",
    dtype: DtypeConfig,
    gpu: GpuSpec,
    max_retries: int,
    shard_timeout: "float | None",
    retry_backoff_s: float,
) -> "list[SystemTimings]":
    """Drive shards through the pool with retry, backoff, and fallback.

    Every shard is submitted asynchronously; a shard whose worker raises,
    crashes (its result never arrives => timeout), or exceeds
    ``shard_timeout`` is resubmitted up to ``max_retries`` times with
    exponential backoff, then evaluated in-process.  Shard evaluation is
    deterministic, so any path yields the bitwise-identical result.
    """
    results: "list[SystemTimings | None]" = [None] * len(shards)
    # (shard_index, attempt, async_result), submitted generation by
    # generation so backoff between a shard's attempts is honored.
    outstanding = []
    for i, shard in enumerate(shards):
        outstanding.append((i, 0, pool.apply_async(_eval_shard, (shard,))))
    while outstanding:
        retry_queue = []
        for i, attempt, handle in outstanding:
            try:
                res, prof_snap, counter_snap = handle.get(timeout=shard_timeout)
            except multiprocessing.TimeoutError:
                _counters.inc_counter("harness.shard_timeouts")
                retry_queue.append((i, attempt))
            except Exception:
                _counters.inc_counter("harness.shard_failures")
                retry_queue.append((i, attempt))
            else:
                # Fold worker telemetry into this process: spans from the
                # shard land in one profile (distinguished by pid),
                # counters add up.
                _profiler.merge_profile(prof_snap)
                _counters.merge_counters(counter_snap)
                _counters.inc_counter("harness.shards_ok")
                results[i] = res
        outstanding = []
        for i, attempt in retry_queue:
            shapes_i = shards[i][0]
            if attempt >= max_retries:
                results[i] = _eval_shard_serial(shapes_i, dtype, gpu)
                continue
            _counters.inc_counter("harness.shard_retries")
            if retry_backoff_s > 0.0:
                time.sleep(retry_backoff_s * (2.0 ** attempt))
            next_args = shards[i][:5] + (attempt + 1,)
            try:
                outstanding.append(
                    (i, attempt + 1, pool.apply_async(_eval_shard, (next_args,)))
                )
            except Exception:
                # Pool itself is unusable (terminated, broken): degrade.
                _counters.inc_counter("harness.pool_unusable")
                results[i] = _eval_shard_serial(shapes_i, dtype, gpu)
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def evaluate_corpus_sharded(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    jobs: "int | None" = None,
    shard_rows: "int | None" = None,
    max_retries: int = _DEFAULT_MAX_RETRIES,
    shard_timeout: "float | None" = _DEFAULT_SHARD_TIMEOUT_S,
    retry_backoff_s: float = _DEFAULT_RETRY_BACKOFF_S,
) -> SystemTimings:
    """Evaluate a corpus across ``jobs`` worker processes, self-healing.

    ``jobs=None``/``1`` runs in-process (no pool); ``jobs<=0`` means "one
    per available CPU" (affinity-aware).  ``shard_rows`` overrides the
    shard size (default: roughly four shards per worker for load balance,
    never below ``_MIN_SHARD_ROWS``).  Results are independent of every
    knob: a worker crash, a hung shard (``shard_timeout`` seconds,
    ``None`` disables), exhausted retries (``max_retries``, exponential
    ``retry_backoff_s`` base), or an unusable pool all degrade to
    in-process evaluation of the affected shards, and the merged result
    stays bitwise identical to the single-process evaluation.
    """
    shapes = np.asarray(shapes, dtype=np.int64)
    jobs = _resolve_jobs(jobs)
    n = shapes.shape[0]
    if jobs == 1 or n <= _MIN_SHARD_ROWS:
        return evaluate_corpus(shapes, dtype, gpu)

    if shard_rows is None:
        shard_rows = max(_MIN_SHARD_ROWS, -(-n // (4 * jobs)))
    profiling = _profiler.profiling_enabled()
    bounds = list(range(0, n, shard_rows)) + [n]
    shards = [
        (shapes[lo:hi], dtype.name, gpu, profiling, idx, 0)
        for idx, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:]))
        if hi > lo
    ]
    # Warm the persistent calibration cache before forking so workers hit
    # the memo (fork) or the on-disk store (spawn) instead of racing on
    # the simulator microbenchmarks.
    calibrate_cached(gpu, Blocking(*dtype.default_blocking), dtype)

    with span("sharded_pool"):
        ctx = multiprocessing.get_context()
        try:
            pool = ctx.Pool(processes=min(jobs, len(shards)))
        except Exception:
            # No pool at all (fork limits, sandboxing): evaluate serially.
            _counters.inc_counter("harness.pool_unusable")
            parts = [
                _eval_shard_serial(s[0], dtype, gpu) for s in shards
            ]
        else:
            try:
                parts = _run_shards_self_healing(
                    pool,
                    shards,
                    dtype,
                    gpu,
                    max_retries=max_retries,
                    shard_timeout=shard_timeout,
                    retry_backoff_s=retry_backoff_s,
                )
            finally:
                pool.terminate()
                pool.join()
    with span("merge_shards"):
        return merge_timings(parts)


# --------------------------------------------------------------------- #
# Content-keyed memoization                                              #
# --------------------------------------------------------------------- #


def corpus_fingerprint(
    shapes: np.ndarray, dtype: DtypeConfig, gpu: GpuSpec
) -> str:
    """Content key for one evaluation: corpus bytes + dtype + GPU + engine."""
    shapes = np.ascontiguousarray(np.asarray(shapes, dtype=np.int64))
    h = hashlib.sha256()
    h.update(b"repro-eval-v%d" % EVAL_ENGINE_VERSION)
    h.update(dtype.name.encode("utf-8"))
    h.update(gpu_fingerprint(gpu).encode("utf-8"))
    h.update(np.int64(shapes.shape[0]).tobytes())
    h.update(shapes.tobytes())
    return h.hexdigest()


def _eval_cache_dir(cache_dir: "str | None") -> "str | None":
    return cache_dir or os.environ.get(_ENV_EVAL_CACHE_DIR) or None


def _eval_entry_path(root: str, key: str) -> str:
    return os.path.join(
        root, "eval", "eval_v%d_%s.npz" % (EVAL_ENGINE_VERSION, key[:24])
    )


def _quarantine_artifact(path: str, counter: str) -> None:
    """Move a corrupt cache artifact aside so it is never re-parsed.

    The artifact is renamed to ``<path>.corrupt`` (kept for post-mortem,
    ignored by every loader) and the event counted — without this, a
    half-written or bit-rotted file would silently fail and be re-read on
    every single run.  Rename failures are swallowed: a read-only cache
    directory degrades to the old re-parse behavior rather than erroring.
    """
    try:
        os.replace(path, path + ".corrupt")
    except OSError:
        pass
    _counters.inc_counter(counter)


def _load_eval(path: str, key: str) -> "SystemTimings | None":
    if not os.path.exists(path):
        return None  # plain miss, not corruption
    try:
        with np.load(path, allow_pickle=False) as doc:
            if str(doc["key"]) != key:
                return None  # truncated-hash collision: a miss, keep it
            shapes = doc["shapes"]
            choice = doc["cublas_choice"]
            if choice.shape[0] != shapes.shape[0]:
                choice = None  # evaluation was stored without selections
            return SystemTimings(
                shapes=shapes,
                dtype_name=str(doc["dtype_name"]),
                gpu_name=str(doc["gpu_name"]),
                streamk=doc["streamk"],
                singleton=doc["singleton"],
                cublas=doc["cublas"],
                oracle=doc["oracle"],
                cublas_choice=choice,
                cublas_variant_names=[str(v) for v in doc["variant_names"]],
            )
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        # The file exists but cannot be parsed as this engine's artifact:
        # quarantine it and recompute instead of retrying forever.
        _quarantine_artifact(path, "evalcache.corrupt_quarantined")
        return None


def _store_eval(path: str, key: str, res: SystemTimings) -> None:
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".eval_", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(
                    fh,
                    key=np.str_(key),
                    shapes=res.shapes,
                    dtype_name=np.str_(res.dtype_name),
                    gpu_name=np.str_(res.gpu_name),
                    streamk=res.streamk,
                    singleton=res.singleton,
                    cublas=res.cublas,
                    oracle=res.oracle,
                    cublas_choice=res.cublas_choice
                    if res.cublas_choice is not None
                    else np.empty(0, dtype=np.int64),
                    variant_names=np.asarray(res.cublas_variant_names),
                )
            os.replace(tmp, path)  # atomic publish
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        pass  # unwritable cache dir: stay in-memory only


def evaluate_corpus_cached(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    jobs: "int | None" = None,
    cache_dir: "str | None" = None,
) -> SystemTimings:
    """Content-memoized :func:`evaluate_corpus` (optionally sharded).

    Identical corpora (same shape bytes, dtype, GPU, engine version) are
    evaluated once per process; with a persistent cache directory, once
    per machine.
    """
    shapes = np.asarray(shapes, dtype=np.int64)
    key = corpus_fingerprint(shapes, dtype, gpu)
    res = _MEMO.get(key)
    if res is not None:
        _counters.inc_counter("evalcache.memo_hit")
        return res
    root = _eval_cache_dir(cache_dir)
    if root is not None:
        res = _load_eval(_eval_entry_path(root, key), key)
        if res is not None:
            _counters.inc_counter("evalcache.disk_hit")
            _MEMO[key] = res
            return res
    _counters.inc_counter("evalcache.miss")
    res = evaluate_corpus_sharded(shapes, dtype, gpu, jobs=jobs)
    _MEMO[key] = res
    if root is not None:
        _store_eval(_eval_entry_path(root, key), key, res)
    return res


def clear_eval_memo() -> None:
    """Drop the in-process evaluation memo."""
    _MEMO.clear()


def wipe_eval_cache(cache_dir: "str | None" = None) -> int:
    """Delete persisted evaluation artifacts; returns the number removed."""
    root = _eval_cache_dir(cache_dir)
    if root is None:
        return 0
    removed = 0
    try:
        entries = os.listdir(os.path.join(root, "eval"))
    except OSError:
        return 0
    for name in entries:
        if name.startswith("eval_") and name.endswith((".npz", ".corrupt")):
            try:
                os.unlink(os.path.join(root, "eval", name))
                removed += 1
            except OSError:
                pass
    return removed
