"""Sharded + memoized corpus evaluation.

:func:`repro.harness.vectorized.evaluate_corpus` is embarrassingly
parallel over problems — every output element depends only on its own
(m, n, k) row — so a corpus can be split into contiguous shards, each
evaluated in a worker process, and the per-system arrays concatenated
back in order.  Sharding is **exact**: the merged
:class:`~repro.harness.vectorized.SystemTimings` is bitwise identical to
the single-process result for any shard size (asserted in the tests).

On top of sharding sits a **content-keyed memo**: evaluations are keyed
by SHA-256 of the shape array bytes plus the dtype name, the GPU
fingerprint (:func:`repro.model.paramcache.gpu_fingerprint`), and the
engine version — so Table 1, Figure 6, and Figure 7 share one FP64 corpus
evaluation instead of recomputing three, and *any* identical corpus
re-query is free.  The memo is in-process by default; point
``REPRO_EVAL_CACHE_DIR`` (or the ``cache_dir`` argument) at a directory
to persist evaluations across processes as ``.npz`` artifacts
(write-temp + atomic rename, safe under concurrent writers).

Workers re-derive calibration constants through the persistent
calibration cache (:mod:`repro.model.paramcache`), so a cold pool does
not re-run simulator microbenchmarks per worker.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import tempfile

import numpy as np

from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig, get_dtype_config
from ..gemm.tiling import Blocking
from ..gpu.spec import GpuSpec
from ..model.paramcache import calibrate_cached, gpu_fingerprint
from ..obs import counters as _counters
from ..obs import profiler as _profiler
from ..obs.profiler import span
from .vectorized import SystemTimings, evaluate_corpus

__all__ = [
    "EVAL_ENGINE_VERSION",
    "corpus_fingerprint",
    "evaluate_corpus_cached",
    "evaluate_corpus_sharded",
    "merge_timings",
    "clear_eval_memo",
    "wipe_eval_cache",
]

#: Bump whenever the numerical output of ``evaluate_corpus`` changes, so
#: persisted evaluation artifacts from older engines are never reused.
EVAL_ENGINE_VERSION = 1

_ENV_EVAL_CACHE_DIR = "REPRO_EVAL_CACHE_DIR"

#: Minimum rows per shard: below this, process fan-out costs more than the
#: vectorized evaluation itself.
_MIN_SHARD_ROWS = 256

_MEMO: "dict[str, SystemTimings]" = {}


# --------------------------------------------------------------------- #
# Sharding                                                               #
# --------------------------------------------------------------------- #


def merge_timings(parts: "list[SystemTimings]") -> SystemTimings:
    """Concatenate shard results back into one :class:`SystemTimings`."""
    if not parts:
        raise ConfigurationError("cannot merge zero shards")
    first = parts[0]
    for p in parts[1:]:
        if p.dtype_name != first.dtype_name or p.gpu_name != first.gpu_name:
            raise ConfigurationError("shards disagree on dtype/GPU")
        if p.cublas_variant_names != first.cublas_variant_names:
            raise ConfigurationError("shards disagree on cuBLAS variants")
    if len(parts) == 1:
        return first
    choice = None
    if all(p.cublas_choice is not None for p in parts):
        choice = np.concatenate([p.cublas_choice for p in parts])
    return SystemTimings(
        shapes=np.concatenate([p.shapes for p in parts]),
        dtype_name=first.dtype_name,
        gpu_name=first.gpu_name,
        streamk=np.concatenate([p.streamk for p in parts]),
        singleton=np.concatenate([p.singleton for p in parts]),
        cublas=np.concatenate([p.cublas for p in parts]),
        oracle=np.concatenate([p.oracle for p in parts]),
        cublas_choice=choice,
        cublas_variant_names=list(first.cublas_variant_names),
    )


def _eval_shard(
    args: "tuple[np.ndarray, str, GpuSpec, bool]",
) -> "tuple[SystemTimings, dict, dict]":
    """Worker entry point: evaluate one contiguous shard.

    Returns the shard timings plus the worker's observability state — a
    profiler snapshot (empty unless profiling is on) and a counters
    snapshot — so the parent can merge worker telemetry into one profile
    (see :mod:`repro.obs`).
    """
    shapes, dtype_name, gpu, profile = args
    if profile:
        _profiler.enable_profiling()
    _profiler.reset_profile()
    _counters.reset_counters()
    with span("shard"):
        res = evaluate_corpus(shapes, get_dtype_config(dtype_name), gpu)
    return res, _profiler.snapshot_profile(), _counters.snapshot_counters()


def _resolve_jobs(jobs: "int | None") -> int:
    if jobs is None or jobs == 1:
        return 1
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def evaluate_corpus_sharded(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    jobs: "int | None" = None,
    shard_rows: "int | None" = None,
) -> SystemTimings:
    """Evaluate a corpus across ``jobs`` worker processes.

    ``jobs=None``/``1`` runs in-process (no pool); ``jobs<=0`` means "one
    per CPU".  ``shard_rows`` overrides the shard size (default: roughly
    four shards per worker for load balance, never below
    ``_MIN_SHARD_ROWS``).  Results are independent of both knobs.
    """
    shapes = np.asarray(shapes, dtype=np.int64)
    jobs = _resolve_jobs(jobs)
    n = shapes.shape[0]
    if jobs == 1 or n <= _MIN_SHARD_ROWS:
        return evaluate_corpus(shapes, dtype, gpu)

    if shard_rows is None:
        shard_rows = max(_MIN_SHARD_ROWS, -(-n // (4 * jobs)))
    profiling = _profiler.profiling_enabled()
    bounds = list(range(0, n, shard_rows)) + [n]
    shards = [
        (shapes[lo:hi], dtype.name, gpu, profiling)
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]
    # Warm the persistent calibration cache before forking so workers hit
    # the memo (fork) or the on-disk store (spawn) instead of racing on
    # the simulator microbenchmarks.
    calibrate_cached(gpu, Blocking(*dtype.default_blocking), dtype)

    with span("sharded_pool"):
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=min(jobs, len(shards))) as pool:
            parts = pool.map(_eval_shard, shards)
    # Fold worker telemetry into this process: spans from every shard land
    # in one profile (distinguished by pid), counters add up.
    for _, prof_snap, counter_snap in parts:
        _profiler.merge_profile(prof_snap)
        _counters.merge_counters(counter_snap)
    with span("merge_shards"):
        return merge_timings([p[0] for p in parts])


# --------------------------------------------------------------------- #
# Content-keyed memoization                                              #
# --------------------------------------------------------------------- #


def corpus_fingerprint(
    shapes: np.ndarray, dtype: DtypeConfig, gpu: GpuSpec
) -> str:
    """Content key for one evaluation: corpus bytes + dtype + GPU + engine."""
    shapes = np.ascontiguousarray(np.asarray(shapes, dtype=np.int64))
    h = hashlib.sha256()
    h.update(b"repro-eval-v%d" % EVAL_ENGINE_VERSION)
    h.update(dtype.name.encode("utf-8"))
    h.update(gpu_fingerprint(gpu).encode("utf-8"))
    h.update(np.int64(shapes.shape[0]).tobytes())
    h.update(shapes.tobytes())
    return h.hexdigest()


def _eval_cache_dir(cache_dir: "str | None") -> "str | None":
    return cache_dir or os.environ.get(_ENV_EVAL_CACHE_DIR) or None


def _eval_entry_path(root: str, key: str) -> str:
    return os.path.join(
        root, "eval", "eval_v%d_%s.npz" % (EVAL_ENGINE_VERSION, key[:24])
    )


def _load_eval(path: str, key: str) -> "SystemTimings | None":
    try:
        with np.load(path, allow_pickle=False) as doc:
            if str(doc["key"]) != key:
                return None
            shapes = doc["shapes"]
            choice = doc["cublas_choice"]
            if choice.shape[0] != shapes.shape[0]:
                choice = None  # evaluation was stored without selections
            return SystemTimings(
                shapes=shapes,
                dtype_name=str(doc["dtype_name"]),
                gpu_name=str(doc["gpu_name"]),
                streamk=doc["streamk"],
                singleton=doc["singleton"],
                cublas=doc["cublas"],
                oracle=doc["oracle"],
                cublas_choice=choice,
                cublas_variant_names=[str(v) for v in doc["variant_names"]],
            )
    except (OSError, ValueError, KeyError):
        return None


def _store_eval(path: str, key: str, res: SystemTimings) -> None:
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".eval_", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(
                    fh,
                    key=np.str_(key),
                    shapes=res.shapes,
                    dtype_name=np.str_(res.dtype_name),
                    gpu_name=np.str_(res.gpu_name),
                    streamk=res.streamk,
                    singleton=res.singleton,
                    cublas=res.cublas,
                    oracle=res.oracle,
                    cublas_choice=res.cublas_choice
                    if res.cublas_choice is not None
                    else np.empty(0, dtype=np.int64),
                    variant_names=np.asarray(res.cublas_variant_names),
                )
            os.replace(tmp, path)  # atomic publish
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        pass  # unwritable cache dir: stay in-memory only


def evaluate_corpus_cached(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    jobs: "int | None" = None,
    cache_dir: "str | None" = None,
) -> SystemTimings:
    """Content-memoized :func:`evaluate_corpus` (optionally sharded).

    Identical corpora (same shape bytes, dtype, GPU, engine version) are
    evaluated once per process; with a persistent cache directory, once
    per machine.
    """
    shapes = np.asarray(shapes, dtype=np.int64)
    key = corpus_fingerprint(shapes, dtype, gpu)
    res = _MEMO.get(key)
    if res is not None:
        _counters.inc_counter("evalcache.memo_hit")
        return res
    root = _eval_cache_dir(cache_dir)
    if root is not None:
        res = _load_eval(_eval_entry_path(root, key), key)
        if res is not None:
            _counters.inc_counter("evalcache.disk_hit")
            _MEMO[key] = res
            return res
    _counters.inc_counter("evalcache.miss")
    res = evaluate_corpus_sharded(shapes, dtype, gpu, jobs=jobs)
    _MEMO[key] = res
    if root is not None:
        _store_eval(_eval_entry_path(root, key), key, res)
    return res


def clear_eval_memo() -> None:
    """Drop the in-process evaluation memo."""
    _MEMO.clear()


def wipe_eval_cache(cache_dir: "str | None" = None) -> int:
    """Delete persisted evaluation artifacts; returns the number removed."""
    root = _eval_cache_dir(cache_dir)
    if root is None:
        return 0
    removed = 0
    try:
        entries = os.listdir(os.path.join(root, "eval"))
    except OSError:
        return 0
    for name in entries:
        if name.startswith("eval_") and name.endswith(".npz"):
            try:
                os.unlink(os.path.join(root, "eval", name))
                removed += 1
            except OSError:
                pass
    return removed
