"""Single-problem end-to-end runs: numerics + timing together.

Where the vectorized engine answers "how fast across 32,824 shapes", the
runner answers "run THIS problem under THIS decomposition, prove the
answer is right, and tell me everything" — the path the examples and the
illustrative figures use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gemm.problem import GemmProblem
from ..gemm.reference import random_operands
from ..gemm.tiling import Blocking, TileGrid
from ..gemm.validation import validate_result
from ..gpu.simulate import KernelResult, simulate_kernel
from ..gpu.spec import GpuSpec
from ..metrics.efficiency import quantization_efficiency
from ..metrics.report import format_utilization
from ..schedules.base import Decomposition, Schedule

__all__ = ["MeasuredRun", "run_schedule", "run_decomposition"]


@dataclass(frozen=True)
class MeasuredRun:
    """One validated, simulated execution."""

    problem: GemmProblem
    schedule_name: str
    g: int
    result: KernelResult
    quantization_efficiency: float
    max_rel_error: "float | None"

    @property
    def time_s(self) -> float:
        return self.result.time_s

    @property
    def tflops(self) -> float:
        return self.result.tflops

    def summary(self) -> str:
        err = (
            "validated (max rel err %.1e)" % self.max_rel_error
            if self.max_rel_error is not None
            else "timing only"
        )
        return (
            "%s on %s: g=%d, %.2f us, %.1f TFLOP/s (%s of peak, "
            "quant-eff %s, %s-bound), %s"
            % (
                self.schedule_name,
                self.problem,
                self.g,
                self.time_s * 1e6,
                self.tflops,
                format_utilization(self.result.percent_of_peak / 100.0),
                format_utilization(self.quantization_efficiency),
                self.result.bound,
                err,
            )
        )


def run_schedule(
    schedule: Schedule,
    gpu: GpuSpec,
    execute_numeric: bool = True,
    memory_model: str = "analytical",
    operands: "tuple[np.ndarray, np.ndarray] | None" = None,
    seed: int = 0,
    executor: "str | None" = None,
) -> MeasuredRun:
    """Validate, optionally execute numerically, and simulate a schedule.

    ``executor`` selects the simulation backend (``python`` / ``numpy``
    / ``numba``); ``None`` defers to the process default.
    """
    schedule.validate()
    problem = schedule.grid.problem
    err = None
    if execute_numeric:
        a, b = operands if operands is not None else random_operands(problem, seed)
        out = schedule.execute(a, b)
        err = validate_result(problem, out, a, b)
    result = simulate_kernel(
        schedule, gpu, memory_model=memory_model, executor=executor
    )
    return MeasuredRun(
        problem=problem,
        schedule_name=schedule.name,
        g=schedule.g,
        result=result,
        quantization_efficiency=quantization_efficiency(schedule, gpu.num_sms),
        max_rel_error=err,
    )


def run_decomposition(
    decomposition: Decomposition,
    problem: GemmProblem,
    gpu: GpuSpec,
    blocking: "Blocking | None" = None,
    **kwargs,
) -> MeasuredRun:
    """Build a decomposition's schedule for a problem and run it."""
    blk = blocking or Blocking(*problem.dtype.default_blocking)
    schedule = decomposition.build(TileGrid(problem, blk))
    return run_schedule(schedule, gpu, **kwargs)
