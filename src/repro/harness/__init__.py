"""Evaluation harness: single-problem runs, vectorized corpus sweeps, and
one entry point per paper table/figure.

Three layers, by scale:

* :mod:`~repro.harness.runner` — run ONE problem under ONE decomposition,
  numerically validated against ``A @ B`` and priced by the simulator
  (:func:`run_schedule` / :func:`run_decomposition`).
* :mod:`~repro.harness.vectorized` — the corpus engine: closed-form
  per-system times for tens of thousands of shapes with no per-problem
  Python loop (:func:`evaluate_corpus` -> :class:`SystemTimings`).
* :mod:`~repro.harness.parallel` — exact process-sharding plus a
  content-keyed evaluation memo on top of the engine
  (:func:`evaluate_corpus_sharded`, :func:`evaluate_corpus_cached`),
  with :mod:`~repro.harness.journal` underneath for durability: a
  write-ahead shard journal so killed sweeps resume bitwise-identically
  (``repro sweep``, docs/CHECKPOINTING.md), and
  :mod:`~repro.harness.fabric` on top for horizontal scale: a
  lease-based multi-worker fabric where processes *claim* shards from
  the shared journal (``repro sweep --workers N`` / ``--join DIR``)
  and dead workers' shards are reclaimed after lease expiry.

:mod:`~repro.harness.experiments` packages these as one entry point per
paper artifact (``fig1_...``–``fig9_...``, ``relative_performance_table``);
:mod:`~repro.harness.crosshw` sweeps the schedule comparison across
several :class:`~repro.gpu.spec.GpuSpec` points (``repro crosshw``);
:mod:`~repro.harness.io` writes the JSON/CSV artifacts the benchmarks
commit.  The harness phases are span-instrumented through
:mod:`repro.obs` — set ``REPRO_PROFILE=1`` to see where corpus time goes.
"""

from .crosshw import (
    CROSSHW_SCHEDULES,
    CrossHwCell,
    CrossHwResult,
    format_crosshw_table,
    run_crosshw,
)
from .experiments import (
    FIG8_SCENARIOS,
    corpus_timings,
    fig1_data_parallel_quantization,
    fig2_tile_splitting,
    fig3_hybrid_schedules,
    fig4_corpus_statistics,
    fig7_speedup_vs_cublas,
    fig8_analytical_model,
    fig9_strong_scaling,
    relative_performance_table,
    roofline_landscapes,
)
from .fabric import LeaseManager, fabric_sweep, join_sweep, make_worker_id
from .io import timings_to_rows, write_csv, write_json
from .journal import (
    RESUMABLE_EXIT_STATUS,
    ShardJournal,
    default_journal_dir,
    timings_digest,
)
from .parallel import (
    EVAL_ENGINE_VERSION,
    corpus_fingerprint,
    evaluate_corpus_cached,
    evaluate_corpus_sharded,
    merge_timings,
    wipe_eval_cache,
)
from .runner import MeasuredRun, run_decomposition, run_schedule
from .vectorized import (
    SystemTimings,
    dp_times,
    evaluate_corpus,
    fixed_split_times,
    streamk_times,
)

__all__ = [
    "CROSSHW_SCHEDULES",
    "CrossHwCell",
    "CrossHwResult",
    "EVAL_ENGINE_VERSION",
    "FIG8_SCENARIOS",
    "LeaseManager",
    "MeasuredRun",
    "RESUMABLE_EXIT_STATUS",
    "ShardJournal",
    "SystemTimings",
    "default_journal_dir",
    "timings_digest",
    "format_crosshw_table",
    "run_crosshw",
    "corpus_fingerprint",
    "corpus_timings",
    "dp_times",
    "evaluate_corpus",
    "evaluate_corpus_cached",
    "evaluate_corpus_sharded",
    "fabric_sweep",
    "join_sweep",
    "make_worker_id",
    "merge_timings",
    "wipe_eval_cache",
    "fig1_data_parallel_quantization",
    "fig2_tile_splitting",
    "fig3_hybrid_schedules",
    "fig4_corpus_statistics",
    "fig7_speedup_vs_cublas",
    "fig8_analytical_model",
    "fig9_strong_scaling",
    "fixed_split_times",
    "relative_performance_table",
    "roofline_landscapes",
    "run_decomposition",
    "run_schedule",
    "streamk_times",
    "timings_to_rows",
    "write_csv",
    "write_json",
]
