"""Evaluation harness: single-problem runs, vectorized corpus sweeps, and
one entry point per paper table/figure."""

from .experiments import (
    FIG8_SCENARIOS,
    corpus_timings,
    fig1_data_parallel_quantization,
    fig2_tile_splitting,
    fig3_hybrid_schedules,
    fig4_corpus_statistics,
    fig7_speedup_vs_cublas,
    fig8_analytical_model,
    fig9_strong_scaling,
    relative_performance_table,
    roofline_landscapes,
)
from .io import timings_to_rows, write_csv, write_json
from .parallel import (
    EVAL_ENGINE_VERSION,
    corpus_fingerprint,
    evaluate_corpus_cached,
    evaluate_corpus_sharded,
    merge_timings,
    wipe_eval_cache,
)
from .runner import MeasuredRun, run_decomposition, run_schedule
from .vectorized import (
    SystemTimings,
    dp_times,
    evaluate_corpus,
    fixed_split_times,
    streamk_times,
)

__all__ = [
    "EVAL_ENGINE_VERSION",
    "FIG8_SCENARIOS",
    "MeasuredRun",
    "SystemTimings",
    "corpus_fingerprint",
    "corpus_timings",
    "dp_times",
    "evaluate_corpus",
    "evaluate_corpus_cached",
    "evaluate_corpus_sharded",
    "merge_timings",
    "wipe_eval_cache",
    "fig1_data_parallel_quantization",
    "fig2_tile_splitting",
    "fig3_hybrid_schedules",
    "fig4_corpus_statistics",
    "fig7_speedup_vs_cublas",
    "fig8_analytical_model",
    "fig9_strong_scaling",
    "fixed_split_times",
    "relative_performance_table",
    "roofline_landscapes",
    "run_decomposition",
    "run_schedule",
    "streamk_times",
    "timings_to_rows",
    "write_csv",
    "write_json",
]
