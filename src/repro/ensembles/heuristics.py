"""The proxy-cost selection heuristic of the cuBLAS-like ensemble.

cuBLAS is closed source; what the paper establishes about it is structural:
it ships a large ensemble of data-parallel and fixed-split variants and
uses "carefully trained heuristics" that nonetheless "struggle to
consistently identify the optimal configuration for arbitrary problems",
producing a wider performance spread than an oracle over the *same*
blocking factors (Figures 5b/5c, 6b/6c).

We reproduce that failure mode mechanistically rather than by injecting
noise: the heuristic ranks variants by a *proxy* cost that captures the
first-order effects a selection heuristic can afford to compute —

* wave count x per-wave MAC volume (quantization),
* a per-split fixup penalty proportional to the tile's accumulator size,
* a fixed per-CTA launch overhead,
* a *coarse* per-blocking efficiency derating (a square-root-of-work rule
  of thumb, as a vendor would distill from large-GEMM microbenchmarks);

— while omitting exactly what real heuristics also get wrong:

* the memory roofline (bandwidth-bound small problems),
* the true (steeper) pipeline-efficiency curve of small blocking factors,
* spin-wait serialization of deep splits.

Selections are therefore good on bulky compute-bound shapes and
systematically imperfect on skinny, small, or bandwidth-bound ones — the
same qualitative behaviour the paper measures.

Plan/evaluate boundary: this module sits entirely on the **plan** side —
:func:`proxy_score` and :func:`heuristic_select` are pure functions of
``(variant, problem, gpu)`` that *choose* a kernel without simulating
anything.  The chosen variant's cost is then priced by the evaluation
side (:func:`repro.ensembles.kernels.variant_time_s`, or the vectorized
corpus engine's ``cublas`` column), so selection mistakes show up as
measured slowness exactly as they would on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gemm.problem import GemmProblem
from ..gemm.tiling import TileGrid, ceil_div
from ..gpu.spec import GpuSpec
from .kernels import KernelVariant

__all__ = ["ProxyScore", "proxy_score", "heuristic_select"]

# Proxy fixup penalty: equivalent MACs charged per accumulator element per
# extra split (stands in for the partial store + reload the heuristic
# cannot time precisely).
_FIXUP_MAC_EQUIV = 24.0

# Proxy per-CTA overhead in MAC-equivalents (launch + prologue).
_CTA_MAC_EQUIV = 4096.0


@dataclass(frozen=True)
class ProxyScore:
    """One variant's heuristic ranking (lower ``score`` is better)."""

    variant: KernelVariant
    score: float


def proxy_score(
    variant: KernelVariant, problem: GemmProblem, gpu: GpuSpec
) -> float:
    """Heuristic cost proxy (arbitrary units; lower is better).

    Sums the three first-order terms a production selector can afford:
    quantized compute (wave count × per-wave MAC volume, derated by the
    coarse square-root blocking-efficiency rule), a per-split fixup
    penalty proportional to the accumulator size, and a fixed per-CTA
    overhead.  Deliberately omits the memory roofline and spin-wait
    serialization — the omissions that make the ensemble's selections
    imperfect in the same way the paper measures for cuBLAS.

    The vectorized twin used by the corpus engine is
    :func:`repro.harness.vectorized._proxy_scores`; the two must rank
    variants identically.
    """
    blk = variant.blocking
    grid = TileGrid(problem, blk)
    t = grid.num_tiles
    ipt = grid.iters_per_tile
    s = min(variant.s, ipt)
    waves = ceil_div(t * s, gpu.num_sms)
    share = ceil_div(ipt, s)
    default_macs = (
        problem.dtype.default_blocking[0]
        * problem.dtype.default_blocking[1]
        * problem.dtype.default_blocking[2]
    )
    # Coarse rule-of-thumb efficiency: sqrt of relative tile work, capped.
    eff = min(1.0, (blk.tile_macs / default_macs) ** 0.5)
    compute = waves * share * blk.tile_macs / eff
    fixup = t * (s - 1) * blk.blk_m * blk.blk_n * _FIXUP_MAC_EQUIV
    overhead = t * s * _CTA_MAC_EQUIV
    return compute + fixup + overhead


def heuristic_select(
    variants: "list[KernelVariant]", problem: GemmProblem, gpu: GpuSpec
) -> KernelVariant:
    """Pick the proxy-best variant (deterministic; ties -> first listed).

    This is the cuBLAS-like ensemble's *planning* entry point: it never
    simulates, it only ranks by :func:`proxy_score`.  Callers price the
    winner separately on the evaluation side, so the selection error this
    heuristic embodies is observable as end-to-end slowness.
    """
    best = None
    best_score = float("inf")
    for v in variants:
        sc = proxy_score(v, problem, gpu)
        if sc < best_score:
            best, best_score = v, sc
    return best
