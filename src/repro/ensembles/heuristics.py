"""The proxy-cost selection heuristic of the cuBLAS-like ensemble.

cuBLAS is closed source; what the paper establishes about it is structural:
it ships a large ensemble of data-parallel and fixed-split variants and
uses "carefully trained heuristics" that nonetheless "struggle to
consistently identify the optimal configuration for arbitrary problems",
producing a wider performance spread than an oracle over the *same*
blocking factors (Figures 5b/5c, 6b/6c).

We reproduce that failure mode mechanistically rather than by injecting
noise: the heuristic ranks variants by a *proxy* cost that captures the
first-order effects a selection heuristic can afford to compute —

* wave count x per-wave MAC volume (quantization),
* a per-split fixup penalty proportional to the tile's accumulator size,
* a fixed per-CTA launch overhead,
* a *coarse* per-blocking efficiency derating (a square-root-of-work rule
  of thumb, as a vendor would distill from large-GEMM microbenchmarks);

— while omitting exactly what real heuristics also get wrong:

* the memory roofline (bandwidth-bound small problems),
* the true (steeper) pipeline-efficiency curve of small blocking factors,
* spin-wait serialization of deep splits.

Selections are therefore good on bulky compute-bound shapes and
systematically imperfect on skinny, small, or bandwidth-bound ones — the
same qualitative behaviour the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gemm.problem import GemmProblem
from ..gemm.tiling import TileGrid, ceil_div
from ..gpu.spec import GpuSpec
from .kernels import KernelVariant

__all__ = ["ProxyScore", "proxy_score", "heuristic_select"]

# Proxy fixup penalty: equivalent MACs charged per accumulator element per
# extra split (stands in for the partial store + reload the heuristic
# cannot time precisely).
_FIXUP_MAC_EQUIV = 24.0

# Proxy per-CTA overhead in MAC-equivalents (launch + prologue).
_CTA_MAC_EQUIV = 4096.0


@dataclass(frozen=True)
class ProxyScore:
    variant: KernelVariant
    score: float


def proxy_score(
    variant: KernelVariant, problem: GemmProblem, gpu: GpuSpec
) -> float:
    """Heuristic cost proxy (arbitrary units; lower is better)."""
    blk = variant.blocking
    grid = TileGrid(problem, blk)
    t = grid.num_tiles
    ipt = grid.iters_per_tile
    s = min(variant.s, ipt)
    waves = ceil_div(t * s, gpu.num_sms)
    share = ceil_div(ipt, s)
    default_macs = (
        problem.dtype.default_blocking[0]
        * problem.dtype.default_blocking[1]
        * problem.dtype.default_blocking[2]
    )
    # Coarse rule-of-thumb efficiency: sqrt of relative tile work, capped.
    eff = min(1.0, (blk.tile_macs / default_macs) ** 0.5)
    compute = waves * share * blk.tile_macs / eff
    fixup = t * (s - 1) * blk.blk_m * blk.blk_n * _FIXUP_MAC_EQUIV
    overhead = t * s * _CTA_MAC_EQUIV
    return compute + fixup + overhead


def heuristic_select(
    variants: "list[KernelVariant]", problem: GemmProblem, gpu: GpuSpec
) -> KernelVariant:
    """Pick the proxy-best variant (deterministic; ties -> first listed)."""
    best = None
    best_score = float("inf")
    for v in variants:
        sc = proxy_score(v, problem, gpu)
        if sc < best_score:
            best, best_score = v, sc
    return best
