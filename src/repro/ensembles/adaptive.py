"""Stream-K++ adaptive selection: Bloom-guarded winner cache + fallback.

Stream-K++ (PAPERS.md, arxiv 2408.11417) observes that production GEMM
traffic is dominated by repeat shapes, and splits selection accordingly:
a compact Bloom filter answers "seen this shape before?", repeats go
straight to a remembered *winner* (schedule family + grid size), and
only novel shapes pay for model/ensemble evaluation.  This module is
that reproduction on top of the repo's planning layer:

* :class:`AdaptiveSelector` — the filter-guarded winner table.  A
  :class:`~repro.plan.filtercache.CountingBloomFilter` over the
  ``(m, n, k, dtype, gpu-fingerprint)`` key gates an exact-keyed LRU
  winner table; LRU eviction *deletes* the evicted key from the
  counting filter so the filter tracks the table.  The correctness
  contract (``tests/ensembles/test_adaptive.py``): a filter false
  positive can only ever cost one winner-table probe — selection always
  ends in either a remembered winner or a fresh, correct evaluation,
  never a wrong plan.  With a zero-capacity filter every query falls
  through, making the selector bitwise identical to plain
  :func:`~repro.plan.core.plan_query`.
* Evaluators — what a miss pays.  :func:`analytic_evaluator` runs just
  the planning arithmetic (the serving hot path);
  :func:`ensemble_evaluator` additionally measures every cuBLAS-style
  variant and remembers whichever of {Stream-K plan, ensemble variant}
  is fastest — the oracle-quality first visit that makes repeat-shape
  regret zero.
* :func:`replay_adaptive` — the ``repro adapt`` engine: replays a
  deterministic Zipf trace and reports hit rate, hit-path selection
  latency vs cold ``plan_query``, filter memory vs realized FP rate,
  and per-strategy regret (adaptive / pure-analytic / cuBLAS heuristic,
  each against the oracle makespan).

Counters (:mod:`repro.obs.counters`): ``adaptive.hit`` /
``adaptive.miss`` (winner served vs evaluated), ``adaptive.filter_fp``
(filter said yes, table said no), ``adaptive.evicted`` (LRU evictions,
each mirrored by a filter delete).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig, get_dtype_config
from ..gemm.problem import GemmProblem
from ..gpu.spec import DEFAULT_GPU_NAME, GpuSpec, resolve_gpu
from ..model.paramcache import calibrate_cached, gpu_fingerprint
from ..gemm.tiling import Blocking
from ..obs.counters import inc_counter
from ..plan.core import Plan, plan_query
from ..plan.filtercache import BloomParams, CountingBloomFilter, shape_key
from .cublas import cublas_select, cublas_variants
from .kernels import variant_time_s

__all__ = [
    "AdaptiveConfig",
    "AdaptiveSelector",
    "Selection",
    "Winner",
    "analytic_evaluator",
    "ensemble_evaluator",
    "replay_adaptive",
]

#: Default precision (mirrors the serving layer's default).
_DEFAULT_DTYPE_NAME = "fp16_fp32"


@dataclass(frozen=True)
class Winner:
    """The remembered decision for one shape: family, grid size, time.

    ``family`` is a plan kind (:data:`repro.plan.core.KIND_NAMES`) or an
    ensemble variant name; ``time_s`` is the winner's predicted kernel
    time — by construction of :func:`ensemble_evaluator`, the *oracle*
    makespan for that shape.  ``plan`` carries the full analytic plan
    alongside (excluded from equality, like plan provenance) so the
    serving integration can hand back a complete :class:`Plan`.
    """

    family: str
    g: int
    time_s: float
    plan: "Plan | None" = field(default=None, compare=False)


@dataclass(frozen=True)
class Selection:
    """One :meth:`AdaptiveSelector.select` outcome."""

    m: int
    n: int
    k: int
    winner: Winner
    #: ``"winner"`` for a filter-guarded table hit, ``"model"`` for a
    #: fresh evaluator run (novel or evicted shape).
    source: str

    @property
    def plan(self) -> "Plan | None":
        """The analytic plan riding with the winner (may be ``None``
        only for custom evaluators that do not attach one)."""
        return self.winner.plan


@dataclass(frozen=True)
class AdaptiveConfig:
    """Geometry of one :class:`AdaptiveSelector` (filter + table)."""

    #: Counting-filter slots; 0 disables the fast path entirely.
    filter_bits: int = 1 << 16
    #: Hash functions per key.
    num_hashes: int = 4
    #: Bits per counting slot (saturating at ``2**bits - 1``).
    counter_bits: int = 4
    #: Hash seed: same seed, same slots, every process.
    filter_seed: int = 0
    #: Winner-table LRU capacity; evictions delete from the filter.
    max_winners: int = 65536

    def __post_init__(self) -> None:
        if self.max_winners < 0:
            raise ConfigurationError("max_winners must be >= 0")

    def bloom_params(self) -> BloomParams:
        return BloomParams(
            bits=self.filter_bits,
            num_hashes=self.num_hashes,
            counter_bits=self.counter_bits,
            seed=self.filter_seed,
        )


# --------------------------------------------------------------------- #
# Evaluators: what a miss pays                                          #
# --------------------------------------------------------------------- #


def analytic_evaluator(dtype: DtypeConfig, gpu: GpuSpec, params=None):
    """Miss path = one :func:`plan_query`: pure planning arithmetic.

    The winner is the plan's own (kind, g, time) — this is the serving
    integration's evaluator, where a miss must stay cheap.
    """
    if params is None:
        params = calibrate_cached(
            gpu, Blocking(*dtype.default_blocking), dtype
        )

    def evaluate(m: int, n: int, k: int) -> Winner:
        plan = plan_query(m, n, k, dtype, gpu, params=params)
        return Winner(family=plan.kind, g=plan.g, time_s=plan.time_s, plan=plan)

    return evaluate


def ensemble_evaluator(dtype: DtypeConfig, gpu: GpuSpec, params=None):
    """Miss path = plan *and* measure the whole cuBLAS-style ensemble.

    Every variant is priced with :func:`variant_time_s`; the remembered
    winner is the fastest of {Stream-K plan, ensemble variants} (ties
    go to Stream-K), i.e. the oracle decision for that shape — which is
    exactly why adaptive repeat-shape regret is zero.  Expensive first
    visit, oracle-quality repeats: the Stream-K++ trade.
    """
    if params is None:
        params = calibrate_cached(
            gpu, Blocking(*dtype.default_blocking), dtype
        )
    variants = cublas_variants(dtype)

    def evaluate(m: int, n: int, k: int) -> Winner:
        plan = plan_query(m, n, k, dtype, gpu, params=params)
        family, g, best = plan.kind, plan.g, plan.time_s
        problem = GemmProblem(m, n, k, dtype=dtype)
        for variant in variants:
            t = variant_time_s(variant, problem, gpu)
            if t < best:
                family, g, best = variant.name, variant.s, t
        return Winner(family=family, g=g, time_s=best, plan=plan)

    return evaluate


# --------------------------------------------------------------------- #
# The selector                                                          #
# --------------------------------------------------------------------- #


class AdaptiveSelector:
    """Filter-guarded winner cache with model fallback (Stream-K++).

    Selection for one query:

    1. **Filter probe** — the counting Bloom filter answers "possibly
       seen".  A ``False`` is authoritative (no false negatives): go
       straight to the evaluator.
    2. **Winner table** — on a filter ``True``, probe the exact-keyed
       LRU table.  A hit serves the remembered winner in microseconds;
       a miss was a filter false positive (``adaptive.filter_fp``) and
       costs only that probe.
    3. **Fallback** — run the evaluator, remember the winner (filter
       insert + table put, LRU-evicting and filter-deleting the
       coldest entry at capacity).

    Not thread-safe by itself; the serving integration guards it with
    the binding's lock discipline (one selector per (dtype, gpu)
    binding, mutations on the batcher thread).
    """

    def __init__(
        self,
        dtype: "DtypeConfig | str",
        gpu: "GpuSpec | str",
        config: "AdaptiveConfig | None" = None,
        evaluator=None,
    ):
        self.dtype = (
            get_dtype_config(dtype) if isinstance(dtype, str) else dtype
        )
        self.gpu = resolve_gpu(gpu)
        self.config = config or AdaptiveConfig()
        self.fingerprint = gpu_fingerprint(self.gpu)
        self.filter = CountingBloomFilter(self.config.bloom_params())
        self._winners: "OrderedDict[tuple[int, int, int], Winner]" = (
            OrderedDict()
        )
        self._evaluate = evaluator or analytic_evaluator(self.dtype, self.gpu)

    def _key(self, m: int, n: int, k: int) -> bytes:
        return shape_key(m, n, k, self.dtype.name, self.fingerprint)

    # -- fast path ----------------------------------------------------- #

    def probe(self, m: int, n: int, k: int) -> "Winner | None":
        """Winner for a previously-seen shape, or ``None`` (no evaluation).

        ``None`` covers both authoritative filter misses and filter
        false positives whose table entry was evicted or never existed —
        in every case the caller falls back to a *correct* evaluation,
        which is the whole false-positive safety argument.
        """
        if not self.filter.query(self._key(m, n, k)):
            return None
        winner = self._winners.get((int(m), int(n), int(k)))
        if winner is None:
            inc_counter("adaptive.filter_fp")
            return None
        self._winners.move_to_end((int(m), int(n), int(k)))
        return winner

    def probe_plan(self, m: int, n: int, k: int) -> "Plan | None":
        """:meth:`probe`, decoded to the remembered plan for serving.

        The returned copy is stamped ``provenance="cache:adaptive"`` so
        the wire protocol reports it as a cache hit; provenance is
        excluded from plan equality, so it still compares equal to a
        cold :func:`plan_query`.
        """
        winner = self.probe(m, n, k)
        if winner is None or winner.plan is None:
            return None
        return replace(winner.plan, provenance="cache:adaptive")

    # -- write path ---------------------------------------------------- #

    def remember(self, m: int, n: int, k: int, winner: Winner) -> None:
        """Insert/refresh one shape's winner (filter + LRU table).

        A zero-capacity filter makes the table unreachable (every probe
        misses at the filter), so remembering is a no-op there — the
        degenerate selector holds no state at all.
        """
        if self.config.max_winners == 0 or self.filter.params.bits == 0:
            return
        key = (int(m), int(n), int(k))
        if key in self._winners:
            self._winners[key] = winner
            self._winners.move_to_end(key)
            return
        self.filter.insert(self._key(m, n, k))
        self._winners[key] = winner
        if len(self._winners) > self.config.max_winners:
            (em, en, ek), _ = self._winners.popitem(last=False)
            self.filter.delete(self._key(em, en, ek))
            inc_counter("adaptive.evicted")

    def remember_plan(self, plan: Plan) -> None:
        """Remember a freshly-planned query (the serving miss path).

        Foreign plans — wrong engine version or another device's
        fingerprint — are refused, same rule as the plan cache.
        """
        if plan.gpu_fingerprint != self.fingerprint:
            return
        if plan.dtype_name != self.dtype.name:
            return
        self.remember(
            plan.m,
            plan.n,
            plan.k,
            Winner(family=plan.kind, g=plan.g, time_s=plan.time_s, plan=plan),
        )

    def forget(self, m: int, n: int, k: int) -> None:
        """Drop one shape (table delete mirrored into the filter)."""
        key = (int(m), int(n), int(k))
        if self._winners.pop(key, None) is not None:
            self.filter.delete(self._key(m, n, k))

    # -- full selection ------------------------------------------------ #

    def select(self, m: int, n: int, k: int) -> Selection:
        """Serve a repeat from the winner table or evaluate and remember."""
        winner = self.probe(m, n, k)
        if winner is not None:
            inc_counter("adaptive.hit")
            return Selection(int(m), int(n), int(k), winner, source="winner")
        inc_counter("adaptive.miss")
        winner = self._evaluate(int(m), int(n), int(k))
        self.remember(m, n, k, winner)
        return Selection(int(m), int(n), int(k), winner, source="model")

    def __len__(self) -> int:
        return len(self._winners)


# --------------------------------------------------------------------- #
# Replay: the `repro adapt` engine                                      #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class AdaptiveReplayConfig:
    """Knobs of one ``repro adapt`` replay (deterministic given seed)."""

    requests: int = 20000
    universe: int = 512
    zipf_s: float = 1.1
    seed: int = 0
    dtype: str = _DEFAULT_DTYPE_NAME
    gpu: str = DEFAULT_GPU_NAME
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)
    #: ``"ensemble"`` (oracle-quality first visit, the Stream-K++ mode)
    #: or ``"analytic"`` (planning arithmetic only).
    evaluator: str = "ensemble"

    def __post_init__(self) -> None:
        if self.requests <= 0 or self.universe <= 0:
            raise ConfigurationError("requests and universe must be positive")
        if self.evaluator not in ("ensemble", "analytic"):
            raise ConfigurationError(
                "evaluator must be 'ensemble' or 'analytic', got %r"
                % (self.evaluator,)
            )


def _pct_us(values, q):
    return float(np.percentile(values, q)) * 1e6 if len(values) else None


def replay_adaptive(config: "AdaptiveReplayConfig | None" = None) -> dict:
    """Replay a Zipf trace through the adaptive selector and report.

    The report (the JSON behind ``repro adapt --out`` and the payload
    ``bench_adaptive`` aggregates) covers the four headline claims:

    * **hit rate** — fraction of requests served from the winner table;
    * **selection latency** — hit-path p50/p99 vs the *cold*
      ``plan_query`` p50/p99 (measured per distinct universe shape, no
      cache anywhere) — the >=5x contract;
    * **memory vs FP** — filter footprint, analytic FP bound at the
      realized insert count, and the FP rate measured on a disjoint
      probe corpus (seed+1, overlaps removed);
    * **regret** — mean/p99 of ``(chosen - oracle) / oracle`` per
      request for adaptive, the pure-analytic path, and the
      cuBLAS-style heuristic.  The oracle is the fastest of {Stream-K
      plan, every ensemble variant} per shape — what
      :func:`ensemble_evaluator` remembers, so adaptive regret is zero
      by construction in ensemble mode.
    """
    from ..corpus.generator import CorpusSpec, generate_corpus
    from ..plan.loadgen import LoadgenConfig, zipf_trace

    config = config or AdaptiveReplayConfig()
    dtype = get_dtype_config(config.dtype)
    gpu = resolve_gpu(config.gpu)
    params = calibrate_cached(
        gpu, Blocking(*dtype.default_blocking), dtype
    )
    make = ensemble_evaluator if config.evaluator == "ensemble" else analytic_evaluator
    selector = AdaptiveSelector(
        dtype, gpu, config.adaptive, evaluator=make(dtype, gpu, params=params)
    )

    trace = zipf_trace(
        LoadgenConfig(
            requests=config.requests,
            universe=config.universe,
            zipf_s=config.zipf_s,
            seed=config.seed,
            dtype=config.dtype,
            gpu=config.gpu,
        )
    )

    # Cold plan_query latency per distinct universe shape: the baseline
    # every repeat-shape request would pay without the adaptive layer.
    universe = np.unique(trace, axis=0)
    cold_lat = []
    for m, n, k in universe:
        t0 = time.perf_counter()
        plan_query(int(m), int(n), int(k), dtype, gpu, params=params)
        cold_lat.append(time.perf_counter() - t0)

    hit_lat, miss_lat = [], []
    oracle_by_shape: "dict[tuple[int, int, int], float]" = {}
    cublas_by_shape: "dict[tuple[int, int, int], float]" = {}
    analytic_by_shape: "dict[tuple[int, int, int], float]" = {}
    regret_adaptive, regret_analytic, regret_cublas = [], [], []
    for row in trace:
        m, n, k = (int(row[0]), int(row[1]), int(row[2]))
        t0 = time.perf_counter()
        sel = selector.select(m, n, k)
        dt = time.perf_counter() - t0
        (hit_lat if sel.source == "winner" else miss_lat).append(dt)

        shape = (m, n, k)
        if shape not in oracle_by_shape:
            # The evaluator's winner *is* the oracle in ensemble mode;
            # in analytic mode price the ensemble once for honest regret.
            if config.evaluator == "ensemble":
                oracle = sel.winner.time_s
            else:
                problem = GemmProblem(m, n, k, dtype=dtype)
                oracle = min(
                    [sel.winner.plan.time_s]
                    + [
                        variant_time_s(v, problem, gpu)
                        for v in cublas_variants(dtype)
                    ]
                )
            oracle_by_shape[shape] = oracle
            analytic_by_shape[shape] = (
                sel.winner.plan.time_s
                if sel.winner.plan is not None
                else sel.winner.time_s
            )
            cublas_by_shape[shape] = cublas_select(
                GemmProblem(m, n, k, dtype=dtype), gpu
            ).time_s
        oracle = oracle_by_shape[shape]
        regret_adaptive.append((sel.winner.time_s - oracle) / oracle)
        regret_analytic.append((analytic_by_shape[shape] - oracle) / oracle)
        regret_cublas.append((cublas_by_shape[shape] - oracle) / oracle)

    # Realized FP rate on a disjoint probe set (fresh corpus, overlaps
    # with the traffic universe removed — every True is a false alarm).
    seen = {tuple(int(v) for v in row) for row in universe}
    probe = generate_corpus(
        CorpusSpec(size=config.universe, seed=config.seed + 1)
    )
    probe_keys = [
        shape_key(int(m), int(n), int(k), dtype.name, selector.fingerprint)
        for m, n, k in probe
        if (int(m), int(n), int(k)) not in seen
    ]
    measured_fp = selector.filter.measured_fp_rate(probe_keys)
    analytic_fp = selector.filter.analytic_fp_rate()

    completed = len(hit_lat) + len(miss_lat)
    hit_p99 = _pct_us(hit_lat, 99)
    cold_p99 = _pct_us(cold_lat, 99)
    return {
        "requests": config.requests,
        "universe": config.universe,
        "distinct_shapes": int(universe.shape[0]),
        "zipf_s": config.zipf_s,
        "seed": config.seed,
        "dtype": config.dtype,
        "gpu": config.gpu,
        "evaluator": config.evaluator,
        "hits": len(hit_lat),
        "misses": len(miss_lat),
        "hit_rate": (len(hit_lat) / completed) if completed else None,
        "hit_p50_us": _pct_us(hit_lat, 50),
        "hit_p99_us": hit_p99,
        "miss_p50_us": _pct_us(miss_lat, 50),
        "miss_p99_us": _pct_us(miss_lat, 99),
        "cold_plan_p50_us": _pct_us(cold_lat, 50),
        "cold_plan_p99_us": cold_p99,
        "p99_speedup_hit_vs_cold": (
            cold_p99 / hit_p99 if hit_p99 and cold_p99 else None
        ),
        "regret": {
            "adaptive_mean": float(np.mean(regret_adaptive)),
            "adaptive_p99": float(np.percentile(regret_adaptive, 99)),
            "analytic_mean": float(np.mean(regret_analytic)),
            "analytic_p99": float(np.percentile(regret_analytic, 99)),
            "cublas_mean": float(np.mean(regret_cublas)),
            "cublas_p99": float(np.percentile(regret_cublas, 99)),
        },
        "filter": {
            "bits": selector.filter.params.bits,
            "num_hashes": selector.filter.params.num_hashes,
            "counter_bits": selector.filter.params.counter_bits,
            "seed": selector.filter.params.seed,
            "memory_bytes": selector.filter.memory_bytes,
            "inserted": selector.filter.inserted,
            "saturations": selector.filter.saturations,
            "analytic_fp_rate": analytic_fp,
            "measured_fp_rate": measured_fp,
            "probe_keys": len(probe_keys),
        },
        "winners": len(selector),
        "max_winners": config.adaptive.max_winners,
    }
