"""The idealized data-parallel oracle (Section 6, comparison 3).

"An idealized oracle that will always select the highest performing
data-parallel CUTLASS blocking factor to execute for a given GEMM
instance."  The oracle *measures* every variant (here: evaluates each
variant's simulated time) and takes the best — no heuristic error by
construction, so its performance spread is the floor of what any
tile-based ensemble selection can achieve.

Plan/evaluate boundary: unlike the proxy heuristic
(:mod:`repro.ensembles.heuristics`), which plans *without* evaluating,
the oracle is defined by crossing the boundary — it runs the evaluation
side (:func:`repro.ensembles.kernels.variant_time_s`) for **every**
candidate and selects on measured results.  That is what makes it an
upper bound no pure planner can beat, and also what makes it too
expensive to serve: the serving daemon (:mod:`repro.plan.service`)
fronts the pure planner instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gemm.problem import GemmProblem
from ..gpu.spec import GpuSpec
from .cutlass import oracle_variants
from .kernels import KernelVariant, variant_time_s

__all__ = ["OracleChoice", "oracle_select"]


@dataclass(frozen=True)
class OracleChoice:
    """The oracle's pick and the full set of evaluated times."""

    variant: KernelVariant
    time_s: float
    all_times: "dict[str, float]"


def oracle_select(problem: GemmProblem, gpu: GpuSpec) -> OracleChoice:
    """Evaluate every oracle variant and return the fastest.

    Exhaustive measurement, not prediction: each candidate blocking's
    simulated time is computed via
    :func:`repro.ensembles.kernels.variant_time_s` and the argmin wins
    (ties -> first listed, deterministic).  ``all_times`` preserves the
    full sweep for the spread figures.
    """
    times = {}
    best = None
    best_t = float("inf")
    for variant in oracle_variants(problem.dtype):
        t = variant_time_s(variant, problem, gpu)
        times[variant.name] = t
        if t < best_t:
            best, best_t = variant, t
    return OracleChoice(variant=best, time_s=best_t, all_times=times)
