"""The shipped Stream-K library: ONE kernel per precision + a tiny model.

This is the artifact the paper argues for (Section 5): a single Stream-K
hybrid kernel per precision at the ideal blocking factor, configured at
launch by the analytical grid-size model whose four constants were
calibrated once per architecture.  Contrast with
:mod:`repro.ensembles.cublas`'s ~24 kernels + trained selection heuristics.

Planning regimes (mirroring :func:`repro.schedules.hybrid.two_tile_schedule`):

==============================  ========================================
tiles % p == 0                  pure data-parallel waves (``g = min(p,t)``)
tiles < p                       basic Stream-K, ``g`` from the A.1 model
otherwise                       two-tile Stream-K + DP hybrid, ``g = p``
==============================  ========================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gemm.dtypes import DtypeConfig
from ..gemm.problem import GemmProblem
from ..gemm.tiling import Blocking, TileGrid
from ..gpu.analytic import (
    basic_streamk_makespan,
    persistent_dp_makespan,
    two_tile_hybrid_makespan,
)
from ..gpu.costmodel import KernelCostModel
from ..gpu.memory import AnalyticalMemoryModel, TrafficBreakdown
from ..gpu.spec import GpuSpec
from ..model.cost import StreamKModelParams
from ..model.paramcache import calibrate_cached
from ..obs.profiler import profiled
from ..plan.core import plan_query
from ..schedules.base import Schedule
from ..schedules.hybrid import two_tile_schedule

__all__ = ["StreamKPlan", "StreamKLibrary"]


@dataclass(frozen=True)
class StreamKPlan:
    """Launch plan for one problem: regime, grid size, traffic profile."""

    kind: str  # "data_parallel" | "basic_stream_k" | "two_tile"
    g: int
    num_tiles: int
    iters_per_tile: int
    k_aligned_fraction: float
    fixup_stores: int


class StreamKLibrary:
    """One precision's Stream-K kernel plus its compiled model constants."""

    def __init__(
        self,
        gpu: GpuSpec,
        dtype: DtypeConfig,
        params: "StreamKModelParams | None" = None,
        blocking: "Blocking | None" = None,
    ):
        """``blocking`` defaults to the precision's shipped factor; the
        two-kernel ensemble (:mod:`repro.ensembles.streamk_duo`) passes an
        alternate one.  Efficiency/peak anchoring always follows the true
        ``dtype``."""
        self.gpu = gpu
        self.dtype = dtype
        self.blocking = blocking or Blocking(*dtype.default_blocking)
        self.cost = KernelCostModel(gpu=gpu, blocking=self.blocking, dtype=dtype)
        # "Compiled statically into the library": calibrated once per
        # architecture and persisted, so cold processes skip the simulator
        # microbenchmarks (see repro.model.paramcache).
        self.params = params if params is not None else calibrate_cached(
            gpu, self.blocking, dtype
        )

    # ------------------------------------------------------------------ #
    # Planning                                                            #
    # ------------------------------------------------------------------ #

    @profiled("streamk_plan")
    def plan(self, problem: GemmProblem) -> StreamKPlan:
        """Pure-arithmetic launch plan (no schedule materialization).

        Delegates to the planning layer's :func:`repro.plan.core.plan_query`
        — the same one-row :func:`~repro.plan.core.plan_batch` the serving
        daemon and the corpus engine run — so a library plan, a served
        plan, and a corpus-sweep row can never disagree.
        """
        decision = plan_query(
            problem.m,
            problem.n,
            problem.k,
            self.dtype,
            self.gpu,
            params=self.params,
            blocking=self.blocking,
        )
        return StreamKPlan(
            kind=decision.kind,
            g=decision.g,
            num_tiles=decision.num_tiles,
            iters_per_tile=decision.iters_per_tile,
            k_aligned_fraction=decision.k_aligned_fraction,
            fixup_stores=decision.fixup_stores,
        )

    @profiled("streamk_build_schedule")
    def build_schedule(self, problem: GemmProblem) -> Schedule:
        """Materialize the planned schedule (figures, examples, tests)."""
        grid = TileGrid(problem, self.blocking)
        plan = self.plan(problem)
        g_small = plan.g if plan.kind == "basic_stream_k" else None
        return two_tile_schedule(grid, self.gpu.num_sms, g_small=g_small)

    # ------------------------------------------------------------------ #
    # Timing (closed-form corpus path)                                    #
    # ------------------------------------------------------------------ #

    def makespan_cycles(self, problem: GemmProblem) -> float:
        grid = TileGrid(problem, self.blocking)
        t, ipt, p = grid.num_tiles, grid.iters_per_tile, self.gpu.num_sms
        plan = self.plan(problem)
        if plan.kind == "data_parallel":
            return persistent_dp_makespan(t, p, ipt, self.cost)
        if plan.kind == "basic_stream_k":
            return basic_streamk_makespan(t, plan.g, ipt, self.cost)
        return two_tile_hybrid_makespan(t, p, ipt, self.cost)

    def traffic(self, problem: GemmProblem) -> TrafficBreakdown:
        grid = TileGrid(problem, self.blocking)
        plan = self.plan(problem)
        facade = _PlanFacade(grid, plan)
        return AnalyticalMemoryModel().traffic(facade, self.gpu, self.cost)

    def time_s(self, problem: GemmProblem) -> float:
        """Roofline-composed kernel time for one problem."""
        plan = self.plan(problem)
        compute = self.makespan_cycles(problem) / self.gpu.clock_hz
        memory = self.traffic(problem).total / float(
            self.gpu.achieved_bandwidth(plan.g)
        )
        return max(compute, memory) + self.gpu.launch_latency_s

    def tflops(self, problem: GemmProblem) -> float:
        return problem.flops / self.time_s(problem) / 1e12


class _PlanFacade:
    """Duck-typed Schedule stand-in for the analytical memory model."""

    def __init__(self, grid: TileGrid, plan: StreamKPlan):
        self.grid = grid
        self.g = plan.g
        self.k_aligned_fraction = plan.k_aligned_fraction
        self.total_fixup_stores = plan.fixup_stores


def _region_fixup_profile(
    region_iters: int, g: int, ipt: int
) -> "tuple[int, bool]":
    """(#CTAs that store partials, whether all shares are tile-aligned)
    for a balanced partition of ``region_iters`` among ``g`` CTAs."""
    g = min(g, region_iters)
    base, rem = divmod(region_iters, g)
    boundaries = np.arange(1, g, dtype=np.int64)
    begins = boundaries * base + np.minimum(boundaries, rem)
    misaligned = int(np.count_nonzero(begins % ipt))
    return misaligned, misaligned == 0
