"""Two-kernel Stream-K ensemble (the paper's Section 6 future work).

"This suggests a few avenues for future work, namely separate
cost-modeling for the memory-bound regime and/or the bundling of a second
Stream-K kernel having smaller tile size into a two-kernel ensemble."

:class:`StreamKDuoLibrary` implements exactly that: the shipped
big-blocking Stream-K kernel plus one *smaller-blocking* Stream-K kernel,
dispatched by a single arithmetic-intensity threshold (no trained
heuristics — one compare).  Small, bandwidth-bound problems get the finer
tiles whose extra parallelism and smaller compulsory over-fetch they
prefer; everything compute-bound keeps the ideal blocking.

The small blocking per precision is the second-largest member of the
paper's oracle set for that precision — a kernel the ensemble libraries
already ship.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig
from ..gemm.problem import GemmProblem
from ..gemm.tiling import Blocking
from ..gpu.spec import GpuSpec
from .cutlass import ORACLE_BLOCKINGS
from .streamk_library import StreamKLibrary, StreamKPlan

__all__ = ["StreamKDuoLibrary", "small_blocking_for"]


def small_blocking_for(dtype: DtypeConfig) -> Blocking:
    """The duo's second blocking: the smallest oracle-set member."""
    try:
        blockings = ORACLE_BLOCKINGS[dtype.name]
    except KeyError:
        raise ConfigurationError(
            "no oracle set (hence no duo small blocking) for %r" % dtype.name
        ) from None
    return Blocking(*min(blockings, key=lambda b: b[0] * b[1] * b[2]))


@dataclass(frozen=True)
class DuoChoice:
    """Which of the two kernels the intensity rule dispatched."""

    kernel: str  # "big" | "small"
    plan: StreamKPlan
    time_s: float


class StreamKDuoLibrary:
    """Two Stream-K kernels + one threshold: still no ensembles/heuristics.

    The dispatch rule is the paper's own compute-bound threshold for the
    precision (150 / 400 ops-per-byte): below it, the small-tile kernel;
    at or above it, the shipped big-tile kernel.
    """

    def __init__(self, gpu: GpuSpec, dtype: DtypeConfig):
        self.gpu = gpu
        self.dtype = dtype
        self.big = StreamKLibrary(gpu, dtype)
        self.small = StreamKLibrary(
            gpu, dtype, blocking=small_blocking_for(dtype)
        )

    @property
    def num_kernels(self) -> int:
        return 2

    def choose(self, problem: GemmProblem) -> str:
        return (
            "big"
            if problem.ops_per_byte >= self.dtype.compute_bound_ops_per_byte
            else "small"
        )

    def plan(self, problem: GemmProblem) -> DuoChoice:
        kernel = self.choose(problem)
        lib = self.big if kernel == "big" else self.small
        return DuoChoice(
            kernel=kernel, plan=lib.plan(problem), time_s=lib.time_s(problem)
        )

    def time_s(self, problem: GemmProblem) -> float:
        lib = self.big if self.choose(problem) == "big" else self.small
        return lib.time_s(problem)

    def build_schedule(self, problem: GemmProblem):
        lib = self.big if self.choose(problem) == "big" else self.small
        return lib.build_schedule(problem)
