"""Library emulations: CUTLASS singletons, the DP oracle, a cuBLAS-like
heuristic ensemble, the shipped Stream-K library, and the Stream-K++
adaptive selector (Bloom-guarded winner cache; docs/ADAPTIVE.md)."""

from .adaptive import (
    AdaptiveConfig,
    AdaptiveReplayConfig,
    AdaptiveSelector,
    Selection,
    Winner,
    analytic_evaluator,
    ensemble_evaluator,
    replay_adaptive,
)
from .cublas import SPLIT_FACTORS, CublasChoice, cublas_select, cublas_variants
from .cutlass import ORACLE_BLOCKINGS, oracle_variants, singleton_variant
from .heuristics import ProxyScore, heuristic_select, proxy_score
from .kernels import KernelVariant, variant_time_s
from .oracle import OracleChoice, oracle_select
from .streamk_duo import DuoChoice, StreamKDuoLibrary, small_blocking_for
from .streamk_library import StreamKLibrary, StreamKPlan

__all__ = [
    "AdaptiveConfig",
    "AdaptiveReplayConfig",
    "AdaptiveSelector",
    "Selection",
    "Winner",
    "analytic_evaluator",
    "ensemble_evaluator",
    "replay_adaptive",
    "CublasChoice",
    "KernelVariant",
    "ORACLE_BLOCKINGS",
    "OracleChoice",
    "ProxyScore",
    "SPLIT_FACTORS",
    "DuoChoice",
    "StreamKDuoLibrary",
    "StreamKLibrary",
    "StreamKPlan",
    "cublas_select",
    "cublas_variants",
    "heuristic_select",
    "oracle_select",
    "oracle_variants",
    "proxy_score",
    "singleton_variant",
    "small_blocking_for",
    "variant_time_s",
]
