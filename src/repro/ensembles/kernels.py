"""Kernel variants: the units libraries select among.

A :class:`KernelVariant` is one compiled GEMM kernel as a library ships it:
a decomposition family plus a blocking factor plus any runtime parameter
(the fixed-split factor).  The ensembles in this subpackage are lists of
variants plus a selection policy; the paper's argument is precisely about
the size and selection complexity of such ensembles versus a single
Stream-K kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..gemm.problem import GemmProblem
from ..gemm.tiling import Blocking, TileGrid
from ..gpu.analytic import data_parallel_makespan, fixed_split_makespan
from ..gpu.costmodel import KernelCostModel
from ..gpu.memory import AnalyticalMemoryModel, TrafficBreakdown
from ..gpu.spec import GpuSpec
from ..schedules.base import Schedule
from ..schedules.data_parallel import data_parallel_schedule
from ..schedules.fixed_split import fixed_split_schedule

__all__ = ["KernelVariant", "variant_time_s"]


@dataclass(frozen=True)
class KernelVariant:
    """One library kernel: family, blocking, and runtime split factor."""

    family: str  # "data_parallel" or "fixed_split"
    blocking: Blocking
    s: int = 1

    def __post_init__(self) -> None:
        if self.family not in ("data_parallel", "fixed_split"):
            raise ConfigurationError(
                "variant family must be data_parallel or fixed_split, got %r"
                % (self.family,)
            )
        if self.s < 1:
            raise ConfigurationError("split factor must be >= 1")
        if self.family == "data_parallel" and self.s != 1:
            raise ConfigurationError("data_parallel variants have s == 1")

    @property
    def name(self) -> str:
        base = "%s_%s" % (self.family, self.blocking)
        return base if self.s == 1 else "%s_s%d" % (base, self.s)

    def build_schedule(self, problem: GemmProblem) -> Schedule:
        """Materialize the variant's schedule for one problem (small-scale
        paths: figures, tests; the corpus harness uses closed forms)."""
        grid = TileGrid(problem, self.blocking)
        if self.family == "data_parallel":
            return data_parallel_schedule(grid)
        return fixed_split_schedule(grid, self.s)

    def makespan_cycles(self, problem: GemmProblem, gpu: GpuSpec) -> float:
        """Closed-form compute makespan on ``gpu`` (see
        :mod:`repro.gpu.analytic` for exactness guarantees per family)."""
        grid = TileGrid(problem, self.blocking)
        cost = KernelCostModel(gpu=gpu, blocking=self.blocking, dtype=problem.dtype)
        if self.family == "data_parallel":
            return data_parallel_makespan(
                grid.num_tiles, gpu.num_sms, grid.iters_per_tile, cost
            )
        return fixed_split_makespan(
            grid.num_tiles, self.s, gpu.num_sms, grid.iters_per_tile, cost
        )

    def traffic(self, problem: GemmProblem, gpu: GpuSpec) -> TrafficBreakdown:
        """Analytical DRAM traffic without materializing work items."""
        grid = TileGrid(problem, self.blocking)
        cost = KernelCostModel(gpu=gpu, blocking=self.blocking, dtype=problem.dtype)
        # A lightweight schedule facade carrying just what the memory model
        # reads: grid geometry, launch width, alignment, fixup stores.
        sched = _TrafficFacade(grid, self)
        return AnalyticalMemoryModel().traffic(sched, gpu, cost)


class _TrafficFacade:
    """Duck-typed stand-in for Schedule in the analytical memory model."""

    def __init__(self, grid: TileGrid, variant: KernelVariant):
        self.grid = grid
        s = min(variant.s, grid.iters_per_tile)
        self.g = grid.num_tiles * s
        self.k_aligned_fraction = 1.0 if s == 1 else 0.0
        self.total_fixup_stores = grid.num_tiles * (s - 1)


def variant_time_s(
    variant: KernelVariant, problem: GemmProblem, gpu: GpuSpec
) -> float:
    """Roofline-composed kernel time of a variant on one problem.

    Memory time is taken against the bandwidth the variant's grid can
    actually pull: a handful of resident CTAs cannot saturate HBM.
    """
    grid = TileGrid(problem, variant.blocking)
    g = grid.num_tiles * min(variant.s, grid.iters_per_tile)
    compute = variant.makespan_cycles(problem, gpu) / gpu.clock_hz
    memory = variant.traffic(problem, gpu).total / float(
        gpu.achieved_bandwidth(g)
    )
    return max(compute, memory) + gpu.launch_latency_s
