"""CUTLASS-like data-parallel kernels: the singleton baselines and the
oracle's variant sets.

The paper compares Stream-K against:

* the **singleton** data-parallel CUTLASS kernel of the same (ideal)
  blocking factor — ``64x64x16`` for FP64 and ``128x128x32`` for FP16->32;
* an **oracle** over the published data-parallel blocking-factor
  specializations (Section 6, "Methodology"):

  - FP64: {32x32x16, 32x64x16, 64x64x16, 64x128x16, 128x128x16}
  - FP16->32: {64x64x64, 64x128x32, 128x128x32, 128x256x32}
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig
from ..gemm.tiling import Blocking
from .kernels import KernelVariant

__all__ = [
    "ORACLE_BLOCKINGS",
    "singleton_variant",
    "oracle_variants",
]

ORACLE_BLOCKINGS: "dict[str, tuple[tuple[int, int, int], ...]]" = {
    "fp64": (
        (32, 32, 16),
        (32, 64, 16),
        (64, 64, 16),
        (64, 128, 16),
        (128, 128, 16),
    ),
    "fp16_fp32": (
        (64, 64, 64),
        (64, 128, 32),
        (128, 128, 32),
        (128, 256, 32),
    ),
    # Extension precisions reuse the mixed-precision ensemble geometry.
    "bf16_fp32": (
        (64, 64, 64),
        (64, 128, 32),
        (128, 128, 32),
        (128, 256, 32),
    ),
    "fp32": (
        (64, 64, 32),
        (64, 128, 16),
        (128, 128, 16),
        (128, 256, 16),
    ),
}


def singleton_variant(dtype: DtypeConfig) -> KernelVariant:
    """The single data-parallel kernel at the precision's ideal blocking."""
    return KernelVariant(
        family="data_parallel", blocking=Blocking(*dtype.default_blocking)
    )


def oracle_variants(dtype: DtypeConfig) -> "list[KernelVariant]":
    """The data-parallel specializations the idealized oracle selects among."""
    try:
        blockings = ORACLE_BLOCKINGS[dtype.name]
    except KeyError:
        raise ConfigurationError(
            "no oracle ensemble defined for dtype %r" % (dtype.name,)
        ) from None
    return [
        KernelVariant(family="data_parallel", blocking=Blocking(*b))
        for b in blockings
    ]
