"""cuBLAS-like ensemble: many kernels + a trained-heuristic selector.

The stand-in ensemble pairs every oracle blocking factor with fixed-split
variants at s in {2, 4, 8, 16, 32} in addition to the plain data-parallel
form — structurally matching the paper's description of cuBLAS shipping
"a variety of different data-parallel and fixed-split variants" selected
among 24 algorithms (Section 2).  Selection goes through the proxy-cost
heuristic in :mod:`repro.ensembles.heuristics`; see that module's
docstring for why the heuristic is *deliberately* imperfect in the same
ways real ones are.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gemm.dtypes import DtypeConfig
from ..gemm.problem import GemmProblem
from ..gemm.tiling import Blocking
from ..gpu.spec import GpuSpec
from .cutlass import ORACLE_BLOCKINGS
from .heuristics import heuristic_select
from .kernels import KernelVariant, variant_time_s

__all__ = ["SPLIT_FACTORS", "cublas_variants", "CublasChoice", "cublas_select"]

SPLIT_FACTORS = (2, 4, 8, 16, 32)


def cublas_variants(dtype: DtypeConfig) -> "list[KernelVariant]":
    """The full ensemble: every blocking as DP plus every split factor."""
    variants = []
    for b in ORACLE_BLOCKINGS[dtype.name]:
        blocking = Blocking(*b)
        variants.append(KernelVariant(family="data_parallel", blocking=blocking))
        for s in SPLIT_FACTORS:
            variants.append(
                KernelVariant(family="fixed_split", blocking=blocking, s=s)
            )
    return variants


@dataclass(frozen=True)
class CublasChoice:
    """The heuristic's pick and its simulated execution time."""

    variant: KernelVariant
    time_s: float


def cublas_select(problem: GemmProblem, gpu: GpuSpec) -> CublasChoice:
    """Run the selection heuristic, then *measure* the chosen kernel.

    Mirrors reality: the heuristic commits to one kernel before execution;
    the measured time is whatever that kernel actually achieves.
    """
    variant = heuristic_select(cublas_variants(problem.dtype), problem, gpu)
    return CublasChoice(
        variant=variant, time_s=variant_time_s(variant, problem, gpu)
    )
