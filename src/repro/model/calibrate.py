"""Microbenchmark calibration of the analytical model constants.

The paper determines {a, b, c, d} "empirically via microbenchmarks" once
per architecture.  We do the same against our architecture — the simulator:

* **data-parallel single-tile kernels** at several accumulation depths give
  rows ``time = a + c * I`` (no partials, no fixup);
* **single-tile fixed-split kernels** at several splitting factors give
  rows ``time = a + b + c * ceil(I/s) + d * (s - 1)`` (the owner's
  spin-wait path: its peers' signal, then the serial reduction).

Stacking both families yields an overdetermined linear system in
``(a, b, c, d)`` solved by least squares.  Because the simulator's cost
model is itself built from these four components, the fit recovers them to
machine precision — asserted by :class:`~repro.errors.CalibrationError` on
any residual, which would indicate the executor and the model structure
have diverged.
"""

from __future__ import annotations

import numpy as np

from ..errors import CalibrationError
from ..gemm.dtypes import DtypeConfig
from ..gemm.problem import GemmProblem
from ..gemm.tiling import Blocking, TileGrid
from ..gpu.costmodel import KernelCostModel
from ..gpu.executor import Executor
from ..gpu.spec import GpuSpec
from ..schedules.data_parallel import data_parallel_schedule
from ..schedules.fixed_split import fixed_split_schedule
from .cost import StreamKModelParams

__all__ = ["calibrate", "DEFAULT_DEPTHS", "DEFAULT_SPLITS"]

DEFAULT_DEPTHS = (4, 8, 16, 32, 64)
DEFAULT_SPLITS = (2, 4, 8)

# Accumulation depth used for the fixed-split microbenchmarks.
_SPLIT_DEPTH = 32

# Relative residual beyond which the fit is considered broken.
_MAX_REL_RESIDUAL = 1e-6


def _single_tile_problem(
    blocking: Blocking, dtype: DtypeConfig, depth_iters: int
) -> TileGrid:
    problem = GemmProblem(
        blocking.blk_m,
        blocking.blk_n,
        blocking.blk_k * depth_iters,
        dtype=dtype,
    )
    return TileGrid(problem, blocking)


def calibrate(
    gpu: GpuSpec,
    blocking: Blocking,
    dtype: DtypeConfig,
    depths: "tuple[int, ...]" = DEFAULT_DEPTHS,
    splits: "tuple[int, ...]" = DEFAULT_SPLITS,
) -> StreamKModelParams:
    """Fit {a, b, c, d} for one kernel configuration.

    Runs each microbenchmark through the discrete-event executor and solves
    the resulting linear system.  Raises
    :class:`~repro.errors.CalibrationError` if the system is rank-deficient
    or the fit does not reproduce the measurements.
    """
    if len(depths) < 2:
        raise CalibrationError("need at least two depths to separate a from c")
    if not splits or min(splits) < 2:
        raise CalibrationError("need splitting factors >= 2 to observe b and d")

    cost = KernelCostModel(gpu=gpu, blocking=blocking, dtype=dtype)
    rows = []
    times = []

    # Family 1: data-parallel single tile, varying depth.
    for depth in depths:
        grid = _single_tile_problem(blocking, dtype, depth)
        sched = data_parallel_schedule(grid)
        span = Executor(gpu.total_cta_slots).run(cost.build_tasks(sched)).makespan
        rows.append([1.0, 0.0, float(depth), 0.0])
        times.append(span)

    # Family 2: single tile split s ways (all CTAs co-resident so the
    # owner's spin-wait path is the makespan).  Splits beyond co-residency
    # would multi-wave and corrupt the fit, so they are dropped; at least
    # two must survive to separate b from d.
    usable = tuple(s for s in splits if s <= gpu.total_cta_slots)
    if len(usable) < 2:
        raise CalibrationError(
            "splits %r leave fewer than two within the co-residency bound "
            "%d; b and d are not identifiable" % (splits, gpu.total_cta_slots)
        )
    for s in usable:
        grid = _single_tile_problem(blocking, dtype, _SPLIT_DEPTH)
        sched = fixed_split_schedule(grid, s)
        span = Executor(gpu.total_cta_slots).run(cost.build_tasks(sched)).makespan
        share = -(-_SPLIT_DEPTH // s)
        rows.append([1.0, 1.0, float(share), float(s - 1)])
        times.append(span)

    design = np.asarray(rows, dtype=np.float64)
    y = np.asarray(times, dtype=np.float64)
    if np.linalg.matrix_rank(design) < 4:
        raise CalibrationError(
            "microbenchmark design matrix is rank-deficient; widen the "
            "depth/split sets"
        )
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    a, b, c, d = (float(v) for v in coef)

    residual = np.abs(design @ coef - y)
    rel = float(residual.max() / max(y.max(), 1.0))
    if rel > _MAX_REL_RESIDUAL:
        raise CalibrationError(
            "calibration residual %.3e exceeds %.1e — the executor no "
            "longer matches the a+b+c+d cost structure" % (rel, _MAX_REL_RESIDUAL)
        )
    if c <= 0:
        raise CalibrationError("fit produced non-positive per-iteration cost")

    return StreamKModelParams(
        a=a,
        b=b,
        c=c,
        d=d,
        blocking=blocking.as_tuple,
        dtype_name=dtype.name,
        gpu_name=gpu.name,
    )
