"""Grid-size selection for Stream-K kernels (Section 5.1 + Appendix A.1).

Before launching, the library picks the grid size ``g`` that the analytical
model predicts to be fastest for the problem at hand.  Depending on shape,
the optimum may be maximal parallelism (``g = p``, Figure 8a), no splitting
at all (``g = t``, Figure 8b), or anywhere in between (Figure 8c) — the
strong-scaling proposition of how much extra parallelism pays before fixup
overheads turn it negative.

Candidates are every ``g`` in ``[1, min(p * occupancy, total_iters)]``; the
sweep is a single vectorized model evaluation.  Ties resolve to the
*smallest* grid (fewer splitting seams for the same predicted time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..gemm.tiling import TileGrid
from .cost import StreamKModelParams, predicted_time

__all__ = ["GridSizeDecision", "select_grid_size", "sweep_grid_sizes"]


@dataclass(frozen=True)
class GridSizeDecision:
    """Outcome of a grid-size selection."""

    g: int
    predicted_cycles: float
    candidates: np.ndarray
    predictions: np.ndarray


def sweep_grid_sizes(
    grid: TileGrid, params: StreamKModelParams, max_grid: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Model predictions over every candidate grid size.

    Returns ``(candidates, predicted_cycles)`` — the Figure 8 curve.
    """
    if max_grid <= 0:
        raise ConfigurationError("max_grid must be positive, got %d" % max_grid)
    hi = min(max_grid, grid.total_iters)
    candidates = np.arange(1, hi + 1, dtype=np.int64)
    return candidates, predicted_time(grid, candidates, params)


def select_grid_size(
    grid: TileGrid, params: StreamKModelParams, max_grid: int
) -> GridSizeDecision:
    """Pick the predicted-fastest grid size for one problem.

    ``max_grid`` is the co-residency bound (``p * occupancy``, see
    :func:`repro.gpu.occupancy.max_streamk_grid`).
    """
    candidates, times = sweep_grid_sizes(grid, params, max_grid)
    best = int(np.argmin(times))  # argmin takes the first (smallest g) tie
    return GridSizeDecision(
        g=int(candidates[best]),
        predicted_cycles=float(times[best]),
        candidates=candidates,
        predictions=times,
    )
