"""Grid-size selection for Stream-K kernels (Section 5.1 + Appendix A.1).

Before launching, the library picks the grid size ``g`` that the analytical
model predicts to be fastest for the problem at hand.  Depending on shape,
the optimum may be maximal parallelism (``g = p``, Figure 8a), no splitting
at all (``g = t``, Figure 8b), or anywhere in between (Figure 8c) — the
strong-scaling proposition of how much extra parallelism pays before fixup
overheads turn it negative.

Candidates are every ``g`` in ``[1, min(p * occupancy, total_iters)]``; the
sweep is a single vectorized model evaluation.  Ties resolve to the
*smallest* grid (fewer splitting seams for the same predicted time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..gemm.tiling import TileGrid
from .cost import StreamKModelParams, predicted_time

__all__ = [
    "GridSizeDecision",
    "select_grid_size",
    "select_grid_sizes_batch",
    "sweep_grid_sizes",
]

#: Transient-element budget for the batched argmin: each chunk materializes
#: a handful of (rows x G) float64/int64 arrays, so the chunk row count is
#: chosen to keep roughly this many elements live at once (~64 MB across
#: the ~4 temporaries at 8 bytes each).
_BATCH_ELEMENT_BUDGET = 2_000_000


@dataclass(frozen=True)
class GridSizeDecision:
    """Outcome of a grid-size selection."""

    g: int
    predicted_cycles: float
    candidates: np.ndarray
    predictions: np.ndarray


def sweep_grid_sizes(
    grid: TileGrid, params: StreamKModelParams, max_grid: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Model predictions over every candidate grid size.

    Returns ``(candidates, predicted_cycles)`` — the Figure 8 curve.
    """
    if max_grid <= 0:
        raise ConfigurationError("max_grid must be positive, got %d" % max_grid)
    hi = min(max_grid, grid.total_iters)
    candidates = np.arange(1, hi + 1, dtype=np.int64)
    return candidates, predicted_time(grid, candidates, params)


def select_grid_sizes_batch(
    total_iters: np.ndarray,
    iters_per_tile: np.ndarray,
    params: StreamKModelParams,
    max_grid: int,
    row_chunk: "int | None" = None,
) -> np.ndarray:
    """Batched grid-size selection: one Appendix A.1 argmin per problem.

    The scalar path (:func:`select_grid_size`) sweeps candidates ``g in
    [1, min(max_grid, total_iters)]`` for one problem; this evaluates the
    same model over an ``(N, G)`` candidate matrix and argmins each row in
    one shot — the vectorized twin used by the corpus engine's Regime-B
    fast path.  Element-for-element equal to the per-problem sweep
    (same formula, same smallest-``g`` tie rule).

    Parameters
    ----------
    total_iters, iters_per_tile:
        ``(N,)`` integer arrays (``t * ipt`` and ``ipt`` per problem).
    max_grid:
        Co-residency bound, identical for every problem.
    row_chunk:
        Rows evaluated per chunk.  Defaults to a size that bounds the
        transient ``(rows, G)`` temporaries to a few tens of MB, so the
        sweep never scales its peak memory with the corpus size.
    """
    if max_grid <= 0:
        raise ConfigurationError("max_grid must be positive, got %d" % max_grid)
    total = np.asarray(total_iters, dtype=np.int64)
    ipt = np.asarray(iters_per_tile, dtype=np.int64)
    if total.ndim != 1 or total.shape != ipt.shape:
        raise ConfigurationError(
            "total_iters and iters_per_tile must be equal-length 1-D arrays"
        )
    if total.size == 0:
        return np.empty(0, dtype=np.int64)
    if np.any(total <= 0) or np.any(ipt <= 0):
        raise ConfigurationError("iteration counts must be positive")

    out = np.empty(total.shape[0], dtype=np.int64)
    g_cap = int(min(max_grid, int(total.max())))
    if row_chunk is None:
        row_chunk = max(1, _BATCH_ELEMENT_BUDGET // g_cap)
    for lo in range(0, total.shape[0], row_chunk):
        sl = slice(lo, min(lo + row_chunk, total.shape[0]))
        out[sl] = _select_chunk(total[sl], ipt[sl], params, max_grid)
    return out


def _select_chunk(
    total: np.ndarray, ipt: np.ndarray, params: StreamKModelParams, max_grid: int
) -> np.ndarray:
    """One chunk of the batched sweep; see :func:`select_grid_sizes_batch`."""
    hi = np.minimum(max_grid, total)  # per-problem candidate ceiling
    g = np.arange(1, int(hi.max()) + 1, dtype=np.int64)[None, :]
    ipc = -(-total[:, None] // g)
    peers = -(-ipt[:, None] // ipc)
    time = (
        params.a
        + params.b * (peers > 1)
        + params.c * ipc
        + params.d * (peers - 1)
    )
    time = np.where(g <= hi[:, None], time, np.inf)
    # argmin takes the first (smallest g) tie, matching select_grid_size.
    return 1 + np.argmin(time, axis=1)


def select_grid_size(
    grid: TileGrid, params: StreamKModelParams, max_grid: int
) -> GridSizeDecision:
    """Pick the predicted-fastest grid size for one problem.

    ``max_grid`` is the co-residency bound (``p * occupancy``, see
    :func:`repro.gpu.occupancy.max_streamk_grid`).
    """
    candidates, times = sweep_grid_sizes(grid, params, max_grid)
    best = int(np.argmin(times))  # argmin takes the first (smallest g) tie
    return GridSizeDecision(
        g=int(candidates[best]),
        predicted_cycles=float(times[best]),
        candidates=candidates,
        predictions=times,
    )
