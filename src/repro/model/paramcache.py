"""Persistent calibration cache for :class:`StreamKModelParams`.

The paper calibrates {a, b, c, d} "once per target architecture"; this
module makes the reproduction behave the same way across *processes*.  A
cold process would otherwise re-run the simulator microbenchmarks of
:func:`repro.model.calibrate.calibrate` for every (GPU, blocking, dtype)
combination it touches — wasted work for corpus sweeps, sharded workers,
and repeated CLI invocations.

Two cache levels:

* an in-process memo (exact-fingerprint keyed dict), and
* a versioned on-disk JSON store under ``$REPRO_CACHE_DIR`` (default
  ``~/.cache/repro``), keyed by (GPU fingerprint, blocking, dtype, model
  version).

Invalidation is structural, not temporal: the **GPU fingerprint** hashes
every :class:`~repro.gpu.spec.GpuSpec` field, so any change to the
simulated hardware produces a different key, and
:data:`CALIBRATION_CACHE_VERSION` must be bumped whenever the calibration
procedure or the executor cost structure changes meaning.  Entries whose
version or fingerprint no longer match are ignored (and overwritten on the
next store).

Writes are safe under concurrent writers: each store writes a private
temporary file in the destination directory and publishes it with an
atomic :func:`os.replace`.  A missing or unwritable cache directory
degrades silently to in-memory-only operation.  Set ``REPRO_NO_DISK_CACHE=1``
to disable the disk layer outright; ``wipe_calibration_cache()`` (or
``python -m repro cache --wipe``) clears it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile

from ..gemm.dtypes import DtypeConfig
from ..gemm.tiling import Blocking
from ..gpu.spec import GpuSpec
from ..obs.counters import inc_counter
from ..obs.profiler import span
from .calibrate import calibrate
from .cost import StreamKModelParams

__all__ = [
    "CALIBRATION_CACHE_VERSION",
    "calibrate_cached",
    "default_cache_dir",
    "gpu_fingerprint",
    "load_cached_params",
    "store_params",
    "wipe_calibration_cache",
    "clear_memory_cache",
]

#: Bump whenever :func:`repro.model.calibrate.calibrate` or the executor
#: cost structure changes in a way that alters the fitted constants.
CALIBRATION_CACHE_VERSION = 1

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"
_ENV_NO_DISK = "REPRO_NO_DISK_CACHE"

_MEMORY: "dict[tuple, StreamKModelParams]" = {}


def default_cache_dir() -> str:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(_ENV_CACHE_DIR)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def _disk_enabled() -> bool:
    return os.environ.get(_ENV_NO_DISK, "") not in ("1", "true", "yes")


def gpu_fingerprint(gpu: GpuSpec) -> str:
    """Content hash of every :class:`GpuSpec` field.

    Any change to the simulated hardware (SM count, clocks, MAC rates,
    bandwidth model, ...) yields a new fingerprint and therefore a cache
    miss — the invalidation rule for persisted calibrations.
    """
    payload = json.dumps(dataclasses.asdict(gpu), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _entry_path(
    cache_dir: str, fp: str, blocking: Blocking, dtype: DtypeConfig
) -> str:
    name = "calib_v%d_%s_%dx%dx%d_%s.json" % (
        CALIBRATION_CACHE_VERSION,
        fp[:20],
        blocking.blk_m,
        blocking.blk_n,
        blocking.blk_k,
        dtype.name,
    )
    return os.path.join(cache_dir, "calibration", name)


def _quarantine(path: str) -> None:
    """Move a corrupt calibration artifact aside and count the event.

    Renaming to ``<path>.corrupt`` (kept for post-mortem, never matched
    by the loader again) means the next lookup is a clean miss that
    recomputes and overwrites — instead of re-parsing the same broken
    file on every run forever.  Best-effort: an unrenamable (read-only)
    cache degrades to the old behavior.
    """
    try:
        os.replace(path, path + ".corrupt")
    except OSError:
        pass
    inc_counter("paramcache.corrupt_quarantined")


def load_cached_params(
    gpu: GpuSpec,
    blocking: Blocking,
    dtype: DtypeConfig,
    cache_dir: "str | None" = None,
) -> "StreamKModelParams | None":
    """Load a persisted calibration, or ``None`` on miss/stale/corrupt.

    A *stale* entry (version bump, different GPU fingerprint) is a
    legitimate miss — it is left in place and overwritten by the next
    store.  A *corrupt* entry (unparsable JSON, missing or mistyped
    fields) is quarantined: renamed to ``*.corrupt`` and counted in
    ``paramcache.corrupt_quarantined``.
    """
    fp = gpu_fingerprint(gpu)
    path = _entry_path(cache_dir or default_cache_dir(), fp, blocking, dtype)
    try:
        with open(path) as fh:
            raw = fh.read()
    except OSError:
        return None  # plain miss, not corruption
    try:
        doc = json.loads(raw)
    except ValueError:
        _quarantine(path)
        return None
    try:
        if (
            doc["version"] != CALIBRATION_CACHE_VERSION
            or doc["gpu_fingerprint"] != fp
            or tuple(doc["blocking"]) != blocking.as_tuple
            or doc["dtype"] != dtype.name
        ):
            return None  # stale, will be overwritten on next store
        return StreamKModelParams(
            a=float(doc["a"]),
            b=float(doc["b"]),
            c=float(doc["c"]),
            d=float(doc["d"]),
            blocking=blocking.as_tuple,
            dtype_name=dtype.name,
            gpu_name=str(doc.get("gpu_name", gpu.name)),
        )
    except (KeyError, TypeError, ValueError):
        _quarantine(path)
        return None


def store_params(
    params: StreamKModelParams,
    gpu: GpuSpec,
    cache_dir: "str | None" = None,
) -> "str | None":
    """Persist one calibration atomically; returns the path or ``None``.

    Concurrent writers race benignly: each writes its own temporary file
    and the last :func:`os.replace` wins with a complete document.  Any
    filesystem failure (``ENOSPC``, ``EROFS``, unwritable directory)
    removes the partial temporary file, bumps ``paramcache.write_failed``,
    and degrades to in-memory-only caching instead of propagating.
    """
    fp = gpu_fingerprint(gpu)
    blocking = Blocking(*params.blocking)
    dtype_name = params.dtype_name
    path = _entry_path(
        cache_dir or default_cache_dir(), fp, blocking, _DtypeKey(dtype_name)
    )
    doc = {
        "version": CALIBRATION_CACHE_VERSION,
        "gpu_fingerprint": fp,
        "gpu_name": gpu.name,
        "blocking": list(params.blocking),
        "dtype": dtype_name,
        "a": params.a,
        "b": params.b,
        "c": params.c,
        "d": params.d,
    }
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".calib_", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)  # atomic publish
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        inc_counter("paramcache.write_failed")
        return None
    return path


class _DtypeKey:
    """Minimal duck-type carrying just the ``name`` used in cache keys."""

    def __init__(self, name: str):
        self.name = name


def calibrate_cached(
    gpu: GpuSpec,
    blocking: Blocking,
    dtype: DtypeConfig,
    cache_dir: "str | None" = None,
) -> StreamKModelParams:
    """Calibrated constants through the two-level cache.

    Lookup order: in-process memo -> on-disk store -> run the simulator
    microbenchmarks (and persist the result).  Only the default
    depth/split microbenchmark sets are cached; callers needing custom
    sets should call :func:`repro.model.calibrate.calibrate` directly.
    """
    fp = gpu_fingerprint(gpu)
    key = (fp, blocking.as_tuple, dtype.name)
    params = _MEMORY.get(key)
    if params is not None:
        inc_counter("paramcache.memo_hit")
        return params
    if _disk_enabled():
        params = load_cached_params(gpu, blocking, dtype, cache_dir)
        if params is not None:
            inc_counter("paramcache.disk_hit")
            _MEMORY[key] = params
            return params
    inc_counter("paramcache.miss")
    with span("calibrate"):
        params = calibrate(gpu, blocking, dtype)
    _MEMORY[key] = params
    if _disk_enabled():
        store_params(params, gpu, cache_dir)
    return params


def wipe_calibration_cache(cache_dir: "str | None" = None) -> int:
    """Delete every persisted calibration; returns the number removed."""
    root = os.path.join(cache_dir or default_cache_dir(), "calibration")
    removed = 0
    try:
        entries = os.listdir(root)
    except OSError:
        return 0
    for name in entries:
        if name.startswith("calib_") and name.endswith((".json", ".corrupt")):
            try:
                os.unlink(os.path.join(root, name))
                removed += 1
            except OSError:
                pass
    return removed


def clear_memory_cache() -> None:
    """Drop the in-process memo (tests and calibration-invalidation)."""
    _MEMORY.clear()
