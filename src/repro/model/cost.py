"""The paper's analytical Stream-K runtime model (Appendix A.1).

The runtime of a Stream-K schedule is modeled as the runtime of one of its
tile-outputting CTAs::

    time_cta(g) = a + b * [FixupPeers(g) > 1]
                    + c * ItersPerCta(g)
                    + d * (FixupPeers(g) - 1)

with::

    ItersPerCta(g) = ceil(ceil(m/BLK_M) * ceil(n/BLK_N) * ceil(k/BLK_K) / g)
    FixupPeers(g)  = ceil(ceil(k/BLK_K) / ItersPerCta(g))

The four workload constants are empirical, one set per (blocking factor,
data type, architecture): ``a`` the fixed per-CTA cost (launch, compulsory
misses, output store), ``b`` the conditional partial-store cost, ``c`` the
per-MAC-iteration cost, ``d`` the per-collaborator fixup cost.
:mod:`repro.model.calibrate` recovers them from simulator microbenchmarks,
exactly as the paper recovers them from hardware microbenchmarks.

Everything here is vectorized over ``g`` so grid-size selection sweeps all
candidates in one shot (Figure 8 plots these curves).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..gemm.tiling import TileGrid

__all__ = ["StreamKModelParams", "iters_per_cta", "fixup_peers", "predicted_time"]


@dataclass(frozen=True)
class StreamKModelParams:
    """The empirical workload constants {a, b, c, d}, in cycles.

    Valid for exactly one (blocking, dtype, GPU) combination; the library
    compiles one set per shipped kernel (Section 5.1: "parameters ... need
    only be done once per target architecture").
    """

    a: float
    b: float
    c: float
    d: float
    blocking: "tuple[int, int, int]"
    dtype_name: str
    gpu_name: str

    def __post_init__(self) -> None:
        if self.c <= 0:
            raise ConfigurationError(
                "per-iteration cost c must be positive, got %r" % (self.c,)
            )
        if min(self.a, self.b, self.d) < 0:
            raise ConfigurationError("model constants must be non-negative")


def iters_per_cta(total_iters: int, g: "int | np.ndarray") -> "np.ndarray":
    """``ItersPerCta(g)``: ceil of the aggregate iterations over the grid."""
    g = np.asarray(g, dtype=np.int64)
    if np.any(g <= 0):
        raise ConfigurationError("grid sizes must be positive")
    return -(-total_iters // g)


def fixup_peers(iters_per_tile: int, ipc: "np.ndarray") -> "np.ndarray":
    """``FixupPeers(g)``: CTAs cooperating on one output tile."""
    return -(-iters_per_tile // np.asarray(ipc, dtype=np.int64))


def predicted_time(
    grid: TileGrid, g: "int | np.ndarray", params: StreamKModelParams
) -> "np.ndarray":
    """Modeled Stream-K runtime (cycles) at grid size(s) ``g``.

    Accepts a scalar or an array of candidate grid sizes and returns the
    matching array of predicted CTA runtimes — the curves of Figure 8.
    """
    if tuple(params.blocking) != grid.blocking.as_tuple:
        raise ConfigurationError(
            "model params are for blocking %r, grid uses %r"
            % (params.blocking, grid.blocking.as_tuple)
        )
    total = grid.total_iters
    ipt = grid.iters_per_tile
    ipc = iters_per_cta(total, g)
    peers = fixup_peers(ipt, ipc)
    time = (
        params.a
        + params.b * (peers > 1)
        + params.c * ipc
        + params.d * (peers - 1)
    )
    return time
