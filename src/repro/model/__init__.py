"""Appendix A.1: analytical Stream-K runtime model and grid-size selection."""

from .calibrate import DEFAULT_DEPTHS, DEFAULT_SPLITS, calibrate
from .cost import StreamKModelParams, fixup_peers, iters_per_cta, predicted_time
from .gridsize import GridSizeDecision, select_grid_size, sweep_grid_sizes

__all__ = [
    "DEFAULT_DEPTHS",
    "DEFAULT_SPLITS",
    "GridSizeDecision",
    "StreamKModelParams",
    "calibrate",
    "fixup_peers",
    "iters_per_cta",
    "predicted_time",
    "select_grid_size",
    "sweep_grid_sizes",
]
