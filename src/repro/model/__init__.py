"""Appendix A.1: analytical Stream-K runtime model and grid-size selection."""

from .calibrate import DEFAULT_DEPTHS, DEFAULT_SPLITS, calibrate
from .cost import StreamKModelParams, fixup_peers, iters_per_cta, predicted_time
from .gridsize import (
    GridSizeDecision,
    select_grid_size,
    select_grid_sizes_batch,
    sweep_grid_sizes,
)
from .paramcache import (
    CALIBRATION_CACHE_VERSION,
    calibrate_cached,
    default_cache_dir,
    gpu_fingerprint,
    wipe_calibration_cache,
)

__all__ = [
    "CALIBRATION_CACHE_VERSION",
    "DEFAULT_DEPTHS",
    "DEFAULT_SPLITS",
    "GridSizeDecision",
    "StreamKModelParams",
    "calibrate",
    "calibrate_cached",
    "default_cache_dir",
    "fixup_peers",
    "gpu_fingerprint",
    "iters_per_cta",
    "predicted_time",
    "select_grid_size",
    "select_grid_sizes_batch",
    "sweep_grid_sizes",
    "wipe_calibration_cache",
]
