"""Plain-text rendering of evaluation artifacts (tables, band summaries).

The benchmark harness prints the same rows the paper's tables report;
these helpers keep that formatting in one place and make the bench output
diffable run to run.
"""

from __future__ import annotations

from .stats import RelativePerformance

__all__ = [
    "format_table",
    "format_relative_table",
    "format_roofline_rows",
    "format_utilization",
]


def format_utilization(fraction: float, decimals: int = 1) -> str:
    """Render a utilization *fraction* as a percent string.

    ``0.75 -> "75.0%"``; ``decimals`` controls the precision
    (``decimals=0`` gives ``"75%"``).  Every CLI and report that prints a
    utilization, quantization efficiency, or percent-of-peak goes through
    this one helper so the rendering stays consistent repo-wide (pinned by
    ``tests/metrics/test_report.py``).
    """
    return "%.*f%%" % (decimals, 100.0 * fraction)


def format_table(
    headers: "list[str]", rows: "list[list[str]]", title: "str | None" = None
) -> str:
    """Fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def format_relative_table(
    columns: "dict[str, RelativePerformance]", title: str
) -> str:
    """Render a Tables-1/2-shaped relative-performance table."""
    headers = [""] + list(columns.keys())
    rows = [
        ["Average"] + ["%.2fx" % c.average for c in columns.values()],
        ["StdDev"] + ["%.2f" % c.stddev for c in columns.values()],
        ["Min"] + ["%.2fx" % c.minimum for c in columns.values()],
        ["Max"] + ["%.2fx" % c.maximum for c in columns.values()],
    ]
    return format_table(headers, rows, title=title)


def format_roofline_rows(rows: "list[dict]", title: str) -> str:
    """Render a per-intensity-bin utilization envelope."""
    if not rows:
        return title + "\n(empty)"
    pct_keys = [k for k in rows[0] if k.startswith("p")]
    headers = ["ops/B", "n"] + pct_keys
    body = [
        ["%.0f-%.0f" % (r["intensity_lo"], r["intensity_hi"]), str(r["count"])]
        + [format_utilization(r[k] / 100.0) for k in pct_keys]
        for r in rows
    ]
    return format_table(headers, body, title=title)
