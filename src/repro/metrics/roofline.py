"""Roofline landscape summaries (the paper's Figures 5 and 6).

A roofline landscape plots percent-of-peak utilization against arithmetic
intensity for every corpus problem.  The paper's headline observation is
the *width* of each system's band: data-parallel singletons and cuBLAS
heuristics produce wide dynamic ranges; Stream-K's band is narrow and
hugs the ceilings.  :func:`roofline_summary` reduces a landscape to
per-intensity-bin percentile envelopes so the band shape is comparable in
text output, and :func:`band_width` gives a single spread number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig
from ..gpu.spec import GpuSpec

__all__ = [
    "RooflinePoint",
    "roofline_points",
    "roofline_summary",
    "band_width",
    "machine_ceiling",
]


@dataclass(frozen=True)
class RooflinePoint:
    """One problem's (intensity, % of peak) coordinate."""

    ops_per_byte: float
    percent_of_peak: float


def machine_ceiling(
    intensity: np.ndarray, gpu: GpuSpec, dtype: DtypeConfig
) -> np.ndarray:
    """The roofline ceiling in percent of peak at given intensities:
    ``min(100, 100 * intensity * BW / peak_flops)``."""
    intensity = np.asarray(intensity, dtype=np.float64)
    peak_flops = gpu.peak_tflops(dtype) * 1e12
    bw_bound = 100.0 * intensity * gpu.dram_bandwidth / peak_flops
    return np.minimum(100.0, bw_bound)


def roofline_points(
    shapes: np.ndarray,
    times_s: np.ndarray,
    gpu: GpuSpec,
    dtype: DtypeConfig,
) -> "tuple[np.ndarray, np.ndarray]":
    """(intensity, percent_of_peak) arrays for a system's corpus times."""
    from ..corpus.filters import ops_per_byte  # local: avoid cycle

    shapes = np.asarray(shapes)
    times = np.asarray(times_s, dtype=np.float64)
    if shapes.shape[0] != times.shape[0]:
        raise ConfigurationError("shapes and times disagree in length")
    intensity = ops_per_byte(shapes, dtype)
    flops = 2.0 * shapes[:, 0].astype(np.float64) * shapes[:, 1] * shapes[:, 2]
    tflops = flops / times / 1e12
    pct = 100.0 * tflops / gpu.peak_tflops(dtype)
    return intensity, pct


def roofline_summary(
    intensity: np.ndarray,
    percent_of_peak: np.ndarray,
    num_bins: int = 12,
    percentiles: "tuple[float, ...]" = (5.0, 50.0, 95.0),
) -> "list[dict]":
    """Per-intensity-bin percentile envelope of the utilization band."""
    intensity = np.asarray(intensity, dtype=np.float64)
    pct = np.asarray(percent_of_peak, dtype=np.float64)
    edges = np.geomspace(intensity.min(), intensity.max() * (1 + 1e-9), num_bins + 1)
    rows = []
    for i in range(num_bins):
        mask = (intensity >= edges[i]) & (intensity < edges[i + 1])
        if not mask.any():
            continue
        vals = pct[mask]
        row = {
            "intensity_lo": float(edges[i]),
            "intensity_hi": float(edges[i + 1]),
            "count": int(mask.sum()),
        }
        for p in percentiles:
            row["p%g" % p] = float(np.percentile(vals, p))
        rows.append(row)
    return rows


def band_width(
    intensity: np.ndarray,
    percent_of_peak: np.ndarray,
    num_bins: int = 12,
    lo: float = 5.0,
    hi: float = 95.0,
) -> float:
    """Mean (p95 - p5) utilization spread across intensity bins.

    The single number that captures "how wide is this system's performance
    band"; the paper's narrative predicts
    streamk < oracle < cublas-like < singleton-DP on FP16->32.
    """
    rows = roofline_summary(
        intensity, percent_of_peak, num_bins, percentiles=(lo, hi)
    )
    if not rows:
        raise ConfigurationError("no populated intensity bins")
    spreads = [r["p%g" % hi] - r["p%g" % lo] for r in rows]
    return float(np.mean(spreads))
