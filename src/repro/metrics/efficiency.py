"""Quantization-efficiency metrics (the paper's Figure 1/2 arithmetic).

Quantization efficiency is the ceiling a schedule's *work placement* puts
on processor utilization, independent of any per-cycle costs: useful
MAC-loop iterations divided by the iteration-slots the schedule occupies
(``slots x critical-path length`` in iterations under wave dispatch).

``data-parallel 9 tiles on 4 SMs``: 9 tile-times of work over 3 waves x 4
SMs = 75% — exactly the Figure 1a number.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..gemm.tiling import ceil_div
from ..schedules.base import Schedule

__all__ = [
    "quantization_efficiency",
    "wave_count",
    "iteration_makespan",
]


def wave_count(g: int, p: int) -> int:
    """Number of dispatch waves for ``g`` equal CTAs on ``p`` slots."""
    if g < 0 or p <= 0:
        raise ConfigurationError("need g >= 0 and p > 0")
    return ceil_div(g, p) if g else 0


def iteration_makespan(schedule: Schedule, p: int) -> int:
    """Critical-path length in MAC-loop iterations under wave dispatch.

    List-schedules the per-CTA iteration counts onto ``p`` slots in launch
    order, ignoring fixup/wait costs — the pure work-placement view the
    paper's utilization-ceiling figures reason with.
    """
    if p <= 0:
        raise ConfigurationError("p must be positive")
    finish = np.zeros(p, dtype=np.int64)
    for w in schedule.work_items:
        slot = int(np.argmin(finish))
        finish[slot] += w.total_iters
    return int(finish.max())


def quantization_efficiency(schedule: Schedule, p: int) -> float:
    """Useful iterations / (p x iteration makespan) in [0, 1]."""
    span = iteration_makespan(schedule, p)
    if span == 0:
        return 1.0
    return schedule.grid.total_iters / (p * span)
