"""Evaluation metrics: relative performance, rooflines, quantization
efficiency, and text-table rendering."""

from .efficiency import iteration_makespan, quantization_efficiency, wave_count
from .report import (
    format_relative_table,
    format_roofline_rows,
    format_table,
    format_utilization,
)
from .roofline import (
    RooflinePoint,
    band_width,
    machine_ceiling,
    roofline_points,
    roofline_summary,
)
from .stats import RelativePerformance, relative_performance, slowdown_fraction

__all__ = [
    "RelativePerformance",
    "RooflinePoint",
    "band_width",
    "format_relative_table",
    "format_roofline_rows",
    "format_table",
    "format_utilization",
    "iteration_makespan",
    "machine_ceiling",
    "quantization_efficiency",
    "relative_performance",
    "roofline_points",
    "roofline_summary",
    "slowdown_fraction",
    "wave_count",
]
