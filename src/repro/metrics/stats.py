"""Relative-performance statistics (the paper's Tables 1 and 2).

Each table column summarizes the distribution of per-problem speedups of
Stream-K over a comparison system: Average, StdDev, Min, Max — with
speedup defined as ``time_other / time_streamk`` (equivalently, throughput
ratio), so values above 1 favor Stream-K.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["RelativePerformance", "relative_performance", "slowdown_fraction"]


@dataclass(frozen=True)
class RelativePerformance:
    """Avg/StdDev/Min/Max of a speedup distribution, plus its size."""

    average: float
    stddev: float
    minimum: float
    maximum: float
    count: int

    def row(self) -> "tuple[float, float, float, float]":
        return (self.average, self.stddev, self.minimum, self.maximum)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "avg=%.2fx std=%.2f min=%.2fx max=%.2fx (n=%d)" % (
            self.average,
            self.stddev,
            self.minimum,
            self.maximum,
            self.count,
        )


def relative_performance(
    time_baseline: np.ndarray, time_streamk: np.ndarray
) -> RelativePerformance:
    """Summarize ``baseline / streamk`` speedups over a problem set."""
    tb = np.asarray(time_baseline, dtype=np.float64)
    ts = np.asarray(time_streamk, dtype=np.float64)
    if tb.shape != ts.shape:
        raise ConfigurationError(
            "time arrays differ in shape: %r vs %r" % (tb.shape, ts.shape)
        )
    if tb.size == 0:
        raise ConfigurationError("empty speedup distribution")
    if np.any(tb <= 0) or np.any(ts <= 0):
        raise ConfigurationError("times must be positive")
    speedup = tb / ts
    return RelativePerformance(
        average=float(speedup.mean()),
        stddev=float(speedup.std()),
        minimum=float(speedup.min()),
        maximum=float(speedup.max()),
        count=int(speedup.size),
    )


def slowdown_fraction(
    time_baseline: np.ndarray, time_streamk: np.ndarray, tol: float = 0.0
) -> float:
    """Fraction of problems where Stream-K is slower than the baseline by
    more than ``tol`` (paper: "virtually no instances of slowdown for
    compute-bound problems")."""
    tb = np.asarray(time_baseline, dtype=np.float64)
    ts = np.asarray(time_streamk, dtype=np.float64)
    return float(np.mean(ts > tb * (1.0 + tol)))
