"""Arithmetic-intensity filters over shape corpora.

The paper restricts several comparisons to compute-bound problems:
FP64 shapes above 150 ops/byte and FP16->32 shapes above 400 ops/byte
(Section 6, Figure 7).  These helpers compute intensity vectorized over
the (N, 3) shape array so corpus-scale masking is one expression.
"""

from __future__ import annotations

import numpy as np

from ..gemm.dtypes import DtypeConfig

__all__ = ["ops_per_byte", "compute_bound_mask", "intensity_bins"]


def ops_per_byte(shapes: np.ndarray, dtype: DtypeConfig) -> np.ndarray:
    """FLOPs per compulsory byte for each [m, n, k] row (alpha=1, beta=0)."""
    shapes = np.asarray(shapes, dtype=np.float64)
    m, n, k = shapes[:, 0], shapes[:, 1], shapes[:, 2]
    flops = 2.0 * m * n * k
    bytes_ = (m * k + k * n) * dtype.input_bytes + m * n * dtype.output_bytes
    return flops / bytes_


def compute_bound_mask(shapes: np.ndarray, dtype: DtypeConfig) -> np.ndarray:
    """Boolean mask of shapes above the precision's compute-bound
    threshold (paper: FP64 > 150 ops/B, FP16->32 > 400 ops/B)."""
    return ops_per_byte(shapes, dtype) > dtype.compute_bound_ops_per_byte


def intensity_bins(
    shapes: np.ndarray, dtype: DtypeConfig, num_bins: int = 40
) -> "tuple[np.ndarray, np.ndarray]":
    """Log-spaced intensity bin edges and per-shape bin indices.

    Used by the roofline landscape benches to summarize the utilization
    spread per intensity regime (Figures 5 and 6).
    """
    intensity = ops_per_byte(shapes, dtype)
    edges = np.geomspace(intensity.min(), intensity.max() * (1 + 1e-9), num_bins + 1)
    idx = np.clip(np.digitize(intensity, edges) - 1, 0, num_bins - 1)
    return edges, idx
