"""The evaluation corpus: 32,824 GEMM problem shapes (paper Figure 4).

"We evaluate 32,824 different problem sizes and shapes, log-sampled at
random within a domain of m, n, and k matrix dimensions whose volume spans
six orders of magnitude" — m, n, k in [128, 8192].

Shapes are drawn log-uniformly per axis with a fixed seed, so the corpus
is deterministic and identical across machines and runs.  Extents are
rounded to integers; the paper does not state an alignment constraint, so
none is imposed (ragged shapes are exactly the interesting case for
quantization studies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig
from ..gemm.problem import GemmProblem

__all__ = ["CorpusSpec", "PAPER_CORPUS", "generate_corpus", "corpus_problems"]

#: Number of shapes in the paper's corpus.
PAPER_CORPUS_SIZE = 32_824
#: Axis domain of the paper's corpus.
PAPER_DOMAIN = (128, 8192)
#: Fixed seed so every consumer sees the identical corpus.
PAPER_SEED = 0x5EEDC0DE


@dataclass(frozen=True)
class CorpusSpec:
    """Parameters of a log-sampled shape corpus."""

    size: int = PAPER_CORPUS_SIZE
    lo: int = PAPER_DOMAIN[0]
    hi: int = PAPER_DOMAIN[1]
    seed: int = PAPER_SEED

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError("corpus size must be positive")
        if not (0 < self.lo <= self.hi):
            raise ConfigurationError(
                "invalid domain [%d, %d]" % (self.lo, self.hi)
            )


PAPER_CORPUS = CorpusSpec()


def generate_corpus(spec: CorpusSpec = PAPER_CORPUS) -> np.ndarray:
    """Generate the (size, 3) array of [m, n, k] extents.

    Log-uniform per axis over [lo, hi], rounded to the nearest integer and
    clipped back into the domain (rounding at the edges).
    """
    rng = np.random.default_rng(spec.seed)
    lo, hi = np.log(spec.lo), np.log(spec.hi)
    raw = np.exp(rng.uniform(lo, hi, size=(spec.size, 3)))
    return np.clip(np.rint(raw).astype(np.int64), spec.lo, spec.hi)


def corpus_problems(
    dtype: DtypeConfig,
    spec: CorpusSpec = PAPER_CORPUS,
    limit: "int | None" = None,
) -> "list[GemmProblem]":
    """Materialize :class:`~repro.gemm.problem.GemmProblem` objects.

    ``limit`` truncates deterministically (first N shapes) for quick runs;
    the shape *sequence* is unchanged, so subsets nest.
    """
    shapes = generate_corpus(spec)
    if limit is not None:
        shapes = shapes[:limit]
    return [GemmProblem(int(m), int(n), int(k), dtype=dtype) for m, n, k in shapes]
