"""Evaluation corpora: the paper's 32,824-shape test set and named
example workloads."""

from .filters import compute_bound_mask, intensity_bins, ops_per_byte
from .generator import (
    PAPER_CORPUS,
    PAPER_CORPUS_SIZE,
    PAPER_DOMAIN,
    PAPER_SEED,
    CorpusSpec,
    corpus_problems,
    generate_corpus,
)
from .shapes import (
    conv_im2col_shapes,
    factorization_shapes,
    strong_scaling_shapes,
    transformer_shapes,
)

__all__ = [
    "CorpusSpec",
    "PAPER_CORPUS",
    "PAPER_CORPUS_SIZE",
    "PAPER_DOMAIN",
    "PAPER_SEED",
    "compute_bound_mask",
    "conv_im2col_shapes",
    "corpus_problems",
    "factorization_shapes",
    "generate_corpus",
    "intensity_bins",
    "ops_per_byte",
    "strong_scaling_shapes",
    "transformer_shapes",
]
