"""Named workload shapes for the examples and ablations.

The paper's introduction motivates GEMM via deep-learning workloads
(transformers, convolution-as-GEMM) and scientific factorizations.  These
are representative concrete geometries used by the example applications —
not part of the evaluation corpus, which is the log-sampled Figure 4 set.
"""

from __future__ import annotations

from ..gemm.dtypes import FP16_FP32, FP64, DtypeConfig
from ..gemm.problem import GemmProblem

__all__ = [
    "transformer_shapes",
    "conv_im2col_shapes",
    "factorization_shapes",
    "strong_scaling_shapes",
]


def transformer_shapes(
    batch_tokens: int = 4096,
    d_model: int = 1024,
    d_ff: int = 4096,
    d_head: int = 64,
    heads: int = 16,
    dtype: DtypeConfig = FP16_FP32,
) -> "dict[str, GemmProblem]":
    """The GEMMs of one transformer layer at a given token batch.

    QKV/output projections, the two MLP matmuls, and the attention score /
    value products (per head, batched sizes folded into m).
    """
    return {
        "qkv_proj": GemmProblem(batch_tokens, 3 * d_model, d_model, dtype=dtype),
        "attn_out_proj": GemmProblem(batch_tokens, d_model, d_model, dtype=dtype),
        "mlp_up": GemmProblem(batch_tokens, d_ff, d_model, dtype=dtype),
        "mlp_down": GemmProblem(batch_tokens, d_model, d_ff, dtype=dtype),
        "attn_scores": GemmProblem(
            batch_tokens, batch_tokens // heads, d_head, dtype=dtype
        ),
        "attn_values": GemmProblem(
            batch_tokens, d_head, batch_tokens // heads, dtype=dtype
        ),
    }


def conv_im2col_shapes(
    batch: int = 32,
    image_hw: int = 56,
    c_in: int = 256,
    c_out: int = 256,
    kernel_hw: int = 3,
    dtype: DtypeConfig = FP16_FP32,
) -> "dict[str, GemmProblem]":
    """Convolution lowered to GEMM by im2col (the cuDNN-style mapping)."""
    m = batch * image_hw * image_hw
    k = c_in * kernel_hw * kernel_hw
    return {
        "conv3x3": GemmProblem(m, c_out, k, dtype=dtype),
        "conv1x1": GemmProblem(m, c_out, c_in, dtype=dtype),
    }


def factorization_shapes(
    panel: int = 256, trailing: int = 4096, dtype: DtypeConfig = FP64
) -> "dict[str, GemmProblem]":
    """Trailing-matrix updates of blocked LU/QR/Cholesky factorizations:
    rank-``panel`` updates of a ``trailing``-sized remainder."""
    return {
        "lu_trailing_update": GemmProblem(trailing, trailing, panel, dtype=dtype),
        "qr_panel_apply": GemmProblem(panel, trailing, trailing, dtype=dtype),
    }


def strong_scaling_shapes(dtype: DtypeConfig = FP16_FP32) -> "dict[str, GemmProblem]":
    """Small-output, deep-k shapes where tile-based decompositions starve
    (the paper's peak-speedup regime and its Figure 8/9 scenarios)."""
    return {
        "fig8a_short_wide": GemmProblem(256, 3584, 8192, dtype=dtype),
        "fig8b_square": GemmProblem(1024, 1024, 1024, dtype=dtype),
        "fig8c_single_tile": GemmProblem(128, 128, 16384, dtype=dtype),
        "fig9_tiny_output": GemmProblem(128, 128, 384, dtype=dtype),
    }
