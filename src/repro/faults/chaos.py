"""Deterministic kill-point injection for chaos-testing durable sweeps.

Where :class:`~repro.faults.injector.FaultInjector` perturbs the
*simulated* GPU, this module perturbs the *harness process itself*: a
:class:`ChaosKill` is threaded into the journaled sweep driver
(:func:`repro.harness.parallel.evaluate_corpus_sharded`) and fires a
real ``SIGKILL`` at a deterministic kill point — immediately after the
K-th ``shard_done`` record has been durably journaled.  Because the
journal commits each completion with fsync *before* the kill point is
evaluated, the post-mortem journal state is exactly "K shards done, the
rest open or in flight" — the worst-case crash the resume contract
(docs/CHECKPOINTING.md) must absorb bitwise.

``python -m repro sweep --chaos-kill-after K`` wires this up from the
CLI; the CI ``chaos`` job kills a reduced-corpus sweep at two distinct
kill points, resumes each, and asserts the merged result is
byte-identical to an uninterrupted reference run.

The ``action`` seam exists for in-process tests: instead of
``os.kill(os.getpid(), SIGKILL)`` (which would take the test runner with
it) a test can substitute any callable — typically one raising a
sentinel exception — and still exercise the exact kill-point placement.
"""

from __future__ import annotations

import os
import signal

from ..errors import ConfigurationError
from ..obs.counters import inc_counter

__all__ = ["ChaosKill", "ChaosWorkerKill"]


class ChaosKill:
    """Kill the sweep process after a fixed number of shard completions.

    ``kill_after_shards`` is 1-based: ``ChaosKill(1)`` fires right after
    the first ``shard_done`` commits.  The default action is a raw
    ``SIGKILL`` to this process — no cleanup handlers run, exactly like
    an OOM-kill — making it the harshest deterministic crash available
    for testing the journal's resume contract.
    """

    def __init__(
        self,
        kill_after_shards: int,
        sig: int = signal.SIGKILL,
        action=None,
    ):
        if kill_after_shards < 1:
            raise ConfigurationError(
                "kill_after_shards must be >= 1, got %r" % kill_after_shards
            )
        self.kill_after_shards = int(kill_after_shards)
        self.sig = sig
        self.action = action
        self.fired = False
        self._completions = 0

    def on_shard_done(self) -> None:
        """Kill point: called by the driver after each durable completion."""
        self._completions += 1
        if self.fired or self._completions < self.kill_after_shards:
            return
        self.fired = True
        inc_counter("faults.chaos_kills")
        if self.action is not None:
            self.action()
        else:  # pragma: no cover - exercised via subprocess in CI/tests
            os.kill(os.getpid(), self.sig)


class ChaosWorkerKill:
    """Kill one lease-fabric worker at a deterministic lease-lifecycle point.

    Where :class:`ChaosKill` targets the single-process sweep driver
    after a journaled completion, this targets a *fabric worker*
    (:mod:`repro.harness.fabric`) at one of the three lease-lifecycle
    boundaries the reclaim protocol must absorb:

    ``claim``
        immediately after the worker durably journals ``shard_claimed``
        (the lease file exists, no evaluation has happened);
    ``eval``
        mid-evaluation — after the heartbeat thread has started, before
        any result exists;
    ``commit``
        pre-commit — the shard is fully evaluated but ``shard_done``
        has not been journaled, the worst-case wasted-work crash.

    ``after`` is 1-based: ``ChaosWorkerKill("eval", 2)`` fires at the
    second time this worker reaches the ``eval`` boundary.  The default
    action is a raw self-``SIGKILL`` (no cleanup, the lease file stays
    behind exactly as a power loss would leave it); the ``action`` seam
    substitutes a callable for in-process tests.
    """

    POINTS = ("claim", "eval", "commit")

    def __init__(
        self,
        point: str,
        after: int = 1,
        sig: int = signal.SIGKILL,
        action=None,
    ):
        if point not in self.POINTS:
            raise ConfigurationError(
                "chaos worker kill point must be one of %s, got %r"
                % ("/".join(self.POINTS), point)
            )
        if after < 1:
            raise ConfigurationError(
                "chaos worker kill count must be >= 1, got %r" % after
            )
        self.point = point
        self.after = int(after)
        self.sig = sig
        self.action = action
        self.fired = False
        self._hits = 0

    @classmethod
    def parse(cls, spec: str, action=None) -> "ChaosWorkerKill":
        """Parse a ``POINT`` or ``POINT:K`` spec (e.g. ``commit:2``)."""
        point, _, count = str(spec).partition(":")
        try:
            after = int(count) if count else 1
        except ValueError:
            raise ConfigurationError(
                "chaos worker kill spec must be POINT[:K], got %r" % spec
            ) from None
        return cls(point.strip(), after, action=action)

    def on_event(self, event: str) -> None:
        """Kill point: the worker loop calls this at every boundary."""
        if event != self.point:
            return
        self._hits += 1
        if self.fired or self._hits < self.after:
            return
        self.fired = True
        inc_counter("faults.chaos_worker_kills")
        if self.action is not None:
            self.action()
        else:  # pragma: no cover - exercised via subprocess in CI/tests
            os.kill(os.getpid(), self.sig)
