"""Fault sweeps: straggler severity x schedule sensitivity curves.

The paper's quantization argument (Section 3, Figure 4) is at bottom a
claim about *sensitivity to imbalance*: data-parallel decompositions
amplify per-SM variance into whole-wave stalls, while Stream-K's
work-centric split plus fixup protocol absorbs it.  This module measures
that directly on the simulator: sweep a seeded fault environment of
increasing severity across every registered decomposition and report the
makespan degradation of each — the curves ``python -m repro faults``
prints.

Every cell is simulated with a fresh
:class:`~repro.faults.injector.FaultInjector` (so injection logs are per
cell), replayed through the protocol invariant checker (faults must
reorder time, never the carry protocol), and compared against the same
schedule's zero-severity baseline — which is bitwise identical to the
unfaulted simulator by the determinism contract.  Cells whose fault
environment deadlocks the schedule (dropped signals) are reported as
such, never hung.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, DeadlockError
from ..gemm.dtypes import DtypeConfig
from ..gemm.problem import GemmProblem
from ..gemm.tiling import Blocking, TileGrid
from ..gpu.backends import resolve_executor_backend
from ..gpu.costmodel import KernelCostModel
from ..gpu.executor import Executor
from ..gpu.spec import GpuSpec
from ..obs.profiler import span
from ..schedules.registry import DECOMPOSITION_NAMES, make_decomposition
from .checker import check_protocol_invariants
from .config import FaultConfig
from .injector import FaultInjector

__all__ = [
    "SweepCell",
    "build_registered_schedule",
    "format_sweep_table",
    "run_fault_sweep",
]


@dataclass(frozen=True)
class SweepCell:
    """One (schedule, severity) point of a fault sweep."""

    schedule: str
    severity: float
    seed: int
    makespan: float
    baseline: float
    deadlocked: bool
    injections: "dict[str, int]"

    @property
    def degradation_pct(self) -> float:
        """Makespan degradation over the zero-fault baseline, percent."""
        if self.deadlocked or self.baseline <= 0.0:
            return float("inf") if self.deadlocked else 0.0
        return 100.0 * (self.makespan / self.baseline - 1.0)


def build_registered_schedule(name: str, grid: TileGrid, gpu: GpuSpec):
    """Instantiate a registered decomposition with its canonical knobs.

    ``stream_k`` gets one CTA per SM (clamped to the iteration count),
    ``fixed_split`` the paper's illustrative ``s=2``, and the hybrids
    ``p = num_sms`` — the same defaults the CLI ``trace`` command uses.
    """
    kwargs: "dict[str, int]" = {}
    if name == "fixed_split":
        kwargs["s"] = 2
    elif name == "stream_k":
        kwargs["g"] = max(1, min(gpu.num_sms, grid.total_iters))
    elif name in ("two_tile_stream_k", "dp_one_tile_stream_k"):
        kwargs["p"] = gpu.num_sms
    return make_decomposition(name, **kwargs).build(grid)


def run_fault_sweep(
    problem: GemmProblem,
    gpu: GpuSpec,
    severities: "tuple[float, ...]" = (0.0, 0.25, 0.5, 1.0, 2.0),
    schedule_names: "tuple[str, ...]" = DECOMPOSITION_NAMES,
    seed: int = 0,
    config_factory=FaultConfig.straggler_sweep_point,
    check: bool = True,
    executor: "str | None" = None,
) -> "list[SweepCell]":
    """Sweep fault severity x schedule; return one cell per combination.

    ``config_factory(severity, seed)`` maps each severity to a
    :class:`FaultConfig` (default: the canonical straggler sweep point).
    With ``check=True`` every completed cell is replayed through the
    protocol invariant checker.  Deterministic: same arguments => same
    cells, bitwise — including across ``executor`` backends (``python``
    / ``numpy`` / ``numba``; ``None`` defers to the process default).
    """
    if not severities:
        raise ConfigurationError("need at least one severity")
    dtype: DtypeConfig = problem.dtype
    blocking = Blocking(*dtype.default_blocking)
    grid = TileGrid(problem, blocking)
    cost = KernelCostModel(gpu=gpu, blocking=blocking, dtype=dtype)

    cells: "list[SweepCell]" = []
    with span("fault_sweep"):
        for name in schedule_names:
            schedule = build_registered_schedule(name, grid, gpu)
            structure_checked = False
            baseline = None
            for severity in severities:
                injector = FaultInjector(config_factory(severity, seed))
                with span("fault_sweep_cell"):
                    exe = Executor(
                        gpu.total_cta_slots, faults=injector, backend=executor
                    )
                    try:
                        if resolve_executor_backend(executor) == "python":
                            trace = exe.run(
                                cost.build_tasks(schedule, faults=injector)
                            )
                        else:
                            trace = exe.run_arrays(
                                cost.build_task_arrays(
                                    schedule, faults=injector
                                )
                            )
                    except DeadlockError:
                        cells.append(
                            SweepCell(
                                schedule=name,
                                severity=severity,
                                seed=seed,
                                makespan=float("inf"),
                                baseline=baseline if baseline is not None else 0.0,
                                deadlocked=True,
                                injections=injector.injection_counts(),
                            )
                        )
                        continue
                    if check:
                        check_protocol_invariants(
                            schedule,
                            trace,
                            check_structure=not structure_checked,
                        )
                        structure_checked = True
                if baseline is None:
                    # First completed cell of this schedule anchors the
                    # degradation; severity 0 first keeps it the true
                    # zero-fault makespan.
                    baseline = trace.makespan
                cells.append(
                    SweepCell(
                        schedule=name,
                        severity=severity,
                        seed=seed,
                        makespan=trace.makespan,
                        baseline=baseline,
                        deadlocked=False,
                        injections=injector.injection_counts(),
                    )
                )
    return cells


def format_sweep_table(cells: "list[SweepCell]") -> str:
    """Render sweep cells as a schedule x severity degradation table."""
    if not cells:
        return "(empty sweep)"
    severities = sorted({c.severity for c in cells})
    schedules = list(dict.fromkeys(c.schedule for c in cells))
    by_key = {(c.schedule, c.severity): c for c in cells}
    header = ["%-24s" % "schedule"] + [
        "%12s" % ("sev %.2f" % s) for s in severities
    ]
    lines = ["".join(header), "-" * (24 + 12 * len(severities))]
    for name in schedules:
        row = ["%-24s" % name]
        for s in severities:
            cell = by_key.get((name, s))
            if cell is None:
                row.append("%12s" % "-")
            elif cell.deadlocked:
                row.append("%12s" % "DEADLOCK")
            elif cell.severity == 0.0:
                row.append("%12s" % ("%.0f cyc" % cell.makespan))
            else:
                row.append("%12s" % ("+%.1f%%" % cell.degradation_pct))
        lines.append("".join(row))
    lines.append(
        "(cells are makespan degradation vs the same schedule's zero-fault "
        "baseline)"
    )
    return "\n".join(lines)
