"""Protocol invariant checker: a race detector for the Stream-K carry.

:func:`check_protocol_invariants` replays an executed
:class:`~repro.gpu.trace.ExecutionTrace` against the
:class:`~repro.schedules.base.Schedule` that produced it and proves the
partials/fixup protocol held — independently of both the schedule
builders and the executor, so a bug in either is caught rather than
trusted.  It asserts:

**Structural coverage** (k-space accounting, re-derived from scratch):

* every output tile's k-range ``[0, iters_per_tile)`` is covered exactly
  once — no gaps, no double-computed iterations — across all partials
  and the owner's slice;
* exactly one owner per tile, holding the ``k = 0`` iteration;
* the owner's peer list equals the tile's contributor set.

**Temporal protocol** (replayed from the trace's cycle timestamps):

* every CTA's executed segment-kind sequence matches what its work item
  prescribes (prologue, compute runs, WAIT+FIXUP per peer in reduction
  order, the epilogue store) — preemptions and jitter stretch segments
  but never reorder or drop them;
* segments within a CTA are contiguous and non-overlapping in time;
* every contributor publishes its flag exactly once, on its own slot;
* **no read-before-write race**: every FIXUP of a peer's partial starts
  at or after that peer's SIGNAL publication timestamp;
* every WAIT released exactly at ``max(wait_start, publication)``;
* every stored partial is consumed by exactly one owner (nothing leaks,
  nothing is double-accumulated).

Any breach raises :class:`~repro.errors.ProtocolViolation` with the
tile/CTA/cycle named.  The checker is fault-oblivious by design: it must
pass on every registered schedule under every injected fault environment
that completes (stragglers, jitter, delays, preemptions), because those
faults reorder *time*, not the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ProtocolViolation
from ..gpu.cta import SegmentKind
from ..gpu.trace import ExecutionTrace
from ..obs.counters import inc_counter
from ..obs.profiler import span
from ..schedules.base import Schedule

__all__ = ["InvariantReport", "check_protocol_invariants"]

#: Timestamp slack for float comparisons, in cycles.  The executor does
#: exact float arithmetic, so this only absorbs representation noise.
_EPS = 1e-9


@dataclass(frozen=True)
class InvariantReport:
    """Summary of one successful invariant check."""

    num_ctas: int
    num_tiles: int
    signals: int
    fixups: int
    waits: int
    #: Smallest observed (fixup start - publication) gap, in cycles —
    #: how close the run came to a read-before-write race.
    min_fixup_slack: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            "invariants ok: %d CTAs, %d tiles, %d signals, %d fixups, "
            "%d waits, min fixup slack %.1f cycles"
            % (
                self.num_ctas,
                self.num_tiles,
                self.signals,
                self.fixups,
                self.waits,
                self.min_fixup_slack,
            )
        )


def _fail(message: str) -> None:
    inc_counter("faults.invariant_violations")
    raise ProtocolViolation(message)


# --------------------------------------------------------------------- #
# Structural coverage                                                    #
# --------------------------------------------------------------------- #


def _check_structure(schedule: Schedule) -> int:
    """K-space accounting: exact single coverage of every tile's k-range."""
    ipt = schedule.grid.iters_per_tile
    num_tiles = schedule.grid.num_tiles
    per_tile: "dict[int, list[tuple[int, int, bool, int, tuple]]]" = {}
    for w in schedule.work_items:
        for s in w.segments:
            if not 0 <= s.tile_idx < num_tiles:
                _fail(
                    "CTA %d references tile %d outside grid of %d"
                    % (w.cta, s.tile_idx, num_tiles)
                )
            per_tile.setdefault(s.tile_idx, []).append(
                (s.iter_begin, s.iter_end, s.is_owner, w.cta, s.peers)
            )

    uncovered = [t for t in range(num_tiles) if t not in per_tile]
    if uncovered:
        _fail(
            "tiles with no k-range coverage: %s%s"
            % (uncovered[:8], "..." if len(uncovered) > 8 else "")
        )

    for tile_idx in range(num_tiles):
        segs = sorted(per_tile[tile_idx])
        cursor = 0
        owners = []
        contributors = []
        for begin, end, is_owner, cta, peers in segs:
            if begin < cursor:
                _fail(
                    "tile %d: k-range [%d, %d) covered twice (CTA %d "
                    "overlaps at iteration %d)"
                    % (tile_idx, begin, min(end, cursor), cta, begin)
                )
            if begin > cursor:
                _fail(
                    "tile %d: k-range gap at iterations [%d, %d)"
                    % (tile_idx, cursor, begin)
                )
            cursor = end
            if is_owner:
                owners.append((cta, peers))
            else:
                contributors.append(cta)
        if cursor != ipt:
            _fail(
                "tile %d: k-range coverage stops at iteration %d of %d"
                % (tile_idx, cursor, ipt)
            )
        if len(owners) != 1:
            _fail(
                "tile %d: %d owners of the k=0 slice (need exactly 1)"
                % (tile_idx, len(owners))
            )
        _owner_cta, peers = owners[0]
        if sorted(peers) != sorted(contributors):
            _fail(
                "tile %d: owner accumulates peers %r but contributors "
                "are %r" % (tile_idx, sorted(peers), sorted(contributors))
            )
    return num_tiles


# --------------------------------------------------------------------- #
# Expected segment-kind sequences                                        #
# --------------------------------------------------------------------- #


def _expected_kinds(work_item) -> "list[tuple[SegmentKind, int | None]]":
    """(kind, peer-slot) sequence the cost model prescribes for a CTA."""
    expected: "list[tuple[SegmentKind, int | None]]" = [
        (SegmentKind.PROLOGUE, None)
    ]
    for s in work_item.segments:
        expected.append((SegmentKind.COMPUTE, None))
        if s.is_owner:
            for peer in s.peers:
                expected.append((SegmentKind.WAIT, peer))
                expected.append((SegmentKind.FIXUP, peer))
            expected.append((SegmentKind.STORE_TILE, None))
        else:
            expected.append((SegmentKind.STORE_PARTIALS, None))
            expected.append((SegmentKind.SIGNAL, None))
    return expected


# --------------------------------------------------------------------- #
# The checker                                                            #
# --------------------------------------------------------------------- #


def check_protocol_invariants(
    schedule: Schedule,
    trace: ExecutionTrace,
    check_structure: bool = True,
) -> InvariantReport:
    """Prove ``trace`` is a legal execution of ``schedule``'s protocol.

    Raises :class:`~repro.errors.ProtocolViolation` on the first breach;
    returns an :class:`InvariantReport` when everything holds.  Set
    ``check_structure=False`` to skip the (trace-independent) k-space
    accounting when replaying many traces of one already-checked
    schedule.
    """
    with span("invariant_check"):
        num_tiles = (
            _check_structure(schedule)
            if check_structure
            else schedule.grid.num_tiles
        )

        by_cta = {}
        for rec in trace.ctas:
            if rec.cta in by_cta:
                _fail("trace records CTA %d twice" % rec.cta)
            by_cta[rec.cta] = rec
        item_ctas = {w.cta for w in schedule.work_items}
        if set(by_cta) != item_ctas:
            missing = sorted(item_ctas - set(by_cta))
            extra = sorted(set(by_cta) - item_ctas)
            _fail(
                "trace/schedule CTA mismatch: missing %s, unexpected %s"
                % (missing[:8], extra[:8])
            )

        # Pass 1: per-CTA shape and timing; collect publications.
        publication: "dict[int, float]" = {}
        waits = fixups = 0
        for w in schedule.work_items:
            rec = by_cta[w.cta]
            expected = _expected_kinds(w)
            got = [(s.kind, s.slot) for s in rec.segments]
            got_kinds = [k for k, _ in got]
            exp_kinds = [k for k, _ in expected]
            if got_kinds != exp_kinds:
                _fail(
                    "CTA %d executed segment kinds %s but its work item "
                    "prescribes %s"
                    % (
                        w.cta,
                        [k.value for k in got_kinds],
                        [k.value for k in exp_kinds],
                    )
                )
            for (kind, exp_slot), seg in zip(expected, rec.segments):
                if kind in (SegmentKind.WAIT, SegmentKind.FIXUP):
                    if seg.slot != exp_slot:
                        _fail(
                            "CTA %d %s targets slot %r, expected peer %r"
                            % (w.cta, kind.value, seg.slot, exp_slot)
                        )

            cursor = rec.start
            for i, seg in enumerate(rec.segments):
                if seg.start < cursor - _EPS:
                    _fail(
                        "CTA %d: segment %d (%s) starts at cycle %.3f, "
                        "before the previous segment ended at %.3f"
                        % (w.cta, i, seg.kind.value, seg.start, cursor)
                    )
                if seg.end < seg.start - _EPS:
                    _fail(
                        "CTA %d: segment %d (%s) ends before it starts"
                        % (w.cta, i, seg.kind.value)
                    )
                cursor = seg.end
                if seg.kind is SegmentKind.SIGNAL:
                    slot = w.cta if seg.slot is None else seg.slot
                    if slot != w.cta:
                        _fail(
                            "CTA %d published slot %d; the protocol allows "
                            "only its own" % (w.cta, slot)
                        )
                    if slot in publication:
                        _fail("slot %d published twice" % slot)
                    publication[slot] = seg.end

        # Pass 2: cross-CTA ordering — the race detector proper.
        consumed: "dict[int, int]" = {}
        min_slack = float("inf")
        for w in schedule.work_items:
            rec = by_cta[w.cta]
            for i, seg in enumerate(rec.segments):
                if seg.kind is SegmentKind.WAIT:
                    waits += 1
                    pub = publication.get(seg.slot)
                    if pub is None:
                        _fail(
                            "CTA %d waited on slot %d which was never "
                            "published" % (w.cta, seg.slot)
                        )
                    if seg.end < pub - _EPS:
                        _fail(
                            "CTA %d's wait on slot %d released at cycle "
                            "%.3f, before the flag was published at %.3f"
                            % (w.cta, seg.slot, seg.end, pub)
                        )
                    if abs(seg.end - max(seg.start, pub)) > _EPS:
                        _fail(
                            "CTA %d's wait on slot %d released at cycle "
                            "%.3f, not at max(wait start %.3f, publication "
                            "%.3f)" % (w.cta, seg.slot, seg.end, seg.start, pub)
                        )
                elif seg.kind is SegmentKind.FIXUP:
                    fixups += 1
                    pub = publication.get(seg.slot)
                    if pub is None:
                        _fail(
                            "race: CTA %d read slot %d's partials but slot "
                            "%d never published" % (w.cta, seg.slot, seg.slot)
                        )
                    slack = seg.start - pub
                    if slack < -_EPS:
                        _fail(
                            "race: CTA %d read slot %d's partials at cycle "
                            "%.3f, %.3f cycles before publication at %.3f"
                            % (w.cta, seg.slot, seg.start, -slack, pub)
                        )
                    min_slack = min(min_slack, slack)
                    consumed[seg.slot] = consumed.get(seg.slot, 0) + 1

        # Pass 3: conservation — every partial consumed exactly once.
        for slot in publication:
            n = consumed.get(slot, 0)
            if n == 0:
                _fail(
                    "slot %d stored partials that no owner ever accumulated"
                    % slot
                )
            if n > 1:
                _fail(
                    "slot %d's partials were accumulated %d times "
                    "(double-counted k-range)" % (slot, n)
                )
        orphaned = sorted(set(consumed) - set(publication))
        if orphaned:  # pragma: no cover - pass 2 already raced on these
            _fail("fixups read never-published slots %s" % orphaned[:8])

    inc_counter("faults.invariant_checks")
    return InvariantReport(
        num_ctas=len(by_cta),
        num_tiles=num_tiles,
        signals=len(publication),
        fixups=fixups,
        waits=waits,
        min_fixup_slack=0.0 if min_slack == float("inf") else min_slack,
    )
