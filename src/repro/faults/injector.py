"""Deterministic, site-keyed fault sampling.

A :class:`FaultInjector` answers the executor's and cost model's
questions — "how slow is this SM slot?", "is this CTA's flag dropped?",
"does this compute segment get preempted?" — from a pure function of
``(config.seed, site)``, where *site* identifies the injection point
structurally (SM slot index, CTA id, segment index).  Two consequences:

* **bit-reproducibility** — the same seed and config produce the same
  injections regardless of how many times or in what order sites are
  queried (no shared RNG stream to perturb);
* **comparability** — changing one knob (say, ``signal_drop_prob``)
  leaves every other dimension's draws untouched, so sweeps isolate the
  dimension under study.

The hash is splitmix64 over the seed and the site ids, mixed per fault
dimension through a distinct domain tag.  Every injection that *fires*
is recorded in :attr:`FaultInjector.log` and counted in the
:mod:`repro.obs.counters` registry under ``faults.*`` (once per site —
queries are memoized), so profiles and reports show exactly what was
injected where.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..gpu.cta import SegmentKind
from ..obs.counters import inc_counter
from .config import FaultConfig

__all__ = ["FaultInjector", "InjectedFault"]

_MASK64 = (1 << 64) - 1

# Domain tags: one per fault dimension so draws never collide across
# dimensions even at the same structural site.
_DOM_STRAGGLER = 0x51A
_DOM_SKEW = 0x5E3
_DOM_JITTER = 0x117
_DOM_SIG_DELAY = 0xDE1
_DOM_SIG_DROP = 0xD20
_DOM_PREEMPT = 0x9EE
_DOM_PREEMPT_FRAC = 0x9EF

#: Segment kinds whose cycle cost is DRAM/L2-latency bound and therefore
#: subject to memory jitter.
_MEMORY_KINDS = frozenset(
    (SegmentKind.STORE_PARTIALS, SegmentKind.FIXUP, SegmentKind.STORE_TILE)
)


def _splitmix64(x: int) -> int:
    """One splitmix64 round: a high-quality 64-bit mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _site_u01(seed: int, domain: int, *ids: int) -> float:
    """Uniform [0, 1) draw keyed by (seed, domain, site ids)."""
    x = _splitmix64(seed & _MASK64)
    x = _splitmix64(x ^ domain)
    for i in ids:
        x = _splitmix64(x ^ (i & _MASK64))
    return x / float(1 << 64)


def _splitmix64_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 round over a uint64 array (wrapping mod 2^64)."""
    x = (x + np.uint64(0x9E3779B97F4A7C15))
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def _site_u01_vec(seed: int, domain: int, *id_arrays) -> np.ndarray:
    """Vectorized :func:`_site_u01`: one draw per row of the id arrays.

    Bitwise identical to the scalar path element for element: uint64
    wraparound reproduces the masked Python arithmetic, and the final
    uint64 -> float64 conversion followed by division by the exact power
    of two ``2^64`` is the same correctly-rounded quotient Python's
    ``int / float`` computes.
    """
    id_arrays = [np.ascontiguousarray(a, dtype=np.uint64) for a in id_arrays]
    n = id_arrays[0].shape[0] if id_arrays else 1
    x = np.full(n, _splitmix64(seed & _MASK64), dtype=np.uint64)
    x = _splitmix64_vec(x ^ np.uint64(domain))
    for ids in id_arrays:
        x = _splitmix64_vec(x ^ ids)
    return x.astype(np.float64) / float(1 << 64)


def _missing_first_occurrence(keys, memo):
    """Indices of the first occurrence of each key not already memoized."""
    seen = set()
    out = []
    for i, key in enumerate(keys):
        if key not in memo and key not in seen:
            seen.add(key)
            out.append(i)
    return out


@dataclass(frozen=True)
class InjectedFault:
    """One fault that actually fired, for reports and trace annotation.

    ``kind`` is one of ``straggler``, ``clock_skew``, ``mem_jitter``,
    ``signal_delay``, ``signal_drop``, ``preempt``.  ``value`` is the
    dimension's magnitude: a slowdown multiplier, delay cycles, or
    penalty cycles (0.0 for drops).
    """

    kind: str
    value: float
    sm_slot: "int | None" = None
    cta: "int | None" = None
    segment: "int | None" = None


class FaultInjector:
    """Stateful facade over a :class:`FaultConfig`: memoized site queries.

    One injector instance corresponds to one simulated execution; the
    memoization guarantees a site queried twice (cost model then
    executor, or diagnostic replay) reports the same draw and is logged
    and counted exactly once.
    """

    def __init__(self, config: FaultConfig):
        self.config = config
        self.log: "list[InjectedFault]" = []
        self._slot_mult: "dict[int, float]" = {}
        self._seg_mult: "dict[tuple[int, int], float]" = {}
        self._mem_mult: "dict[tuple[int, int], float]" = {}
        self._sig_delay: "dict[int, float]" = {}
        self._sig_drop: "dict[int, bool]" = {}

    # ------------------------------------------------------------------ #
    # Per-SM-slot faults                                                  #
    # ------------------------------------------------------------------ #

    def slot_multiplier(self, sm_slot: int) -> float:
        """Duration multiplier for every segment run on ``sm_slot``.

        Combines the straggler draw (slot slowed by ``1 + severity``)
        with the continuous clock-skew drift in ``[1, 1 + clock_skew]``.
        Exactly 1.0 when neither dimension is configured.
        """
        mult = self._slot_mult.get(sm_slot)
        if mult is not None:
            return mult
        cfg = self.config
        mult = 1.0
        if cfg.straggler_prob > 0.0 and cfg.straggler_severity > 0.0:
            if _site_u01(cfg.seed, _DOM_STRAGGLER, sm_slot) < cfg.straggler_prob:
                mult *= 1.0 + cfg.straggler_severity
                self._record("straggler", mult, sm_slot=sm_slot)
        if cfg.clock_skew > 0.0:
            skew = 1.0 + cfg.clock_skew * _site_u01(cfg.seed, _DOM_SKEW, sm_slot)
            mult *= skew
            self._record("clock_skew", skew, sm_slot=sm_slot)
        self._slot_mult[sm_slot] = mult
        return mult

    # ------------------------------------------------------------------ #
    # Per-segment faults (cost-model side)                                #
    # ------------------------------------------------------------------ #

    def mem_latency_multiplier(
        self, cta: int, segment: int, kind: SegmentKind
    ) -> float:
        """DRAM/L2 jitter multiplier for one memory-priced segment.

        Keyed by (CTA, segment index); non-memory kinds always get 1.0.
        The cost model applies this when pricing a schedule into timed
        tasks, so jitter is part of the task's intrinsic cycles.
        """
        cfg = self.config
        if cfg.mem_jitter <= 0.0 or kind not in _MEMORY_KINDS:
            return 1.0
        key = (cta, segment)
        mult = self._mem_mult.get(key)
        if mult is None:
            mult = 1.0 + cfg.mem_jitter * _site_u01(
                cfg.seed, _DOM_JITTER, cta, segment
            )
            self._record("mem_jitter", mult, cta=cta, segment=segment)
            self._mem_mult[key] = mult
        return mult

    # ------------------------------------------------------------------ #
    # Per-segment faults (executor side)                                  #
    # ------------------------------------------------------------------ #

    def segment_cycles(
        self,
        cta: int,
        segment: int,
        kind: SegmentKind,
        base_cycles: float,
        sm_slot: int,
    ) -> float:
        """Executed duration of one segment under the fault environment.

        Applies the slot's straggler/skew multiplier to every timed
        segment, plus the preempt/restart penalty to compute segments:
        a preempted CTA pays the fixed penalty plus re-execution of the
        uniformly-drawn fraction of work lost at preemption.
        ``WAIT`` segments never pass through here (their duration is
        observed, not intrinsic).
        """
        cycles = base_cycles * self.slot_multiplier(sm_slot)
        cfg = self.config
        if (
            cfg.preempt_prob > 0.0
            and kind is SegmentKind.COMPUTE
            and base_cycles > 0.0
        ):
            key = (cta, segment)
            penalty = self._seg_mult.get(key)
            if penalty is None:
                penalty = 0.0
                if _site_u01(cfg.seed, _DOM_PREEMPT, cta, segment) < cfg.preempt_prob:
                    lost = _site_u01(cfg.seed, _DOM_PREEMPT_FRAC, cta, segment)
                    penalty = cfg.preempt_penalty_cycles + lost * base_cycles
                    self._record("preempt", penalty, cta=cta, segment=segment)
                self._seg_mult[key] = penalty
            cycles += penalty
        return cycles

    # ------------------------------------------------------------------ #
    # Signal-protocol faults                                              #
    # ------------------------------------------------------------------ #

    def signal_delay(self, cta: int) -> float:
        """Extra cycles before CTA ``cta``'s flag publication is visible."""
        cfg = self.config
        if cfg.signal_delay_prob <= 0.0 or cfg.signal_delay_cycles <= 0.0:
            return 0.0
        delay = self._sig_delay.get(cta)
        if delay is None:
            delay = 0.0
            if _site_u01(cfg.seed, _DOM_SIG_DELAY, cta) < cfg.signal_delay_prob:
                delay = cfg.signal_delay_cycles * (
                    0.5 + 0.5 * _site_u01(cfg.seed, _DOM_SIG_DELAY, cta, 1)
                )
                self._record("signal_delay", delay, cta=cta)
            self._sig_delay[cta] = delay
        return delay

    def signal_dropped(self, cta: int) -> bool:
        """Whether CTA ``cta``'s flag publication is lost entirely.

        A dropped signal leaves every waiter on that slot blocked forever;
        the executor converts the condition into a
        :class:`~repro.errors.DeadlockError` with a wait-chain diagnostic
        instead of hanging.
        """
        cfg = self.config
        if cfg.signal_drop_prob <= 0.0:
            return False
        dropped = self._sig_drop.get(cta)
        if dropped is None:
            dropped = _site_u01(cfg.seed, _DOM_SIG_DROP, cta) < cfg.signal_drop_prob
            if dropped:
                self._record("signal_drop", 0.0, cta=cta)
            self._sig_drop[cta] = dropped
        return dropped

    @property
    def dropped_signals(self) -> "frozenset[int]":
        """CTA ids whose signals were dropped (among queried sites)."""
        return frozenset(c for c, d in self._sig_drop.items() if d)

    # ------------------------------------------------------------------ #
    # Bulk vectorized draws (array backends)                              #
    # ------------------------------------------------------------------ #

    def draws_for_sites(self, dimension: str, *site_arrays, base_cycles=None):
        """Bulk draws for a whole array of injection sites in one pass.

        This is the array-backend twin of the scalar query methods:
        every returned value is bitwise identical to the corresponding
        scalar draw, the per-site memo is shared with the scalar path
        (mixing bulk and scalar queries in either order is safe), and
        each *fired* site is logged and counted exactly once no matter
        how many times or through which API it is queried.

        ``dimension`` selects the fault dimension and fixes the site
        arrays expected:

        * ``"slot_multiplier"`` — ``(sm_slots,)``; returns duration
          multipliers (straggler x clock skew) per slot.
        * ``"preempt_penalty"`` — ``(ctas, segments)`` plus the
          ``base_cycles`` keyword; returns additive penalty cycles.
          Callers must pass only sites the scalar path would draw for:
          ``COMPUTE`` segments with positive base cycles.
        * ``"mem_jitter"`` — ``(ctas, segments)``; returns DRAM/L2
          latency multipliers.  Pass only memory-kind segment sites.
        * ``"signal_delay"`` — ``(ctas,)``; returns delay cycles.
        * ``"signal_drop"`` — ``(ctas,)``; returns a boolean array.
        """
        if dimension == "slot_multiplier":
            (slots,) = site_arrays
            return self.slot_multipliers(slots)
        if dimension == "preempt_penalty":
            ctas, segments = site_arrays
            if base_cycles is None:
                raise ConfigurationError(
                    "preempt_penalty draws require base_cycles"
                )
            return self.preempt_penalties(ctas, segments, base_cycles)
        if dimension == "mem_jitter":
            ctas, segments = site_arrays
            return self.mem_latency_multipliers(ctas, segments)
        if dimension == "signal_delay":
            (ctas,) = site_arrays
            return self.signal_delays(ctas)
        if dimension == "signal_drop":
            (ctas,) = site_arrays
            return self.signal_drops(ctas)
        raise ConfigurationError(
            "unknown fault draw dimension %r; expected slot_multiplier, "
            "preempt_penalty, mem_jitter, signal_delay or signal_drop"
            % (dimension,)
        )

    def slot_multipliers(self, sm_slots) -> np.ndarray:
        """Vectorized :meth:`slot_multiplier` over an array of slot ids."""
        slots = np.ascontiguousarray(sm_slots, dtype=np.int64)
        slot_list = slots.tolist()
        memo = self._slot_mult
        miss_idx = _missing_first_occurrence(slot_list, memo)
        if miss_idx:
            cfg = self.config
            sites = slots[np.array(miss_idx, dtype=np.int64)]
            strag = np.ones(len(miss_idx), dtype=np.float64)
            strag_fired = None
            if cfg.straggler_prob > 0.0 and cfg.straggler_severity > 0.0:
                u = _site_u01_vec(cfg.seed, _DOM_STRAGGLER, sites)
                strag_fired = (u < cfg.straggler_prob).tolist()
                strag = np.where(
                    strag_fired, 1.0 + cfg.straggler_severity, 1.0
                )
            if cfg.clock_skew > 0.0:
                skew = 1.0 + cfg.clock_skew * _site_u01_vec(
                    cfg.seed, _DOM_SKEW, sites
                )
                mult = (strag * skew).tolist()
                skew = skew.tolist()
            else:
                skew = None
                mult = strag.tolist()
            strag = strag.tolist()
            for j, i in enumerate(miss_idx):
                slot = slot_list[i]
                if strag_fired is not None and strag_fired[j]:
                    self._record("straggler", strag[j], sm_slot=slot)
                if skew is not None:
                    self._record("clock_skew", skew[j], sm_slot=slot)
                memo[slot] = mult[j]
        return np.array([memo[s] for s in slot_list], dtype=np.float64)

    def preempt_penalties(self, ctas, segments, base_cycles) -> np.ndarray:
        """Vectorized preempt penalties for compute-segment sites.

        Pass only sites the scalar :meth:`segment_cycles` would draw
        for — ``COMPUTE`` segments with positive base cycles.
        """
        ctas = np.ascontiguousarray(ctas, dtype=np.int64)
        segments = np.ascontiguousarray(segments, dtype=np.int64)
        base = np.ascontiguousarray(base_cycles, dtype=np.float64)
        cfg = self.config
        if cfg.preempt_prob <= 0.0:
            return np.zeros(ctas.shape[0], dtype=np.float64)
        keys = list(zip(ctas.tolist(), segments.tolist()))
        memo = self._seg_mult
        miss_idx = _missing_first_occurrence(keys, memo)
        if miss_idx:
            idx = np.array(miss_idx, dtype=np.int64)
            c, s, b = ctas[idx], segments[idx], base[idx]
            fired = _site_u01_vec(cfg.seed, _DOM_PREEMPT, c, s)
            fired = (fired < cfg.preempt_prob).tolist()
            lost = _site_u01_vec(cfg.seed, _DOM_PREEMPT_FRAC, c, s)
            penalty = np.where(
                fired, cfg.preempt_penalty_cycles + lost * b, 0.0
            ).tolist()
            for j, i in enumerate(miss_idx):
                key = keys[i]
                if fired[j]:
                    self._record(
                        "preempt", penalty[j], cta=key[0], segment=key[1]
                    )
                memo[key] = penalty[j]
        return np.array([memo[k] for k in keys], dtype=np.float64)

    def mem_latency_multipliers(self, ctas, segments) -> np.ndarray:
        """Vectorized mem jitter; pass only memory-kind segment sites."""
        ctas = np.ascontiguousarray(ctas, dtype=np.int64)
        segments = np.ascontiguousarray(segments, dtype=np.int64)
        cfg = self.config
        if cfg.mem_jitter <= 0.0:
            return np.ones(ctas.shape[0], dtype=np.float64)
        keys = list(zip(ctas.tolist(), segments.tolist()))
        memo = self._mem_mult
        miss_idx = _missing_first_occurrence(keys, memo)
        if miss_idx:
            idx = np.array(miss_idx, dtype=np.int64)
            c, s = ctas[idx], segments[idx]
            mult = 1.0 + cfg.mem_jitter * _site_u01_vec(
                cfg.seed, _DOM_JITTER, c, s
            )
            mult = mult.tolist()
            for j, i in enumerate(miss_idx):
                key = keys[i]
                self._record(
                    "mem_jitter", mult[j], cta=key[0], segment=key[1]
                )
                memo[key] = mult[j]
        return np.array([memo[k] for k in keys], dtype=np.float64)

    def signal_delays(self, ctas) -> np.ndarray:
        """Vectorized :meth:`signal_delay` over an array of CTA ids."""
        ctas = np.ascontiguousarray(ctas, dtype=np.int64)
        cfg = self.config
        if cfg.signal_delay_prob <= 0.0 or cfg.signal_delay_cycles <= 0.0:
            return np.zeros(ctas.shape[0], dtype=np.float64)
        cta_list = ctas.tolist()
        memo = self._sig_delay
        miss_idx = _missing_first_occurrence(cta_list, memo)
        if miss_idx:
            sites = ctas[np.array(miss_idx, dtype=np.int64)]
            fired = _site_u01_vec(cfg.seed, _DOM_SIG_DELAY, sites)
            fired = (fired < cfg.signal_delay_prob).tolist()
            mag = cfg.signal_delay_cycles * (
                0.5
                + 0.5
                * _site_u01_vec(
                    cfg.seed,
                    _DOM_SIG_DELAY,
                    sites,
                    np.ones(sites.shape[0], dtype=np.uint64),
                )
            )
            delay = np.where(fired, mag, 0.0).tolist()
            for j, i in enumerate(miss_idx):
                cta = cta_list[i]
                if fired[j]:
                    self._record("signal_delay", delay[j], cta=cta)
                memo[cta] = delay[j]
        return np.array([memo[c] for c in cta_list], dtype=np.float64)

    def signal_drops(self, ctas) -> np.ndarray:
        """Vectorized :meth:`signal_dropped` over an array of CTA ids."""
        ctas = np.ascontiguousarray(ctas, dtype=np.int64)
        cfg = self.config
        if cfg.signal_drop_prob <= 0.0:
            return np.zeros(ctas.shape[0], dtype=bool)
        cta_list = ctas.tolist()
        memo = self._sig_drop
        miss_idx = _missing_first_occurrence(cta_list, memo)
        if miss_idx:
            sites = ctas[np.array(miss_idx, dtype=np.int64)]
            dropped = _site_u01_vec(cfg.seed, _DOM_SIG_DROP, sites)
            dropped = (dropped < cfg.signal_drop_prob).tolist()
            for j, i in enumerate(miss_idx):
                cta = cta_list[i]
                if dropped[j]:
                    self._record("signal_drop", 0.0, cta=cta)
                memo[cta] = dropped[j]
        return np.array([memo[c] for c in cta_list], dtype=bool)

    # ------------------------------------------------------------------ #
    # Reporting                                                           #
    # ------------------------------------------------------------------ #

    def _record(self, kind: str, value: float, **site) -> None:
        self.log.append(InjectedFault(kind=kind, value=value, **site))
        inc_counter("faults.%s" % kind)

    def injection_counts(self) -> "dict[str, int]":
        """Fired-injection totals by kind (for sweep rows and reports)."""
        counts: "dict[str, int]" = {}
        for f in self.log:
            counts[f.kind] = counts.get(f.kind, 0) + 1
        return counts
