"""Deterministic, site-keyed fault sampling.

A :class:`FaultInjector` answers the executor's and cost model's
questions — "how slow is this SM slot?", "is this CTA's flag dropped?",
"does this compute segment get preempted?" — from a pure function of
``(config.seed, site)``, where *site* identifies the injection point
structurally (SM slot index, CTA id, segment index).  Two consequences:

* **bit-reproducibility** — the same seed and config produce the same
  injections regardless of how many times or in what order sites are
  queried (no shared RNG stream to perturb);
* **comparability** — changing one knob (say, ``signal_drop_prob``)
  leaves every other dimension's draws untouched, so sweeps isolate the
  dimension under study.

The hash is splitmix64 over the seed and the site ids, mixed per fault
dimension through a distinct domain tag.  Every injection that *fires*
is recorded in :attr:`FaultInjector.log` and counted in the
:mod:`repro.obs.counters` registry under ``faults.*`` (once per site —
queries are memoized), so profiles and reports show exactly what was
injected where.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.cta import SegmentKind
from ..obs.counters import inc_counter
from .config import FaultConfig

__all__ = ["FaultInjector", "InjectedFault"]

_MASK64 = (1 << 64) - 1

# Domain tags: one per fault dimension so draws never collide across
# dimensions even at the same structural site.
_DOM_STRAGGLER = 0x51A
_DOM_SKEW = 0x5E3
_DOM_JITTER = 0x117
_DOM_SIG_DELAY = 0xDE1
_DOM_SIG_DROP = 0xD20
_DOM_PREEMPT = 0x9EE
_DOM_PREEMPT_FRAC = 0x9EF

#: Segment kinds whose cycle cost is DRAM/L2-latency bound and therefore
#: subject to memory jitter.
_MEMORY_KINDS = frozenset(
    (SegmentKind.STORE_PARTIALS, SegmentKind.FIXUP, SegmentKind.STORE_TILE)
)


def _splitmix64(x: int) -> int:
    """One splitmix64 round: a high-quality 64-bit mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _site_u01(seed: int, domain: int, *ids: int) -> float:
    """Uniform [0, 1) draw keyed by (seed, domain, site ids)."""
    x = _splitmix64(seed & _MASK64)
    x = _splitmix64(x ^ domain)
    for i in ids:
        x = _splitmix64(x ^ (i & _MASK64))
    return x / float(1 << 64)


@dataclass(frozen=True)
class InjectedFault:
    """One fault that actually fired, for reports and trace annotation.

    ``kind`` is one of ``straggler``, ``clock_skew``, ``mem_jitter``,
    ``signal_delay``, ``signal_drop``, ``preempt``.  ``value`` is the
    dimension's magnitude: a slowdown multiplier, delay cycles, or
    penalty cycles (0.0 for drops).
    """

    kind: str
    value: float
    sm_slot: "int | None" = None
    cta: "int | None" = None
    segment: "int | None" = None


class FaultInjector:
    """Stateful facade over a :class:`FaultConfig`: memoized site queries.

    One injector instance corresponds to one simulated execution; the
    memoization guarantees a site queried twice (cost model then
    executor, or diagnostic replay) reports the same draw and is logged
    and counted exactly once.
    """

    def __init__(self, config: FaultConfig):
        self.config = config
        self.log: "list[InjectedFault]" = []
        self._slot_mult: "dict[int, float]" = {}
        self._seg_mult: "dict[tuple[int, int], float]" = {}
        self._mem_mult: "dict[tuple[int, int], float]" = {}
        self._sig_delay: "dict[int, float]" = {}
        self._sig_drop: "dict[int, bool]" = {}

    # ------------------------------------------------------------------ #
    # Per-SM-slot faults                                                  #
    # ------------------------------------------------------------------ #

    def slot_multiplier(self, sm_slot: int) -> float:
        """Duration multiplier for every segment run on ``sm_slot``.

        Combines the straggler draw (slot slowed by ``1 + severity``)
        with the continuous clock-skew drift in ``[1, 1 + clock_skew]``.
        Exactly 1.0 when neither dimension is configured.
        """
        mult = self._slot_mult.get(sm_slot)
        if mult is not None:
            return mult
        cfg = self.config
        mult = 1.0
        if cfg.straggler_prob > 0.0 and cfg.straggler_severity > 0.0:
            if _site_u01(cfg.seed, _DOM_STRAGGLER, sm_slot) < cfg.straggler_prob:
                mult *= 1.0 + cfg.straggler_severity
                self._record("straggler", mult, sm_slot=sm_slot)
        if cfg.clock_skew > 0.0:
            skew = 1.0 + cfg.clock_skew * _site_u01(cfg.seed, _DOM_SKEW, sm_slot)
            mult *= skew
            self._record("clock_skew", skew, sm_slot=sm_slot)
        self._slot_mult[sm_slot] = mult
        return mult

    # ------------------------------------------------------------------ #
    # Per-segment faults (cost-model side)                                #
    # ------------------------------------------------------------------ #

    def mem_latency_multiplier(
        self, cta: int, segment: int, kind: SegmentKind
    ) -> float:
        """DRAM/L2 jitter multiplier for one memory-priced segment.

        Keyed by (CTA, segment index); non-memory kinds always get 1.0.
        The cost model applies this when pricing a schedule into timed
        tasks, so jitter is part of the task's intrinsic cycles.
        """
        cfg = self.config
        if cfg.mem_jitter <= 0.0 or kind not in _MEMORY_KINDS:
            return 1.0
        key = (cta, segment)
        mult = self._mem_mult.get(key)
        if mult is None:
            mult = 1.0 + cfg.mem_jitter * _site_u01(
                cfg.seed, _DOM_JITTER, cta, segment
            )
            self._record("mem_jitter", mult, cta=cta, segment=segment)
            self._mem_mult[key] = mult
        return mult

    # ------------------------------------------------------------------ #
    # Per-segment faults (executor side)                                  #
    # ------------------------------------------------------------------ #

    def segment_cycles(
        self,
        cta: int,
        segment: int,
        kind: SegmentKind,
        base_cycles: float,
        sm_slot: int,
    ) -> float:
        """Executed duration of one segment under the fault environment.

        Applies the slot's straggler/skew multiplier to every timed
        segment, plus the preempt/restart penalty to compute segments:
        a preempted CTA pays the fixed penalty plus re-execution of the
        uniformly-drawn fraction of work lost at preemption.
        ``WAIT`` segments never pass through here (their duration is
        observed, not intrinsic).
        """
        cycles = base_cycles * self.slot_multiplier(sm_slot)
        cfg = self.config
        if (
            cfg.preempt_prob > 0.0
            and kind is SegmentKind.COMPUTE
            and base_cycles > 0.0
        ):
            key = (cta, segment)
            penalty = self._seg_mult.get(key)
            if penalty is None:
                penalty = 0.0
                if _site_u01(cfg.seed, _DOM_PREEMPT, cta, segment) < cfg.preempt_prob:
                    lost = _site_u01(cfg.seed, _DOM_PREEMPT_FRAC, cta, segment)
                    penalty = cfg.preempt_penalty_cycles + lost * base_cycles
                    self._record("preempt", penalty, cta=cta, segment=segment)
                self._seg_mult[key] = penalty
            cycles += penalty
        return cycles

    # ------------------------------------------------------------------ #
    # Signal-protocol faults                                              #
    # ------------------------------------------------------------------ #

    def signal_delay(self, cta: int) -> float:
        """Extra cycles before CTA ``cta``'s flag publication is visible."""
        cfg = self.config
        if cfg.signal_delay_prob <= 0.0 or cfg.signal_delay_cycles <= 0.0:
            return 0.0
        delay = self._sig_delay.get(cta)
        if delay is None:
            delay = 0.0
            if _site_u01(cfg.seed, _DOM_SIG_DELAY, cta) < cfg.signal_delay_prob:
                delay = cfg.signal_delay_cycles * (
                    0.5 + 0.5 * _site_u01(cfg.seed, _DOM_SIG_DELAY, cta, 1)
                )
                self._record("signal_delay", delay, cta=cta)
            self._sig_delay[cta] = delay
        return delay

    def signal_dropped(self, cta: int) -> bool:
        """Whether CTA ``cta``'s flag publication is lost entirely.

        A dropped signal leaves every waiter on that slot blocked forever;
        the executor converts the condition into a
        :class:`~repro.errors.DeadlockError` with a wait-chain diagnostic
        instead of hanging.
        """
        cfg = self.config
        if cfg.signal_drop_prob <= 0.0:
            return False
        dropped = self._sig_drop.get(cta)
        if dropped is None:
            dropped = _site_u01(cfg.seed, _DOM_SIG_DROP, cta) < cfg.signal_drop_prob
            if dropped:
                self._record("signal_drop", 0.0, cta=cta)
            self._sig_drop[cta] = dropped
        return dropped

    @property
    def dropped_signals(self) -> "frozenset[int]":
        """CTA ids whose signals were dropped (among queried sites)."""
        return frozenset(c for c, d in self._sig_drop.items() if d)

    # ------------------------------------------------------------------ #
    # Reporting                                                           #
    # ------------------------------------------------------------------ #

    def _record(self, kind: str, value: float, **site) -> None:
        self.log.append(InjectedFault(kind=kind, value=value, **site))
        inc_counter("faults.%s" % kind)

    def injection_counts(self) -> "dict[str, int]":
        """Fired-injection totals by kind (for sweep rows and reports)."""
        counts: "dict[str, int]" = {}
        for f in self.log:
            counts[f.kind] = counts.get(f.kind, 0) + 1
        return counts
