"""Deterministic fault injection for the simulated GPU.

Stream-K's value proposition is *schedule robustness*: the fixup chains
and inter-CTA signal/wait protocol must tolerate skewed CTA arrival
order, stragglers, and memory-latency variance.  This subpackage makes
that claim testable on the simulator:

* :mod:`~repro.faults.config` — :class:`FaultConfig`, the seeded,
  declarative description of which faults to inject and how hard;
* :mod:`~repro.faults.injector` — :class:`FaultInjector`, the
  deterministic site-keyed sampler the executor and cost model consult
  (same seed + config => bit-identical injections, independent of
  dispatch order);
* :mod:`~repro.faults.checker` — the protocol invariant checker: replays
  any :class:`~repro.gpu.trace.ExecutionTrace` against its schedule and
  asserts every output tile's k-range is covered exactly once across
  partials/fixup, every fixup reads an already-published partial, and
  every partial is consumed exactly once — a race detector for the
  Stream-K carry protocol;
* :mod:`~repro.faults.sweep` — straggler-severity x schedule sweeps
  reporting makespan degradation (the sensitivity curves behind
  ``python -m repro faults``);
* :mod:`~repro.faults.chaos` — :class:`ChaosKill` and
  :class:`ChaosWorkerKill`, deterministic *process-level* kill-point
  injection for the durable sweep engine: SIGKILL the harness right
  after the K-th journaled shard completion (``repro sweep
  --chaos-kill-after K``), or SIGKILL one lease-fabric worker at a
  claim/eval/commit boundary (``repro sweep --workers N
  --chaos-worker-kill POINT[:K]``, docs/CHECKPOINTING.md).

Determinism contract: all randomness derives from
:class:`FaultConfig.seed` through a counter-free splitmix64 hash of the
injection *site* (SM slot, CTA id, segment index), never from draw
order.  The zero-fault config (:meth:`FaultConfig.none`) is bitwise
inert: traces are identical to the unfaulted simulator.  See
``docs/FAULTS.md`` for the full fault model.
"""

from .chaos import ChaosKill, ChaosWorkerKill
from .checker import InvariantReport, check_protocol_invariants
from .config import FaultConfig
from .injector import FaultInjector, InjectedFault
from .sweep import SweepCell, format_sweep_table, run_fault_sweep

__all__ = [
    "ChaosKill",
    "ChaosWorkerKill",
    "FaultConfig",
    "FaultInjector",
    "InjectedFault",
    "InvariantReport",
    "SweepCell",
    "check_protocol_invariants",
    "format_sweep_table",
    "run_fault_sweep",
]
