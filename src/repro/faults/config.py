"""Fault-injection configuration: what to inject, how hard, and the seed.

A :class:`FaultConfig` is a frozen, declarative description of a fault
environment for one simulated kernel execution.  It carries no state —
the deterministic sampling lives in
:class:`~repro.faults.injector.FaultInjector` — so one config can be
reused across schedules and repetitions, and equality of configs implies
bit-identical injections.

The fault vocabulary (each dimension independent, all seeded):

=========================  =============================================
straggler                  per-SM-slot slowdown: with probability
                           ``straggler_prob`` a slot multiplies every
                           segment it runs by ``1 + straggler_severity``
clock skew                 every slot additionally drifts by a uniform
                           factor in ``[1, 1 + clock_skew]``
memory jitter              DRAM/L2-priced segments (partial stores,
                           fixups, tile stores) are stretched by a
                           uniform factor in ``[1, 1 + mem_jitter]``,
                           keyed per (CTA, segment)
signal delay               with probability ``signal_delay_prob`` a
                           flag publication lands ``signal_delay_cycles``
                           late (uniformly scaled), delaying waiters
signal drop                with probability ``signal_drop_prob`` a flag
                           is never published; the executor surfaces the
                           resulting hang as a clean ``DeadlockError``
preempt/restart            with probability ``preempt_prob`` a compute
                           segment is preempted mid-flight: the CTA pays
                           ``preempt_penalty_cycles`` plus re-execution
                           of the uniformly-drawn lost fraction
=========================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError

__all__ = ["FaultConfig"]


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(
            "%s must be a probability in [0, 1], got %r" % (name, value)
        )


def _check_nonneg(name: str, value: float) -> None:
    if value < 0.0:
        raise ConfigurationError(
            "%s must be non-negative, got %r" % (name, value)
        )


@dataclass(frozen=True)
class FaultConfig:
    """Seeded description of the faults to inject into one execution."""

    seed: int = 0
    straggler_prob: float = 0.0
    straggler_severity: float = 0.0
    clock_skew: float = 0.0
    mem_jitter: float = 0.0
    signal_delay_prob: float = 0.0
    signal_delay_cycles: float = 0.0
    signal_drop_prob: float = 0.0
    preempt_prob: float = 0.0
    preempt_penalty_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigurationError("seed must be non-negative")
        _check_prob("straggler_prob", self.straggler_prob)
        _check_prob("signal_delay_prob", self.signal_delay_prob)
        _check_prob("signal_drop_prob", self.signal_drop_prob)
        _check_prob("preempt_prob", self.preempt_prob)
        _check_nonneg("straggler_severity", self.straggler_severity)
        _check_nonneg("clock_skew", self.clock_skew)
        _check_nonneg("mem_jitter", self.mem_jitter)
        _check_nonneg("signal_delay_cycles", self.signal_delay_cycles)
        _check_nonneg("preempt_penalty_cycles", self.preempt_penalty_cycles)

    # ------------------------------------------------------------------ #
    # Constructors                                                        #
    # ------------------------------------------------------------------ #

    @classmethod
    def none(cls, seed: int = 0) -> "FaultConfig":
        """The zero-fault environment (bitwise inert by contract)."""
        return cls(seed=seed)

    @classmethod
    def straggler_sweep_point(
        cls, severity: float, seed: int = 0
    ) -> "FaultConfig":
        """The canonical sweep cell used by ``python -m repro faults``.

        ``severity`` scales every fault dimension together: a quarter of
        the SMs straggle by ``1 + severity``, memory latency jitters by
        up to ``25% * severity``, clocks skew by up to ``10% * severity``
        and a ``10% * severity`` fraction of flag publications land 2000
        ``severity``-scaled cycles late.  ``severity=0`` is exactly
        :meth:`none` (the sweep's bitwise baseline).
        """
        _check_nonneg("severity", severity)
        if severity == 0.0:
            return cls.none(seed=seed)
        return cls(
            seed=seed,
            straggler_prob=0.25,
            straggler_severity=severity,
            clock_skew=0.10 * severity,
            mem_jitter=0.25 * severity,
            signal_delay_prob=min(1.0, 0.10 * severity),
            signal_delay_cycles=2000.0 * severity,
        )

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    @property
    def is_null(self) -> bool:
        """True when no fault dimension can fire (seed is irrelevant)."""
        return (
            (self.straggler_prob == 0.0 or self.straggler_severity == 0.0)
            and self.clock_skew == 0.0
            and self.mem_jitter == 0.0
            and (self.signal_delay_prob == 0.0 or self.signal_delay_cycles == 0.0)
            and self.signal_drop_prob == 0.0
            and self.preempt_prob == 0.0
        )

    def with_seed(self, seed: int) -> "FaultConfig":
        """Same fault environment, different random universe."""
        return replace(self, seed=seed)
