"""The CTA-wide MacLoop (paper Algorithm 3), executed numerically.

``mac_loop`` computes the partial accumulation of one output tile over a
*sub-range* of its MAC-loop iterations — exactly the primitive every
decomposition in the paper composes:

* data-parallel calls it once per tile with the full range [0, iters);
* fixed-split calls it with contiguous uniform sub-ranges;
* Stream-K calls it with whatever sub-range lands in a CTA's share.

The returned accumulator has the *full* blocking-shaped extents of the tile
clamped to the problem edge, in the accumulator dtype.  Summing the
accumulators of any partition of [0, iters) reproduces the tile exactly
(associativity of addition — the property fixed-split and Stream-K rely on),
up to floating-point reassociation which the validation tolerances absorb.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .tiling import TileGrid

__all__ = ["mac_loop", "mac_loop_fragments"]


def mac_loop(
    grid: TileGrid,
    a: np.ndarray,
    b: np.ndarray,
    tile_idx: int,
    iter_begin: int,
    iter_end: int,
) -> np.ndarray:
    """Accumulate iterations [iter_begin, iter_end) of ``tile_idx``.

    Parameters mirror the paper's ``MacLoop(tile_idx, iter_begin, iter_end)``.
    An empty range returns a zero accumulator (a CTA whose share ends exactly
    on a tile boundary contributes nothing to the next tile).
    """
    if not (0 <= iter_begin <= iter_end <= grid.iters_per_tile):
        raise ConfigurationError(
            "iteration range [%d, %d) invalid for %d iters/tile"
            % (iter_begin, iter_end, grid.iters_per_tile)
        )
    ms, ns = grid.tile_extents(tile_idx)
    acc_t = grid.problem.dtype.accum_dtype
    acc = np.zeros((ms.stop - ms.start, ns.stop - ns.start), dtype=acc_t)
    if iter_begin == iter_end:
        return acc

    # The whole contiguous k-range is one slice; computing it as a single
    # matrix product is numerically identical to iterating BLK_K-deep
    # fragments with fp32/fp64 accumulation, and vectorizes the hot path.
    ks = grid.k_range_extent(iter_begin, iter_end)
    frag_a = a[ms, ks].astype(acc_t, copy=False)
    frag_b = b[ks, ns].astype(acc_t, copy=False)
    acc += frag_a @ frag_b
    return acc


def mac_loop_fragments(
    grid: TileGrid,
    a: np.ndarray,
    b: np.ndarray,
    tile_idx: int,
    iter_begin: int,
    iter_end: int,
) -> np.ndarray:
    """Fragment-at-a-time variant of :func:`mac_loop`.

    Stages one ``(BLK_M x BLK_K)`` A fragment and one ``(BLK_K x BLK_N)`` B
    fragment per MAC-loop iteration, exactly as the paper's listing does.
    Slower, but it exercises the per-iteration bookkeeping; the test suite
    asserts it matches :func:`mac_loop` bit-for-bit in fp64 and within
    reassociation tolerance otherwise.
    """
    if not (0 <= iter_begin <= iter_end <= grid.iters_per_tile):
        raise ConfigurationError(
            "iteration range [%d, %d) invalid for %d iters/tile"
            % (iter_begin, iter_end, grid.iters_per_tile)
        )
    ms, ns = grid.tile_extents(tile_idx)
    acc_t = grid.problem.dtype.accum_dtype
    acc = np.zeros((ms.stop - ms.start, ns.stop - ns.start), dtype=acc_t)
    for it in range(iter_begin, iter_end):
        ks = grid.iter_k_extent(it)
        frag_a = a[ms, ks].astype(acc_t, copy=False)
        frag_b = b[ks, ns].astype(acc_t, copy=False)
        acc += frag_a @ frag_b
    return acc
