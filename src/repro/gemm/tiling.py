"""Output-tile blocking of a GEMM problem.

The GEMM iteration space is blocked by a :class:`Blocking` of
``BLK_M x BLK_N x BLK_K``.  The (m, n) output plane is covered by a grid of
``tiles_m x tiles_n`` output tiles; the k axis of every tile is covered by
``iters_per_tile`` MAC-loop iterations of depth ``BLK_K`` each.  A *MAC-loop
iteration* — a CTA-wide ``BLK_M x BLK_N x BLK_K`` volume of multiply-
accumulates — is the unit of work Stream-K quantizes across processor cores.

Ragged edges (extents that are not multiples of the blocking) are handled by
clamping: edge tiles and the last k iteration simply cover fewer elements.
All bookkeeping here is therefore exact for arbitrary problem shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .problem import GemmProblem

__all__ = ["Blocking", "TileGrid", "ceil_div"]


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for non-negative ``a`` and positive ``b``."""
    return -(-a // b)


@dataclass(frozen=True)
class Blocking:
    """CTA-wide blocking factors ``(BLK_M, BLK_N, BLK_K)``."""

    blk_m: int
    blk_n: int
    blk_k: int

    def __post_init__(self) -> None:
        for name, extent in (
            ("BLK_M", self.blk_m),
            ("BLK_N", self.blk_n),
            ("BLK_K", self.blk_k),
        ):
            if extent <= 0:
                raise ConfigurationError(
                    "%s must be positive, got %d" % (name, extent)
                )

    @property
    def tile_macs(self) -> int:
        """MACs in one full MAC-loop iteration (BLK_M * BLK_N * BLK_K)."""
        return self.blk_m * self.blk_n * self.blk_k

    @property
    def as_tuple(self) -> "tuple[int, int, int]":
        return (self.blk_m, self.blk_n, self.blk_k)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "%dx%dx%d" % (self.blk_m, self.blk_n, self.blk_k)


@dataclass(frozen=True)
class TileGrid:
    """The tile decomposition of one problem under one blocking.

    This is pure integer bookkeeping shared by every decomposition strategy:
    how many tiles exist, how many MAC-loop iterations each requires, and the
    element extents covered by any given tile (exact at ragged edges).
    """

    problem: GemmProblem
    blocking: Blocking

    # ---------------------------- extents ----------------------------- #

    @property
    def tiles_m(self) -> int:
        """Output tiles along m: ceil(m / BLK_M)."""
        return ceil_div(self.problem.m, self.blocking.blk_m)

    @property
    def tiles_n(self) -> int:
        """Output tiles along n: ceil(n / BLK_N)."""
        return ceil_div(self.problem.n, self.blocking.blk_n)

    @property
    def num_tiles(self) -> int:
        """Total output tiles t = tiles_m * tiles_n."""
        return self.tiles_m * self.tiles_n

    @property
    def iters_per_tile(self) -> int:
        """MAC-loop iterations per tile: ceil(k / BLK_K)."""
        return ceil_div(self.problem.k, self.blocking.blk_k)

    @property
    def total_iters(self) -> int:
        """Aggregate MAC-loop iterations: t * iters_per_tile.

        This is the quantity Stream-K partitions evenly across its grid
        (Algorithm 5, line 3).
        """
        return self.num_tiles * self.iters_per_tile

    # ------------------------- tile coordinates ----------------------- #

    def tile_coords(self, tile_idx: int) -> "tuple[int, int]":
        """Map a linear tile index to (tile_row, tile_col).

        Tiles are linearized row-major over the (tiles_m, tiles_n) grid,
        matching the m -> n ordering of the paper's linearization.
        """
        self._check_tile(tile_idx)
        return divmod(tile_idx, self.tiles_n)

    def tile_index(self, tile_row: int, tile_col: int) -> int:
        """Inverse of :meth:`tile_coords`."""
        if not (0 <= tile_row < self.tiles_m and 0 <= tile_col < self.tiles_n):
            raise ConfigurationError(
                "tile coordinate (%d, %d) outside %dx%d grid"
                % (tile_row, tile_col, self.tiles_m, self.tiles_n)
            )
        return tile_row * self.tiles_n + tile_col

    def tile_extents(self, tile_idx: int) -> "tuple[slice, slice]":
        """Element slices (rows of C, cols of C) covered by a tile.

        Edge tiles are clamped to the problem extents.
        """
        row, col = self.tile_coords(tile_idx)
        m0 = row * self.blocking.blk_m
        n0 = col * self.blocking.blk_n
        m1 = min(m0 + self.blocking.blk_m, self.problem.m)
        n1 = min(n0 + self.blocking.blk_n, self.problem.n)
        return slice(m0, m1), slice(n0, n1)

    def iter_k_extent(self, it: int) -> slice:
        """Element slice of the k axis covered by MAC-loop iteration ``it``."""
        if not (0 <= it < self.iters_per_tile):
            raise ConfigurationError(
                "iteration %d outside [0, %d)" % (it, self.iters_per_tile)
            )
        k0 = it * self.blocking.blk_k
        k1 = min(k0 + self.blocking.blk_k, self.problem.k)
        return slice(k0, k1)

    def k_range_extent(self, iter_begin: int, iter_end: int) -> slice:
        """Element slice of the k axis covered by iterations [begin, end)."""
        if not (0 <= iter_begin <= iter_end <= self.iters_per_tile):
            raise ConfigurationError(
                "iteration range [%d, %d) outside [0, %d]"
                % (iter_begin, iter_end, self.iters_per_tile)
            )
        k0 = iter_begin * self.blocking.blk_k
        k1 = min(iter_end * self.blocking.blk_k, self.problem.k)
        return slice(k0, k1)

    # ---------------------------- accounting -------------------------- #

    def tile_mac_count(self, tile_idx: int) -> int:
        """Exact MACs performed for one tile (ragged edges clamped)."""
        ms, ns = self.tile_extents(tile_idx)
        return (ms.stop - ms.start) * (ns.stop - ns.start) * self.problem.k

    def fragment_bytes_a(self) -> int:
        """Bytes of one A fragment (BLK_M x BLK_K) staged per iteration."""
        return (
            self.blocking.blk_m
            * self.blocking.blk_k
            * self.problem.dtype.input_bytes
        )

    def fragment_bytes_b(self) -> int:
        """Bytes of one B fragment (BLK_K x BLK_N) staged per iteration."""
        return (
            self.blocking.blk_k
            * self.blocking.blk_n
            * self.problem.dtype.input_bytes
        )

    def tile_output_bytes(self) -> int:
        """Bytes written when storing one full output tile."""
        return (
            self.blocking.blk_m
            * self.blocking.blk_n
            * self.problem.dtype.output_bytes
        )

    # ---------------------------- helpers ----------------------------- #

    def _check_tile(self, tile_idx: int) -> None:
        if not (0 <= tile_idx < self.num_tiles):
            raise ConfigurationError(
                "tile index %d outside [0, %d)" % (tile_idx, self.num_tiles)
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "TileGrid(%s, blk=%s, t=%d, iters/tile=%d)" % (
            self.problem,
            self.blocking,
            self.num_tiles,
            self.iters_per_tile,
        )
