"""Partial-sum workspace and signal flags for tile-splitting schedules.

Fixed-split (Algorithm 4) and Stream-K (Algorithm 5) consolidate partial
accumulators across CTAs through temporary global storage guarded by flags:
a contributing CTA ``StorePartials`` + ``Signal``s; the tile-owning CTA
``Wait``s on each peer flag and ``LoadPartials``.

This module implements that protocol for the *numeric* execution path.  The
workspace is keyed by CTA index — Stream-K's storage is O(g), bound by the
number of CTAs rather than by problem size (a headline property of the
paper, Section 4) — and the flag discipline is enforced: loading a slot that
was never signalled, or double-storing a slot, raises, so schedule bugs
surface as errors rather than silent corruption.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

__all__ = ["PartialStore"]


class PartialStore:
    """Temporary global storage of partial accumulators, one slot per CTA.

    The numeric executor is sequential, so ``wait`` here is a correctness
    check (the flag must already be set) rather than a blocking operation;
    the discrete-event simulator models the actual waiting time.
    """

    def __init__(self, num_slots: int):
        if num_slots < 0:
            raise SimulationError("negative slot count %d" % num_slots)
        self._num_slots = num_slots
        self._partials: "dict[int, np.ndarray]" = {}
        self._flags = np.zeros(num_slots, dtype=bool)
        self._stores = 0
        self._loads = 0

    # ------------------------------------------------------------------ #
    # Protocol operations (paper naming)                                 #
    # ------------------------------------------------------------------ #

    def store_partials(self, slot: int, accum: np.ndarray) -> None:
        """``StorePartials(partials[slot], accum)`` — stash a partial tile."""
        self._check_slot(slot)
        if slot in self._partials:
            raise SimulationError(
                "CTA slot %d stored partials twice without a load" % slot
            )
        # Copy: the contributing CTA's accumulator buffer is dead after the
        # store; the copy models the write to temporary global memory.
        self._partials[slot] = np.array(accum, copy=True)
        self._stores += 1

    def signal(self, slot: int) -> None:
        """``Signal(flags[slot])`` — publish the stored partials."""
        self._check_slot(slot)
        if slot not in self._partials:
            raise SimulationError(
                "CTA slot %d signalled before storing partials" % slot
            )
        self._flags[slot] = True

    def wait(self, slot: int) -> None:
        """``Wait(flags[slot])`` — assert the peer already signalled."""
        self._check_slot(slot)
        if not self._flags[slot]:
            raise SimulationError(
                "wait on CTA slot %d whose flag was never signalled — the "
                "schedule ordered a reader before its writer" % slot
            )

    def load_partials(self, slot: int) -> np.ndarray:
        """``LoadPartials(partials[slot])`` — consume a peer's partial tile."""
        self.wait(slot)
        self._loads += 1
        return self._partials[slot]

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    @property
    def num_slots(self) -> int:
        return self._num_slots

    @property
    def stores(self) -> int:
        """Number of partial-tile stores performed (fixup write traffic)."""
        return self._stores

    @property
    def loads(self) -> int:
        """Number of partial-tile loads performed (fixup read traffic)."""
        return self._loads

    def outstanding(self) -> "list[int]":
        """Slots stored but never loaded — should be empty after a run."""
        return sorted(s for s in self._partials if self._flags[s])

    def _check_slot(self, slot: int) -> None:
        if not (0 <= slot < self._num_slots):
            raise SimulationError(
                "slot %d outside workspace of %d slots" % (slot, self._num_slots)
            )
