"""Reference GEMM implementations used as numerical ground truth.

Two implementations:

* :func:`reference_gemm` — the trusted oracle: float64 ``A @ B`` with the
  alpha/beta epilogue, used by every validation path.
* :func:`cache_blocked_gemm` — a faithful transcription of the paper's
  Algorithm 1 (sequential cache-blocked GEMM), blocked over all three axes
  with the inner MAC volume vectorized.  It exists to (a) document the
  classical formulation the parallel decompositions descend from, and (b)
  cross-check the blocking bookkeeping on ragged shapes.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .problem import GemmProblem
from .tiling import Blocking

__all__ = ["reference_gemm", "cache_blocked_gemm", "random_operands"]


def _check_operands(problem: GemmProblem, a: np.ndarray, b: np.ndarray,
                    c: "np.ndarray | None") -> None:
    if a.shape != (problem.m, problem.k):
        raise ConfigurationError(
            "A has shape %r, expected %r" % (a.shape, (problem.m, problem.k))
        )
    if b.shape != (problem.k, problem.n):
        raise ConfigurationError(
            "B has shape %r, expected %r" % (b.shape, (problem.k, problem.n))
        )
    if c is not None and c.shape != (problem.m, problem.n):
        raise ConfigurationError(
            "C has shape %r, expected %r" % (c.shape, (problem.m, problem.n))
        )
    if c is None and problem.beta != 0.0:
        raise ConfigurationError("beta != 0 requires an input C operand")


def reference_gemm(
    problem: GemmProblem,
    a: np.ndarray,
    b: np.ndarray,
    c: "np.ndarray | None" = None,
) -> np.ndarray:
    """Ground-truth ``alpha * A @ B + beta * C`` in float64.

    Inputs are upcast to float64 regardless of the problem's precision so the
    result can serve as a validation oracle for lower-precision kernels.
    """
    _check_operands(problem, a, b, c)
    out = problem.alpha * (a.astype(np.float64) @ b.astype(np.float64))
    if problem.beta != 0.0:
        out += problem.beta * c.astype(np.float64)
    return out


def cache_blocked_gemm(
    problem: GemmProblem,
    a: np.ndarray,
    b: np.ndarray,
    blocking: "Blocking | None" = None,
    c: "np.ndarray | None" = None,
) -> np.ndarray:
    """Algorithm 1: sequential cache-blocked GEMM.

    The three outer loops traverse blocks of the (m, n, k) volume; the inner
    ``BLK_M x BLK_N x BLK_K`` MAC volume is computed as a small matrix
    product (the "fully unrolled" MAC iteration of the paper's listing).
    Accumulation happens in the problem's accumulator dtype, mirroring the
    simulated kernels' numerics.
    """
    _check_operands(problem, a, b, c)
    blk = blocking or Blocking(*problem.dtype.default_blocking)
    acc_t = problem.dtype.accum_dtype
    out = np.zeros((problem.m, problem.n), dtype=acc_t)

    # tile-processing outer loops
    for mm in range(0, problem.m, blk.blk_m):
        m_hi = min(mm + blk.blk_m, problem.m)
        for nn in range(0, problem.n, blk.blk_n):
            n_hi = min(nn + blk.blk_n, problem.n)
            acc = np.zeros((m_hi - mm, n_hi - nn), dtype=acc_t)
            # MAC iterations for this tile
            for kk in range(0, problem.k, blk.blk_k):
                k_hi = min(kk + blk.blk_k, problem.k)
                frag_a = a[mm:m_hi, kk:k_hi].astype(acc_t, copy=False)
                frag_b = b[kk:k_hi, nn:n_hi].astype(acc_t, copy=False)
                acc += frag_a @ frag_b
            out[mm:m_hi, nn:n_hi] = acc

    if problem.alpha != 1.0:
        out = (problem.alpha * out).astype(acc_t, copy=False)
    if problem.beta != 0.0:
        out = (out + problem.beta * c.astype(acc_t)).astype(acc_t, copy=False)
    return out


def random_operands(
    problem: GemmProblem, seed: int = 0
) -> "tuple[np.ndarray, np.ndarray]":
    """Deterministic random (A, B) operands at the problem's input dtype.

    Values are drawn uniformly from [-1, 1) to keep accumulations
    well-conditioned for validation at half precision.
    """
    rng = np.random.default_rng(seed)
    a = (rng.random((problem.m, problem.k)) * 2.0 - 1.0).astype(
        problem.dtype.input_dtype
    )
    b = (rng.random((problem.k, problem.n)) * 2.0 - 1.0).astype(
        problem.dtype.input_dtype
    )
    return a, b
