"""Batched GEMM: many same-shape problems through one plan.

Deep-learning workloads issue GEMMs in batches (per attention head, per
layer, per expert).  A batched launch amortizes planning and — on real
hardware — folds the batch into the grid.  Here the batch axis simply
multiplies the tile count before decomposition: Stream-K balances the
*aggregate* iteration space of the whole batch, so a batch whose per-item
tile count quantizes terribly can still fill the machine perfectly — the
same work-centric argument one level up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .dtypes import DtypeConfig
from .problem import GemmProblem

__all__ = ["BatchedGemmPlan", "plan_batched", "execute_batched"]


@dataclass(frozen=True)
class BatchedGemmPlan:
    """Launch plan for a batch of identical-shape GEMMs."""

    batch: int
    item: GemmProblem
    #: The flattened problem the scheduler actually decomposes: the batch
    #: stacked along m, so tiles_total = batch * tiles_item exactly when
    #: m divides the blocking (enforced below).
    flattened: GemmProblem
    kind: str
    g: int

    @property
    def total_flops(self) -> int:
        return self.batch * self.item.flops


def plan_batched(
    batch: int,
    m: int,
    n: int,
    k: int,
    dtype: DtypeConfig,
    gpu=None,
) -> BatchedGemmPlan:
    """Plan ``batch`` x (m, n, k) GEMMs as one Stream-K launch.

    Requires ``m`` to be a multiple of the precision's BLK_M so stacking
    along m does not create tiles spanning two batch items (the same
    constraint real batched-GEMM kernels impose via per-item leading
    dimensions).
    """
    from ..ensembles.streamk_library import StreamKLibrary
    from ..gpu.spec import default_gpu

    if batch <= 0:
        raise ConfigurationError("batch must be positive")
    blk_m = dtype.default_blocking[0]
    if m % blk_m != 0:
        raise ConfigurationError(
            "batched stacking needs m (%d) to be a multiple of BLK_M (%d); "
            "pad the item or use per-item launches" % (m, blk_m)
        )
    gpu = gpu if gpu is not None else default_gpu()
    item = GemmProblem(m, n, k, dtype=dtype)
    flattened = GemmProblem(batch * m, n, k, dtype=dtype)
    library = StreamKLibrary(gpu, dtype)
    plan = library.plan(flattened)
    return BatchedGemmPlan(
        batch=batch, item=item, flattened=flattened, kind=plan.kind, g=plan.g
    )


def execute_batched(
    plan: BatchedGemmPlan,
    a: np.ndarray,
    b: np.ndarray,
    gpu=None,
) -> "tuple[np.ndarray, float]":
    """Execute a batched plan numerically and simulate its kernel time.

    ``a`` is (batch, m, k); ``b`` is either (k, n) shared across the batch
    (the common attention/projection case) or (batch, k, n).  Returns
    (C of shape (batch, m, n), simulated seconds).
    """
    from ..ensembles.streamk_library import StreamKLibrary
    from ..gpu.simulate import simulate_kernel
    from ..gpu.spec import default_gpu

    gpu = gpu if gpu is not None else default_gpu()
    item = plan.item
    if a.shape != (plan.batch, item.m, item.k):
        raise ConfigurationError(
            "A has shape %r, expected %r"
            % (a.shape, (plan.batch, item.m, item.k))
        )
    if b.ndim == 2:
        if b.shape != (item.k, item.n):
            raise ConfigurationError(
                "shared B has shape %r, expected %r"
                % (b.shape, (item.k, item.n))
            )
        b_items = [b] * plan.batch
    else:
        if b.shape != (plan.batch, item.k, item.n):
            raise ConfigurationError(
                "batched B has shape %r, expected %r"
                % (b.shape, (plan.batch, item.k, item.n))
            )
        b_items = [b[i] for i in range(plan.batch)]

    # Numerics per item (the stacked kernel computes block-diagonal-
    # equivalent products; per-item numpy slices are identical values).
    acc_t = item.dtype.accum_dtype
    out = np.empty((plan.batch, item.m, item.n), dtype=acc_t)
    for i in range(plan.batch):
        out[i] = a[i].astype(acc_t) @ b_items[i].astype(acc_t)

    # Timing: the flattened problem under the library's planned schedule.
    # Shared B means the flattened GEMM's B traffic is the item's, not
    # batch x item's; the stacked simulation is therefore conservative.
    library = StreamKLibrary(gpu, item.dtype)
    schedule = library.build_schedule(plan.flattened)
    time_s = simulate_kernel(schedule, gpu).time_s
    return out, time_s
