"""High-level BLAS-like entry point: plan, execute, validate in one call.

A downstream user of this library usually wants "multiply these matrices
the way the paper's kernel would, and tell me what the machine did" —
:func:`gemm` is that: it infers the problem from the operands, lets the
Stream-K library plan the schedule, executes it numerically (with the
partial-sum protocol), simulates the kernel, and returns both the product
and the measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .dtypes import DTYPE_CONFIGS, DtypeConfig
from .problem import GemmProblem

__all__ = ["GemmResult", "gemm"]


@dataclass(frozen=True)
class GemmResult:
    """Product plus the simulated execution that produced it."""

    c: np.ndarray
    problem: GemmProblem
    schedule_name: str
    plan_kind: str
    g: int
    time_s: float
    tflops: float
    max_rel_error: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            "GemmResult(%s via %s[g=%d], %.1f us, %.1f TFLOP/s, err %.1e)"
            % (
                self.problem,
                self.plan_kind,
                self.g,
                self.time_s * 1e6,
                self.tflops,
                self.max_rel_error,
            )
        )


def _infer_dtype(a: np.ndarray, b: np.ndarray) -> DtypeConfig:
    if a.dtype != b.dtype:
        raise ConfigurationError(
            "A and B dtypes differ (%s vs %s)" % (a.dtype, b.dtype)
        )
    for cfg in DTYPE_CONFIGS.values():
        if cfg.input_dtype == a.dtype:
            return cfg
    raise ConfigurationError(
        "no precision configuration accepts %s inputs; pass dtype= "
        "explicitly" % a.dtype
    )


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    alpha: float = 1.0,
    beta: float = 0.0,
    c: "np.ndarray | None" = None,
    dtype: "DtypeConfig | None" = None,
    gpu=None,
    transpose_a: bool = False,
    transpose_b: bool = False,
) -> GemmResult:
    """Compute ``alpha * op(A) @ op(B) + beta * C`` the Stream-K way.

    ``op`` is identity or transpose per the flags (the BLAS tt/tn/nt/nn
    surface; transposition is materialized before tiling — the paper's
    decompositions are layout-agnostic at this level).  The precision is
    inferred from the operand dtype unless given; the GPU defaults to the
    registry default (:func:`repro.gpu.spec.default_gpu`, the paper's
    A100) and accepts any registered or custom
    :class:`~repro.gpu.spec.GpuSpec`.  Returns the validated product plus
    the simulated kernel measurement::

        >>> import numpy as np
        >>> from repro.gemm import gemm
        >>> rng = np.random.default_rng(0)
        >>> a = rng.standard_normal((256, 640)).astype(np.float16)
        >>> b = rng.standard_normal((640, 384)).astype(np.float16)
        >>> res = gemm(a, b)          # plans, executes, validates, times
        >>> res.c.shape, res.plan_kind, res.g
        ((256, 384), 'basic_stream_k', 6)

    Raises :class:`~repro.errors.ConfigurationError` for non-matrix
    operands, mismatched inner dimensions or dtypes, and input dtypes no
    precision configuration accepts.
    """
    from ..ensembles.streamk_library import StreamKLibrary  # cycle guard
    from ..gpu.simulate import simulate_kernel
    from ..gpu.spec import default_gpu
    from .validation import validate_result

    if a.ndim != 2 or b.ndim != 2:
        raise ConfigurationError("operands must be matrices")
    a_op = np.ascontiguousarray(a.T) if transpose_a else a
    b_op = np.ascontiguousarray(b.T) if transpose_b else b
    if a_op.shape[1] != b_op.shape[0]:
        raise ConfigurationError(
            "inner dimensions disagree: %r @ %r" % (a_op.shape, b_op.shape)
        )

    gpu = gpu if gpu is not None else default_gpu()
    cfg = dtype or _infer_dtype(a_op, b_op)
    problem = GemmProblem(
        a_op.shape[0], b_op.shape[1], a_op.shape[1],
        dtype=cfg, alpha=alpha, beta=beta,
    )
    library = StreamKLibrary(gpu, cfg)
    schedule = library.build_schedule(problem)
    out = schedule.execute(a_op, b_op, c=c)
    err = validate_result(problem, out, a_op, b_op, c)
    result = simulate_kernel(schedule, gpu)
    plan = library.plan(problem)
    return GemmResult(
        c=out,
        problem=problem,
        schedule_name=schedule.name,
        plan_kind=plan.kind,
        g=schedule.g,
        time_s=result.time_s,
        tflops=problem.flops / result.time_s / 1e12,
        max_rel_error=err,
    )
