"""GEMM epilogue: scale the accumulated tile and merge it into C.

The paper assumes ``alpha = 1, beta = 0`` throughout; the library supports
the full ``C = alpha * AB + beta * C`` definition so downstream users get a
complete BLAS-like surface.  The epilogue is applied once per output tile by
whichever CTA owns the tile's final store (``StoreTile`` in the listings).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .problem import GemmProblem
from .tiling import TileGrid

__all__ = ["store_tile", "make_output"]


def make_output(problem: GemmProblem) -> np.ndarray:
    """Allocate the C output buffer in the accumulator dtype."""
    return np.zeros((problem.m, problem.n), dtype=problem.dtype.accum_dtype)


def store_tile(
    grid: TileGrid,
    out: np.ndarray,
    tile_idx: int,
    accum: np.ndarray,
    c_in: "np.ndarray | None" = None,
) -> None:
    """``StoreTile(C, tile_idx, accum)`` with the alpha/beta epilogue.

    ``accum`` must have exactly the tile's clamped extents.  When
    ``beta != 0`` the prior contents of C are read from ``c_in`` (the
    original operand, not ``out``, so repeated stores are idempotent).
    """
    problem = grid.problem
    ms, ns = grid.tile_extents(tile_idx)
    expect = (ms.stop - ms.start, ns.stop - ns.start)
    if accum.shape != expect:
        raise ConfigurationError(
            "accumulator shape %r does not match tile extents %r"
            % (accum.shape, expect)
        )
    acc_t = problem.dtype.accum_dtype
    tile = accum if problem.alpha == 1.0 else (problem.alpha * accum)
    if problem.beta != 0.0:
        if c_in is None:
            raise ConfigurationError("beta != 0 requires the C input operand")
        tile = tile + problem.beta * c_in[ms, ns].astype(acc_t)
    out[ms, ns] = tile.astype(acc_t, copy=False)
