"""GEMM substrate: problems, blockings, reference kernels, and the MacLoop.

This subpackage is the numerical foundation the decompositions in
:mod:`repro.schedules` are built on.  Nothing here knows about CTAs or SMs;
it only knows how to block a GEMM and compute pieces of it exactly.
"""

from .api import GemmResult, gemm
from .batched import BatchedGemmPlan, execute_batched, plan_batched
from .dtypes import (
    BF16_FP32,
    DTYPE_CONFIGS,
    FP16_FP32,
    FP32,
    FP64,
    DtypeConfig,
    get_dtype_config,
)
from .epilogue import make_output, store_tile
from .linearize import (
    MortonTraversal,
    RowMajorTraversal,
    TileTraversal,
    get_traversal,
    morton_decode,
    morton_encode,
)
from .macloop import mac_loop, mac_loop_fragments
from .partials import PartialStore
from .problem import GemmProblem
from .reference import cache_blocked_gemm, random_operands, reference_gemm
from .tiling import Blocking, TileGrid, ceil_div
from .validation import max_relative_error, validate_result

__all__ = [
    "BF16_FP32",
    "BatchedGemmPlan",
    "GemmResult",
    "execute_batched",
    "gemm",
    "plan_batched",
    "Blocking",
    "DTYPE_CONFIGS",
    "DtypeConfig",
    "FP16_FP32",
    "FP32",
    "FP64",
    "GemmProblem",
    "MortonTraversal",
    "PartialStore",
    "RowMajorTraversal",
    "TileGrid",
    "TileTraversal",
    "cache_blocked_gemm",
    "ceil_div",
    "get_dtype_config",
    "get_traversal",
    "mac_loop",
    "mac_loop_fragments",
    "make_output",
    "max_relative_error",
    "morton_decode",
    "morton_encode",
    "random_operands",
    "reference_gemm",
    "store_tile",
    "validate_result",
]
