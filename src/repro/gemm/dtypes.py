"""Precision configurations for simulated GEMM kernels.

A :class:`DtypeConfig` bundles everything the library needs to know about a
floating-point precision: the numpy dtypes used for numerically-exact
execution, the bytes moved per element, the blocking factor the paper selects
for that precision (Section 5.1), and the A100 tensor-core peak throughput at
the paper's locked clocks (Section 6, "Hardware environment").

The two precisions evaluated in the paper:

* ``FP64``      — double in / double accumulate, 64x64x16 blocking,
  13.9 TFLOP/s peak.
* ``FP16_FP32`` — half in / float accumulate ("FP16->32"), 128x128x32
  blocking, 222.3 TFLOP/s peak.

``FP32`` and ``BF16_FP32`` are provided as extensions so downstream users can
model additional precisions; they are not part of the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "DtypeConfig",
    "FP64",
    "FP16_FP32",
    "FP32",
    "BF16_FP32",
    "DTYPE_CONFIGS",
    "get_dtype_config",
]


@dataclass(frozen=True)
class DtypeConfig:
    """Everything precision-specific about a GEMM kernel.

    Attributes
    ----------
    name:
        Short identifier (e.g. ``"fp64"``, ``"fp16_fp32"``).
    input_dtype:
        numpy dtype of the A and B operands.
    accum_dtype:
        numpy dtype of the accumulators and of the C output.
    input_bytes:
        Bytes per input element (A, B).
    output_bytes:
        Bytes per output element (C) and per partial-sum element.
    default_blocking:
        ``(BLK_M, BLK_N, BLK_K)`` — the single blocking factor the paper
        ships for this precision (Section 5.1).
    peak_tflops_a100:
        Tensor-core peak at the paper's locked 1005 MHz clocks.
    compute_bound_ops_per_byte:
        The paper's compute-bound threshold for this precision
        (FP64: 150 ops/B, FP16->32: 400 ops/B; Section 6).
    """

    name: str
    input_dtype: np.dtype
    accum_dtype: np.dtype
    input_bytes: int
    output_bytes: int
    default_blocking: "tuple[int, int, int]"
    peak_tflops_a100: float
    compute_bound_ops_per_byte: float
    # Relative tolerance for validating simulated kernels against a float64
    # reference; loose for half-precision inputs.
    validation_rtol: float = field(default=1e-10)
    # Exponent of the pipeline-efficiency saturation curve
    # eff = 1 - exp(-(tile_macs / tau)^q).  Higher exponents penalize
    # small tiles more steeply; tensor-core paths with very high MAC rates
    # (FP16/BF16: 1024 MACs/SM/cycle) need far more in-flight work to hide
    # latency, so their q is larger than slow-math FP64's.  FP16's q = 2.8
    # anchors half-work tiles (64x128x32, 64x64x64) at ~48% of peak,
    # matching measured CUTLASS throughput ratios on A100-class parts.
    efficiency_exponent: float = field(default=1.0)

    def __post_init__(self) -> None:
        if self.input_bytes <= 0 or self.output_bytes <= 0:
            raise ConfigurationError("element sizes must be positive")
        if len(self.default_blocking) != 3 or any(
            b <= 0 for b in self.default_blocking
        ):
            raise ConfigurationError(
                "default_blocking must be three positive extents, got %r"
                % (self.default_blocking,)
            )
        if self.peak_tflops_a100 <= 0:
            raise ConfigurationError("peak throughput must be positive")

    @property
    def macs_per_element(self) -> int:
        """Multiply-accumulates per output element per k step (always 1)."""
        return 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


FP64 = DtypeConfig(
    name="fp64",
    input_dtype=np.dtype(np.float64),
    accum_dtype=np.dtype(np.float64),
    input_bytes=8,
    output_bytes=8,
    default_blocking=(64, 64, 16),
    peak_tflops_a100=13.9,
    compute_bound_ops_per_byte=150.0,
    validation_rtol=1e-12,
)

FP16_FP32 = DtypeConfig(
    name="fp16_fp32",
    input_dtype=np.dtype(np.float16),
    accum_dtype=np.dtype(np.float32),
    input_bytes=2,
    output_bytes=4,
    default_blocking=(128, 128, 32),
    peak_tflops_a100=222.3,
    compute_bound_ops_per_byte=400.0,
    validation_rtol=5e-2,
    efficiency_exponent=2.8,
)

FP32 = DtypeConfig(
    name="fp32",
    input_dtype=np.dtype(np.float32),
    accum_dtype=np.dtype(np.float32),
    input_bytes=4,
    output_bytes=4,
    default_blocking=(128, 128, 16),
    peak_tflops_a100=19.5,
    compute_bound_ops_per_byte=200.0,
    validation_rtol=1e-5,
    efficiency_exponent=1.5,
)

BF16_FP32 = DtypeConfig(
    name="bf16_fp32",
    # numpy has no native bfloat16; model storage as fp16-width elements but
    # execute numerics in fp32 (bfloat16 mantissa effects are not the point
    # of this reproduction — scheduling is).
    input_dtype=np.dtype(np.float32),
    accum_dtype=np.dtype(np.float32),
    input_bytes=2,
    output_bytes=4,
    default_blocking=(128, 128, 32),
    peak_tflops_a100=222.3,
    compute_bound_ops_per_byte=400.0,
    validation_rtol=1e-2,
    efficiency_exponent=2.8,
)

DTYPE_CONFIGS: "dict[str, DtypeConfig]" = {
    cfg.name: cfg for cfg in (FP64, FP16_FP32, FP32, BF16_FP32)
}


def get_dtype_config(name: str) -> DtypeConfig:
    """Look up a precision configuration by name.

    Raises :class:`~repro.errors.ConfigurationError` for unknown names,
    listing the available ones.
    """
    try:
        return DTYPE_CONFIGS[name]
    except KeyError:
        raise ConfigurationError(
            "unknown dtype config %r; available: %s"
            % (name, ", ".join(sorted(DTYPE_CONFIGS)))
        ) from None
