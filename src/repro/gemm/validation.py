"""Numeric validation of simulated kernels against the reference GEMM."""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from .problem import GemmProblem
from .reference import reference_gemm

__all__ = ["validate_result", "max_relative_error"]


def max_relative_error(result: np.ndarray, expected: np.ndarray) -> float:
    """Largest elementwise |result - expected| / max(|expected|, 1).

    The denominator floor of 1 keeps near-zero expected entries from
    dominating; operands drawn from [-1, 1) make accumulated magnitudes
    O(sqrt(k)) so this is a stable error measure across problem sizes.
    """
    err = np.abs(result.astype(np.float64) - expected)
    scale = np.maximum(np.abs(expected), 1.0)
    return float((err / scale).max()) if err.size else 0.0


def validate_result(
    problem: GemmProblem,
    result: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    c: "np.ndarray | None" = None,
    rtol: "float | None" = None,
) -> float:
    """Check ``result`` against the float64 reference; return the error.

    The tolerance scales with sqrt(k) for sub-double precisions because
    round-off grows with accumulation depth.  Raises
    :class:`~repro.errors.ValidationError` with a diagnostic on failure.
    """
    expected = reference_gemm(problem, a, b, c)
    if result.shape != expected.shape:
        raise ValidationError(
            "result shape %r != expected %r" % (result.shape, expected.shape)
        )
    err = max_relative_error(result, expected)
    tol = rtol if rtol is not None else problem.dtype.validation_rtol
    if problem.dtype.accum_dtype != np.dtype(np.float64):
        tol = tol * max(1.0, float(np.sqrt(problem.k)))
    if err > tol:
        raise ValidationError(
            "GEMM %s failed validation: max relative error %.3e > tol %.3e"
            % (problem, err, tol)
        )
    return err
