"""Tile-traversal orders over the output-tile grid.

Stream-K maps each CTA's contiguous range of MAC-loop iterations into the
``m -> n -> k`` linearization of the GEMM shape (Section 4).  The *tile*
component of that linearization is row-major over the (tiles_m, tiles_n)
grid.  The paper's future-work section (Section 7) identifies cache-aware
traversals such as Morton order as an optimization avenue; we implement both
so the ablation benchmark can compare their cache behaviour.

A traversal is a bijection ``position <-> tile_index`` over ``[0, t)`` where
``tile_index`` is the row-major index used by :class:`~repro.gemm.tiling.
TileGrid`.
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = [
    "TileTraversal",
    "RowMajorTraversal",
    "MortonTraversal",
    "get_traversal",
    "morton_encode",
    "morton_decode",
]


def _part1by1(x: int) -> int:
    """Spread the low 32 bits of x so bit i lands at position 2*i."""
    x &= 0xFFFFFFFF
    x = (x | (x << 16)) & 0x0000FFFF0000FFFF
    x = (x | (x << 8)) & 0x00FF00FF00FF00FF
    x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0F
    x = (x | (x << 2)) & 0x3333333333333333
    x = (x | (x << 1)) & 0x5555555555555555
    return x


def _compact1by1(x: int) -> int:
    """Inverse of :func:`_part1by1`."""
    x &= 0x5555555555555555
    x = (x | (x >> 1)) & 0x3333333333333333
    x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0F
    x = (x | (x >> 4)) & 0x00FF00FF00FF00FF
    x = (x | (x >> 8)) & 0x0000FFFF0000FFFF
    x = (x | (x >> 16)) & 0x00000000FFFFFFFF
    return x


def morton_encode(row: int, col: int) -> int:
    """Interleave (row, col) into a Morton (Z-order) code.

    Row bits occupy odd positions, column bits even positions, so codes sort
    tiles along a Z-shaped space-filling curve.
    """
    return (_part1by1(row) << 1) | _part1by1(col)


def morton_decode(code: int) -> "tuple[int, int]":
    """Inverse of :func:`morton_encode`."""
    return _compact1by1(code >> 1), _compact1by1(code)


class TileTraversal:
    """Bijection between traversal positions and row-major tile indices."""

    name = "abstract"

    def __init__(self, tiles_m: int, tiles_n: int):
        if tiles_m <= 0 or tiles_n <= 0:
            raise ConfigurationError(
                "traversal requires a non-empty tile grid, got %dx%d"
                % (tiles_m, tiles_n)
            )
        self.tiles_m = tiles_m
        self.tiles_n = tiles_n
        self.num_tiles = tiles_m * tiles_n

    def tile_at(self, position: int) -> int:
        """Row-major tile index visited at ``position``."""
        raise NotImplementedError

    def position_of(self, tile_idx: int) -> int:
        """Traversal position at which ``tile_idx`` is visited."""
        raise NotImplementedError

    def order(self) -> "list[int]":
        """The full visit order as a list of row-major tile indices."""
        return [self.tile_at(p) for p in range(self.num_tiles)]

    def _check_position(self, position: int) -> None:
        if not (0 <= position < self.num_tiles):
            raise ConfigurationError(
                "position %d outside [0, %d)" % (position, self.num_tiles)
            )

    def _check_tile(self, tile_idx: int) -> None:
        if not (0 <= tile_idx < self.num_tiles):
            raise ConfigurationError(
                "tile index %d outside [0, %d)" % (tile_idx, self.num_tiles)
            )


class RowMajorTraversal(TileTraversal):
    """The identity traversal: position == row-major tile index.

    This is the ``m -> n`` ordering of the paper's linearization.
    """

    name = "row_major"

    def tile_at(self, position: int) -> int:
        self._check_position(position)
        return position

    def position_of(self, tile_idx: int) -> int:
        self._check_tile(tile_idx)
        return tile_idx


class MortonTraversal(TileTraversal):
    """Z-order traversal over the tile grid (Section 7 future work).

    For non-square / non-power-of-two grids the Z-curve over the bounding
    power-of-two square is filtered to in-grid tiles, preserving relative
    Z order (the standard approach for ragged Morton layouts).
    """

    name = "morton"

    def __init__(self, tiles_m: int, tiles_n: int):
        super().__init__(tiles_m, tiles_n)
        coded = sorted(
            (morton_encode(r, c), r * tiles_n + c)
            for r in range(tiles_m)
            for c in range(tiles_n)
        )
        self._order = [tile for _, tile in coded]
        self._position = {tile: pos for pos, tile in enumerate(self._order)}

    def tile_at(self, position: int) -> int:
        self._check_position(position)
        return self._order[position]

    def position_of(self, tile_idx: int) -> int:
        self._check_tile(tile_idx)
        return self._position[tile_idx]


_TRAVERSALS = {
    RowMajorTraversal.name: RowMajorTraversal,
    MortonTraversal.name: MortonTraversal,
}


def get_traversal(name: str, tiles_m: int, tiles_n: int) -> TileTraversal:
    """Construct a traversal by name (``"row_major"`` or ``"morton"``)."""
    try:
        cls = _TRAVERSALS[name]
    except KeyError:
        raise ConfigurationError(
            "unknown traversal %r; available: %s"
            % (name, ", ".join(sorted(_TRAVERSALS)))
        ) from None
    return cls(tiles_m, tiles_n)
