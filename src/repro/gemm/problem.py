"""GEMM problem description.

A GEMM computes ``C = alpha * A @ B + beta * C`` where A is (m, k), B is
(k, n) and C is (m, n).  The paper refers to the *shape* of a problem as the
volumetric extents ``m x n x k`` of its computation: the problem performs
``m * n * k`` multiply-accumulate operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .dtypes import FP16_FP32, DtypeConfig

__all__ = ["GemmProblem"]


@dataclass(frozen=True)
class GemmProblem:
    """An ``m x n x k`` GEMM problem at a given precision.

    Parameters
    ----------
    m, n, k:
        Positive matrix extents: A is (m, k), B is (k, n), C is (m, n).
    dtype:
        Precision configuration; defaults to the paper's mixed FP16->32.
    alpha, beta:
        GEMM scalars.  The paper evaluates alpha=1, beta=0 throughout; the
        numeric executors honour arbitrary values via the epilogue.
    """

    m: int
    n: int
    k: int
    dtype: DtypeConfig = field(default=FP16_FP32)
    alpha: float = 1.0
    beta: float = 0.0

    def __post_init__(self) -> None:
        for name, extent in (("m", self.m), ("n", self.n), ("k", self.k)):
            if not isinstance(extent, (int,)) or isinstance(extent, bool):
                raise ConfigurationError(
                    "extent %s must be an int, got %r" % (name, extent)
                )
            if extent <= 0:
                raise ConfigurationError(
                    "extent %s must be positive, got %d" % (name, extent)
                )

    # ------------------------------------------------------------------ #
    # Work / traffic accounting                                          #
    # ------------------------------------------------------------------ #

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations performed (m * n * k)."""
        return self.m * self.n * self.k

    @property
    def flops(self) -> int:
        """Floating-point operations (2 per MAC, the standard convention)."""
        return 2 * self.macs

    @property
    def input_bytes(self) -> int:
        """Compulsory bytes read: one pass over A and B."""
        return (self.m * self.k + self.k * self.n) * self.dtype.input_bytes

    @property
    def output_bytes(self) -> int:
        """Compulsory bytes written: one pass over C.

        When ``beta != 0`` C must also be read once, which doubles the
        output-side traffic.
        """
        per_pass = self.m * self.n * self.dtype.output_bytes
        return per_pass * (2 if self.beta != 0.0 else 1)

    @property
    def min_bytes(self) -> int:
        """Lower bound on DRAM traffic: compulsory reads plus writes."""
        return self.input_bytes + self.output_bytes

    @property
    def ops_per_byte(self) -> float:
        """Arithmetic intensity in FLOPs per compulsory byte.

        This is the x-axis of the paper's roofline plots (Figures 5 and 6)
        and the quantity thresholded by the compute-bound filters
        (FP64 > 150 ops/B, FP16->32 > 400 ops/B).
        """
        return self.flops / self.min_bytes

    @property
    def is_compute_bound(self) -> bool:
        """Whether the paper's compute-bound threshold classifies us so."""
        return self.ops_per_byte > self.dtype.compute_bound_ops_per_byte

    # ------------------------------------------------------------------ #
    # Convenience                                                        #
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> "tuple[int, int, int]":
        return (self.m, self.n, self.k)

    def with_dtype(self, dtype: DtypeConfig) -> "GemmProblem":
        """Return the same geometry at a different precision."""
        return GemmProblem(
            self.m, self.n, self.k, dtype=dtype, alpha=self.alpha, beta=self.beta
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "%dx%dx%d[%s]" % (self.m, self.n, self.k, self.dtype.name)
