"""Schedule: a fully-specified work decomposition of one GEMM problem.

A :class:`Schedule` binds a :class:`~repro.gemm.tiling.TileGrid` to a list of
:class:`~repro.schedules.workitem.CtaWorkItem`\\ s.  It can

* prove itself well-formed (:meth:`Schedule.validate` — exact coverage of
  the iteration space, unique owners, consistent peer lists),
* execute itself numerically (:meth:`Schedule.execute` — producing the GEMM
  result exactly, partial stores and fixups included), and
* report the structural quantities the paper reasons about (iterations per
  CTA, fixup peer counts, skew alignment).

Timing lives elsewhere (:mod:`repro.gpu`); the schedule is pure structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..gemm.epilogue import make_output, store_tile
from ..gemm.macloop import mac_loop
from ..gemm.partials import PartialStore
from ..gemm.tiling import TileGrid
from .workitem import CtaWorkItem, SegmentRole, TileSegment

__all__ = ["Schedule", "Decomposition"]


@dataclass(frozen=True)
class Schedule:
    """A concrete decomposition of one problem into CTA work items."""

    name: str
    grid: TileGrid
    work_items: "tuple[CtaWorkItem, ...]"
    #: Fraction of MAC-loop iterations executed in k-aligned waves (CTAs in
    #: the same wave touching the same k-offsets at the same time).  1.0 for
    #: pure data-parallel, 0.0 for fully skewed basic Stream-K; the hybrids
    #: sit in between.  Drives the cross-CTA fragment-reuse memory model
    #: (Section 5.2's cache-skew discussion).
    k_aligned_fraction: float = 1.0
    #: Free-form details recorded by the decomposition (splitting factor,
    #: wave counts, clamped grid sizes, ...), surfaced in reports.
    metadata: "dict" = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Structure                                                           #
    # ------------------------------------------------------------------ #

    @property
    def g(self) -> int:
        """Launch grid size (number of CTAs)."""
        return len(self.work_items)

    @property
    def max_iters_per_cta(self) -> int:
        return max((w.total_iters for w in self.work_items), default=0)

    @property
    def min_iters_per_cta(self) -> int:
        return min((w.total_iters for w in self.work_items), default=0)

    @property
    def total_fixup_stores(self) -> int:
        """Partial tiles written to temporary global storage."""
        return sum(1 for w in self.work_items if w.stores_partials)

    @property
    def max_peers_per_tile(self) -> int:
        """Largest serial-reduction fan-in any owner performs."""
        return max(
            (s.num_peers for w in self.work_items for s in w.segments),
            default=0,
        )

    def iters_per_cta(self) -> np.ndarray:
        """Vector of MAC-loop iterations per CTA (the balance the paper
        equalizes "within one")."""
        return np.array([w.total_iters for w in self.work_items], dtype=np.int64)

    def tile_owner(self, tile_idx: int) -> int:
        """CTA that stores ``tile_idx``'s output."""
        for w in self.work_items:
            for s in w.segments:
                if s.tile_idx == tile_idx and s.is_owner:
                    return w.cta
        raise ConfigurationError("tile %d has no owner" % tile_idx)

    def contributors(self, tile_idx: int) -> "list[int]":
        """CTAs that store partials for ``tile_idx``, in CTA order."""
        return [
            w.cta
            for w in self.work_items
            for s in w.segments
            if s.tile_idx == tile_idx and not s.is_owner
        ]

    # ------------------------------------------------------------------ #
    # Validation                                                          #
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Prove the schedule covers the iteration space exactly once.

        Checks, for every tile: the union of its segments is a disjoint
        exact cover of ``[0, iters_per_tile)``; exactly one owner exists and
        it covers the k=0 iteration; the owner's peer list equals the
        contributor set.  Raises :class:`ConfigurationError` on any breach.
        """
        ipt = self.grid.iters_per_tile
        per_tile: "dict[int, list[tuple[int, int, TileSegment, int]]]" = {}
        for w in self.work_items:
            for s in w.segments:
                if s.tile_idx >= self.grid.num_tiles:
                    raise ConfigurationError(
                        "segment references tile %d beyond grid of %d"
                        % (s.tile_idx, self.grid.num_tiles)
                    )
                if s.iter_end > ipt:
                    raise ConfigurationError(
                        "segment of tile %d ends at iteration %d > %d"
                        % (s.tile_idx, s.iter_end, ipt)
                    )
                per_tile.setdefault(s.tile_idx, []).append(
                    (s.iter_begin, s.iter_end, s, w.cta)
                )

        if len(per_tile) != self.grid.num_tiles:
            missing = sorted(set(range(self.grid.num_tiles)) - set(per_tile))
            raise ConfigurationError(
                "tiles with no coverage: %s%s"
                % (missing[:8], "..." if len(missing) > 8 else "")
            )

        for tile_idx, segs in per_tile.items():
            segs.sort()
            cursor = 0
            owners = []
            contributor_ctas = []
            for begin, end, seg, cta in segs:
                if begin != cursor:
                    raise ConfigurationError(
                        "tile %d: gap/overlap at iteration %d (segment "
                        "starts at %d)" % (tile_idx, cursor, begin)
                    )
                cursor = end
                if seg.is_owner:
                    owners.append((seg, cta))
                else:
                    contributor_ctas.append(cta)
            if cursor != ipt:
                raise ConfigurationError(
                    "tile %d: coverage stops at iteration %d of %d"
                    % (tile_idx, cursor, ipt)
                )
            if len(owners) != 1:
                raise ConfigurationError(
                    "tile %d: %d owners (need exactly 1)"
                    % (tile_idx, len(owners))
                )
            owner_seg, _owner_cta = owners[0]
            if sorted(owner_seg.peers) != sorted(contributor_ctas):
                raise ConfigurationError(
                    "tile %d: owner peers %r != contributors %r"
                    % (tile_idx, sorted(owner_seg.peers), sorted(contributor_ctas))
                )

        total = sum(w.total_iters for w in self.work_items)
        if total != self.grid.total_iters:
            raise ConfigurationError(
                "schedule executes %d MAC-loop iterations, problem has %d"
                % (total, self.grid.total_iters)
            )

    # ------------------------------------------------------------------ #
    # Numeric execution                                                   #
    # ------------------------------------------------------------------ #

    def execute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Run the decomposition numerically and return C.

        The sequential executor performs every contributor segment first
        (compute, ``StorePartials``, ``Signal``), then every owner segment
        (compute, ``Wait``/``LoadPartials`` per peer in reduction order,
        ``StoreTile`` with epilogue).  This is a valid linearization of any
        deadlock-free schedule, and :class:`~repro.gemm.partials.
        PartialStore` enforces the flag discipline so ordering bugs raise.
        """
        grid = self.grid
        out = make_output(grid.problem)
        store = PartialStore(self.g)

        # Phase 1: contributors.
        for w in self.work_items:
            for s in w.segments:
                if s.is_owner:
                    continue
                accum = mac_loop(grid, a, b, s.tile_idx, s.iter_begin, s.iter_end)
                store.store_partials(w.cta, accum)
                store.signal(w.cta)

        # Phase 2: owners (serial reduction over peers, then StoreTile).
        for w in self.work_items:
            for s in w.segments:
                if not s.is_owner:
                    continue
                accum = mac_loop(grid, a, b, s.tile_idx, s.iter_begin, s.iter_end)
                for peer in s.peers:
                    accum = accum + store.load_partials(peer)
                store_tile(grid, out, s.tile_idx, accum, c_in=c)

        leftover = store.outstanding()
        if any(slot not in self._consumed_slots() for slot in leftover):
            raise ConfigurationError(
                "partials stored but never consumed by any owner: %r" % leftover
            )
        return out

    def _consumed_slots(self) -> "set[int]":
        return {
            peer
            for w in self.work_items
            for s in w.segments
            if s.is_owner
            for peer in s.peers
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "%s(g=%d, tiles=%d, iters=%d)" % (
            self.name,
            self.g,
            self.grid.num_tiles,
            self.grid.total_iters,
        )


class Decomposition:
    """Factory interface: problem + blocking -> :class:`Schedule`.

    Concrete decompositions (:mod:`repro.schedules.data_parallel`,
    ``fixed_split``, ``stream_k``, ``hybrid``) subclass this; the registry
    exposes them by name for harness sweeps.
    """

    name = "abstract"

    def build(self, grid: TileGrid) -> Schedule:
        raise NotImplementedError

    def __call__(self, grid: TileGrid) -> Schedule:
        schedule = self.build(grid)
        return schedule
