"""Work items: what each CTA does under a given decomposition.

Every decomposition in the paper — data-parallel, fixed-split, Stream-K and
the hybrids — reduces to the same vocabulary: each CTA executes an ordered
list of :class:`TileSegment`\\ s, where a segment is a contiguous range of
MAC-loop iterations ``[iter_begin, iter_end)`` of one output tile plus the
consolidation role the CTA plays for that tile:

* ``OWNER`` — the CTA performed the tile's first (k = 0) MAC-loop iteration.
  It accumulates partials from each CTA in ``peers`` (in order: the serial
  reduction of Algorithm 5) and performs the final ``StoreTile``.
* ``CONTRIBUTOR`` — the CTA covered a later slice of the tile.  It stores its
  accumulator to temporary global storage and signals its flag.

This single representation drives both the numeric executor (exact results)
and the discrete-event simulator (timing), so the thing we time is provably
the thing that computes the right answer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = ["SegmentRole", "TileSegment", "CtaWorkItem"]


class SegmentRole(enum.Enum):
    """Consolidation role a CTA plays for one tile."""

    OWNER = "owner"
    CONTRIBUTOR = "contributor"


@dataclass(frozen=True)
class TileSegment:
    """A contiguous range of one tile's MAC-loop iterations on one CTA.

    ``iter_begin``/``iter_end`` are *local* to the tile (``0 <= begin <
    end <= iters_per_tile``).  ``peers`` is only meaningful for ``OWNER``
    segments and lists the CTA indices whose partials must be accumulated,
    in reduction order.
    """

    tile_idx: int
    iter_begin: int
    iter_end: int
    role: SegmentRole
    peers: "tuple[int, ...]" = field(default=())

    def __post_init__(self) -> None:
        if self.tile_idx < 0:
            raise ConfigurationError("negative tile index %d" % self.tile_idx)
        if not (0 <= self.iter_begin < self.iter_end):
            raise ConfigurationError(
                "segment iteration range [%d, %d) must be non-empty and "
                "non-negative" % (self.iter_begin, self.iter_end)
            )
        if self.role is SegmentRole.CONTRIBUTOR and self.peers:
            raise ConfigurationError("contributor segments carry no peers")
        if self.role is SegmentRole.OWNER and self.iter_begin != 0:
            raise ConfigurationError(
                "owner segments must start at the tile's k=0 iteration "
                "(got iter_begin=%d)" % self.iter_begin
            )

    @property
    def num_iters(self) -> int:
        """MAC-loop iterations in this segment."""
        return self.iter_end - self.iter_begin

    @property
    def is_owner(self) -> bool:
        return self.role is SegmentRole.OWNER

    @property
    def num_peers(self) -> int:
        return len(self.peers)


@dataclass(frozen=True)
class CtaWorkItem:
    """All the work assigned to one CTA, in execution order.

    ``cta`` doubles as the CTA's launch position and its partial-sum slot
    index.  A CTA may have zero segments (a grid sized past the available
    iterations); it still occupies a launch slot.
    """

    cta: int
    segments: "tuple[TileSegment, ...]"

    def __post_init__(self) -> None:
        if self.cta < 0:
            raise ConfigurationError("negative CTA index %d" % self.cta)
        n_contrib = sum(1 for s in self.segments if not s.is_owner)
        if n_contrib > 1:
            # A CTA enters at most one tile mid-stream: within a Stream-K
            # region its range is contiguous, and the hybrids append only
            # whole (owned) data-parallel tiles around that range.  One
            # contributor segment also bounds the partial-sum workspace at
            # one slot per CTA — the O(g) storage property of Section 4.
            raise ConfigurationError(
                "CTA %d has %d contributor segments; decompositions built "
                "from one contiguous iteration range permit at most one"
                % (self.cta, n_contrib)
            )

    @property
    def total_iters(self) -> int:
        """MAC-loop iterations executed by this CTA."""
        return sum(s.num_iters for s in self.segments)

    @property
    def stores_partials(self) -> bool:
        """Whether this CTA writes a partial accumulator to global storage."""
        return any(not s.is_owner for s in self.segments)

    @property
    def owned_tiles(self) -> "tuple[int, ...]":
        return tuple(s.tile_idx for s in self.segments if s.is_owner)

    @property
    def total_peers(self) -> int:
        """Partial tiles this CTA must read back during fixup."""
        return sum(s.num_peers for s in self.segments)
