"""Basic Stream-K decomposition (paper Algorithm 5).

Stream-K partitions the GEMM's *aggregate* MAC-loop iteration workload —
``total_iters = tiles * iters_per_tile`` — into an even share (within one)
for each of ``g`` CTAs.  Each CTA's share maps contiguously onto the
``m -> n -> k`` linearization of the iteration space, crossing output-tile
boundaries as it may.  The CTA that performs a tile's k = 0 iteration owns
the tile: it accumulates the partials of every later CTA covering the tile
(serial reduction, ascending CTA order == ascending k order) and stores it.

Because a single MAC-loop iteration is tiny compared to a whole tile, the
per-CTA workload variance is at most one iteration: quantization efficiency
is near-perfect for *any* problem shape, at the cost of O(g) fixup traffic —
bounded by processor width, not problem size.

:func:`partition_region` is the reusable core: it decomposes a tile-aligned
*region* of the iteration space among CTAs, which is exactly what the §5.2
hybrids need to apply Stream-K to only the residual wave.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..gemm.linearize import TileTraversal
from ..gemm.tiling import TileGrid
from .base import Decomposition, Schedule
from .fixed_split import split_ranges
from .workitem import CtaWorkItem, SegmentRole, TileSegment

__all__ = ["StreamK", "stream_k_schedule", "partition_region"]


def partition_region(
    grid: TileGrid,
    g: int,
    first_tile_pos: int = 0,
    num_region_tiles: "int | None" = None,
    traversal: "TileTraversal | None" = None,
) -> "list[list[TileSegment]]":
    """Stream-K-partition a tile-aligned region among ``g`` CTAs.

    The region is the ``num_region_tiles`` tiles starting at traversal
    position ``first_tile_pos``; its ``num_region_tiles * iters_per_tile``
    MAC-loop iterations are split into ``g`` contiguous balanced ranges.
    Returns one segment list per CTA (CTA-local; the caller assigns global
    CTA ids and peer lists are expressed as *region-local* CTA indices which
    the caller must offset).

    ``g`` must not exceed the region's iteration count (callers clamp).
    """
    ipt = grid.iters_per_tile
    if num_region_tiles is None:
        num_region_tiles = grid.num_tiles - first_tile_pos
    if num_region_tiles <= 0:
        raise ConfigurationError(
            "empty Stream-K region (%d tiles)" % num_region_tiles
        )
    if first_tile_pos + num_region_tiles > grid.num_tiles:
        raise ConfigurationError(
            "region [%d, %d) exceeds %d tiles"
            % (first_tile_pos, first_tile_pos + num_region_tiles, grid.num_tiles)
        )
    region_iters = num_region_tiles * ipt
    if not (0 < g <= region_iters):
        raise ConfigurationError(
            "grid size %d invalid for a region of %d iterations"
            % (g, region_iters)
        )

    ranges = split_ranges(region_iters, g)

    def tile_at(region_tile: int) -> int:
        pos = first_tile_pos + region_tile
        return traversal.tile_at(pos) if traversal else pos

    # Owner of region tile rt = the CTA whose range contains iteration
    # rt * ipt; contributors = every later CTA intersecting the tile.
    # Ranges are contiguous and ascending, so both are range lookups.
    def covering_ctas(rt: int) -> "list[int]":
        lo, hi = rt * ipt, (rt + 1) * ipt
        return [
            x for x, (b, e) in enumerate(ranges) if b < hi and e > lo
        ]

    per_cta: "list[list[TileSegment]]" = [[] for _ in range(g)]
    for rt in range(num_region_tiles):
        covering = covering_ctas(rt)
        owner = covering[0]
        peers = tuple(covering[1:])
        lo = rt * ipt
        for x in covering:
            b, e = ranges[x]
            begin = max(b, lo) - lo
            end = min(e, lo + ipt) - lo
            role = SegmentRole.OWNER if x == owner else SegmentRole.CONTRIBUTOR
            per_cta[x].append(
                TileSegment(
                    tile_idx=tile_at(rt),
                    iter_begin=begin,
                    iter_end=end,
                    role=role,
                    peers=peers if x == owner else (),
                )
            )
    return per_cta


def stream_k_schedule(
    grid: TileGrid,
    g: int,
    traversal: "TileTraversal | None" = None,
) -> Schedule:
    """Build the basic Stream-K schedule with grid size ``g``.

    ``g`` is clamped to ``total_iters`` so no CTA launches empty; the
    requested value is preserved in metadata.  Peer CTA indices are global
    (here identical to region-local since the region is the whole problem).
    """
    if g <= 0:
        raise ConfigurationError("grid size must be positive, got %d" % g)
    requested = g
    g = min(g, grid.total_iters)

    per_cta = partition_region(grid, g, 0, grid.num_tiles, traversal)
    items = tuple(
        CtaWorkItem(cta=x, segments=tuple(segs))
        for x, segs in enumerate(per_cta)
    )

    # Aligned iff every CTA's range begins on a tile boundary — i.e. t % g
    # == 0, where Stream-K degenerates to a multi-tile data-parallel
    # schedule (the generalization noted at the end of Section 4).
    aligned = all(
        w.segments[0].iter_begin == 0 for w in items if w.segments
    )
    return Schedule(
        name="stream_k",
        grid=grid,
        work_items=items,
        k_aligned_fraction=1.0 if aligned else 0.0,
        metadata={"g": g, "g_requested": requested},
    )


class StreamK(Decomposition):
    """Factory for :func:`stream_k_schedule` at a fixed grid size."""

    name = "stream_k"

    def __init__(self, g: int, traversal: "TileTraversal | None" = None):
        if g <= 0:
            raise ConfigurationError("grid size must be positive, got %d" % g)
        self.g = g
        self.traversal = traversal

    def build(self, grid: TileGrid) -> Schedule:
        return stream_k_schedule(grid, self.g, self.traversal)
