"""Data-parallel decomposition (paper Algorithm 2).

One CTA per output tile; every CTA runs the full MAC loop ``[0,
iters_per_tile)`` for its tile and stores it.  No partials, no fixup.  This
is the classic formulation whose quantization inefficiency (Figure 1)
motivates the paper: when the number of tiles is not a multiple of the SM
count, the last wave runs partially empty.
"""

from __future__ import annotations

from ..gemm.linearize import TileTraversal
from ..gemm.tiling import TileGrid
from .base import Decomposition, Schedule
from .workitem import CtaWorkItem, SegmentRole, TileSegment

__all__ = ["DataParallel", "data_parallel_schedule"]


def data_parallel_schedule(
    grid: TileGrid, traversal: "TileTraversal | None" = None
) -> Schedule:
    """Build the one-CTA-per-tile schedule.

    ``traversal`` reorders which tile each CTA (launch position) produces;
    the default is the row-major ``m -> n`` rasterization.
    """
    items = []
    for position in range(grid.num_tiles):
        tile = traversal.tile_at(position) if traversal else position
        seg = TileSegment(
            tile_idx=tile,
            iter_begin=0,
            iter_end=grid.iters_per_tile,
            role=SegmentRole.OWNER,
        )
        items.append(CtaWorkItem(cta=position, segments=(seg,)))
    return Schedule(
        name="data_parallel",
        grid=grid,
        work_items=tuple(items),
        # Every wave of CTAs starts its tiles together at k=0 and steps the
        # k axis in lockstep: fully aligned fragment reuse.
        k_aligned_fraction=1.0,
        metadata={
            "traversal": traversal.name if traversal else "row_major",
        },
    )


class DataParallel(Decomposition):
    """Factory for :func:`data_parallel_schedule`."""

    name = "data_parallel"

    def __init__(self, traversal: "TileTraversal | None" = None):
        self.traversal = traversal

    def build(self, grid: TileGrid) -> Schedule:
        return data_parallel_schedule(grid, self.traversal)
