"""Hybrid Stream-K schedules (paper Section 5.2).

Basic Stream-K's load balancing induces *tile-processing skew*: when the
tile count is not a multiple of the grid size, CTAs start their MAC loops at
different k offsets, which defeats cross-CTA fragment reuse in the L2 cache.
The hybrids confine Stream-K's iteration balancing to a small tile-aligned
region so the remaining tiles run as full, temporally aligned data-parallel
waves:

* :func:`dp_one_tile_schedule` — "data-parallel + one-tile Stream-K"
  (Figure 3b): ``w = floor(t/p)`` full DP waves first, then the residual
  ``r = t - w*p`` tiles are Stream-K-balanced across the grid, each CTA
  receiving *less than one* tile's worth of iterations.  Simple, but with
  three or more CTAs per residual tile the owner must wait for peers that
  all finish at about the same time — poor latency hiding.

* :func:`two_tile_schedule` — "two-tile Stream-K + data-parallel"
  (Figure 3c), the schedule the paper ships: perform one *fewer* full DP
  wave and Stream-K-balance ``t - (w-1)*p`` tiles (between p and 2p), so
  each CTA receives between one and two tiles' worth of iterations, every
  owner has at most one peer, and the Stream-K region's temporal skew hides
  the partial-sum exchange latency.  Falls back to pure (persistent)
  data-parallel when tiles quantize perfectly, and to basic Stream-K when
  there are fewer tiles than SMs (where the Appendix A.1 model chooses g).

Both are *persistent-CTA* schedules: the same g CTAs loop over their
Stream-K share and their data-parallel tiles inside one kernel launch —
"the versatility of the generic Stream-K looping structure to implement
different scheduling policies within the same kernel instance."
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..gemm.linearize import TileTraversal
from ..gemm.tiling import TileGrid
from .base import Decomposition, Schedule
from .stream_k import partition_region, stream_k_schedule
from .workitem import CtaWorkItem, SegmentRole, TileSegment

__all__ = [
    "TwoTileStreamK",
    "DpOneTileStreamK",
    "two_tile_schedule",
    "dp_one_tile_schedule",
    "persistent_data_parallel_schedule",
]


def _tile_at(traversal: "TileTraversal | None", pos: int) -> int:
    return traversal.tile_at(pos) if traversal else pos


def _full_tile_segment(grid: TileGrid, tile_idx: int) -> TileSegment:
    return TileSegment(
        tile_idx=tile_idx,
        iter_begin=0,
        iter_end=grid.iters_per_tile,
        role=SegmentRole.OWNER,
    )


def persistent_data_parallel_schedule(
    grid: TileGrid,
    p: int,
    traversal: "TileTraversal | None" = None,
    name: str = "persistent_data_parallel",
) -> Schedule:
    """Data-parallel work on a persistent grid of ``min(p, t)`` CTAs.

    CTA x owns tiles at traversal positions x, x+p, x+2p, ... — the wave
    structure a hardware block scheduler would produce, made explicit.
    Timing-equivalent to Algorithm 2 on p SMs; used by the hybrids' perfect-
    quantization fallback.
    """
    if p <= 0:
        raise ConfigurationError("p must be positive, got %d" % p)
    g = min(p, grid.num_tiles)
    items = []
    for x in range(g):
        segs = tuple(
            _full_tile_segment(grid, _tile_at(traversal, pos))
            for pos in range(x, grid.num_tiles, g)
        )
        items.append(CtaWorkItem(cta=x, segments=segs))
    return Schedule(
        name=name,
        grid=grid,
        work_items=tuple(items),
        k_aligned_fraction=1.0,
        metadata={"p": p, "kind": "data_parallel"},
    )


def two_tile_schedule(
    grid: TileGrid,
    p: int,
    g_small: "int | None" = None,
    traversal: "TileTraversal | None" = None,
) -> Schedule:
    """The evaluated "two-tile Stream-K + data-parallel" hybrid.

    Parameters
    ----------
    p:
        SM count (the hybrid's grid size in its main regime).
    g_small:
        Grid size to use in the fewer-tiles-than-SMs regime (``w == 0``),
        typically chosen by the Appendix A.1 model; defaults to filling the
        processor (clamped to the iteration count).
    """
    if p <= 0:
        raise ConfigurationError("p must be positive, got %d" % p)
    t = grid.num_tiles
    ipt = grid.iters_per_tile
    w = t // p

    if t % p == 0:
        # Perfect quantization: pure data-parallel waves.
        sched = persistent_data_parallel_schedule(
            grid, p, traversal, name="two_tile_stream_k"
        )
        sched.metadata.update({"kind": "data_parallel", "w": w, "sk_tiles": 0})
        return sched

    if w == 0:
        # Fewer tiles than SMs: the whole problem is the residual wave;
        # run basic Stream-K at the model-chosen grid size.
        g = g_small if g_small is not None else p
        sched = stream_k_schedule(grid, g, traversal)
        return Schedule(
            name="two_tile_stream_k",
            grid=sched.grid,
            work_items=sched.work_items,
            k_aligned_fraction=sched.k_aligned_fraction,
            metadata={
                "kind": "basic_stream_k",
                "w": 0,
                "sk_tiles": t,
                "g": sched.metadata["g"],
            },
        )

    # Main regime: Stream-K over the first t - (w-1)*p tiles (p < sk_tiles
    # < 2p), then w-1 full data-parallel waves, on p persistent CTAs.
    sk_tiles = t - (w - 1) * p
    per_cta = partition_region(grid, p, 0, sk_tiles, traversal)
    items = []
    for x in range(p):
        segs = list(per_cta[x])
        for pos in range(sk_tiles + x, t, p):
            segs.append(_full_tile_segment(grid, _tile_at(traversal, pos)))
        items.append(CtaWorkItem(cta=x, segments=tuple(segs)))

    sk_iters = sk_tiles * ipt
    dp_iters = (t - sk_tiles) * ipt
    return Schedule(
        name="two_tile_stream_k",
        grid=grid,
        work_items=tuple(items),
        k_aligned_fraction=dp_iters / (sk_iters + dp_iters),
        metadata={"kind": "two_tile", "w": w, "sk_tiles": sk_tiles, "g": p},
    )


def dp_one_tile_schedule(
    grid: TileGrid,
    p: int,
    traversal: "TileTraversal | None" = None,
) -> Schedule:
    """The simpler "data-parallel + one-tile Stream-K" hybrid (Figure 3b).

    ``w = floor(t/p)`` full DP waves run first; the residual ``r = t - w*p``
    tiles are Stream-K-balanced over ``min(p, r*ipt)`` CTAs, each receiving
    less than one tile's worth of iterations.  Kept primarily as the
    ablation baseline for the two-tile variant's latency-hiding claim.
    """
    if p <= 0:
        raise ConfigurationError("p must be positive, got %d" % p)
    t = grid.num_tiles
    ipt = grid.iters_per_tile
    w = t // p
    r = t - w * p

    if r == 0:
        sched = persistent_data_parallel_schedule(
            grid, p, traversal, name="dp_one_tile_stream_k"
        )
        sched.metadata.update({"kind": "data_parallel", "w": w, "sk_tiles": 0})
        return sched

    g = min(p, r * ipt)
    sk_first = w * p  # traversal position of the first residual tile
    per_cta = partition_region(grid, g, sk_first, r, traversal)
    # Region-local peer ids are already global: the SK region's CTA x is
    # global CTA x (the same persistent CTA that ran DP tiles first).
    items = []
    for x in range(max(g, min(p, t))):
        segs: "list[TileSegment]" = []
        for pos in range(x, sk_first, p):
            segs.append(_full_tile_segment(grid, _tile_at(traversal, pos)))
        if x < g:
            segs.extend(per_cta[x])
        items.append(CtaWorkItem(cta=x, segments=tuple(segs)))

    dp_iters = sk_first * ipt
    sk_iters = r * ipt
    return Schedule(
        name="dp_one_tile_stream_k",
        grid=grid,
        work_items=tuple(items),
        k_aligned_fraction=dp_iters / (dp_iters + sk_iters),
        metadata={"kind": "dp_one_tile", "w": w, "sk_tiles": r, "g": g},
    )


class TwoTileStreamK(Decomposition):
    """Factory for :func:`two_tile_schedule`."""

    name = "two_tile_stream_k"

    def __init__(
        self,
        p: int,
        g_small: "int | None" = None,
        traversal: "TileTraversal | None" = None,
    ):
        if p <= 0:
            raise ConfigurationError("p must be positive, got %d" % p)
        self.p = p
        self.g_small = g_small
        self.traversal = traversal

    def build(self, grid: TileGrid) -> Schedule:
        return two_tile_schedule(grid, self.p, self.g_small, self.traversal)


class DpOneTileStreamK(Decomposition):
    """Factory for :func:`dp_one_tile_schedule`."""

    name = "dp_one_tile_stream_k"

    def __init__(self, p: int, traversal: "TileTraversal | None" = None):
        if p <= 0:
            raise ConfigurationError("p must be positive, got %d" % p)
        self.p = p
        self.traversal = traversal

    def build(self, grid: TileGrid) -> Schedule:
        return dp_one_tile_schedule(grid, self.p, self.traversal)
