"""Name-based registry of decomposition factories.

The string names in :data:`DECOMPOSITION_NAMES` are the stable public
identifiers for the paper's decompositions — the harness sweeps, the CLI
(``python -m repro trace --schedule ...``), and the benchmark configs all
address schedules through :func:`make_decomposition` rather than
importing factory classes directly::

    from repro.schedules.registry import make_decomposition
    schedule = make_decomposition("stream_k", g=108).build(grid)

Constructor parameters by name: ``fixed_split`` takes ``s`` (the
splitting factor), ``stream_k`` takes ``g`` (the grid size),
``two_tile_stream_k`` takes ``p`` and optional ``g_small``,
``dp_one_tile_stream_k`` takes ``p``; every factory except
``fixed_split`` accepts an optional ``traversal``
(:class:`~repro.gemm.linearize.TileTraversal`, e.g. Morton order).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .base import Decomposition
from .data_parallel import DataParallel
from .fixed_split import FixedSplit
from .hybrid import DpOneTileStreamK, TwoTileStreamK
from .stream_k import StreamK

__all__ = ["make_decomposition", "DECOMPOSITION_NAMES"]

DECOMPOSITION_NAMES = (
    "data_parallel",
    "fixed_split",
    "stream_k",
    "two_tile_stream_k",
    "dp_one_tile_stream_k",
)


def make_decomposition(name: str, **kwargs) -> Decomposition:
    """Instantiate a decomposition by name.

    Keyword arguments are the factory's constructor parameters
    (``s`` for fixed_split, ``g`` for stream_k, ``p``/``g_small`` for the
    hybrids, optional ``traversal`` everywhere applicable).
    """
    factories = {
        "data_parallel": DataParallel,
        "fixed_split": FixedSplit,
        "stream_k": StreamK,
        "two_tile_stream_k": TwoTileStreamK,
        "dp_one_tile_stream_k": DpOneTileStreamK,
    }
    try:
        cls = factories[name]
    except KeyError:
        raise ConfigurationError(
            "unknown decomposition %r; available: %s"
            % (name, ", ".join(DECOMPOSITION_NAMES))
        ) from None
    return cls(**kwargs)
