"""Fixed-split decomposition (paper Algorithm 4).

Each output tile is cooperatively produced by ``s`` CTAs, each covering a
uniform ``ceil(iters_per_tile / s)`` slice of the accumulation axis.  The
CTA holding the k = 0 slice owns the tile: it waits for the other ``s - 1``
contributors' flags and reduces their partials before the final store.  With
``s = 1`` this degenerates to the data-parallel decomposition exactly.

Two departures from the listing, both documented in DESIGN.md:

* the iteration split is balanced "within one" rather than uniformly
  ceil-divided, so no split is ever empty while another holds two shares;
* within each tile the *contributors launch before the owner*, so a
  spin-wait executor cannot deadlock when the grid exceeds SM residency
  (real GPUs get the same guarantee from oversubscribed occupancy).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..gemm.tiling import TileGrid
from .base import Decomposition, Schedule
from .workitem import CtaWorkItem, SegmentRole, TileSegment

__all__ = ["FixedSplit", "fixed_split_schedule", "split_ranges"]


def split_ranges(total: int, parts: int) -> "list[tuple[int, int]]":
    """Partition ``[0, total)`` into ``parts`` contiguous balanced ranges.

    The first ``total % parts`` ranges receive one extra element ("even
    share, within one").  Requires ``0 < parts <= total``.
    """
    if parts <= 0:
        raise ConfigurationError("parts must be positive, got %d" % parts)
    if parts > total:
        raise ConfigurationError(
            "cannot split %d iterations into %d non-empty parts" % (total, parts)
        )
    base, rem = divmod(total, parts)
    ranges = []
    begin = 0
    for i in range(parts):
        end = begin + base + (1 if i < rem else 0)
        ranges.append((begin, end))
        begin = end
    return ranges


def fixed_split_schedule(grid: TileGrid, s: int) -> Schedule:
    """Build the ``s``-way fixed-split schedule.

    ``s`` is clamped to ``iters_per_tile`` (a split deeper than the
    accumulation axis would launch empty CTAs); the clamp is recorded in the
    schedule metadata.
    """
    if s <= 0:
        raise ConfigurationError("splitting factor must be positive, got %d" % s)
    requested = s
    s = min(s, grid.iters_per_tile)

    items = []
    cta = 0
    for tile in range(grid.num_tiles):
        ranges = split_ranges(grid.iters_per_tile, s)
        # Launch order within the tile: contributors (y = 1..s-1) first,
        # owner (y = 0, the k=0 slice) last — see module docstring.
        owner_cta = cta + (s - 1)
        peers = tuple(range(cta, cta + s - 1))
        for begin, end in ranges[1:]:
            items.append(
                CtaWorkItem(
                    cta=cta,
                    segments=(
                        TileSegment(
                            tile_idx=tile,
                            iter_begin=begin,
                            iter_end=end,
                            role=SegmentRole.CONTRIBUTOR,
                        ),
                    ),
                )
            )
            cta += 1
        begin, end = ranges[0]
        items.append(
            CtaWorkItem(
                cta=owner_cta,
                segments=(
                    TileSegment(
                        tile_idx=tile,
                        iter_begin=begin,
                        iter_end=end,
                        role=SegmentRole.OWNER,
                        peers=peers,
                    ),
                ),
            )
        )
        cta += 1

    return Schedule(
        name="fixed_split",
        grid=grid,
        work_items=tuple(items),
        # Splits of the same tile cover disjoint k ranges and tiles in a
        # wave start at distinct k offsets, so cross-CTA fragment reuse at
        # matching k is lost except at s=1 (pure data-parallel).
        k_aligned_fraction=1.0 if s == 1 else 0.0,
        metadata={"s": s, "s_requested": requested},
    )


class FixedSplit(Decomposition):
    """Factory for :func:`fixed_split_schedule`."""

    name = "fixed_split"

    def __init__(self, s: int):
        if s <= 0:
            raise ConfigurationError(
                "splitting factor must be positive, got %d" % s
            )
        self.s = s

    def build(self, grid: TileGrid) -> Schedule:
        return fixed_split_schedule(grid, self.s)
