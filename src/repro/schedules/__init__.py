"""Work decompositions: the paper's contribution and its baselines.

Every decomposition builds a :class:`~repro.schedules.base.Schedule` — a
validated assignment of MAC-loop iteration ranges to CTAs — from a
:class:`~repro.gemm.tiling.TileGrid`.  Schedules execute numerically
(exactly) and are simulated for time by :mod:`repro.gpu`.
"""

from .base import Decomposition, Schedule
from .data_parallel import DataParallel, data_parallel_schedule
from .fixed_split import FixedSplit, fixed_split_schedule, split_ranges
from .flatten import FlatWorkItems, flatten_work_items
from .hybrid import (
    DpOneTileStreamK,
    TwoTileStreamK,
    dp_one_tile_schedule,
    persistent_data_parallel_schedule,
    two_tile_schedule,
)
from .registry import DECOMPOSITION_NAMES, make_decomposition
from .stream_k import StreamK, partition_region, stream_k_schedule
from .workitem import CtaWorkItem, SegmentRole, TileSegment

__all__ = [
    "CtaWorkItem",
    "DECOMPOSITION_NAMES",
    "DataParallel",
    "Decomposition",
    "DpOneTileStreamK",
    "FixedSplit",
    "FlatWorkItems",
    "Schedule",
    "SegmentRole",
    "StreamK",
    "TileSegment",
    "TwoTileStreamK",
    "data_parallel_schedule",
    "dp_one_tile_schedule",
    "fixed_split_schedule",
    "flatten_work_items",
    "make_decomposition",
    "partition_region",
    "persistent_data_parallel_schedule",
    "split_ranges",
    "stream_k_schedule",
    "two_tile_schedule",
]
