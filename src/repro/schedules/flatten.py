"""Flatten work-item streams into parallel arrays for array backends.

The dataclass representation (:class:`~repro.schedules.workitem.
CtaWorkItem` holding :class:`~repro.schedules.workitem.TileSegment`\\ s,
priced into :class:`~repro.gpu.cta.CtaTask`/:class:`~repro.gpu.cta.
TimedSegment`) is the right shape for validation and for the
discrete-event oracle, but allocating and walking hundreds of thousands
of frozen dataclasses dominates simulation time at corpus scale.  This
module lowers a schedule into five parallel arrays — one row per CTA,
one entry per *executor* segment — that the vectorized backends and the
array cost-model path (:meth:`~repro.gpu.costmodel.KernelCostModel.
build_task_arrays`) consume directly.

The emitted segment stream is, by construction, exactly the stream
``KernelCostModel.build_tasks`` emits: ``PROLOGUE``, then per tile
segment a ``COMPUTE``, followed for owners by a ``(WAIT, FIXUP)`` pair
per peer in reduction order plus a ``STORE_TILE``, and for contributors
by a ``STORE_PARTIALS`` plus a ``SIGNAL`` on the CTA's own slot.  Kind
codes are plain ints here (this package must not import :mod:`repro.gpu`)
and are mapped back onto :class:`~repro.gpu.cta.SegmentKind` by the
backend layer, which pins the correspondence with a test.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from .base import Schedule

__all__ = [
    "FlatWorkItems",
    "flatten_work_items",
    "KIND_PROLOGUE",
    "KIND_COMPUTE",
    "KIND_STORE_PARTIALS",
    "KIND_SIGNAL",
    "KIND_WAIT",
    "KIND_FIXUP",
    "KIND_STORE_TILE",
    "KIND_NAMES",
    "MEMORY_KIND_CODES",
]

# Integer segment-kind codes, index-aligned with KIND_NAMES.  The order
# matches repro.gpu.cta.SegmentKind's declaration order; the backends
# module asserts the mapping so the two can never drift silently.
KIND_PROLOGUE = 0
KIND_COMPUTE = 1
KIND_STORE_PARTIALS = 2
KIND_SIGNAL = 3
KIND_WAIT = 4
KIND_FIXUP = 5
KIND_STORE_TILE = 6

KIND_NAMES = (
    "prologue",
    "compute",
    "store_partials",
    "signal",
    "wait",
    "fixup",
    "store_tile",
)

#: Kind codes priced at DRAM/L2 latency (subject to memory jitter).
MEMORY_KIND_CODES = (KIND_STORE_PARTIALS, KIND_FIXUP, KIND_STORE_TILE)


@dataclass(frozen=True)
class FlatWorkItems:
    """A schedule's CTA/segment stream as parallel arrays.

    ``ctas`` is one row per CTA in launch order; ``seg_off`` is the CSR
    row-pointer into the per-segment arrays (CTA ``i`` owns segments
    ``seg_off[i]:seg_off[i+1]``).  ``iters`` is the MAC-loop iteration
    count (nonzero only for ``COMPUTE``); ``slots`` is the partial-sum
    slot a segment touches: the producer slot for ``WAIT``/``FIXUP``,
    the CTA's own slot for ``SIGNAL``, and -1 elsewhere.
    """

    ctas: np.ndarray  # (n,) int64, launch order
    seg_off: np.ndarray  # (n + 1,) int64, CSR row pointers
    kinds: np.ndarray  # (S,) int8, KIND_* codes
    iters: np.ndarray  # (S,) int64
    slots: np.ndarray  # (S,) int64, -1 = none

    @property
    def num_ctas(self) -> int:
        return self.ctas.shape[0]

    @property
    def num_segments(self) -> int:
        return self.kinds.shape[0]

    def rows(self) -> np.ndarray:
        """CTA row index of every segment (CSR expansion)."""
        return np.repeat(
            np.arange(self.num_ctas, dtype=np.int64), np.diff(self.seg_off)
        )

    def local_indices(self) -> np.ndarray:
        """Each segment's index within its own CTA's segment list."""
        return (
            np.arange(self.num_segments, dtype=np.int64)
            - self.seg_off[self.rows()]
        )


# Per-pattern constant tuples, keyed by peer count for owners.  Batching
# appends into tuple extends is worth ~3x on corpus-scale flattening.
_CONTRIB_KINDS = (KIND_COMPUTE, KIND_STORE_PARTIALS, KIND_SIGNAL)
_OWNER_KINDS: "dict[int, tuple]" = {}
_ZEROS: "dict[int, tuple]" = {}


def _owner_kinds(num_peers: int) -> tuple:
    pat = _OWNER_KINDS.get(num_peers)
    if pat is None:
        pat = (
            (KIND_COMPUTE,)
            + (KIND_WAIT, KIND_FIXUP) * num_peers
            + (KIND_STORE_TILE,)
        )
        _OWNER_KINDS[num_peers] = pat
    return pat


def _zeros(count: int) -> tuple:
    pat = _ZEROS.get(count)
    if pat is None:
        pat = (0,) * count
        _ZEROS[count] = pat
    return pat


# Flattenings are memoized per schedule instance: schedules are frozen,
# so the arrays can never go stale, and re-pricing the same schedule
# (fault sweeps, backend comparisons, repeated simulation) skips the
# work-item walk entirely.  Keyed by id() because the metadata dict makes
# Schedule unhashable; the weakref finalizer evicts the entry when the
# schedule is collected, before its id can be reused.
_MEMO: "dict[int, FlatWorkItems]" = {}


def flatten_work_items(schedule: Schedule) -> FlatWorkItems:
    """Lower a schedule's work items into a :class:`FlatWorkItems`.

    Pure integer bookkeeping — no cycle pricing happens here, so one
    flattening can be re-priced under many cost models or fault draws.
    Results are cached per (immutable) schedule instance.
    """
    key = id(schedule)
    hit = _MEMO.get(key)
    if hit is not None:
        return hit
    flat = _flatten_uncached(schedule)
    _MEMO[key] = flat
    weakref.finalize(schedule, _MEMO.pop, key, None)
    return flat


def _flatten_uncached(schedule: Schedule) -> FlatWorkItems:
    ctas: "list[int]" = []
    offs: "list[int]" = [0]
    kinds: "list[int]" = []
    iters: "list[int]" = []
    slots: "list[int]" = []
    for w in schedule.work_items:
        cta = w.cta
        ctas.append(cta)
        kinds.append(KIND_PROLOGUE)
        iters.append(0)
        slots.append(-1)
        for s in w.segments:
            if s.is_owner:
                peers = s.peers
                kinds.extend(_owner_kinds(len(peers)))
                iters.append(s.num_iters)
                iters.extend(_zeros(2 * len(peers) + 1))
                slots.append(-1)
                for peer in peers:
                    slots.append(peer)
                    slots.append(peer)
                slots.append(-1)
            else:
                kinds.extend(_CONTRIB_KINDS)
                iters.append(s.num_iters)
                iters.append(0)
                iters.append(0)
                slots.append(-1)
                slots.append(-1)
                slots.append(cta)
        offs.append(len(kinds))
    return FlatWorkItems(
        ctas=np.array(ctas, dtype=np.int64),
        seg_off=np.array(offs, dtype=np.int64),
        kinds=np.array(kinds, dtype=np.int8),
        iters=np.array(iters, dtype=np.int64),
        slots=np.array(slots, dtype=np.int64),
    )
