"""``repro.plan`` — the planning side of the plan/evaluate split.

Everything under this package answers *"what should we launch?"* as pure
arithmetic over ``(m, n, k, dtype, gpu)``; nothing here materializes a
schedule or runs the discrete-event simulator (that is the evaluation
side: :mod:`repro.harness`, :mod:`repro.gpu.executor`).

* :mod:`~repro.plan.core` — :func:`plan_query` / :func:`plan_batch`, the
  one batched implementation every consumer shares (scalar queries,
  corpus sweeps, the serving daemon).
* :mod:`~repro.plan.cache` — tiered plan cache (hot LRU → persistent
  shard), keyed on shape + dtype + GPU fingerprint, invalidated by
  engine version or fingerprint change.
* :mod:`~repro.plan.filtercache` — seeded counting Bloom filter over
  shape keys, the membership gate of the Stream-K++ adaptive winner
  cache (:mod:`repro.ensembles.adaptive`; ``docs/ADAPTIVE.md``).
* :mod:`~repro.plan.service` — micro-batching :class:`PlanService`:
  synchronous cache hits, window-coalesced misses.
* :mod:`~repro.plan.resilience` — the overload contract: structured
  rejections (``overloaded``/``deadline_expired``/``degraded``/...),
  the circuit breaker, the client retry policy, and the deterministic
  planner-chaos seam.
* :mod:`~repro.plan.server` — JSONL TCP front-end (``repro serve``).
* :mod:`~repro.plan.client` — resilient wire client
  (:class:`PlanClient`): deadline propagation, seeded-backoff retries,
  request hedging.
* :mod:`~repro.plan.loadgen` — deterministic Zipf load generator
  (``repro loadgen``) and its latency/QPS report.

The serving contract (wire schema, cache keys, invalidation, latency
expectations) is documented in ``docs/SERVING.md``.
"""

from .cache import PlanCache, wipe_plan_cache
from .filtercache import (
    BloomParams,
    CountingBloomFilter,
    analytic_fp_rate,
    shape_key,
)
from .core import (
    KIND_NAMES,
    PLAN_ENGINE_VERSION,
    Plan,
    PlanBatch,
    plan_batch,
    plan_query,
    roofline_time,
    traffic_bytes,
)
from .client import PlanClient
from .loadgen import LoadgenConfig, run_loadgen, zipf_trace
from .resilience import (
    CircuitBreaker,
    DeadlineExpiredError,
    DegradedError,
    DrainingError,
    OverloadedError,
    PlanTimeoutError,
    RetryPolicy,
    ServeRejected,
)
from .server import PlanServer
from .service import DEFAULT_DTYPE_NAME, PlanService, ServeConfig

__all__ = [
    "KIND_NAMES",
    "PLAN_ENGINE_VERSION",
    "Plan",
    "PlanBatch",
    "plan_batch",
    "plan_query",
    "roofline_time",
    "traffic_bytes",
    "PlanCache",
    "wipe_plan_cache",
    "BloomParams",
    "CountingBloomFilter",
    "analytic_fp_rate",
    "shape_key",
    "PlanService",
    "ServeConfig",
    "DEFAULT_DTYPE_NAME",
    "PlanServer",
    "PlanClient",
    "LoadgenConfig",
    "run_loadgen",
    "zipf_trace",
    "ServeRejected",
    "OverloadedError",
    "DeadlineExpiredError",
    "DegradedError",
    "DrainingError",
    "PlanTimeoutError",
    "CircuitBreaker",
    "RetryPolicy",
]
