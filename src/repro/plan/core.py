"""The planning layer: pure, cacheable schedule selection.

This module is the **plan** side of the repo's plan/evaluate split:

* **Planning** (here) answers "which decomposition, which grid size,
  and how fast do we predict it runs?" for a ``(m, n, k, dtype, gpu)``
  query using only closed-form arithmetic — the Appendix A.1 grid-size
  model, the exact two-tile walk, and the analytical memory roofline.
  A plan never materializes a schedule, never runs the discrete-event
  executor, and depends only on its inputs plus the calibrated model
  constants; that purity is what makes plans cacheable
  (:mod:`repro.plan.cache`) and servable (:mod:`repro.plan.service`).
* **Evaluation** (:mod:`repro.harness`, :mod:`repro.gpu.executor`)
  consumes plans: corpus sweeps price entire shape populations through
  :func:`plan_batch`, and the simulator replays materialized schedules
  event by event to validate the closed forms.

:func:`plan_query` is the scalar entry point; it is implemented as a
one-row :func:`plan_batch`, so a single query, a micro-batched service
request, and a 32,824-shape corpus sweep all run the *same* arithmetic
and produce bitwise-identical plans.

The regime logic (mirroring :meth:`repro.ensembles.streamk_library.
StreamKLibrary.plan` and :func:`repro.schedules.hybrid.two_tile_schedule`):

==============================  ========================================
tiles % p == 0                  pure data-parallel waves (``g = min(p,t)``)
tiles < p                       basic Stream-K, ``g`` from the A.1 model
otherwise                       two-tile Stream-K + DP hybrid, ``g = p``
==============================  ========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig, get_dtype_config
from ..gemm.tiling import Blocking
from ..gpu.analytic import basic_streamk_makespan_batch
from ..gpu.costmodel import KernelCostModel
from ..gpu.spec import GpuSpec
from ..model.cost import StreamKModelParams
from ..model.gridsize import select_grid_sizes_batch
from ..model.paramcache import calibrate_cached, gpu_fingerprint
from ..obs.profiler import span

__all__ = [
    "PLAN_ENGINE_VERSION",
    "KIND_NAMES",
    "Plan",
    "PlanBatch",
    "plan_query",
    "plan_batch",
    "traffic_bytes",
    "roofline_time",
]

#: Version of the planning arithmetic.  Bump whenever a change alters any
#: field of any :class:`Plan` for any query — persisted plan-cache shards
#: carry this number and are invalidated wholesale on mismatch (see
#: docs/SERVING.md, "Invalidation").
PLAN_ENGINE_VERSION = 1

#: Plan-kind code table: ``PlanBatch.kinds`` stores indices into this
#: tuple, :attr:`Plan.kind` stores the decoded name.
KIND_NAMES = ("data_parallel", "basic_stream_k", "two_tile")

_L2_RESIDENCY = 0.8
_PIPELINE_STAGES = 2

#: Row-chunk size bounding the transient (rows, p+1) matrices of the
#: two-tile walk (and the Regime-B boundary profile), so corpora far larger
#: than the paper's 32,824 shapes — or GPUs with huge ``total_cta_slots`` —
#: never scale peak memory with N.
_WALK_ROW_CHUNK = 8192


def _ceil_div(a: np.ndarray, b) -> np.ndarray:
    return -(-a // b)


def _split_shapes(shapes: np.ndarray) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    shapes = np.asarray(shapes, dtype=np.int64)
    if shapes.ndim != 2 or shapes.shape[1] != 3:
        raise ConfigurationError("shapes must be an (N, 3) array of m, n, k")
    return shapes[:, 0], shapes[:, 1], shapes[:, 2]


# --------------------------------------------------------------------- #
# Plan records                                                          #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Plan:
    """One launch decision: what to run and how fast we predict it runs.

    A plan is a pure function of ``(m, n, k, dtype, gpu)`` plus the
    calibrated model constants, which is why it carries its own cache
    key material (:attr:`gpu_fingerprint`, :attr:`engine_version`): two
    plans compare equal iff the planner would make the same decision
    again.  :attr:`provenance` records *where this copy came from*
    (fresh model evaluation or a cache tier) and is excluded from
    equality — a cache hit must be indistinguishable from a cold plan.
    """

    #: Problem shape the plan answers.
    m: int
    n: int
    k: int
    #: Canonical dtype name (``fp64``/``fp32``/``fp16_fp32``/...).
    dtype_name: str
    #: Name of the GPU spec the plan targets (display only; the
    #: binding key is :attr:`gpu_fingerprint`).
    gpu_name: str
    #: Schedule family: one of :data:`KIND_NAMES`.
    kind: str
    #: Grid size (number of CTAs) to launch.
    g: int
    #: Output-tile count at the plan's blocking.
    num_tiles: int
    #: MAC iterations per output tile (``ceil(k / blk_k)``).
    iters_per_tile: int
    #: Fraction of MAC iterations on tile-aligned work (drives the
    #: analytical memory model's L2-reuse estimate).
    k_aligned_fraction: float
    #: Number of CTAs that store partial sums for a peer to fix up.
    fixup_stores: int
    #: Predicted kernel makespan in cycles (compute roofline leg).
    makespan_cycles: float
    #: Predicted wall-clock kernel time in seconds (full roofline:
    #: max(compute, memory) + launch latency).
    time_s: float
    #: :data:`PLAN_ENGINE_VERSION` of the arithmetic that produced this.
    engine_version: int
    #: SHA-256 fingerprint of every field of the target ``GpuSpec``.
    gpu_fingerprint: str
    #: Where this copy came from: ``"model"`` for a fresh evaluation,
    #: ``"cache:hot"`` / ``"cache:disk"`` for cache tiers.  Excluded
    #: from equality so cached plans compare equal to cold ones.
    provenance: str = field(default="model", compare=False)

    def to_payload(self) -> dict:
        """JSON-serializable dict (wire format and disk-cache format)."""
        return {
            "m": self.m,
            "n": self.n,
            "k": self.k,
            "dtype": self.dtype_name,
            "gpu": self.gpu_name,
            "kind": self.kind,
            "g": self.g,
            "num_tiles": self.num_tiles,
            "iters_per_tile": self.iters_per_tile,
            "k_aligned_fraction": self.k_aligned_fraction,
            "fixup_stores": self.fixup_stores,
            "makespan_cycles": self.makespan_cycles,
            "time_s": self.time_s,
            "engine_version": self.engine_version,
            "gpu_fingerprint": self.gpu_fingerprint,
            "provenance": self.provenance,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Plan":
        """Inverse of :meth:`to_payload`; lossless for every field."""
        return cls(
            m=int(payload["m"]),
            n=int(payload["n"]),
            k=int(payload["k"]),
            dtype_name=str(payload["dtype"]),
            gpu_name=str(payload["gpu"]),
            kind=str(payload["kind"]),
            g=int(payload["g"]),
            num_tiles=int(payload["num_tiles"]),
            iters_per_tile=int(payload["iters_per_tile"]),
            k_aligned_fraction=float(payload["k_aligned_fraction"]),
            fixup_stores=int(payload["fixup_stores"]),
            makespan_cycles=float(payload["makespan_cycles"]),
            time_s=float(payload["time_s"]),
            engine_version=int(payload["engine_version"]),
            gpu_fingerprint=str(payload["gpu_fingerprint"]),
            provenance=str(payload.get("provenance", "model")),
        )


@dataclass
class PlanBatch:
    """Column-oriented plans for ``N`` problems (one :func:`plan_batch`).

    Array fields are aligned with ``shapes`` rows; :meth:`plan` decodes
    one row into a scalar :class:`Plan`.  Corpus sweeps consume the
    columns directly (``time_s`` is the Stream-K column of
    :func:`repro.harness.vectorized.evaluate_corpus`); the serving path
    decodes rows for its cache.
    """

    shapes: np.ndarray
    dtype_name: str
    gpu_name: str
    #: ``(N,)`` int8 codes into :data:`KIND_NAMES`.
    kinds: np.ndarray
    g: np.ndarray
    num_tiles: np.ndarray
    iters_per_tile: np.ndarray
    k_aligned_fraction: np.ndarray
    fixup_stores: np.ndarray
    makespan_cycles: np.ndarray
    time_s: np.ndarray
    engine_version: int
    gpu_fingerprint: str

    def __len__(self) -> int:
        return int(self.shapes.shape[0])

    def plan(self, i: int, provenance: str = "model") -> Plan:
        """Decode row ``i`` into a scalar :class:`Plan`."""
        return Plan(
            m=int(self.shapes[i, 0]),
            n=int(self.shapes[i, 1]),
            k=int(self.shapes[i, 2]),
            dtype_name=self.dtype_name,
            gpu_name=self.gpu_name,
            kind=KIND_NAMES[int(self.kinds[i])],
            g=int(self.g[i]),
            num_tiles=int(self.num_tiles[i]),
            iters_per_tile=int(self.iters_per_tile[i]),
            k_aligned_fraction=float(self.k_aligned_fraction[i]),
            fixup_stores=int(self.fixup_stores[i]),
            makespan_cycles=float(self.makespan_cycles[i]),
            time_s=float(self.time_s[i]),
            engine_version=self.engine_version,
            gpu_fingerprint=self.gpu_fingerprint,
            provenance=provenance,
        )

    def plans(self, provenance: str = "model") -> "list[Plan]":
        """All rows decoded into scalar :class:`Plan` records."""
        return [self.plan(i, provenance) for i in range(len(self))]


# --------------------------------------------------------------------- #
# Vectorized analytical memory model (mirrors gpu.memory)               #
# --------------------------------------------------------------------- #


def traffic_bytes(
    m: np.ndarray,
    n: np.ndarray,
    k: np.ndarray,
    tiles_m: np.ndarray,
    tiles_n: np.ndarray,
    g: np.ndarray,
    aligned_fraction: np.ndarray,
    fixup_stores: np.ndarray,
    blocking: Blocking,
    dtype: DtypeConfig,
    gpu: GpuSpec,
) -> np.ndarray:
    """Element-wise port of AnalyticalMemoryModel.traffic (alpha=1, beta=0)."""
    in_b = dtype.input_bytes
    out_b = dtype.output_bytes
    a_pass = tiles_m.astype(np.float64) * blocking.blk_m * k * in_b
    b_pass = tiles_n.astype(np.float64) * blocking.blk_n * k * in_b

    usable_l2 = gpu.l2_bytes * _L2_RESIDENCY
    w = np.clip(g, 1, gpu.total_cta_slots)
    w_n = np.minimum(w, tiles_n)
    w_m = np.minimum(tiles_m, _ceil_div(w, tiles_n))
    working_set = (
        _PIPELINE_STAGES
        * (w_m * blocking.blk_m + w_n * blocking.blk_n)
        * blocking.blk_k
        * in_b
    )
    amp_a_aligned = np.where(working_set > usable_l2, tiles_n, tiles_n / w_n)
    amp_b_aligned = np.where(working_set > usable_l2, tiles_m, tiles_m / w_m)
    # Skewed schedules keep most L2 reuse; cap their extra traffic at 2x
    # the aligned wave (see repro.gpu.memory._SKEW_AMPLIFICATION).
    amp_a_skewed = np.minimum(tiles_n, 2.0 * amp_a_aligned)
    amp_b_skewed = np.minimum(tiles_m, 2.0 * amp_b_aligned)
    f = aligned_fraction
    amp_a = f * amp_a_aligned + (1.0 - f) * amp_a_skewed
    amp_b = f * amp_b_aligned + (1.0 - f) * amp_b_skewed
    resident = (a_pass + b_pass) <= usable_l2
    amp_a = np.where(resident, 1.0, amp_a)
    amp_b = np.where(resident, 1.0, amp_b)

    out = m.astype(np.float64) * n * out_b
    tile_accum = blocking.blk_m * blocking.blk_n * out_b
    partials = fixup_stores.astype(np.float64) * tile_accum * 2.0
    return a_pass * amp_a + b_pass * amp_b + out + partials


def roofline_time(
    makespan_cycles: np.ndarray,
    dram_bytes: np.ndarray,
    g: np.ndarray,
    gpu: GpuSpec,
) -> np.ndarray:
    """max(compute, memory) + launch, with memory bandwidth capped by the
    number of CTAs actually resident (sparse grids cannot saturate HBM)."""
    bandwidth = gpu.achieved_bandwidth(g)
    return (
        np.maximum(makespan_cycles / gpu.clock_hz, dram_bytes / bandwidth)
        + gpu.launch_latency_s
    )


# --------------------------------------------------------------------- #
# Two-tile exact walk (Regime C)                                        #
# --------------------------------------------------------------------- #


def _two_tile_walk(
    t: np.ndarray,
    ipt: np.ndarray,
    p: int,
    cost: KernelCostModel,
    row_chunk: int = _WALK_ROW_CHUNK,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Vectorized exact two-tile-hybrid makespan for the ``w >= 1,
    t % p != 0`` regime.  Returns (makespan, aligned_fraction, stores).

    Broadcasts the per-CTA timeline of
    :func:`repro.gpu.analytic.two_tile_hybrid_makespan` over a (rows, p)
    grid, one fixed-size row chunk at a time (the transient (rows, p+1)
    boundary matrix is the largest allocation in the corpus engine): head
    contribution, fully-owned tiles, the at-most-one-peer fixup, then the
    ``w - 1`` data-parallel tiles.
    """
    n = t.shape[0]
    makespan = np.empty(n, dtype=np.float64)
    aligned_fraction = np.empty(n, dtype=np.float64)
    stores = np.empty(n, dtype=np.int64)
    for lo in range(0, n, max(1, row_chunk)):
        sl = slice(lo, min(lo + max(1, row_chunk), n))
        makespan[sl], aligned_fraction[sl], stores[sl] = _two_tile_walk_chunk(
            t[sl], ipt[sl], p, cost
        )
    return makespan, aligned_fraction, stores


def _two_tile_walk_chunk(
    t: np.ndarray, ipt: np.ndarray, p: int, cost: KernelCostModel
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """One row chunk of :func:`_two_tile_walk`."""
    c = cost.cycles_per_iter
    pro = cost.prologue_cycles
    sp = cost.store_partials_cycles
    fx = cost.fixup_cycles_per_peer
    st = cost.store_tile_cycles

    # Geometry is bounded by t * ipt; int32 halves memory traffic and
    # speeds the hot div/mod ops on the (rows, p) matrices when safe.
    geo = (
        np.int32
        if int(t.max()) * int(ipt.max()) < np.iinfo(np.int32).max
        else np.int64
    )
    t = t[:, None].astype(geo)
    ipt_c = ipt[:, None].astype(geo)
    w = t // geo(p)
    sk_tiles = t - (w - 1) * geo(p)
    region = sk_tiles * ipt_c
    base, rem = np.divmod(region, geo(p))
    x = np.arange(p + 1, dtype=geo)[None, :]
    begins = x * base + np.minimum(x, rem)  # (rows, p+1) range boundaries
    heads_all = (-begins) % ipt_c
    b_misaligned = heads_all[:, 1:-1]  # interior boundaries off tile edges
    head = heads_all[:, :-1]
    head_next = heads_all[:, 1:]  # == head of CTA x+1 (or 0 at region end)
    share = begins[:, 1:] - begins[:, :-1]
    # In this regime every share >= ipt, so b + head is tile-aligned and
    # the owned-tile count reduces to one integer division.
    last_part = np.where(head_next != 0, ipt_c - head_next, 0)
    fully = (share - head - last_part) // ipt_c

    now = pro + np.where(head > 0, c * head + sp, 0.0)
    now = now + fully * (c * ipt_c + st)
    own_end = now + np.where(last_part > 0, c * last_part, 0.0)
    peer_signal = pro + c * head_next + sp
    now = np.where(
        last_part > 0, np.maximum(own_end, peer_signal) + fx + st, own_end
    )
    finish = now + (w - 1) * (c * ipt_c + st)
    makespan = finish.max(axis=1)

    total = (t * ipt_c).astype(np.float64)
    aligned_fraction = ((t - sk_tiles) * ipt_c) / total
    stores = np.count_nonzero(b_misaligned, axis=1)
    return makespan, aligned_fraction.ravel(), stores


def _misaligned_boundaries_batch(
    total: np.ndarray,
    g_eff: np.ndarray,
    ipt: np.ndarray,
    row_chunk: int = _WALK_ROW_CHUNK,
) -> np.ndarray:
    """Per problem, how many of the ``g_eff - 1`` interior partition
    boundaries fall off a tile edge (each costs one partial-sum exchange).
    Batched twin of the per-problem profile in
    :func:`repro.ensembles.streamk_library._region_fixup_profile`."""
    n = total.shape[0]
    out = np.empty(n, dtype=np.int64)
    for lo in range(0, n, max(1, row_chunk)):
        sl = slice(lo, min(lo + max(1, row_chunk), n))
        tot_c = total[sl]
        g_c = g_eff[sl]
        base = (tot_c // g_c)[:, None]
        rem = (tot_c % g_c)[:, None]
        gmax = int(g_c.max())
        bounds = np.arange(1, gmax, dtype=np.int64)[None, :]
        begins = bounds * base + np.minimum(bounds, rem)
        mis = (begins % ipt[sl][:, None] != 0) & (bounds < g_c[:, None])
        out[sl] = np.count_nonzero(mis, axis=1)
    return out


# --------------------------------------------------------------------- #
# Batched planning                                                      #
# --------------------------------------------------------------------- #


def plan_batch(
    shapes: np.ndarray,
    dtype: DtypeConfig,
    gpu: GpuSpec,
    params: "StreamKModelParams | None" = None,
    blocking: "Blocking | None" = None,
) -> PlanBatch:
    """Plan every shape in one vectorized pass; no per-problem loops.

    This is *the* planning implementation: :func:`plan_query` is a
    one-row call, the serving micro-batcher coalesces concurrent
    requests into one call, and corpus sweeps
    (:func:`repro.harness.vectorized.streamk_times`) pass the whole
    corpus.  Per-regime work runs through the batched Appendix A.1
    argmin (:func:`repro.model.gridsize.select_grid_sizes_batch`), the
    batched exact walk
    (:func:`repro.gpu.analytic.basic_streamk_makespan_batch`), and the
    vectorized two-tile walk, each cross-validated element-for-element
    against its scalar twin.

    Parameters
    ----------
    shapes:
        ``(N, 3)`` integer array of ``(m, n, k)`` rows.
    dtype, gpu:
        Precision config and target GPU spec.
    params:
        Calibrated model constants; resolved through the persistent
        calibration cache when omitted.
    blocking:
        Tile blocking; defaults to the precision's shipped factor.
    """
    m, n, k = _split_shapes(shapes)
    if blocking is None:
        blocking = Blocking(*dtype.default_blocking)
    cost = KernelCostModel(gpu=gpu, blocking=blocking, dtype=dtype)
    if params is None:
        params = calibrate_cached(gpu, blocking, dtype)
    p = gpu.num_sms

    tiles_m = _ceil_div(m, blocking.blk_m)
    tiles_n = _ceil_div(n, blocking.blk_n)
    t = tiles_m * tiles_n
    ipt = _ceil_div(k, blocking.blk_k)
    total = t * ipt

    makespan = np.zeros(len(t), dtype=np.float64)
    f = np.zeros(len(t), dtype=np.float64)
    g_arr = np.zeros(len(t), dtype=np.int64)
    stores = np.zeros(len(t), dtype=np.int64)
    kinds = np.zeros(len(t), dtype=np.int8)

    # Regime A: perfect quantization -> persistent data-parallel.
    mask_a = t % p == 0
    if mask_a.any():
        g_a = np.minimum(p, t[mask_a])
        makespan[mask_a] = cost.prologue_cycles + _ceil_div(t[mask_a], g_a) * (
            cost.cycles_per_iter * ipt[mask_a] + cost.store_tile_cycles
        )
        f[mask_a] = 1.0
        g_arr[mask_a] = g_a
        kinds[mask_a] = KIND_NAMES.index("data_parallel")

    # Regime C: two-tile hybrid (exact vectorized walk).
    mask_c = (~mask_a) & (t >= p)
    if mask_c.any():
        with span("two_tile_walk"):
            walk_span, frac, n_stores = _two_tile_walk(
                t[mask_c], ipt[mask_c], p, cost
            )
        makespan[mask_c] = walk_span
        f[mask_c] = frac
        g_arr[mask_c] = p
        stores[mask_c] = n_stores
        kinds[mask_c] = KIND_NAMES.index("two_tile")

    # Regime B: fewer tiles than SMs -> batched model-selected grids and the
    # batched exact walk (pure numpy; no per-problem Python loop).
    mask_b = (~mask_a) & (t < p)
    if mask_b.any():
        t_b, ipt_b, tot_b = t[mask_b], ipt[mask_b], total[mask_b]
        with span("gridsize_argmin"):
            g_b = select_grid_sizes_batch(
                tot_b, ipt_b, params, gpu.total_cta_slots
            )
        with span("makespan_batch"):
            makespan[mask_b] = basic_streamk_makespan_batch(
                t_b, g_b, ipt_b, cost
            )
        g_eff = np.minimum(g_b, tot_b)
        mis = _misaligned_boundaries_batch(tot_b, g_eff, ipt_b)
        stores[mask_b] = mis
        f[mask_b] = (mis == 0).astype(np.float64)
        g_arr[mask_b] = g_eff
        kinds[mask_b] = KIND_NAMES.index("basic_stream_k")

    traffic = traffic_bytes(
        m, n, k, tiles_m, tiles_n, g_arr, f, stores, blocking, dtype, gpu
    )
    time_s = roofline_time(makespan, traffic, g_arr, gpu)

    return PlanBatch(
        shapes=np.asarray(shapes, dtype=np.int64),
        dtype_name=dtype.name,
        gpu_name=gpu.name,
        kinds=kinds,
        g=g_arr,
        num_tiles=t,
        iters_per_tile=ipt,
        k_aligned_fraction=f,
        fixup_stores=stores,
        makespan_cycles=makespan,
        time_s=time_s,
        engine_version=PLAN_ENGINE_VERSION,
        gpu_fingerprint=gpu_fingerprint(gpu),
    )


def plan_query(
    m: int,
    n: int,
    k: int,
    dtype: "DtypeConfig | str",
    gpu: GpuSpec,
    params: "StreamKModelParams | None" = None,
    blocking: "Blocking | None" = None,
) -> Plan:
    """Plan one ``(m, n, k, dtype, gpu)`` query.

    Implemented as a one-row :func:`plan_batch`, so a scalar query is
    bitwise-identical to the same row of any batched call — the
    invariant the plan-cache differential suite pins down.
    """
    if m <= 0 or n <= 0 or k <= 0:
        raise ConfigurationError(
            "problem dimensions must be positive, got (%d, %d, %d)" % (m, n, k)
        )
    if isinstance(dtype, str):
        dtype = get_dtype_config(dtype)
    shapes = np.array([[m, n, k]], dtype=np.int64)
    return plan_batch(shapes, dtype, gpu, params=params, blocking=blocking).plan(0)
