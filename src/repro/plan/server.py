"""JSON-lines TCP front-end for :class:`repro.plan.service.PlanService`.

The wire protocol (normative copy in ``docs/SERVING.md``): one JSON
object per ``\\n``-terminated line, one JSON object back per request,
over a plain TCP connection.  Ops:

``{"op": "plan", "m": .., "n": .., "k": .., "dtype"?: .., "gpu"?: .., "deadline_ms"?: .., "id"?: ..}``
    Plan one query.  Reply: ``{"id", "ok": true, "cache": "hit"|"miss",
    "plan": {...}, "server_latency_us"}`` where ``plan`` is
    :meth:`repro.plan.core.Plan.to_payload`.  ``deadline_ms`` is the
    client's end-to-end budget, propagated into the service so expired
    work is dropped, never planned.
``{"op": "stats"}``
    Reply ``{"ok": true, "stats": {...}}`` — :meth:`PlanService.stats`.
``{"op": "health"}``
    Reply ``{"ok": true, "health": {...}}`` — queue depth, breaker
    state, shed rate, uptime (:meth:`PlanService.health`); cheap
    enough to poll.
``{"op": "chaos", "spec": "stall:S[:N]"|"fail[:N]"|"off"}``
    Test seam: (re-)arm the deterministic planner chaos.  Only honored
    when the daemon was started with ``--chaos-plan``; otherwise a
    structured ``forbidden`` error.
``{"op": "shutdown"}``
    Reply ``{"ok": true, "bye": true}`` and stop the server.

Any malformed line or failed query yields ``{"ok": false, "error": ..}``
on that line — with a stable machine-readable ``"code"`` field for
structured rejections (``overloaded``, ``deadline_expired``,
``degraded``, ``draining``, ``timeout``, ``oversized``; see
:mod:`repro.plan.resilience`) and the request ``id`` echoed when it was
parseable — and the connection stays usable.  Each connection is
handled by its own thread (``ThreadingTCPServer``), so concurrent
clients' cache misses land in the same micro-batch window — the server
inherits the batching behavior of the service it wraps.

A request line longer than ``max_line_bytes`` (default 64 KiB) is
consumed and answered with an ``oversized`` error instead of buffering
without bound (``serve.oversized_line``).  A connection that sits
idle — connected but never sending a line — for longer than
``recv_timeout_s`` (default 30s, ``--idle-timeout-s``) is closed and
its handler thread freed (``serve.idle_disconnects``); a client
mid-request keeps full error-reply semantics.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time

from ..obs.counters import inc_counter
from .service import PlanService

#: Default bound on one JSONL request line (bytes, newline included).
DEFAULT_MAX_LINE_BYTES = 1 << 16

__all__ = ["PlanServer"]


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "_TcpServer" = self.server  # type: ignore[assignment]
        if server.recv_timeout_s is not None:
            self.connection.settimeout(server.recv_timeout_s)
        limit = server.max_line_bytes
        while True:
            try:
                raw = self.rfile.readline(limit + 1)
                oversized = len(raw) > limit
                # Consume the rest of an oversized line so the stream
                # stays framed and the connection stays usable.
                while raw and not raw.endswith(b"\n"):
                    raw = self.rfile.readline(limit + 1)
            except (socket.timeout, TimeoutError):
                # Idle client: drop the connection, free the thread.
                inc_counter("serve.idle_disconnects")
                return
            except OSError:
                return  # peer reset mid-read
            if not raw:
                return  # clean EOF
            if oversized:
                inc_counter("serve.oversized_line")
                reply = {
                    "ok": False,
                    "error": "request line exceeds %d bytes" % limit,
                    "code": "oversized",
                }
                self._reply(reply)
                continue
            line = raw.strip()
            if not line:
                continue
            msg = None
            try:
                msg = json.loads(line.decode("utf-8"))
                reply = self._dispatch(server, msg)
            except Exception as exc:  # malformed line / planner error
                reply = {"ok": False, "error": str(exc)}
                code = getattr(exc, "code", None)
                if code:
                    reply["code"] = code
                if isinstance(msg, dict) and "id" in msg:
                    reply["id"] = msg["id"]
            self._reply(reply)
            if reply.get("bye"):
                break

    def _reply(self, reply: dict) -> None:
        self.wfile.write((json.dumps(reply) + "\n").encode("utf-8"))
        self.wfile.flush()

    def _dispatch(self, server: "_TcpServer", msg: dict) -> dict:
        op = msg.get("op", "plan")
        if op == "stats":
            return {"ok": True, "stats": server.service.stats()}
        if op == "health":
            return {"ok": True, "health": server.service.health()}
        if op == "chaos":
            if not server.service.chaos_allowed:
                return {
                    "ok": False,
                    "error": "chaos injection not enabled; start the "
                    "daemon with --chaos-plan to allow it",
                    "code": "forbidden",
                }
            # An invalid spec falls through to the generic error reply.
            return {"ok": True, "chaos": server.service.arm_chaos(msg.get("spec"))}
        if op == "shutdown":
            server.begin_shutdown()
            return {"ok": True, "bye": True}
        if op != "plan":
            return {"ok": False, "error": "unknown op %r" % (op,)}
        t0 = time.perf_counter()
        deadline_ms = msg.get("deadline_ms")
        plan = server.service.submit(
            int(msg["m"]),
            int(msg["n"]),
            int(msg["k"]),
            dtype=msg.get("dtype") or "fp16_fp32",
            gpu=msg.get("gpu") or "a100",
            deadline_ms=float(deadline_ms) if deadline_ms is not None else None,
        )
        reply = {
            "ok": True,
            "cache": "hit" if plan.provenance.startswith("cache") else "miss",
            "plan": plan.to_payload(),
            "server_latency_us": (time.perf_counter() - t0) * 1e6,
        }
        if "id" in msg:
            reply["id"] = msg["id"]
        return reply


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        addr,
        service: PlanService,
        recv_timeout_s: "float | None" = None,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    ):
        super().__init__(addr, _Handler)
        self.service = service
        self.recv_timeout_s = recv_timeout_s
        self.max_line_bytes = int(max_line_bytes)
        self._shutdown_started = False
        self._shutdown_lock = threading.Lock()

    def begin_shutdown(self) -> None:
        """Stop the accept loop from a handler thread (shutdown() blocks,
        so it must run off the handler's own thread)."""
        with self._shutdown_lock:
            if self._shutdown_started:
                return
            self._shutdown_started = True
        threading.Thread(target=self.shutdown, daemon=True).start()


class PlanServer:
    """Owns a TCP listener + the :class:`PlanService` behind it.

    ``port=0`` binds an ephemeral port; read it back from :attr:`port`
    (the CLI's ``--port-file`` publishes it for scripts)::

        server = PlanServer(service, port=0)
        server.start()          # background accept loop
        ... connect to ("127.0.0.1", server.port) ...
        server.stop()
    """

    def __init__(
        self,
        service: PlanService,
        host: str = "127.0.0.1",
        port: int = 0,
        recv_timeout_s: "float | None" = 30.0,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    ):
        self.service = service
        self._tcp = _TcpServer(
            (host, port),
            service,
            recv_timeout_s=recv_timeout_s,
            max_line_bytes=max_line_bytes,
        )
        self._thread: "threading.Thread | None" = None

    @property
    def host(self) -> str:
        return self._tcp.server_address[0]

    @property
    def port(self) -> int:
        return int(self._tcp.server_address[1])

    def start(self) -> "PlanServer":
        """Run the accept loop on a background thread."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="plan-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread (``repro serve``).

        Returns after a ``shutdown`` op or a :meth:`stop` from another
        thread."""
        self._tcp.serve_forever(poll_interval=0.05)

    def request_shutdown(self) -> None:
        """Ask the accept loop to exit without blocking (signal-safe).

        This is the graceful-drain entry point: the CLI's SIGTERM
        handler calls it, ``serve_forever`` returns, and the normal
        :meth:`stop` path drains the service (in-flight batches flush,
        plan shards are written) before the process exits 0.
        """
        self.service.drain()
        self._tcp.begin_shutdown()

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop accepting, close the listener, and close the service.

        Raises :class:`RuntimeError` (after best-effort listener and
        service teardown, counting ``serve.stop_timeout``) if the accept
        loop is still alive once ``timeout_s`` expires — a wedged server
        thread must be surfaced, not silently leaked as if stopped.
        """
        self._tcp.begin_shutdown()
        wedged = False
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            wedged = self._thread.is_alive()
            if wedged:
                inc_counter("serve.stop_timeout")
        try:
            self._tcp.server_close()
        finally:
            self.service.close()
        if wedged:
            raise RuntimeError(
                "plan server accept loop still alive %.1fs after stop(); "
                "listener and service were closed, but the thread leaked"
                % timeout_s
            )

    def __enter__(self) -> "PlanServer":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
