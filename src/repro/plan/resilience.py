"""Overload-resilience primitives for the plan-serving stack.

Stream-K's thesis — bound the worst case *by construction* instead of
hoping load divides evenly — applies at the service layer too.  This
module holds the pieces the serving stack composes to stay up under
bursty, adversarial, or partially-broken conditions (docs/SERVING.md,
"Overload behavior"):

* **Structured rejections** — every way the service can refuse a query
  is a distinct :class:`ServeRejected` subclass carrying a stable
  machine-readable ``code`` (``overloaded``, ``deadline_expired``,
  ``degraded``, ``draining``, ``timeout``).  The wire front-end echoes
  the code so clients can decide *deterministically* whether to retry
  (``overloaded``/``timeout``), hedge, or give up (``degraded`` while
  the breaker is open).  All subclass
  :class:`~repro.errors.ConfigurationError` so existing API callers
  catching the library's one boundary type keep working.
* **Circuit breaker** (:class:`CircuitBreaker`) — wraps the batcher's
  ``plan_batch``: after ``threshold`` *consecutive* failures the
  breaker opens and the service degrades to serving hot-cache/adaptive
  hits only; after ``cooldown_s`` a single half-open probe is admitted
  and its outcome closes or re-opens the breaker.  Transitions count
  ``serve.breaker_open`` / ``serve.breaker_half_open`` /
  ``serve.breaker_closed``.
* **Retry policy** (:class:`RetryPolicy`) — the client side: seeded
  exponential backoff with deterministic jitter, so a replayed load
  run backs off identically run-to-run.
* **Chaos seam** (:class:`ServeChaos` / :func:`parse_chaos`) — the
  deterministic planner-fault injector behind ``repro serve
  --chaos-plan`` and the ``chaos`` wire op, in the spirit of the
  count-triggered :class:`~repro.faults.chaos.ChaosKill`: stall or
  fail the next N micro-batches, exactly, so chaos CI runs are
  reproducible.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..obs.counters import inc_counter

__all__ = [
    "ServeRejected",
    "OverloadedError",
    "DeadlineExpiredError",
    "DegradedError",
    "DrainingError",
    "PlanTimeoutError",
    "CircuitBreaker",
    "RetryPolicy",
    "ServeChaos",
    "parse_chaos",
]


# --------------------------------------------------------------------- #
# Structured rejections                                                  #
# --------------------------------------------------------------------- #


class ServeRejected(ConfigurationError):
    """The service refused a plan query without planning it.

    ``code`` is the stable wire-level identifier (the ``"code"`` field
    of an error reply); subclasses pin one code each.
    """

    code = "rejected"


class OverloadedError(ServeRejected):
    """Admission control shed this request: the miss queue is full."""

    code = "overloaded"


class DeadlineExpiredError(ServeRejected):
    """The request's ``deadline_ms`` budget lapsed before a plan."""

    code = "deadline_expired"


class DegradedError(ServeRejected):
    """The circuit breaker is open: only cache hits are being served."""

    code = "degraded"


class DrainingError(ServeRejected):
    """The service is draining (or closed) and accepts no new queries."""

    code = "draining"


class PlanTimeoutError(ServeRejected):
    """The caller's ``timeout`` elapsed while waiting on the batcher."""

    code = "timeout"


# --------------------------------------------------------------------- #
# Circuit breaker                                                        #
# --------------------------------------------------------------------- #


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    States (:attr:`state`):

    ``closed``
        Normal operation.  ``threshold`` consecutive
        :meth:`record_failure` calls transition to ``open``.
    ``open``
        Misses are rejected without queueing.  After ``cooldown_s`` on
        the breaker's clock the next :meth:`admit` transitions to
        ``half_open`` and is admitted as the probe.
    ``half_open``
        Exactly one probe is in flight; further :meth:`admit` calls are
        rejected.  The probe's outcome closes (:meth:`record_success`)
        or re-opens (:meth:`record_failure`) the breaker.

    ``threshold <= 0`` disables the breaker entirely (always closed).
    ``clock`` is injectable for deterministic tests; it defaults to
    :func:`time.monotonic`.  All methods are thread-safe.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 1.0,
        clock=time.monotonic,
    ):
        if cooldown_s < 0:
            raise ConfigurationError(
                "breaker cooldown must be >= 0, got %r" % (cooldown_s,)
            )
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at: "float | None" = None
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"``."""
        with self._lock:
            return self._state

    def admit(self) -> bool:
        """Whether a *miss* may enter the planning path right now.

        May transition ``open -> half_open`` (admitting the caller as
        the probe).  Cache hits never consult the breaker.
        """
        if self.threshold <= 0:
            return True
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                assert self._opened_at is not None
                if self._clock() - self._opened_at < self.cooldown_s:
                    return False
                self._state = "half_open"
                self._probe_in_flight = True
                inc_counter("serve.breaker_half_open")
                return True
            # half_open: one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def cancel_probe(self) -> None:
        """Release the probe slot without an outcome (the probe was
        shed by admission control before reaching the planner)."""
        with self._lock:
            if self._state == "half_open":
                self._probe_in_flight = False

    def record_success(self) -> None:
        """A planning batch succeeded; closes a non-closed breaker."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state != "closed":
                self._state = "closed"
                self._probe_in_flight = False
                self._opened_at = None
                inc_counter("serve.breaker_closed")

    def record_failure(self) -> None:
        """A planning batch failed; opens on the threshold'th in a row
        (or instantly from half-open — a failed probe re-opens)."""
        if self.threshold <= 0:
            return
        with self._lock:
            self._consecutive_failures += 1
            if self._state == "half_open" or (
                self._state == "closed"
                and self._consecutive_failures >= self.threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self._probe_in_flight = False
                inc_counter("serve.breaker_open")


# --------------------------------------------------------------------- #
# Client retry policy                                                    #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff with deterministic jitter.

    ``backoff_s(attempt, rng)`` for attempt ``0, 1, 2, ...`` is
    ``min(max_backoff_s, base_backoff_s * 2**attempt)`` scaled by a
    jitter factor in ``[0.5, 1.0)`` drawn from ``rng`` — full
    determinism given the rng state, which the client seeds from
    ``seed`` (same seed, byte-identical backoff schedule).
    """

    #: Attempts after the first (0 = never retry).
    max_retries: int = 0
    #: First-retry backoff, before jitter.
    base_backoff_s: float = 0.005
    #: Exponential cap.
    max_backoff_s: float = 0.25
    #: Seed for the jitter stream.
    seed: int = 0
    #: Error codes worth retrying; ``degraded`` is deliberately not
    #: retryable by default (the breaker says the planner is down).
    retry_codes: "tuple[str, ...]" = ("overloaded", "timeout")

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("backoff durations must be >= 0")

    def rng(self) -> random.Random:
        """A fresh, seeded jitter stream for one client."""
        return random.Random(self.seed)

    def backoff_s(self, attempt: int, rng: "random.Random") -> float:
        cap = min(self.max_backoff_s, self.base_backoff_s * (2 ** attempt))
        return cap * (0.5 + 0.5 * rng.random())

    def should_retry(self, code: "str | None", attempt: int) -> bool:
        return attempt < self.max_retries and code in self.retry_codes


# --------------------------------------------------------------------- #
# Deterministic planner chaos (test seam)                                #
# --------------------------------------------------------------------- #


class ServeChaos:
    """Count-triggered planner fault: stall or fail the next N batches.

    Applied by the batcher once per micro-batch, *inside* the breaker's
    observation window, so ``fail`` chaos exercises the real breaker
    path and ``stall`` chaos wedges the real queue.  Deterministic by
    construction: the trigger is a batch count, not a probability.
    """

    def __init__(self, kind: str, stall_s: float = 0.0,
                 batches: "int | None" = None):
        if kind not in ("stall", "fail"):
            raise ConfigurationError(
                "chaos kind must be 'stall' or 'fail', got %r" % (kind,)
            )
        if kind == "stall" and stall_s <= 0:
            raise ConfigurationError("stall chaos needs a positive duration")
        if batches is not None and batches <= 0:
            raise ConfigurationError("chaos batch count must be positive")
        self.kind = kind
        self.stall_s = float(stall_s)
        #: Batches left to disturb; ``None`` = until disarmed.
        self.remaining = batches
        #: Batches actually disturbed so far.
        self.applied = 0

    def apply(self) -> None:
        """Disturb one micro-batch (no-op once exhausted).

        Called from the single batcher thread; ``stall`` sleeps,
        ``fail`` raises the injected planner error.
        """
        if self.remaining is not None:
            if self.remaining <= 0:
                return
            self.remaining -= 1
        self.applied += 1
        inc_counter("serve.chaos_injected")
        if self.kind == "stall":
            time.sleep(self.stall_s)
        else:
            raise RuntimeError(
                "chaos: injected planner failure (batch %d)" % self.applied
            )

    def spec(self) -> str:
        if self.kind == "stall":
            tail = "" if self.remaining is None else ":%d" % self.remaining
            return "stall:%g%s" % (self.stall_s, tail)
        return "fail" + ("" if self.remaining is None else ":%d" % self.remaining)


def parse_chaos(spec: "str | None") -> "ServeChaos | None":
    """Parse a ``--chaos-plan`` spec into a :class:`ServeChaos`.

    Grammar: ``off`` (or empty) disarms; ``stall:S`` / ``stall:S:N``
    stalls every (or the next N) micro-batch(es) for S seconds;
    ``fail`` / ``fail:N`` makes every (or the next N) batch(es) raise.
    """
    if spec is None:
        return None
    spec = spec.strip()
    if spec in ("", "off", "none"):
        return None
    parts = spec.split(":")
    try:
        if parts[0] == "stall":
            if len(parts) == 2:
                return ServeChaos("stall", stall_s=float(parts[1]))
            if len(parts) == 3:
                return ServeChaos(
                    "stall", stall_s=float(parts[1]), batches=int(parts[2])
                )
        elif parts[0] == "fail":
            if len(parts) == 1:
                return ServeChaos("fail")
            if len(parts) == 2:
                return ServeChaos("fail", batches=int(parts[1]))
    except ValueError:
        pass
    raise ConfigurationError(
        "invalid chaos spec %r (expected off | stall:S[:N] | fail[:N])"
        % (spec,)
    )
