"""Tiered plan cache: hot in-memory LRU over a persistent JSON shard.

Sits between the serving layer (:mod:`repro.plan.service`) and the pure
planner (:mod:`repro.plan.core`).  Because a :class:`~repro.plan.core.Plan`
is a pure function of ``(m, n, k, dtype, gpu)`` plus the calibrated model
constants, caching is sound exactly as long as the key captures everything
the arithmetic depends on:

* **Key** — ``(m, n, k)`` within a cache bound to one ``(dtype,
  gpu-fingerprint)`` pair at the precision's shipped blocking.  The GPU
  *name* is never the key: :func:`repro.model.paramcache.gpu_fingerprint`
  hashes every ``GpuSpec`` field, so editing any hardware constant
  re-keys the cache.
* **Invalidation** — structural, never temporal.  A persisted shard
  carries ``(engine_version, gpu_fingerprint, dtype)`` in its header and
  its filename; a mismatch on either the planner version
  (:data:`repro.plan.core.PLAN_ENGINE_VERSION`) or the fingerprint makes
  the whole shard a clean miss.  Stale shards are left for the next
  flush to supersede; corrupt shards are quarantined to ``*.corrupt``.

Storage follows :mod:`repro.model.paramcache` conventions: shards live
under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``) in ``plans/``,
writes are atomic (private temp file + ``os.replace``), filesystem
failures degrade to memory-only operation, and ``REPRO_NO_DISK_CACHE=1``
disables the disk tier outright.

Counters (:mod:`repro.obs.counters`): ``plancache.hot_hit``,
``plancache.disk_hit``, ``plancache.miss``, ``plancache.evicted``,
``plancache.flush_failed``, ``plancache.corrupt_quarantined``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import threading
from collections import OrderedDict

import numpy as np

from ..gemm.dtypes import DtypeConfig, get_dtype_config
from ..gpu.spec import GpuSpec
from ..model.cost import StreamKModelParams
from ..model.paramcache import default_cache_dir, gpu_fingerprint
from ..obs.counters import inc_counter
from . import core as _core
from .core import Plan, plan_batch

__all__ = ["PlanCache", "wipe_plan_cache"]

_ENV_NO_DISK = "REPRO_NO_DISK_CACHE"

#: Default hot-tier capacity.  A Plan decodes to a few hundred bytes, so
#: the default bounds the hot tier to tens of MB — comfortably larger
#: than the paper's full 32,824-shape corpus.
_DEFAULT_CAPACITY = 65536


def _disk_enabled() -> bool:
    return os.environ.get(_ENV_NO_DISK, "") not in ("1", "true", "yes")


def _quarantine(path: str) -> None:
    """Move a corrupt plan shard aside so the next lookup is a clean miss."""
    try:
        os.replace(path, path + ".corrupt")
    except OSError:
        pass
    inc_counter("plancache.corrupt_quarantined")


class PlanCache:
    """Two-tier plan cache for one ``(gpu, dtype)`` serving binding.

    Tier 1 is an :class:`~collections.OrderedDict` LRU keyed on
    ``(m, n, k)``; tier 2 is one JSON shard on disk, loaded wholesale at
    construction and rewritten by :meth:`flush`.  All methods are
    thread-safe (the serving daemon hits :meth:`get` from client threads
    while the batcher thread calls :meth:`put`).

    Plans returned from the cache are bitwise-identical to a cold
    :func:`~repro.plan.core.plan_query` — only the ``provenance`` field
    (excluded from equality) records which tier they came from.
    """

    def __init__(
        self,
        gpu: GpuSpec,
        dtype: "DtypeConfig | str",
        capacity: int = _DEFAULT_CAPACITY,
        cache_dir: "str | None" = None,
        persist: bool = True,
    ):
        self.gpu = gpu
        self.dtype = get_dtype_config(dtype) if isinstance(dtype, str) else dtype
        self.capacity = max(1, int(capacity))
        self.cache_dir = cache_dir or default_cache_dir()
        self.persist = bool(persist) and _disk_enabled()
        self.fingerprint = gpu_fingerprint(gpu)
        self._lock = threading.Lock()
        self._hot: "OrderedDict[tuple[int, int, int], Plan]" = OrderedDict()
        self._disk: "dict[tuple[int, int, int], Plan]" = {}
        self._dirty = False
        if self.persist:
            self._load_shard()

    # ------------------------------------------------------------------ #
    # Key / path plumbing                                                 #
    # ------------------------------------------------------------------ #

    @property
    def engine_version(self) -> int:
        """Planner version this cache is bound to (module attribute read
        at call time, so a version bump invalidates live caches too)."""
        return _core.PLAN_ENGINE_VERSION

    def shard_path(self) -> str:
        """Path of this binding's persistent shard; version + fingerprint
        + dtype in the filename make stale shards unreachable by name."""
        name = "plans_v%d_%s_%s.json" % (
            self.engine_version,
            self.fingerprint[:20],
            self.dtype.name,
        )
        return os.path.join(self.cache_dir, "plans", name)

    # ------------------------------------------------------------------ #
    # Lookup / insert                                                     #
    # ------------------------------------------------------------------ #

    def get(self, m: int, n: int, k: int) -> "Plan | None":
        """Cached plan for ``(m, n, k)``, or ``None`` on miss.

        Hot hits refresh LRU recency; disk hits promote into the hot
        tier.  Either way the returned plan differs from a cold
        computation only in ``provenance``.
        """
        key = (int(m), int(n), int(k))
        with self._lock:
            plan = self._hot.get(key)
            if plan is not None:
                self._hot.move_to_end(key)
                inc_counter("plancache.hot_hit")
                return dataclasses.replace(plan, provenance="cache:hot")
            plan = self._disk.get(key)
            if plan is not None:
                self._insert(key, plan)
                inc_counter("plancache.disk_hit")
                return dataclasses.replace(plan, provenance="cache:disk")
        inc_counter("plancache.miss")
        return None

    def put(self, plan: Plan) -> None:
        """Insert one plan (stale-engine or foreign-GPU plans are refused)."""
        if (
            plan.engine_version != self.engine_version
            or plan.gpu_fingerprint != self.fingerprint
            or plan.dtype_name != self.dtype.name
        ):
            return
        with self._lock:
            self._insert((plan.m, plan.n, plan.k), plan)
            self._dirty = True

    def _insert(self, key, plan: Plan) -> None:
        self._hot[key] = dataclasses.replace(plan, provenance="model")
        self._hot.move_to_end(key)
        while len(self._hot) > self.capacity:
            self._hot.popitem(last=False)
            inc_counter("plancache.evicted")

    def plan_or_compute(
        self,
        m: int,
        n: int,
        k: int,
        params: "StreamKModelParams | None" = None,
    ) -> Plan:
        """Serve from cache, or run a one-row :func:`plan_batch` and fill."""
        plan = self.get(m, n, k)
        if plan is not None:
            return plan
        shapes = np.array([[m, n, k]], dtype=np.int64)
        plan = plan_batch(shapes, self.dtype, self.gpu, params=params).plan(0)
        self.put(plan)
        return plan

    def __len__(self) -> int:
        with self._lock:
            return len(self._hot)

    # ------------------------------------------------------------------ #
    # Persistence                                                         #
    # ------------------------------------------------------------------ #

    def _load_shard(self) -> None:
        """Populate the disk tier from this binding's shard, if valid."""
        path = self.shard_path()
        try:
            with open(path) as fh:
                raw = fh.read()
        except OSError:
            return  # plain miss, not corruption
        try:
            doc = json.loads(raw)
        except ValueError:
            _quarantine(path)
            return
        try:
            if (
                doc["version"] != self.engine_version
                or doc["gpu_fingerprint"] != self.fingerprint
                or doc["dtype"] != self.dtype.name
            ):
                return  # stale shard: clean miss, superseded on next flush
            for payload in doc["plans"]:
                plan = Plan.from_payload(payload)
                if (
                    plan.engine_version == self.engine_version
                    and plan.gpu_fingerprint == self.fingerprint
                ):
                    self._disk[(plan.m, plan.n, plan.k)] = plan
        except (KeyError, TypeError, ValueError):
            self._disk.clear()
            _quarantine(path)

    def flush(self) -> "str | None":
        """Atomically persist the merged tiers; returns the path or ``None``.

        Disk entries not currently hot are retained (a short-lived server
        must not erode the shard), newest-first up to ``capacity``.
        """
        if not self.persist:
            return None
        with self._lock:
            if not self._dirty and not self._hot:
                return None
            merged: "OrderedDict[tuple, Plan]" = OrderedDict()
            for key, plan in self._disk.items():
                merged[key] = plan
            for key, plan in self._hot.items():
                merged[key] = plan  # hot recency wins
            keep = list(merged.items())[-self.capacity:]
            doc = {
                "version": self.engine_version,
                "gpu_fingerprint": self.fingerprint,
                "gpu_name": self.gpu.name,
                "dtype": self.dtype.name,
                "plans": [plan.to_payload() for _, plan in keep],
            }
        path = self.shard_path()
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), prefix=".plans_", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(doc, fh, sort_keys=True)
                    fh.write("\n")
                os.replace(tmp, path)  # atomic publish
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            inc_counter("plancache.flush_failed")
            return None
        with self._lock:
            self._dirty = False
        return path


def wipe_plan_cache(cache_dir: "str | None" = None) -> int:
    """Delete every persisted plan shard; returns the number removed."""
    root = os.path.join(cache_dir or default_cache_dir(), "plans")
    removed = 0
    try:
        entries = os.listdir(root)
    except OSError:
        return 0
    for name in entries:
        if name.startswith("plans_") and name.endswith((".json", ".corrupt")):
            try:
                os.unlink(os.path.join(root, name))
                removed += 1
            except OSError:
                pass
    return removed
