"""Resilient JSONL plan client: retries, seeded backoff, hedging.

:class:`PlanClient` speaks the ``docs/SERVING.md`` wire protocol to a
running ``repro serve`` daemon and layers the client half of the
overload contract on top:

* **Deadline propagation** — ``deadline_ms`` rides each request so the
  daemon can drop the work if the budget lapses while it is queued.
* **Retries** — structured rejections whose ``code`` is retryable
  (``overloaded``, ``timeout`` by default; see
  :class:`~repro.plan.resilience.RetryPolicy`) are retried with seeded
  exponential backoff + deterministic jitter.  ``degraded`` is *not*
  retried by default: the breaker just said the planner is down, and
  hammering it defeats the point.
* **Hedging** — with ``hedge_ms`` set, a request that has not answered
  within the hedge delay is re-sent on a second connection and the
  first reply wins (classic tail-taming for one slow server thread).
  The late loser's reply is remembered as *stale* and silently skipped
  when it eventually arrives, so both connections stay usable — no
  reconnect churn.

Every outcome is tallied in :attr:`PlanClient.stats` (``requests``,
``retries``, ``hedges``, ``hedge_wins``, ``failures`` and a per-code
breakdown), which the load generator folds into its trace report.

The client is deliberately single-threaded per instance (the load
generator gives each client thread its own instance, seeded by client
index) — determinism of the backoff schedule is part of the replay
contract.
"""

from __future__ import annotations

import json
import select
import socket
import time

from ..errors import ConfigurationError
from .resilience import RetryPolicy

__all__ = ["PlanClient", "RetryPolicy"]


class _Conn:
    """One JSONL connection with an explicit line buffer.

    ``makefile`` readers cannot be mixed with ``select``, so framing is
    done by hand: ``recv`` into ``_buf``, split on newlines.  Replies
    whose ``id`` is in ``stale_ids`` (a hedge loser, or a reply that
    arrived after the caller gave up waiting) are consumed and dropped.
    """

    def __init__(self, host: str, port: int, timeout_s: float):
        self.sock = socket.create_connection((host, port), timeout=timeout_s)
        self.sock.setblocking(False)
        self._buf = b""
        self.stale_ids: "set[object]" = set()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def send(self, msg: dict) -> None:
        data = (json.dumps(msg) + "\n").encode("utf-8")
        # Non-blocking socket: loop sendall by hand (requests are tiny,
        # one iteration in practice).
        while data:
            try:
                sent = self.sock.send(data)
            except BlockingIOError:
                select.select([], [self.sock], [], 1.0)
                continue
            data = data[sent:]

    def _pop_line(self) -> "bytes | None":
        nl = self._buf.find(b"\n")
        if nl < 0:
            return None
        line, self._buf = self._buf[: nl + 1], self._buf[nl + 1:]
        return line

    def poll_reply(self) -> "dict | None":
        """A buffered non-stale reply, if one is already framed."""
        while True:
            line = self._pop_line()
            if line is None:
                return None
            reply = json.loads(line)
            rid = reply.get("id")
            if rid is not None and rid in self.stale_ids:
                self.stale_ids.discard(rid)
                continue
            return reply

    def fill(self) -> None:
        """Read whatever the socket has into the buffer (may be a no-op)."""
        try:
            chunk = self.sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        if not chunk:
            raise ConnectionError("plan server closed the connection")
        self._buf += chunk


class PlanClient:
    """Resilient client for one ``repro serve`` daemon.

    ``plan`` returns the server's reply dict (``ok`` true or false)
    rather than raising on rejection — the caller decides what a shed
    or expired request means for its workload.  Transport-level
    timeouts surface as a synthetic ``{"ok": false, "code": "timeout"}``
    reply so retry handling is uniform.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        retry: "RetryPolicy | None" = None,
        hedge_ms: "float | None" = None,
    ):
        if hedge_ms is not None and hedge_ms <= 0:
            raise ConfigurationError("hedge_ms must be positive")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry = retry or RetryPolicy()
        self.hedge_ms = hedge_ms
        self._rng = self.retry.rng()
        self._next_id = 0
        self._primary: "_Conn | None" = None
        self._hedge: "_Conn | None" = None
        self.stats = {
            "requests": 0,
            "retries": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "failures": 0,
            "codes": {},
        }

    # ------------------------------------------------------------------ #

    def _conn(self, which: str) -> _Conn:
        attr = "_primary" if which == "primary" else "_hedge"
        conn = getattr(self, attr)
        if conn is None:
            conn = _Conn(self.host, self.port, self.timeout_s)
            setattr(self, attr, conn)
        return conn

    def close(self) -> None:
        for conn in (self._primary, self._hedge):
            if conn is not None:
                conn.close()
        self._primary = self._hedge = None

    def __enter__(self) -> "PlanClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def plan(
        self,
        m: int,
        n: int,
        k: int,
        dtype: str = "fp16_fp32",
        gpu: str = "a100",
        deadline_ms: "float | None" = None,
    ) -> dict:
        """Issue one plan query with the configured resilience stack."""
        self.stats["requests"] += 1
        msg = {"op": "plan", "m": int(m), "n": int(n), "k": int(k),
               "dtype": dtype, "gpu": gpu}
        if deadline_ms is not None:
            msg["deadline_ms"] = float(deadline_ms)
        attempt = 0
        while True:
            reply = self._attempt(dict(msg))
            if reply.get("ok"):
                return reply
            code = reply.get("code")
            self.stats["codes"][code or "error"] = (
                self.stats["codes"].get(code or "error", 0) + 1
            )
            if self.retry.should_retry(code, attempt):
                self.stats["retries"] += 1
                time.sleep(self.retry.backoff_s(attempt, self._rng))
                attempt += 1
                continue
            self.stats["failures"] += 1
            return reply

    def _attempt(self, msg: dict) -> dict:
        self._next_id += 1
        rid = "c%d" % self._next_id
        msg["id"] = rid
        deadline = time.monotonic() + self.timeout_s
        try:
            primary = self._conn("primary")
            primary.send(msg)
            if self.hedge_ms is None:
                reply = self._wait([primary], rid, deadline)
            else:
                hedge_at = time.monotonic() + self.hedge_ms / 1e3
                reply = self._wait([primary], rid, min(deadline, hedge_at))
                if reply is None and time.monotonic() < deadline:
                    # Hedge: identical request on a second connection;
                    # first reply (either connection) wins.
                    self.stats["hedges"] += 1
                    hedge = self._conn("hedge")
                    hedge.send(msg)
                    reply = self._wait([primary, hedge], rid, deadline,
                                       hedge_conn=hedge)
            if reply is not None:
                return reply
        except (OSError, ConnectionError, ValueError) as exc:
            # Broken transport: drop both connections so the next
            # attempt reconnects cleanly.
            self.close()
            return {"ok": False, "code": "timeout",
                    "error": "transport error: %s" % exc}
        # No reply within timeout_s.  The server may still answer
        # later; mark the id stale on both live connections so the
        # leftover reply is skipped, not misattributed.
        for conn in (self._primary, self._hedge):
            if conn is not None:
                conn.stale_ids.add(rid)
        return {"ok": False, "code": "timeout",
                "error": "no reply within %.1fs" % self.timeout_s}

    def _wait(
        self,
        conns: "list[_Conn]",
        rid: str,
        deadline: float,
        hedge_conn: "_Conn | None" = None,
    ) -> "dict | None":
        """First reply for ``rid`` from any of ``conns`` before
        ``deadline`` (monotonic), or None."""
        while True:
            for conn in conns:
                reply = conn.poll_reply()
                if reply is not None and reply.get("id") in (rid, None):
                    if len(conns) > 1:
                        # The other connection owes a reply for rid too.
                        loser = conns[0] if conn is conns[1] else conns[1]
                        loser.stale_ids.add(rid)
                        if conn is hedge_conn:
                            self.stats["hedge_wins"] += 1
                    return reply
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            readable, _, _ = select.select(
                [c.sock for c in conns], [], [], remaining
            )
            if not readable:
                return None
            for conn in conns:
                if conn.sock in readable:
                    conn.fill()
