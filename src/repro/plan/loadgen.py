"""Zipf-distributed load generator for the plan-serving path.

Production GEMM traffic is heavily repeat-shape (the same attention and
MLP extents recur every step), which is the regime the plan cache is
built for.  This module reproduces that regime deterministically: a
*universe* of distinct shapes drawn by the corpus generator
(:func:`repro.corpus.generator.generate_corpus`, seed-pinned), sampled
with Zipf rank weights ``P(rank i) ∝ 1 / i**s`` by a seeded
:func:`numpy.random.default_rng` — so every run of ``repro loadgen``
with the same knobs replays byte-for-byte the same request trace.

Two drive modes share one measurement path:

* **in-process** — construct a :class:`~repro.plan.service.PlanService`
  and hammer it from ``clients`` threads (this is how the committed
  ``BENCH_serve.json`` numbers are produced; no socket overhead).
* **socket** — connect to a running ``repro serve`` daemon
  (``--connect HOST:PORT``) and speak the JSONL protocol of
  :mod:`repro.plan.server`; this is what the CI serve job replays.

The report splits client-observed latency by cache outcome — the
hit/miss split, not the blended number, is the serving contract's
headline (docs/SERVING.md, "Tail-latency expectations").
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..corpus.generator import CorpusSpec, generate_corpus
from ..errors import ConfigurationError
from ..gpu.spec import DEFAULT_GPU_NAME
from .service import DEFAULT_DTYPE_NAME, PlanService, ServeConfig

__all__ = ["LoadgenConfig", "zipf_trace", "run_loadgen"]


@dataclass(frozen=True)
class LoadgenConfig:
    """Knobs of one load-generation run (all deterministic given seed)."""

    #: Total requests to issue across all client threads.
    requests: int = 2000
    #: Number of distinct shapes in the Zipf universe.
    universe: int = 256
    #: Zipf exponent ``s``; larger skews harder toward the hot ranks.
    zipf_s: float = 1.1
    #: Seed for both the shape universe and the rank sampling.
    seed: int = 0
    #: Concurrent client threads (concurrency drives batch occupancy).
    clients: int = 4
    #: Precision and GPU every request asks for.
    dtype: str = DEFAULT_DTYPE_NAME
    gpu: str = DEFAULT_GPU_NAME

    def __post_init__(self) -> None:
        if self.requests <= 0 or self.universe <= 0 or self.clients <= 0:
            raise ConfigurationError(
                "requests, universe, and clients must be positive"
            )
        if self.zipf_s < 0:
            raise ConfigurationError("zipf_s must be non-negative")


def zipf_trace(config: LoadgenConfig) -> np.ndarray:
    """The deterministic request trace: a ``(requests, 3)`` shape array.

    Rank ``i`` of the universe (corpus order) is drawn with probability
    proportional to ``1 / (i + 1)**s``.  Same config, same trace —
    byte-for-byte.
    """
    universe = generate_corpus(CorpusSpec(size=config.universe, seed=config.seed))
    ranks = np.arange(1, config.universe + 1, dtype=np.float64)
    probs = ranks ** (-config.zipf_s)
    probs /= probs.sum()
    rng = np.random.default_rng(config.seed)
    idx = rng.choice(config.universe, size=config.requests, p=probs)
    return universe[idx]


class _Recorder:
    """Thread-safe (latency, hit?) ledger shared by the client threads."""

    def __init__(self):
        self._lock = threading.Lock()
        self.hit_lat: "list[float]" = []
        self.miss_lat: "list[float]" = []
        self.errors: "list[str]" = []

    def record(self, latency_s: float, hit: bool) -> None:
        with self._lock:
            (self.hit_lat if hit else self.miss_lat).append(latency_s)

    def fail(self, message: str) -> None:
        with self._lock:
            self.errors.append(message)


def _drive_inprocess(
    service: PlanService, trace: np.ndarray, config: LoadgenConfig
) -> _Recorder:
    rec = _Recorder()

    def worker(rows: np.ndarray) -> None:
        for m, n, k in rows:
            t0 = time.perf_counter()
            try:
                plan = service.submit(
                    int(m), int(n), int(k), dtype=config.dtype, gpu=config.gpu
                )
            except Exception as exc:
                rec.fail(str(exc))
                continue
            rec.record(
                time.perf_counter() - t0, plan.provenance.startswith("cache")
            )

    _run_clients(trace, config.clients, worker)
    return rec


def _drive_socket(
    host: str, port: int, trace: np.ndarray, config: LoadgenConfig
) -> _Recorder:
    rec = _Recorder()

    def worker(rows: np.ndarray) -> None:
        with socket.create_connection((host, port), timeout=30.0) as sock:
            fh = sock.makefile("rwb")
            for m, n, k in rows:
                msg = {
                    "op": "plan",
                    "m": int(m),
                    "n": int(n),
                    "k": int(k),
                    "dtype": config.dtype,
                    "gpu": config.gpu,
                }
                t0 = time.perf_counter()
                fh.write((json.dumps(msg) + "\n").encode("utf-8"))
                fh.flush()
                reply = json.loads(fh.readline().decode("utf-8"))
                latency = time.perf_counter() - t0
                if not reply.get("ok"):
                    rec.fail(str(reply.get("error")))
                    continue
                rec.record(latency, reply.get("cache") == "hit")

    _run_clients(trace, config.clients, worker)
    return rec


def _run_clients(trace: np.ndarray, clients: int, worker) -> None:
    """Fan the trace out round-robin so hot ranks spread across threads."""
    threads = [
        threading.Thread(target=worker, args=(trace[i::clients],), daemon=True)
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def run_loadgen(
    config: "LoadgenConfig | None" = None,
    connect: "tuple[str, int] | None" = None,
    service: "PlanService | None" = None,
    serve_config: "ServeConfig | None" = None,
) -> dict:
    """Replay one Zipf trace and return the latency/QPS report.

    ``connect`` targets a running daemon over TCP; otherwise an
    in-process :class:`PlanService` is constructed (or ``service`` is
    used, and left open, if given).  The report is the JSON written by
    ``repro loadgen --out`` and the payload ``bench_serve`` aggregates.
    """
    config = config or LoadgenConfig()
    trace = zipf_trace(config)

    owned = None
    t0 = time.perf_counter()
    try:
        if connect is not None:
            rec = _drive_socket(connect[0], connect[1], trace, config)
            mode = "socket"
        else:
            if service is None:
                service = owned = PlanService(serve_config)
            rec = _drive_inprocess(service, trace, config)
            mode = "in-process"
    finally:
        if owned is not None:
            owned.close()
    elapsed = time.perf_counter() - t0

    def pct_us(values, q):
        return float(np.percentile(values, q)) * 1e6 if values else None

    completed = len(rec.hit_lat) + len(rec.miss_lat)
    hit_p99 = pct_us(rec.hit_lat, 99)
    miss_p99 = pct_us(rec.miss_lat, 99)
    return {
        "mode": mode,
        "requests": config.requests,
        "completed": completed,
        "failed": len(rec.errors),
        "errors": rec.errors[:10],
        "universe": config.universe,
        "zipf_s": config.zipf_s,
        "seed": config.seed,
        "clients": config.clients,
        "dtype": config.dtype,
        "gpu": config.gpu,
        "elapsed_s": elapsed,
        "qps": completed / elapsed if elapsed > 0 else None,
        "hits": len(rec.hit_lat),
        "misses": len(rec.miss_lat),
        "hit_rate": (len(rec.hit_lat) / completed) if completed else None,
        "hit_p50_us": pct_us(rec.hit_lat, 50),
        "hit_p99_us": hit_p99,
        "miss_p50_us": pct_us(rec.miss_lat, 50),
        "miss_p99_us": pct_us(rec.miss_lat, 99),
        "p99_speedup_hit_vs_miss": (
            miss_p99 / hit_p99 if hit_p99 and miss_p99 else None
        ),
    }
