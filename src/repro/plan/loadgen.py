"""Zipf-distributed load generator for the plan-serving path.

Production GEMM traffic is heavily repeat-shape (the same attention and
MLP extents recur every step), which is the regime the plan cache is
built for.  This module reproduces that regime deterministically: a
*universe* of distinct shapes drawn by the corpus generator
(:func:`repro.corpus.generator.generate_corpus`, seed-pinned), sampled
with Zipf rank weights ``P(rank i) ∝ 1 / i**s`` by a seeded
:func:`numpy.random.default_rng` — so every run of ``repro loadgen``
with the same knobs replays byte-for-byte the same request trace.

Two drive modes share one measurement path:

* **in-process** — construct a :class:`~repro.plan.service.PlanService`
  and hammer it from ``clients`` threads (this is how the committed
  ``BENCH_serve.json`` numbers are produced; no socket overhead).
* **socket** — connect to a running ``repro serve`` daemon
  (``--connect HOST:PORT``) and speak the JSONL protocol of
  :mod:`repro.plan.server`; this is what the CI serve job replays.

The report splits client-observed latency by cache outcome — the
hit/miss split, not the blended number, is the serving contract's
headline (docs/SERVING.md, "Tail-latency expectations").

The generator also exercises the *client* half of the overload
contract (docs/SERVING.md, "Overload behavior"): per-request
``deadline_ms`` budgets, seeded exponential-backoff retries on
``overloaded``/``timeout`` rejections, and optional request hedging
(``hedge_ms``) — in socket mode through
:class:`~repro.plan.client.PlanClient`, in-process through the same
:class:`~repro.plan.resilience.RetryPolicy`.  Retry/hedge outcomes and
a per-code rejection breakdown land in the report, and because every
backoff draw is seeded, a replayed run makes byte-identical retry
decisions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..corpus.generator import CorpusSpec, generate_corpus
from ..errors import ConfigurationError
from ..gpu.spec import DEFAULT_GPU_NAME
from .client import PlanClient
from .resilience import RetryPolicy
from .service import DEFAULT_DTYPE_NAME, PlanService, ServeConfig

__all__ = ["LoadgenConfig", "zipf_trace", "run_loadgen"]


@dataclass(frozen=True)
class LoadgenConfig:
    """Knobs of one load-generation run (all deterministic given seed)."""

    #: Total requests to issue across all client threads.
    requests: int = 2000
    #: Number of distinct shapes in the Zipf universe.
    universe: int = 256
    #: Zipf exponent ``s``; larger skews harder toward the hot ranks.
    zipf_s: float = 1.1
    #: Seed for both the shape universe and the rank sampling.
    seed: int = 0
    #: Concurrent client threads (concurrency drives batch occupancy).
    clients: int = 4
    #: Precision and GPU every request asks for.
    dtype: str = DEFAULT_DTYPE_NAME
    gpu: str = DEFAULT_GPU_NAME
    #: Per-request latency budget propagated to the service (None = no
    #: deadline); expired requests are dropped, never planned.
    deadline_ms: "float | None" = None
    #: Retries per request on ``overloaded``/``timeout`` rejections.
    retries: int = 0
    #: First-retry backoff before seeded jitter (exponential, capped).
    backoff_ms: float = 5.0
    #: Hedge delay: re-send an unanswered request on a second
    #: connection after this long (socket mode only; None = off).
    hedge_ms: "float | None" = None
    #: Transport/service timeout per attempt.
    timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.requests <= 0 or self.universe <= 0 or self.clients <= 0:
            raise ConfigurationError(
                "requests, universe, and clients must be positive"
            )
        if self.zipf_s < 0:
            raise ConfigurationError("zipf_s must be non-negative")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigurationError("deadline_ms must be positive")
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.backoff_ms < 0:
            raise ConfigurationError("backoff_ms must be >= 0")
        if self.hedge_ms is not None and self.hedge_ms <= 0:
            raise ConfigurationError("hedge_ms must be positive")

    def retry_policy(self, client_index: int) -> RetryPolicy:
        """The seeded per-client retry policy (distinct jitter streams
        per client thread, reproducible across runs)."""
        return RetryPolicy(
            max_retries=self.retries,
            base_backoff_s=self.backoff_ms / 1e3,
            seed=self.seed * 8191 + client_index,
        )


def zipf_trace(config: LoadgenConfig) -> np.ndarray:
    """The deterministic request trace: a ``(requests, 3)`` shape array.

    Rank ``i`` of the universe (corpus order) is drawn with probability
    proportional to ``1 / (i + 1)**s``.  Same config, same trace —
    byte-for-byte.
    """
    universe = generate_corpus(CorpusSpec(size=config.universe, seed=config.seed))
    ranks = np.arange(1, config.universe + 1, dtype=np.float64)
    probs = ranks ** (-config.zipf_s)
    probs /= probs.sum()
    rng = np.random.default_rng(config.seed)
    idx = rng.choice(config.universe, size=config.requests, p=probs)
    return universe[idx]


class _Recorder:
    """Thread-safe (latency, hit?) ledger shared by the client threads."""

    def __init__(self):
        self._lock = threading.Lock()
        self.hit_lat: "list[float]" = []
        self.miss_lat: "list[float]" = []
        self.errors: "list[str]" = []
        self.outcomes: "dict[str, int]" = {}
        self.retries = 0
        self.hedges = 0
        self.hedge_wins = 0

    def record(self, latency_s: float, hit: bool) -> None:
        with self._lock:
            (self.hit_lat if hit else self.miss_lat).append(latency_s)

    def fail(self, message: str, code: "str | None" = None) -> None:
        with self._lock:
            self.errors.append(message)
            key = code or "error"
            self.outcomes[key] = self.outcomes.get(key, 0) + 1

    def merge_client(self, stats: dict) -> None:
        with self._lock:
            self.retries += stats["retries"]
            self.hedges += stats["hedges"]
            self.hedge_wins += stats["hedge_wins"]

    def count_retry(self, n: int = 1) -> None:
        with self._lock:
            self.retries += n


def _drive_inprocess(
    service: PlanService, trace: np.ndarray, config: LoadgenConfig
) -> _Recorder:
    rec = _Recorder()

    def worker(index: int, rows: np.ndarray) -> None:
        policy = config.retry_policy(index)
        rng = policy.rng()
        for m, n, k in rows:
            t0 = time.perf_counter()
            attempt = 0
            while True:
                try:
                    plan = service.submit(
                        int(m), int(n), int(k),
                        dtype=config.dtype, gpu=config.gpu,
                        timeout=config.timeout_s,
                        deadline_ms=config.deadline_ms,
                    )
                except Exception as exc:
                    code = getattr(exc, "code", None)
                    if policy.should_retry(code, attempt):
                        rec.count_retry()
                        time.sleep(policy.backoff_s(attempt, rng))
                        attempt += 1
                        continue
                    rec.fail(str(exc), code)
                    break
                rec.record(
                    time.perf_counter() - t0,
                    plan.provenance.startswith("cache"),
                )
                break

    _run_clients(trace, config.clients, worker)
    return rec


def _drive_socket(
    host: str, port: int, trace: np.ndarray, config: LoadgenConfig
) -> _Recorder:
    rec = _Recorder()

    def worker(index: int, rows: np.ndarray) -> None:
        with PlanClient(
            host,
            port,
            timeout_s=config.timeout_s,
            retry=config.retry_policy(index),
            hedge_ms=config.hedge_ms,
        ) as client:
            for m, n, k in rows:
                t0 = time.perf_counter()
                reply = client.plan(
                    int(m), int(n), int(k),
                    dtype=config.dtype, gpu=config.gpu,
                    deadline_ms=config.deadline_ms,
                )
                latency = time.perf_counter() - t0
                if not reply.get("ok"):
                    rec.fail(str(reply.get("error")), reply.get("code"))
                    continue
                rec.record(latency, reply.get("cache") == "hit")
            rec.merge_client(client.stats)

    _run_clients(trace, config.clients, worker)
    return rec


def _run_clients(trace: np.ndarray, clients: int, worker) -> None:
    """Fan the trace out round-robin so hot ranks spread across threads."""
    threads = [
        threading.Thread(
            target=worker, args=(i, trace[i::clients]), daemon=True
        )
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def run_loadgen(
    config: "LoadgenConfig | None" = None,
    connect: "tuple[str, int] | None" = None,
    service: "PlanService | None" = None,
    serve_config: "ServeConfig | None" = None,
) -> dict:
    """Replay one Zipf trace and return the latency/QPS report.

    ``connect`` targets a running daemon over TCP; otherwise an
    in-process :class:`PlanService` is constructed (or ``service`` is
    used, and left open, if given).  The report is the JSON written by
    ``repro loadgen --out`` and the payload ``bench_serve`` aggregates.
    """
    config = config or LoadgenConfig()
    trace = zipf_trace(config)

    owned = None
    t0 = time.perf_counter()
    try:
        if connect is not None:
            rec = _drive_socket(connect[0], connect[1], trace, config)
            mode = "socket"
        else:
            if service is None:
                service = owned = PlanService(serve_config)
            rec = _drive_inprocess(service, trace, config)
            mode = "in-process"
    finally:
        if owned is not None:
            owned.close()
    elapsed = time.perf_counter() - t0

    def pct_us(values, q):
        return float(np.percentile(values, q)) * 1e6 if values else None

    completed = len(rec.hit_lat) + len(rec.miss_lat)
    hit_p99 = pct_us(rec.hit_lat, 99)
    miss_p99 = pct_us(rec.miss_lat, 99)
    return {
        "mode": mode,
        "requests": config.requests,
        "completed": completed,
        "failed": len(rec.errors),
        "errors": rec.errors[:10],
        "universe": config.universe,
        "zipf_s": config.zipf_s,
        "seed": config.seed,
        "clients": config.clients,
        "dtype": config.dtype,
        "gpu": config.gpu,
        "elapsed_s": elapsed,
        "qps": completed / elapsed if elapsed > 0 else None,
        "deadline_ms": config.deadline_ms,
        "retries": rec.retries,
        "hedges": rec.hedges,
        "hedge_wins": rec.hedge_wins,
        "outcomes": dict(sorted(rec.outcomes.items())),
        "hits": len(rec.hit_lat),
        "misses": len(rec.miss_lat),
        "hit_rate": (len(rec.hit_lat) / completed) if completed else None,
        "hit_p50_us": pct_us(rec.hit_lat, 50),
        "hit_p99_us": hit_p99,
        "miss_p50_us": pct_us(rec.miss_lat, 50),
        "miss_p99_us": pct_us(rec.miss_lat, 99),
        "p99_speedup_hit_vs_miss": (
            miss_p99 / hit_p99 if hit_p99 and miss_p99 else None
        ),
    }
