"""Seeded counting Bloom filter over problem-shape keys (Stream-K++).

Stream-K++ (PAPERS.md, arxiv 2408.11417) routes *repeat* problem shapes
straight to a remembered winning schedule and reserves the analytical
model for novel shapes.  The gatekeeper for "have we seen this shape?"
is this module: a counting Bloom filter over the ``(m, n, k, dtype,
gpu-fingerprint)`` shape key, sized in bits rather than entries so its
memory footprint is a configuration constant, not a function of traffic.

Design points (pinned by ``tests/properties/test_bloom_properties.py``):

* **Seeded, deterministic hashing** — ``k`` indices per key via double
  hashing over one keyed ``blake2b`` digest (``idx_i = (h1 + i * h2)
  % bits`` with ``h2`` forced odd), so the same ``(params, key)`` pair
  maps to the same counters in every process and on every platform.
* **No false negatives, ever** — counters saturate at ``2**counter_bits
  - 1``; a counter an insert *overflows* is marked sticky and never
  changed again (it can no longer prove how many members hashed into
  it), so :meth:`query` of an inserted, un-deleted key is always
  ``True``.
* **Delete restores** — :meth:`delete` decrements the key's
  non-overflowed counters, exactly undoing a prior :meth:`insert` as
  long as no counter overflowed in between.
* **Bounded false positives** — the classic occupancy bound
  :func:`analytic_fp_rate` ``(1 - exp(-k n / m)) ** k`` holds in
  expectation; :meth:`measured_fp_rate` probes a disjoint key set so the
  property suite can check the realized rate against the bound.
* **Zero capacity = always miss** — ``bits=0`` is the degenerate filter
  whose :meth:`query` is constantly ``False``; the adaptive selector
  built on top of it is then bitwise identical to plain ``plan_query``
  (the differential contract in ``tests/ensembles/test_adaptive.py``).

Counters (:mod:`repro.obs.counters`): ``bloom.insert`` / ``bloom.delete``
volume, ``bloom.query_hit`` / ``bloom.query_miss`` outcomes, and
``bloom.saturated`` counter-ceiling events.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..obs.counters import inc_counter

__all__ = [
    "BloomParams",
    "CountingBloomFilter",
    "analytic_fp_rate",
    "shape_key",
]


def shape_key(
    m: int, n: int, k: int, dtype_name: str, gpu_fingerprint: str
) -> bytes:
    """Canonical byte key for one ``(m, n, k, dtype, gpu)`` query.

    The key binds the shape to the precision *and* the exact device
    fingerprint (every ``GpuSpec`` field, hashed), so a filter trained on
    one binding never answers for another — the same binding rule the
    tiered plan cache uses for its shards.
    """
    return b"%d|%d|%d|%s|%s" % (
        int(m),
        int(n),
        int(k),
        dtype_name.encode("utf-8"),
        gpu_fingerprint.encode("utf-8"),
    )


def analytic_fp_rate(bits: int, num_hashes: int, inserted: int) -> float:
    """Classic Bloom occupancy bound ``(1 - e^{-k n / m})^k``.

    ``bits`` is ``m`` (counter slots), ``num_hashes`` is ``k``, and
    ``inserted`` is ``n`` distinct inserted keys.  Returns 1.0 for the
    degenerate ``bits == 0`` filter only in the vacuous sense that it
    never answers ``True`` at all — callers gate on capacity first.
    """
    if bits <= 0:
        return 0.0
    if inserted <= 0:
        return 0.0
    return (1.0 - math.exp(-num_hashes * inserted / bits)) ** num_hashes


@dataclass(frozen=True)
class BloomParams:
    """Size/shape of one :class:`CountingBloomFilter`.

    ``bits`` is the number of counter slots (``m`` in the textbook
    formulas); ``bits=0`` is the supported degenerate always-miss
    filter.  ``counter_bits`` bounds each slot at ``2**counter_bits -
    1``; 4 bits is the classical counting-Bloom choice (overflow odds
    are negligible at sane load factors).
    """

    bits: int = 1 << 16
    num_hashes: int = 4
    counter_bits: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ConfigurationError("bits must be >= 0 (0 = always-miss)")
        if self.num_hashes < 1:
            raise ConfigurationError("num_hashes must be >= 1")
        if not 1 <= self.counter_bits <= 8:
            raise ConfigurationError("counter_bits must be in [1, 8]")

    @property
    def counter_max(self) -> int:
        """Saturation ceiling of each counter slot."""
        return (1 << self.counter_bits) - 1

    @property
    def memory_bytes(self) -> int:
        """Filter state size: ``bits`` counters of ``counter_bits`` each."""
        return (self.bits * self.counter_bits + 7) // 8

    def fp_rate(self, inserted: int) -> float:
        """Analytic FP bound for this geometry at ``inserted`` keys."""
        return analytic_fp_rate(self.bits, self.num_hashes, inserted)


class CountingBloomFilter:
    """Counting Bloom filter: insert/query/delete over byte keys.

    Storage is one ``uint8`` slot per counter (we trade the sub-byte
    packing for branch-free numpy updates; :attr:`memory_bytes` still
    reports the packed figure the geometry implies, which is what the
    footprint-vs-FP-rate tradeoff in ``repro adapt`` is about).
    """

    def __init__(self, params: "BloomParams | None" = None):
        self.params = params or BloomParams()
        self._counters = np.zeros(self.params.bits, dtype=np.uint8)
        # Sticky per-slot overflow marks: a counter an insert found
        # already at the ceiling has lost its exact count and is frozen
        # (never incremented or decremented again).  A counter that
        # merely *reached* the ceiling by exact counting stays live, so
        # delete remains an exact inverse of insert until a real
        # overflow happens — even at counter_bits=1.
        self._overflowed = np.zeros(self.params.bits, dtype=bool)
        self._seed_key = struct.pack("<Q", self.params.seed & (2**64 - 1))
        #: Distinct-insert estimate for the analytic bound (callers
        #: insert each key once; re-inserts are counted too, which only
        #: makes the reported bound conservative).
        self.inserted = 0
        #: Times any counter hit the ceiling (delete-safety lost there).
        self.saturations = 0

    # ------------------------------------------------------------------ #
    # Hashing                                                             #
    # ------------------------------------------------------------------ #

    def _indexes(self, key: bytes) -> np.ndarray:
        """The ``num_hashes`` counter slots of ``key`` (double hashing)."""
        digest = hashlib.blake2b(
            key, digest_size=16, key=self._seed_key
        ).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1  # odd => full cycle
        bits = self.params.bits
        return np.fromiter(
            ((h1 + i * h2) % bits for i in range(self.params.num_hashes)),
            dtype=np.int64,
            count=self.params.num_hashes,
        )

    # ------------------------------------------------------------------ #
    # Membership ops                                                      #
    # ------------------------------------------------------------------ #

    def insert(self, key: bytes) -> None:
        """Add ``key``; saturated counters stick at the ceiling."""
        if self.params.bits == 0:
            return
        inc_counter("bloom.insert")
        self.inserted += 1
        idx = np.unique(self._indexes(key))
        current = self._counters[idx]
        ceiling = current >= self.params.counter_max
        n_sat = int(np.count_nonzero(ceiling))
        if n_sat:
            self.saturations += n_sat
            self._overflowed[idx[ceiling]] = True
            inc_counter("bloom.saturated", n_sat)
        self._counters[idx] = np.where(ceiling, current, current + 1)

    def query(self, key: bytes) -> bool:
        """Membership test: ``True`` iff every slot of ``key`` is set.

        May return ``True`` for a never-inserted key (false positive,
        bounded by :func:`analytic_fp_rate`); never returns ``False``
        for an inserted, un-deleted key.
        """
        if self.params.bits == 0:
            inc_counter("bloom.query_miss")
            return False
        hit = bool(np.all(self._counters[self._indexes(key)] > 0))
        inc_counter("bloom.query_hit" if hit else "bloom.query_miss")
        return hit

    def delete(self, key: bytes) -> None:
        """Remove one prior :meth:`insert` of ``key``.

        Decrements the key's non-overflowed, non-zero counters.  An
        overflowed counter is left alone — it has lost the count of how
        many members map there, and decrementing it could manufacture a
        false negative for a key that is still present.
        """
        if self.params.bits == 0:
            return
        inc_counter("bloom.delete")
        self.inserted = max(0, self.inserted - 1)
        idx = np.unique(self._indexes(key))
        current = self._counters[idx]
        keep = self._overflowed[idx] | (current == 0)
        self._counters[idx] = np.where(keep, current, current - 1)

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    @property
    def memory_bytes(self) -> int:
        """Packed state size implied by the geometry (see class doc)."""
        return self.params.memory_bytes

    def analytic_fp_rate(self) -> float:
        """FP bound at the current distinct-insert count."""
        return self.params.fp_rate(self.inserted)

    def measured_fp_rate(self, probe_keys: "list[bytes]") -> float:
        """Realized FP rate over ``probe_keys``.

        Callers must pass keys *disjoint* from everything inserted —
        then every ``True`` is a false positive by construction.  The
        probe is read-only (query counters still tick).
        """
        if not probe_keys:
            return 0.0
        positives = sum(1 for key in probe_keys if self.query(key))
        return positives / len(probe_keys)

    def clear(self) -> None:
        """Reset to the empty filter (counters, overflow marks, tallies)."""
        self._counters[:] = 0
        self._overflowed[:] = False
        self.inserted = 0
        self.saturations = 0

    def __len__(self) -> int:
        """Distinct-insert tally (inserts minus deletes, floored at 0)."""
        return self.inserted
