"""The serving core: micro-batched planning over the tiered plan cache.

:class:`PlanService` is the in-process engine behind ``repro serve``
(:mod:`repro.plan.server` wraps it in a socket front-end) and ``repro
loadgen``'s in-process mode.  It implements the serving contract of
``docs/SERVING.md``:

* **Hit path** — :meth:`submit` resolves cache hits synchronously on the
  calling thread (one LRU lookup, no queueing), which is why hit latency
  is microseconds and independent of the batching window.
* **Miss path** — misses are enqueued to a single batcher thread that
  waits up to ``batch_window_s`` (or until ``max_batch`` queued misses)
  for concurrent queries to pile up, then groups them by ``(dtype,
  gpu)`` binding and prices each group's *unique* shapes through **one**
  :func:`repro.plan.core.plan_batch` call — one batched Appendix A.1
  argmin and one batched walk instead of N scalar model evaluations.
  Results fill the plan cache and resolve every waiter.
* **Warm start** — construction optionally pre-runs the persistent
  calibration (:func:`repro.model.paramcache.calibrate_cached`) for the
  configured bindings so the first miss never pays simulator
  microbenchmarks inline.

* **Adaptive hot path** (optional, ``--adaptive`` on ``repro serve``) —
  the Stream-K++ winner cache
  (:class:`repro.ensembles.adaptive.AdaptiveSelector`) sits *ahead* of
  the LRU: a counting-Bloom probe plus an exact winner-table lookup
  serves repeat shapes before the plan cache is even consulted, and
  every batched miss is remembered into it.  A filter false positive
  only costs that probe — the query falls through to the normal
  cache/model path, never to a wrong plan.

The service is **overload-resilient by construction**
(:mod:`repro.plan.resilience`; docs/SERVING.md "Overload behavior"):

* **Admission control** — the miss queue is bounded
  (``max_queue_depth``); once full, the *newest* request is shed
  deterministically with :class:`OverloadedError` (``serve.shed``)
  instead of growing the queue without bound.
* **Deadline propagation** — callers may attach a ``deadline_ms``
  budget.  A waiter never blocks past its deadline, and the batcher
  drops already-expired entries *before* planning them
  (``serve.deadline_expired``); a waiter whose wait lapses removes its
  queue entry so abandoned requests never consume a batch slot
  (``serve.abandoned``).
* **Circuit breaker** — ``breaker_threshold`` consecutive batcher
  failures open a :class:`~repro.plan.resilience.CircuitBreaker`
  around ``plan_batch``: misses are rejected fast with
  :class:`DegradedError` while cache/adaptive hits keep being served;
  after ``breaker_cooldown_s`` one half-open probe decides recovery.
* **Graceful drain** — :meth:`drain` stops admitting, the batcher
  flushes in-flight work, and :meth:`stats`/:meth:`health` keep
  answering (``state`` field) all the way through :meth:`close`.

Counters (:mod:`repro.obs.counters`): ``serve.requests``,
``serve.cache_hit`` / ``serve.cache_miss`` (the pair behind
``hit_rate("serve.cache")``), ``serve.adaptive_hit`` /
``serve.adaptive_miss`` (winner-cache outcomes when enabled),
``serve.batches``, ``serve.batched_queries``, ``serve.unique_shapes``,
plus the resilience family: ``serve.shed``, ``serve.deadline_expired``,
``serve.abandoned``, ``serve.degraded_rejected``,
``serve.draining_rejected``, ``serve.breaker_{open,half_open,closed}``,
``serve.chaos_injected``.  Each flush of the batcher runs under an obs
span named ``serve_batch``; queue depth and batch occupancy are tracked
in :meth:`stats`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig, get_dtype_config
from ..gemm.tiling import Blocking
from ..gpu.spec import DEFAULT_GPU_NAME, GpuSpec, resolve_gpu
from ..model.paramcache import calibrate_cached, gpu_fingerprint
from ..obs.counters import inc_counter
from ..obs.profiler import span
from .cache import PlanCache
from .core import Plan, plan_batch
from .resilience import (
    CircuitBreaker,
    DeadlineExpiredError,
    DegradedError,
    DrainingError,
    OverloadedError,
    PlanTimeoutError,
    parse_chaos,
)

__all__ = ["ServeConfig", "PlanService", "DEFAULT_DTYPE_NAME"]

#: Serving default precision (matches the CLI's ``--dtype`` default).
DEFAULT_DTYPE_NAME = "fp16_fp32"


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one :class:`PlanService` (see docs/SERVING.md)."""

    #: Micro-batching window: how long the batcher waits for concurrent
    #: misses to coalesce before pricing the batch.  Bounds worst-case
    #: added miss latency; never delays cache hits.
    batch_window_s: float = 0.002
    #: Queued misses that trigger an immediate flush before the window
    #: expires (prevents unbounded batches under heavy load).
    max_batch: int = 256
    #: Hot-tier LRU capacity per ``(dtype, gpu)`` binding.
    cache_capacity: int = 65536
    #: Run persistent calibration for ``warm_bindings`` at startup.
    warm: bool = True
    #: Load/flush persistent plan shards (tier 2).
    persist: bool = True
    #: Cache root override (defaults to ``$REPRO_CACHE_DIR`` rules).
    cache_dir: "str | None" = None
    #: ``(gpu, dtype)`` pairs calibrated at startup when ``warm``.
    warm_bindings: "tuple[tuple[str, str], ...]" = (
        (DEFAULT_GPU_NAME, DEFAULT_DTYPE_NAME),
    )
    #: Enable the Stream-K++ adaptive winner cache ahead of the LRU
    #: (``--adaptive``; docs/ADAPTIVE.md).
    adaptive: bool = False
    #: Counting-Bloom slots per binding (0 = degenerate always-miss).
    adaptive_filter_bits: int = 1 << 16
    #: Hash functions per shape key.
    adaptive_hashes: int = 4
    #: Bits per counting slot (saturating).
    adaptive_counter_bits: int = 4
    #: Filter hash seed (determinism across processes).
    adaptive_seed: int = 0
    #: Winner-table LRU capacity; evictions delete from the filter.
    adaptive_max_winners: int = 65536
    #: Admission control: bound on queued misses.  At the bound, new
    #: misses are shed (reject-newest, ``OverloadedError``) instead of
    #: queueing — deterministic load-shedding.
    max_queue_depth: int = 1024
    #: Consecutive batcher failures that open the circuit breaker
    #: (0 disables the breaker).
    breaker_threshold: int = 3
    #: Open-state cooldown before a half-open probe is admitted.
    breaker_cooldown_s: float = 1.0
    #: Planner chaos spec (test seam; ``off``/``stall:S[:N]``/
    #: ``fail[:N]``).  Any non-``None`` value — including ``"off"`` —
    #: also authorizes the wire protocol's ``chaos`` op.
    chaos_spec: "str | None" = None

    def __post_init__(self) -> None:
        if self.max_queue_depth <= 0:
            raise ConfigurationError(
                "max_queue_depth must be positive, got %r"
                % (self.max_queue_depth,)
            )
        if self.breaker_cooldown_s < 0:
            raise ConfigurationError("breaker_cooldown_s must be >= 0")


class _Pending:
    """One in-flight miss: a waiter slot resolved by the batcher."""

    __slots__ = (
        "key", "binding", "event", "plan", "error", "enqueued_at",
        "deadline_at", "probe",
    )

    def __init__(
        self,
        binding,
        key,
        enqueued_at: float,
        deadline_at: "float | None" = None,
        probe: bool = False,
    ):
        self.binding = binding
        self.key = key
        self.event = threading.Event()
        self.plan: "Plan | None" = None
        self.error: "BaseException | None" = None
        self.enqueued_at = enqueued_at
        #: Absolute ``perf_counter`` instant after which planning this
        #: entry is wasted work (None = no deadline).
        self.deadline_at = deadline_at
        #: This entry was admitted as the breaker's half-open probe;
        #: any path that drops it unplanned must release the slot
        #: (``CircuitBreaker.cancel_probe``) or the breaker wedges.
        self.probe = probe


class _Binding:
    """Resolved (dtype, gpu) pair plus its cache and calibration."""

    def __init__(self, dtype: DtypeConfig, gpu: GpuSpec, config: ServeConfig):
        self.dtype = dtype
        self.gpu = gpu
        self.key = (dtype.name, gpu_fingerprint(gpu))
        self.cache = PlanCache(
            gpu,
            dtype,
            capacity=config.cache_capacity,
            cache_dir=config.cache_dir,
            persist=config.persist,
        )
        self.params = None  # calibrated lazily or by warm-up
        self.adaptive = None
        if config.adaptive:
            # Imported here, not at module level: ensembles.adaptive
            # builds on repro.plan, so the dependency must stay one-way
            # except for this opt-in hook.
            from ..ensembles.adaptive import AdaptiveConfig, AdaptiveSelector

            self.adaptive = AdaptiveSelector(
                dtype,
                gpu,
                AdaptiveConfig(
                    filter_bits=config.adaptive_filter_bits,
                    num_hashes=config.adaptive_hashes,
                    counter_bits=config.adaptive_counter_bits,
                    filter_seed=config.adaptive_seed,
                    max_winners=config.adaptive_max_winners,
                ),
            )
        self.adaptive_lock = threading.Lock()

    def calibrated(self):
        if self.params is None:
            self.params = calibrate_cached(
                self.gpu, Blocking(*self.dtype.default_blocking), self.dtype
            )
        return self.params


class PlanService:
    """Thread-safe plan server: sync cache hits, micro-batched misses.

    Use as a context manager, or call :meth:`close` to stop the batcher
    thread and flush plan shards::

        with PlanService() as svc:
            plan = svc.submit(4096, 4096, 4096)
    """

    def __init__(self, config: "ServeConfig | None" = None):
        self.config = config or ServeConfig()
        self._bindings: "dict[tuple[str, str], _Binding]" = {}
        self._bindings_lock = threading.Lock()
        self._queue: "list[_Pending]" = []
        self._cond = threading.Condition()
        self._stop = False
        self._draining = False
        self._closed = False
        self._started_at = time.perf_counter()
        self._breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        # Planner chaos (test seam): armed at boot by chaos_spec; a
        # non-None spec (even "off") authorizes runtime re-arming.
        self.chaos_allowed = self.config.chaos_spec is not None
        self._chaos = parse_chaos(self.config.chaos_spec)
        # Latency ledgers (seconds), split by cache outcome.
        self._stats_lock = threading.Lock()
        self._hit_lat: "list[float]" = []
        self._miss_lat: "list[float]" = []
        self._batch_sizes: "list[int]" = []
        self._max_queue_depth = 0
        self._requests_total = 0
        self._shed = 0
        self._deadline_expired = 0
        self._abandoned = 0
        self._degraded_rejects = 0
        self._draining_rejects = 0
        if self.config.warm:
            for gpu_ref, dtype_ref in self.config.warm_bindings:
                self._binding(dtype_ref, gpu_ref).calibrated()
        self._batcher = threading.Thread(
            target=self._batch_loop, name="plan-batcher", daemon=True
        )
        self._batcher.start()

    # ------------------------------------------------------------------ #
    # Request path                                                        #
    # ------------------------------------------------------------------ #

    def _binding(self, dtype_ref, gpu_ref) -> _Binding:
        dtype = (
            get_dtype_config(dtype_ref)
            if isinstance(dtype_ref, str)
            else dtype_ref
        )
        gpu = resolve_gpu(gpu_ref)
        key = (dtype.name, gpu_fingerprint(gpu))
        with self._bindings_lock:
            binding = self._bindings.get(key)
            if binding is None:
                binding = _Binding(dtype, gpu, self.config)
                self._bindings[key] = binding
            return binding

    def submit(
        self,
        m: int,
        n: int,
        k: int,
        dtype: "DtypeConfig | str" = DEFAULT_DTYPE_NAME,
        gpu: "GpuSpec | str" = DEFAULT_GPU_NAME,
        timeout: "float | None" = 30.0,
        deadline_ms: "float | None" = None,
    ) -> Plan:
        """Plan one query; blocks until the plan is available.

        Hits return synchronously from the calling thread; misses ride
        the next micro-batch.  The returned plan's ``provenance`` tells
        which path it took (``cache:*`` vs ``model``).

        ``deadline_ms`` is the caller's total latency budget: the wait
        never blocks past it, and the batcher drops the entry unplanned
        if the budget lapses while it is queued.  Structured rejections
        (:mod:`repro.plan.resilience`): :class:`OverloadedError` when
        the miss queue is full, :class:`DegradedError` while the
        circuit breaker is open, :class:`DeadlineExpiredError` /
        :class:`PlanTimeoutError` when the budget or ``timeout``
        lapses, :class:`DrainingError` once :meth:`drain` has begun.
        """
        if self._draining or self._stop:
            inc_counter("serve.draining_rejected")
            with self._stats_lock:
                self._draining_rejects += 1
            raise DrainingError(
                "PlanService is closed"
                if self._closed
                else "PlanService is draining; no new queries accepted"
            )
        if m <= 0 or n <= 0 or k <= 0:
            raise ConfigurationError(
                "problem dimensions must be positive, got (%d, %d, %d)"
                % (m, n, k)
            )
        if deadline_ms is not None and deadline_ms <= 0:
            raise ConfigurationError(
                "deadline_ms must be positive, got %r" % (deadline_ms,)
            )
        t0 = time.perf_counter()
        inc_counter("serve.requests")
        with self._stats_lock:
            self._requests_total += 1
        binding = self._binding(dtype, gpu)
        if binding.adaptive is not None:
            with binding.adaptive_lock:
                plan = binding.adaptive.probe_plan(m, n, k)
            if plan is not None:
                inc_counter("serve.adaptive_hit")
                inc_counter("serve.cache_hit")
                with self._stats_lock:
                    self._hit_lat.append(time.perf_counter() - t0)
                return plan
            inc_counter("serve.adaptive_miss")
        plan = binding.cache.get(m, n, k)
        if plan is not None:
            inc_counter("serve.cache_hit")
            with self._stats_lock:
                self._hit_lat.append(time.perf_counter() - t0)
            return plan

        inc_counter("serve.cache_miss")
        # Breaker gate: while open, only hits are served — a wedged or
        # poisoned planner must not take hit traffic down with it.
        if not self._breaker.admit():
            inc_counter("serve.degraded_rejected")
            with self._stats_lock:
                self._degraded_rejects += 1
            raise DegradedError(
                "circuit breaker %s after repeated plan-batch failures; "
                "serving cache hits only" % self._breaker.state
            )
        # Admitted while half-open == admitted AS the probe (the breaker
        # holds one slot).  If a concurrent outcome already moved the
        # state on, the slot was released with it — not our probe.
        is_probe = self._breaker.state == "half_open"
        deadline_at = t0 + deadline_ms / 1e3 if deadline_ms is not None else None
        pending = _Pending(
            binding, (int(m), int(n), int(k)), t0, deadline_at, probe=is_probe
        )
        with self._cond:
            if self._draining:
                self._breaker.cancel_probe()
                inc_counter("serve.draining_rejected")
                with self._stats_lock:
                    self._draining_rejects += 1
                raise DrainingError(
                    "PlanService is draining; no new queries accepted"
                )
            # Admission control: reject-newest at the bound.  The
            # decision depends only on the queue depth at arrival, so a
            # seeded replay sheds byte-identically.
            if len(self._queue) >= self.config.max_queue_depth:
                self._breaker.cancel_probe()
                inc_counter("serve.shed")
                with self._stats_lock:
                    self._shed += 1
                raise OverloadedError(
                    "miss queue full (depth %d >= max_queue_depth %d); "
                    "request shed"
                    % (len(self._queue), self.config.max_queue_depth)
                )
            self._queue.append(pending)
            depth = len(self._queue)
            self._cond.notify_all()
        with self._stats_lock:
            self._max_queue_depth = max(self._max_queue_depth, depth)
        wait_s = timeout
        if deadline_at is not None:
            remaining = deadline_at - time.perf_counter()
            wait_s = remaining if wait_s is None else min(wait_s, remaining)
        if not pending.event.wait(max(wait_s, 0.0) if wait_s is not None else None):
            # Remove the orphan so the batcher never plans work nobody
            # will read (and it stops consuming a batch slot).
            self._abandon(pending)
            if deadline_at is not None and time.perf_counter() >= deadline_at:
                raise DeadlineExpiredError(
                    "deadline of %.1f ms expired before a plan was ready"
                    % deadline_ms
                )
            raise PlanTimeoutError(
                "plan request timed out after %.1fs (batcher stalled?)"
                % (timeout or 0.0)
            )
        if pending.error is not None:
            raise pending.error
        with self._stats_lock:
            self._miss_lat.append(time.perf_counter() - t0)
        assert pending.plan is not None
        return pending.plan

    def _abandon(self, pending: _Pending) -> bool:
        """Remove a timed-out waiter's entry from the miss queue.

        Returns True when the entry was still queued (and is now
        removed, counted as ``serve.abandoned``); False when the
        batcher had already claimed it.
        """
        with self._cond:
            try:
                self._queue.remove(pending)
            except ValueError:
                # The batcher already claimed it; the batch outcome (or
                # the deadline-drop in _run_batch) settles the probe.
                return False
        if pending.probe:
            # The probe dies unplanned: free the half-open slot or no
            # future miss could ever be admitted to close the breaker.
            self._breaker.cancel_probe()
        inc_counter("serve.abandoned")
        with self._stats_lock:
            self._abandoned += 1
        return True

    # ------------------------------------------------------------------ #
    # Batcher                                                             #
    # ------------------------------------------------------------------ #

    def _batch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait()
                if self._stop and not self._queue:
                    return
                # Window: wait for concurrent misses to coalesce, but
                # flush early once max_batch are queued.
                deadline = time.perf_counter() + self.config.batch_window_s
                while (
                    len(self._queue) < self.config.max_batch
                    and not self._stop
                ):
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                batch = self._queue[: self.config.max_batch]
                del self._queue[: self.config.max_batch]
            self._run_batch(batch)

    def _run_batch(self, batch: "list[_Pending]") -> None:
        # Deadline propagation: drop entries whose budget lapsed while
        # queued — planning them is pure waste, nobody is waiting.
        now = time.perf_counter()
        live: "list[_Pending]" = []
        for pending in batch:
            if pending.deadline_at is not None and now >= pending.deadline_at:
                if pending.probe:
                    # Dropped unplanned: release the half-open slot so
                    # the breaker can admit a fresh probe.
                    self._breaker.cancel_probe()
                inc_counter("serve.deadline_expired")
                with self._stats_lock:
                    self._deadline_expired += 1
                pending.error = DeadlineExpiredError(
                    "deadline expired while queued; dropped before planning"
                )
                pending.event.set()
            else:
                live.append(pending)
        if not live:
            return
        with self._stats_lock:
            self._batch_sizes.append(len(live))
        inc_counter("serve.batches")
        inc_counter("serve.batched_queries", len(live))
        # Group by binding, then price each group's unique shapes in ONE
        # plan_batch call — the whole point of the micro-batcher.
        groups: "dict[tuple, list[_Pending]]" = {}
        for pending in live:
            groups.setdefault(pending.binding.key, []).append(pending)
        with span("serve_batch"):
            chaos = self._chaos
            if chaos is not None:
                try:
                    chaos.apply()  # stall sleeps here; fail raises
                except BaseException as exc:
                    self._breaker.record_failure()
                    for pending in live:
                        pending.error = exc
                        pending.event.set()
                    return
            for members in groups.values():
                binding = members[0].binding
                unique = sorted({p.key for p in members})
                inc_counter("serve.unique_shapes", len(unique))
                try:
                    shapes = np.array(unique, dtype=np.int64)
                    result = plan_batch(
                        shapes,
                        binding.dtype,
                        binding.gpu,
                        params=binding.calibrated(),
                    )
                    by_key = {unique[i]: result.plan(i) for i in range(len(unique))}
                    for plan in by_key.values():
                        binding.cache.put(plan)
                        if binding.adaptive is not None:
                            with binding.adaptive_lock:
                                binding.adaptive.remember_plan(plan)
                    for pending in members:
                        pending.plan = by_key[pending.key]
                        pending.event.set()
                    self._breaker.record_success()
                except BaseException as exc:  # propagate to every waiter
                    self._breaker.record_failure()
                    for pending in members:
                        pending.error = exc
                        pending.event.set()

    # ------------------------------------------------------------------ #
    # Introspection / shutdown                                            #
    # ------------------------------------------------------------------ #

    def _state(self) -> str:
        """Lifecycle/health state: ``serving`` | ``degraded`` (breaker
        not closed) | ``draining`` | ``closed``."""
        if self._closed:
            return "closed"
        if self._draining or self._stop:
            return "draining"
        if self._breaker.state != "closed":
            return "degraded"
        return "serving"

    def stats(self) -> dict:
        """Aggregate serving statistics (the ``stats`` op of the wire
        protocol and the numbers ``repro serve`` prints on shutdown).

        Never raises, even mid-shutdown: once :meth:`close` has run the
        batcher thread is gone (``None``) and the snapshot reports
        ``"state": "closed"`` instead of touching it.
        """

        def pct_us(values, q):
            return float(np.percentile(values, q)) * 1e6 if values else None

        with self._stats_lock:
            hits, misses = list(self._hit_lat), list(self._miss_lat)
            sizes = list(self._batch_sizes)
            depth = self._max_queue_depth
        batcher = getattr(self, "_batcher", None)
        requests = len(hits) + len(misses)
        return {
            "state": self._state(),
            "batcher_alive": bool(batcher is not None and batcher.is_alive()),
            "requests": requests,
            "hits": len(hits),
            "misses": len(misses),
            "hit_rate": (len(hits) / requests) if requests else None,
            "batches": len(sizes),
            "mean_batch_occupancy": (
                float(np.mean(sizes)) if sizes else None
            ),
            "max_queue_depth": depth,
            "queue_depth": len(self._queue),
            "breaker": self._breaker.state,
            "shed": self._shed,
            "deadline_expired": self._deadline_expired,
            "abandoned": self._abandoned,
            "degraded_rejects": self._degraded_rejects,
            "hit_p50_us": pct_us(hits, 50),
            "hit_p99_us": pct_us(hits, 99),
            "miss_p50_us": pct_us(misses, 50),
            "miss_p99_us": pct_us(misses, 99),
            "uptime_s": time.perf_counter() - self._started_at,
            "bindings": sorted(
                "%s@%s" % (b.dtype.name, b.gpu.name)
                for b in self._bindings.values()
            ),
            "adaptive": self._adaptive_stats(),
        }

    def _adaptive_stats(self) -> "dict | None":
        """Winner-cache occupancy/footprint, or None when disabled."""
        with self._bindings_lock:
            selectors = [
                b.adaptive
                for b in self._bindings.values()
                if b.adaptive is not None
            ]
        if not selectors:
            return None
        return {
            "winners": sum(len(s) for s in selectors),
            "filter_memory_bytes": sum(
                s.filter.memory_bytes for s in selectors
            ),
            "filter_inserted": sum(s.filter.inserted for s in selectors),
            "filter_saturations": sum(
                s.filter.saturations for s in selectors
            ),
        }

    def health(self) -> dict:
        """Cheap liveness/overload snapshot (the ``health`` wire op).

        Unlike :meth:`stats` this takes no percentiles — it is safe to
        poll at high frequency and never raises, at any lifecycle
        stage.
        """
        with self._stats_lock:
            requests = self._requests_total
            shed = self._shed
            deadline_expired = self._deadline_expired
            abandoned = self._abandoned
            degraded = self._degraded_rejects
        return {
            "state": self._state(),
            "uptime_s": time.perf_counter() - self._started_at,
            "queue_depth": len(self._queue),
            "max_queue_depth": self.config.max_queue_depth,
            "breaker": self._breaker.state,
            "requests": requests,
            "shed": shed,
            # _requests_total already counts shed requests (incremented
            # at submit() entry), so the rate is shed over all requests.
            "shed_rate": (shed / requests) if requests else 0.0,
            "deadline_expired": deadline_expired,
            "abandoned": abandoned,
            "degraded_rejects": degraded,
        }

    def arm_chaos(self, spec: "str | None") -> str:
        """(Re-)arm the planner chaos seam at runtime (``chaos`` op).

        Only honored when the service was constructed with a non-None
        ``chaos_spec`` — a production daemon cannot be chaos-injected
        over the wire.  Returns the active spec (``"off"`` when
        disarmed).
        """
        if not self.chaos_allowed:
            raise ConfigurationError(
                "chaos injection not enabled; start the daemon with "
                "--chaos-plan to allow it"
            )
        self._chaos = parse_chaos(spec)
        return self._chaos.spec() if self._chaos is not None else "off"

    def drain(self) -> None:
        """Stop admitting new queries; in-flight work keeps flushing.

        New :meth:`submit` calls raise :class:`DrainingError`
        immediately; queued misses are still planned and their waiters
        resolved.  :meth:`stats` and :meth:`health` keep answering.
        """
        with self._cond:
            if not self._draining:
                self._draining = True
                inc_counter("serve.draining")

    def close(self) -> None:
        """Drain, stop the batcher (flushing queued work), and flush
        plan shards.  Idempotent; :meth:`stats` stays callable after.

        If the batcher does not exit within the join timeout (a wedged
        planner that outlived its chaos budget), the shard flush is
        skipped — flushing under a live writer could interleave with
        the batcher's own ``cache.put`` calls — and the still-running
        thread stays visible as ``batcher_alive`` in :meth:`stats`
        (``serve.close_wedged``).
        """
        self.drain()
        with self._cond:
            if self._stop:
                return
            self._stop = True
            self._cond.notify_all()
        batcher = self._batcher
        wedged = False
        if batcher is not None:
            batcher.join(timeout=10.0)
            wedged = batcher.is_alive()
        if wedged:
            inc_counter("serve.close_wedged")
        else:
            self._batcher = None
        self._closed = True
        if not wedged:
            with self._bindings_lock:
                for binding in self._bindings.values():
                    binding.cache.flush()

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
