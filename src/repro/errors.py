"""Exception hierarchy for the Stream-K reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
type at an API boundary.  Configuration mistakes (bad shapes, bad blocking
factors, invalid grid sizes) raise :class:`ConfigurationError` eagerly at
construction time rather than failing deep inside a sweep.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "DeadlockError",
    "ProtocolViolation",
    "CalibrationError",
    "ValidationError",
    "SweepInterrupted",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An invalid problem, blocking, schedule, or GPU configuration."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event executor reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All resident CTAs are blocked on signals that can never arrive.

    On real hardware a grid whose waiters precede their producers in launch
    order can hang the GPU; the executor detects the condition and raises
    instead, reporting the blocked CTA ids.

    The executor attaches a structured diagnostic:

    ``wait_chain``
        A list of ``(cta, waiting_on_slot, reason)`` triples — one per
        blocked CTA, with ``reason`` explaining why the awaited signal
        can never arrive ("never launched", "signal dropped by fault
        injection", "blocked on slot N", ...).
    ``cycle``
        The CTA ids forming a circular wait (waiter -> producer -> ... ->
        waiter), or ``None`` when the deadlock is a chain that terminates
        in an unlaunchable or signal-dropped producer rather than a cycle.
    """

    def __init__(
        self,
        blocked: "list[int]",
        message: "str | None" = None,
        wait_chain: "list[tuple[int, int, str]] | None" = None,
        cycle: "list[int] | None" = None,
    ):
        self.blocked = list(blocked)
        self.wait_chain = list(wait_chain) if wait_chain is not None else []
        self.cycle = list(cycle) if cycle is not None else None
        if message is None:
            message = (
                "deadlock: CTAs %s are spin-waiting on signals from CTAs "
                "that cannot be scheduled" % (self.blocked,)
            )
            if self.cycle is not None:
                message += "; wait cycle: %s" % (
                    " -> ".join("CTA %d" % c for c in self.cycle + self.cycle[:1])
                )
            if self.wait_chain:
                message += "\n" + "\n".join(
                    "  CTA %d waits on slot %d: %s" % step
                    for step in self.wait_chain
                )
        super().__init__(message)


class ProtocolViolation(SimulationError):
    """The Stream-K carry protocol was breached in an executed trace.

    Raised by :func:`repro.faults.checker.check_protocol_invariants` when
    a replayed :class:`~repro.gpu.trace.ExecutionTrace` (or the schedule
    behind it) violates an invariant of the partials/fixup protocol —
    e.g. a tile's k-range covered twice, a fixup that reads a partial
    before its producer published the flag, or a partial consumed by more
    than one owner.
    """


class SweepInterrupted(ReproError):
    """A corpus sweep drained cleanly on SIGINT/SIGTERM.

    Raised by :func:`repro.harness.parallel.evaluate_corpus_sharded`
    after the drain handler fires: dispatch of new shards stopped,
    already-received completions were journaled (when a journal is
    attached), and the worker pool was terminated and joined.  The CLI
    maps this to the distinct *resumable* exit status
    (:data:`repro.harness.journal.RESUMABLE_EXIT_STATUS`); re-run with
    ``--resume`` to pick the sweep back up from the journal.

    Attributes ``completed`` / ``total`` (shard counts) and
    ``journal_dir`` are filled in when known.
    """

    def __init__(
        self,
        message: "str | None" = None,
        completed: "int | None" = None,
        total: "int | None" = None,
        journal_dir: "str | None" = None,
    ):
        self.completed = completed
        self.total = total
        self.journal_dir = journal_dir
        if message is None:
            message = "sweep interrupted; dispatch drained and workers reaped"
        super().__init__(message)

    def __str__(self) -> str:
        msg = super().__str__()
        if self.completed is not None and self.total is not None:
            msg += " (%d/%d shards durably completed)" % (
                self.completed,
                self.total,
            )
        if self.journal_dir:
            msg += "; resume with --resume --journal %s" % self.journal_dir
        return msg


class CalibrationError(ReproError, RuntimeError):
    """Microbenchmark calibration of the analytical model failed."""


class ValidationError(ReproError, AssertionError):
    """A numeric result failed verification against the reference GEMM."""
