"""Exception hierarchy for the Stream-K reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
type at an API boundary.  Configuration mistakes (bad shapes, bad blocking
factors, invalid grid sizes) raise :class:`ConfigurationError` eagerly at
construction time rather than failing deep inside a sweep.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "DeadlockError",
    "CalibrationError",
    "ValidationError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An invalid problem, blocking, schedule, or GPU configuration."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event executor reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All resident CTAs are blocked on signals that can never arrive.

    On real hardware a grid whose waiters precede their producers in launch
    order can hang the GPU; the executor detects the condition and raises
    instead, reporting the blocked CTA ids.
    """

    def __init__(self, blocked: "list[int]", message: "str | None" = None):
        self.blocked = list(blocked)
        super().__init__(
            message
            or "deadlock: CTAs %s are spin-waiting on signals from CTAs that "
            "cannot be scheduled" % (self.blocked,)
        )


class CalibrationError(ReproError, RuntimeError):
    """Microbenchmark calibration of the analytical model failed."""


class ValidationError(ReproError, AssertionError):
    """A numeric result failed verification against the reference GEMM."""
