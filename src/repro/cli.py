"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``plan``       show how the Stream-K library would launch one problem
``simulate``   run one problem under every decomposition and compare
``model``      print the Appendix A.1 grid-size curve for a problem
``corpus``     evaluate a corpus slice and print the Tables-1/2 columns
``calibrate``  print the calibrated {a, b, c, d} constants
``cache``      show or wipe the on-disk calibration / evaluation caches
``trace``      export one schedule's execution as Chrome/Perfetto JSON
``profile``    profile a corpus evaluation (span report + counters)
``faults``     straggler-severity x schedule fault sweep (docs/FAULTS.md)
``crosshw``    schedule comparison across several GPUs (docs/HARDWARE.md)
``sweep``      durable corpus sweep: WAL journal, ``--resume``, chaos
               kill, multi-worker lease fabric (``--workers``/``--join``)
               (docs/CHECKPOINTING.md)
``serve``      long-running plan server: micro-batched queries, tiered
               plan cache, JSONL-over-TCP protocol (docs/SERVING.md);
               ``--adaptive`` adds the Stream-K++ winner cache
``loadgen``    deterministic Zipf load generator for the serving path;
               reports QPS and p50/p99 split by cache hit/miss
``adapt``      Stream-K++ adaptive-selection replay: Bloom-guarded
               winner cache vs cold planning, with per-strategy regret
               vs the oracle (docs/ADAPTIVE.md)

Every command accepts ``--dtype {fp64,fp16_fp32,fp32,bf16_fp32}`` and
``--gpu NAME|path.json`` where ``NAME`` is a registered preset (see
``repro.gpu.spec.available_gpus``) and a path loads a custom device via
:meth:`~repro.gpu.spec.GpuSpec.from_json_file` (schema in
docs/HARDWARE.md).  Setting ``REPRO_PROFILE=1`` makes any command print
a span-profiler report and the counters registry to stderr on exit (see
:mod:`repro.obs` and README.md's environment-variable table).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .corpus.filters import compute_bound_mask
from .errors import SweepInterrupted
from .corpus.generator import CorpusSpec, generate_corpus
from .gemm.dtypes import DTYPE_CONFIGS, get_dtype_config
from .gemm.problem import GemmProblem
from .gemm.tiling import Blocking, TileGrid
from .gpu.backends import EXECUTOR_BACKENDS, set_default_executor
from .gpu.spec import DEFAULT_GPU_NAME, available_gpus, resolve_gpu
from .metrics.report import format_utilization
from .obs import profiler as _profiler
from .schedules.registry import DECOMPOSITION_NAMES

__all__ = ["main", "build_parser"]


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--dtype", default="fp16_fp32", choices=sorted(DTYPE_CONFIGS),
        help="precision configuration (default fp16_fp32)",
    )
    p.add_argument(
        "--gpu", default=DEFAULT_GPU_NAME, metavar="NAME|PATH.json",
        help="simulated GPU: a registered preset (%s) or a path to a "
        "custom spec JSON (default %s; see docs/HARDWARE.md)"
        % (", ".join(available_gpus()), DEFAULT_GPU_NAME),
    )
    _add_executor(p)


def _add_executor(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--executor", default=None, choices=EXECUTOR_BACKENDS,
        help="executor simulation backend (default: $REPRO_EXECUTOR, else "
        "python; numpy/numba are bitwise identical and much faster; "
        "numba falls back to numpy when not installed)",
    )


def _add_shape(p: argparse.ArgumentParser) -> None:
    p.add_argument("m", type=int)
    p.add_argument("n", type=int)
    p.add_argument("k", type=int)


def _add_journal(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--journal", default=None, metavar="DIR",
        help="write-ahead journal directory for durable checkpoint/resume "
        "(default $REPRO_JOURNAL_DIR; see docs/CHECKPOINTING.md)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="replay the journal and skip digest-verified completed shards",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stream-K reproduction: work-centric GEMM decomposition "
        "on a simulated GPU",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("plan", help="show the Stream-K launch plan")
    _add_shape(p)
    _add_common(p)

    p = sub.add_parser("simulate", help="compare every decomposition")
    _add_shape(p)
    _add_common(p)
    p.add_argument(
        "--numeric", action="store_true",
        help="also execute numerically and validate against A @ B",
    )

    p = sub.add_parser("model", help="Appendix A.1 grid-size curve")
    _add_shape(p)
    _add_common(p)

    p = sub.add_parser("corpus", help="corpus-scale system comparison")
    _add_common(p)
    p.add_argument("--size", type=int, default=2000, help="corpus slice size")
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep (0 = all cores, default 1)",
    )
    _add_journal(p)
    p.add_argument(
        "--max-shard-seconds", type=float, default=None, metavar="S",
        help="watchdog deadline per shard before it is abandoned and "
        "retried (default 300)",
    )

    p = sub.add_parser("calibrate", help="print {a, b, c, d}")
    _add_common(p)

    p = sub.add_parser("cache", help="inspect or wipe the on-disk caches")
    p.add_argument(
        "--wipe", action="store_true",
        help="delete cached calibration constants and corpus evaluations",
    )

    p = sub.add_parser(
        "trace",
        help="export one schedule's simulated execution as Perfetto JSON",
    )
    _add_shape(p)
    _add_common(p)
    p.add_argument(
        "--schedule", default="stream_k", choices=DECOMPOSITION_NAMES,
        help="decomposition to trace (default stream_k)",
    )
    p.add_argument(
        "--g", type=int, default=None, metavar="G",
        help="grid size (stream_k), splitting factor (fixed_split), or "
        "g_small (two_tile_stream_k); default: one CTA per SM",
    )
    p.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="output path for the Chrome trace_event JSON "
        "(default trace.json; open at https://ui.perfetto.dev)",
    )

    p = sub.add_parser(
        "faults",
        help="sweep fault severity x schedule; report makespan degradation",
    )
    _add_shape(p)
    _add_common(p)
    p.add_argument(
        "--severities", default="0,0.25,0.5,1,2", metavar="S0,S1,...",
        help="comma-separated straggler severities (default 0,0.25,0.5,1,2)",
    )
    p.add_argument(
        "--seed", type=int, default=0, metavar="SEED",
        help="fault-injection seed (same seed => bit-identical sweep)",
    )
    p.add_argument(
        "--schedules", default=None, metavar="NAME,...",
        help="decompositions to sweep (default: all registered: %s)"
        % ",".join(DECOMPOSITION_NAMES),
    )
    p.add_argument(
        "--drop-signals", type=float, default=0.0, metavar="P",
        help="additionally drop each flag publication with probability P "
        "(dropped signals surface as a diagnosed DEADLOCK, never a hang)",
    )
    p.add_argument(
        "--no-check", action="store_true",
        help="skip the protocol invariant checker replay per cell",
    )

    p = sub.add_parser(
        "crosshw",
        help="schedule comparison across several GPUs (one corpus pass "
        "per device; see docs/HARDWARE.md)",
    )
    p.add_argument(
        "--dtype", default="fp16_fp32", choices=sorted(DTYPE_CONFIGS),
        help="precision configuration (default fp16_fp32)",
    )
    _add_executor(p)
    p.add_argument(
        "--gpus", default="a100,h100_sxm,v100_sxm2,rtx3090",
        metavar="NAME|PATH,...",
        help="comma-separated devices: registered presets (%s) and/or "
        "spec-JSON paths (default a100,h100_sxm,v100_sxm2,rtx3090)"
        % ", ".join(available_gpus()),
    )
    p.add_argument(
        "--schedules", default="data_parallel,fixed_split,stream_k,cublas",
        metavar="NAME,...",
        help="schedule families to compare "
        "(default data_parallel,fixed_split,stream_k,cublas; "
        "also: oracle)",
    )
    p.add_argument("--size", type=int, default=2000, help="corpus slice size")
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per device evaluation (0 = all cores, "
        "default 1)",
    )
    _add_journal(p)

    p = sub.add_parser(
        "sweep",
        help="durable, resumable corpus sweep: every shard completion is "
        "committed to a write-ahead journal (docs/CHECKPOINTING.md)",
    )
    _add_common(p)
    p.add_argument("--size", type=int, default=2000, help="corpus slice size")
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep (0 = all cores, default 1)",
    )
    p.add_argument(
        "--shard-rows", type=int, default=None, metavar="R",
        help="rows per shard (default: ~4 shards per worker)",
    )
    _add_journal(p)
    p.add_argument(
        "--max-shard-seconds", type=float, default=None, metavar="S",
        help="watchdog deadline per shard before it is abandoned and "
        "retried (default 300)",
    )
    p.add_argument(
        "--chaos-kill-after", type=int, default=None, metavar="K",
        help="chaos mode: SIGKILL this process right after the K-th shard "
        "completion is durably journaled (testing the resume contract)",
    )
    p.add_argument(
        "--workers", type=int, default=None, metavar="W",
        help="lease fabric: launch W cooperating worker processes that "
        "claim shards from the shared journal, with heartbeat/lease-expiry "
        "reclaim of dead workers' shards (requires a journal; "
        "docs/CHECKPOINTING.md)",
    )
    p.add_argument(
        "--join", default=None, metavar="DIR",
        help="lease fabric: join a (possibly concurrent) sweep rooted at "
        "journal directory DIR as one worker; every joiner merges and "
        "reports the full result once all shards are committed",
    )
    p.add_argument(
        "--lease-seconds", type=float, default=None, metavar="S",
        help="lease expiry budget before a dead/wedged worker's shard is "
        "reclaimed (default $REPRO_LEASE_SECONDS or 30)",
    )
    p.add_argument(
        "--heartbeat-seconds", type=float, default=None, metavar="S",
        help="lease renewal interval while evaluating a claimed shard "
        "(default $REPRO_HEARTBEAT_SECONDS or lease/6)",
    )
    p.add_argument(
        "--chaos-worker-kill", default=None, metavar="POINT[:K]",
        help="chaos mode: SIGKILL one fabric worker at its K-th "
        "claim/eval/commit boundary (worker 0 under --workers, this "
        "process under --join)",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="optionally write the merged timings as an .npz artifact",
    )

    p = sub.add_parser(
        "serve",
        help="serve plan queries over TCP: micro-batched misses, tiered "
        "plan cache (docs/SERVING.md)",
    )
    _add_common(p)
    p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    p.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="TCP port (default 0 = pick an ephemeral port)",
    )
    p.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port number to PATH once listening "
        "(scripts use this with --port 0)",
    )
    p.add_argument(
        "--batch-window-ms", type=float, default=2.0, metavar="MS",
        help="micro-batching window for cache misses (default 2.0; hits "
        "never wait)",
    )
    p.add_argument(
        "--max-batch", type=int, default=256, metavar="N",
        help="flush a miss batch early once N queries are queued "
        "(default 256)",
    )
    p.add_argument(
        "--cache-capacity", type=int, default=65536, metavar="N",
        help="hot-tier LRU capacity per (dtype, gpu) binding (default 65536)",
    )
    p.add_argument(
        "--no-warm", action="store_true",
        help="skip calibration warm-up for the --dtype/--gpu binding at "
        "startup",
    )
    p.add_argument(
        "--no-persist", action="store_true",
        help="disable the persistent plan-shard tier (memory-only cache)",
    )
    p.add_argument(
        "--idle-timeout-s", type=float, default=30.0, metavar="S",
        help="disconnect a client whose connection is idle (no request "
        "line) for S seconds, freeing its handler thread (default 30)",
    )
    p.add_argument(
        "--max-queue-depth", type=int, default=1024, metavar="N",
        help="admission control: bound on queued cache misses; at the "
        "bound new misses are shed with a structured 'overloaded' error "
        "instead of queueing (default 1024)",
    )
    p.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="K",
        help="consecutive plan-batch failures that open the circuit "
        "breaker (misses rejected fast, hits still served; 0 disables; "
        "default 3)",
    )
    p.add_argument(
        "--breaker-cooldown-ms", type=float, default=1000.0, metavar="MS",
        help="open-breaker cooldown before a half-open probe is admitted "
        "(default 1000)",
    )
    p.add_argument(
        "--chaos-plan", default=None, metavar="SPEC",
        help="deterministic planner chaos (test seam): off | stall:S[:N] "
        "| fail[:N]; any value (including 'off') also authorizes the "
        "wire protocol's chaos op (docs/SERVING.md)",
    )
    p.add_argument(
        "--demo", type=int, default=None, metavar="N",
        help="self-contained demo: boot the service, replay an N-request "
        "Zipf trace in-process, print the serving stats, and exit",
    )
    p.add_argument(
        "--adaptive", action="store_true",
        help="enable the Stream-K++ adaptive winner cache ahead of the "
        "LRU: a counting-Bloom probe serves repeat shapes before the "
        "plan cache is consulted (docs/ADAPTIVE.md)",
    )
    p.add_argument(
        "--filter-bits", type=int, default=65536, metavar="M",
        help="counting-Bloom slots of the adaptive filter (default 65536; "
        "0 = degenerate always-miss filter)",
    )

    p = sub.add_parser(
        "loadgen",
        help="replay a deterministic Zipf trace against the serving path "
        "and report QPS + hit/miss latency percentiles",
    )
    _add_common(p)
    p.add_argument(
        "--requests", type=int, default=2000, metavar="N",
        help="total requests to issue (default 2000)",
    )
    p.add_argument(
        "--universe", type=int, default=256, metavar="N",
        help="distinct shapes in the Zipf universe (default 256)",
    )
    p.add_argument(
        "--zipf-s", type=float, default=1.1, metavar="S",
        help="Zipf exponent; larger skews harder to hot shapes "
        "(default 1.1)",
    )
    p.add_argument(
        "--seed", type=int, default=0, metavar="SEED",
        help="trace seed (same knobs + seed => byte-identical trace)",
    )
    p.add_argument(
        "--clients", type=int, default=4, metavar="C",
        help="concurrent client threads (default 4)",
    )
    p.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="drive a running `repro serve` daemon over TCP instead of an "
        "in-process service",
    )
    p.add_argument(
        "--batch-window-ms", type=float, default=2.0, metavar="MS",
        help="micro-batching window of the in-process service (ignored "
        "with --connect; default 2.0)",
    )
    p.add_argument(
        "--no-warm", action="store_true",
        help="skip startup calibration of the in-process service "
        "(ignored with --connect)",
    )
    p.add_argument(
        "--no-persist", action="store_true",
        help="keep the in-process service's plan cache memory-only "
        "(ignored with --connect)",
    )
    p.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request latency budget propagated to the service; "
        "expired requests are dropped, never planned (default: none)",
    )
    p.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retries per request on overloaded/timeout rejections, with "
        "seeded exponential backoff + jitter (default 0)",
    )
    p.add_argument(
        "--backoff-ms", type=float, default=5.0, metavar="MS",
        help="first-retry backoff before jitter; doubles per retry, "
        "capped (default 5)",
    )
    p.add_argument(
        "--hedge-ms", type=float, default=None, metavar="MS",
        help="hedge an unanswered request on a second connection after "
        "MS (socket mode only; first reply wins; default: off)",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="optionally write the full report as JSON",
    )

    p = sub.add_parser(
        "adapt",
        help="replay Zipf traffic through the Stream-K++ adaptive "
        "selector: hit rate, selection latency vs cold planning, filter "
        "footprint vs FP rate, and regret vs the oracle "
        "(docs/ADAPTIVE.md)",
    )
    _add_common(p)
    p.add_argument(
        "--requests", type=int, default=20000, metavar="N",
        help="total requests to replay (default 20000)",
    )
    p.add_argument(
        "--universe", type=int, default=512, metavar="N",
        help="distinct shapes in the Zipf universe (default 512)",
    )
    p.add_argument(
        "--zipf-s", type=float, default=1.1, metavar="S",
        help="Zipf exponent; larger skews harder to hot shapes "
        "(default 1.1)",
    )
    p.add_argument(
        "--seed", type=int, default=0, metavar="SEED",
        help="trace + filter seed (same knobs => byte-identical replay)",
    )
    p.add_argument(
        "--filter-bits", type=int, default=65536, metavar="M",
        help="counting-Bloom slots (default 65536; 0 = always-miss "
        "filter, every request falls back to the model)",
    )
    p.add_argument(
        "--hashes", type=int, default=4, metavar="K",
        help="hash functions per shape key (default 4)",
    )
    p.add_argument(
        "--counter-bits", type=int, default=4, metavar="B",
        help="bits per counting slot; counters saturate at 2**B - 1 "
        "(default 4)",
    )
    p.add_argument(
        "--max-winners", type=int, default=65536, metavar="N",
        help="winner-table LRU capacity; evictions delete from the "
        "filter (default 65536)",
    )
    p.add_argument(
        "--evaluator", default="ensemble", choices=("ensemble", "analytic"),
        help="miss path: 'ensemble' measures every cuBLAS-style variant "
        "and remembers the oracle winner (default); 'analytic' runs the "
        "planning arithmetic only",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="optionally write the full report as JSON",
    )

    p = sub.add_parser(
        "profile",
        help="profile a corpus evaluation: span report + counters",
    )
    _add_common(p)
    p.add_argument("--size", type=int, default=2000, help="corpus slice size")
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep (0 = all cores, default 1)",
    )
    p.add_argument(
        "--repeat", type=int, default=2, metavar="R",
        help="evaluate the corpus R times so cache counters show the warm "
        "path (default 2)",
    )
    p.add_argument(
        "--flame", action="store_true",
        help="also print a text flamegraph of the span tree",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="optionally write the profile as Chrome trace_event JSON",
    )

    return parser


def _cmd_plan(args) -> int:
    from .ensembles.streamk_library import StreamKLibrary

    dtype, gpu = get_dtype_config(args.dtype), resolve_gpu(args.gpu)
    problem = GemmProblem(args.m, args.n, args.k, dtype=dtype)
    lib = StreamKLibrary(gpu, dtype)
    grid = TileGrid(problem, lib.blocking)
    plan = lib.plan(problem)
    print("problem        : %s" % problem)
    print("blocking       : %s" % lib.blocking)
    print("tiles          : %d (%d x %d), %d iters/tile"
          % (grid.num_tiles, grid.tiles_m, grid.tiles_n, grid.iters_per_tile))
    print("plan           : %s" % plan.kind)
    print("grid size      : %d CTAs on %d SMs" % (plan.g, gpu.num_sms))
    print("aligned iters  : %s" % format_utilization(plan.k_aligned_fraction, decimals=0))
    print("fixup exchanges: %d" % plan.fixup_stores)
    print("predicted time : %.1f us (%.1f TFLOP/s)"
          % (lib.time_s(problem) * 1e6, lib.tflops(problem)))
    return 0


def _cmd_simulate(args) -> int:
    from .harness.runner import run_schedule
    from .ensembles.streamk_library import StreamKLibrary
    from .schedules.data_parallel import data_parallel_schedule
    from .schedules.fixed_split import fixed_split_schedule
    from .schedules.stream_k import stream_k_schedule

    dtype, gpu = get_dtype_config(args.dtype), resolve_gpu(args.gpu)
    problem = GemmProblem(args.m, args.n, args.k, dtype=dtype)
    lib = StreamKLibrary(gpu, dtype)
    grid = TileGrid(problem, lib.blocking)
    schedules = [
        data_parallel_schedule(grid),
        fixed_split_schedule(grid, 2),
        stream_k_schedule(grid, min(gpu.num_sms, grid.total_iters)),
        lib.build_schedule(problem),
    ]
    print("%-24s %6s %9s %12s %10s" % ("schedule", "g", "util", "time (us)", "TFLOP/s"))
    for sched in schedules:
        run = run_schedule(sched, gpu, execute_numeric=args.numeric)
        note = ""
        if run.max_rel_error is not None:
            note = "  [validated, err %.1e]" % run.max_rel_error
        print(
            "%-24s %6d %9s %12.1f %10.1f%s"
            % (
                sched.name,
                run.g,
                format_utilization(run.result.trace.utilization()),
                run.time_s * 1e6,
                run.tflops,
                note,
            )
        )
    return 0


def _cmd_model(args) -> int:
    from .model.calibrate import calibrate
    from .model.gridsize import select_grid_size

    dtype, gpu = get_dtype_config(args.dtype), resolve_gpu(args.gpu)
    problem = GemmProblem(args.m, args.n, args.k, dtype=dtype)
    blocking = Blocking(*dtype.default_blocking)
    grid = TileGrid(problem, blocking)
    params = calibrate(gpu, blocking, dtype)
    decision = select_grid_size(grid, params, gpu.total_cta_slots)
    print("constants: a=%.1f b=%.1f c=%.2f d=%.1f cycles"
          % (params.a, params.b, params.c, params.d))
    print("g_best = %d (predicted %.0f cycles)"
          % (decision.g, decision.predicted_cycles))
    marks = sorted({1, 2, 4, 8, 16, 32, 64, len(decision.candidates), decision.g})
    for g in marks:
        if g <= len(decision.candidates):
            star = "  <-- g_best" if g == decision.g else ""
            print("  g=%4d  %12.0f cycles%s" % (g, decision.predictions[g - 1], star))
    return 0


def _corpus_eval_kwargs(args) -> dict:
    """Journal/watchdog kwargs shared by ``corpus`` and ``sweep``."""
    from .harness.journal import default_journal_dir

    kwargs: dict = {
        "journal": args.journal or default_journal_dir(),
        "resume": args.resume,
    }
    if getattr(args, "max_shard_seconds", None) is not None:
        kwargs["shard_timeout"] = args.max_shard_seconds
    return kwargs


def _cmd_corpus(args) -> int:
    from .harness.parallel import evaluate_corpus_sharded
    from .metrics.report import format_relative_table
    from .metrics.stats import relative_performance

    dtype, gpu = get_dtype_config(args.dtype), resolve_gpu(args.gpu)
    shapes = generate_corpus(CorpusSpec(size=args.size))
    res = evaluate_corpus_sharded(
        shapes, dtype, gpu, jobs=args.jobs, **_corpus_eval_kwargs(args)
    )
    cb = compute_bound_mask(shapes, dtype)
    cols = {
        "vs CUTLASS %dx%dx%d" % dtype.default_blocking: relative_performance(
            res.singleton, res.streamk
        ),
        "vs cuBLAS": relative_performance(res.cublas, res.streamk),
        "vs cuBLAS (CB)": relative_performance(res.cublas[cb], res.streamk[cb]),
        "vs oracle": relative_performance(res.oracle, res.streamk),
    }
    print(
        format_relative_table(
            cols,
            title="Stream-K %s relative performance (%d shapes, %d compute-bound)"
            % (dtype.name, args.size, int(np.sum(cb))),
        )
    )
    return 0


def _cmd_calibrate(args) -> int:
    from .model.calibrate import calibrate

    dtype, gpu = get_dtype_config(args.dtype), resolve_gpu(args.gpu)
    blocking = Blocking(*dtype.default_blocking)
    params = calibrate(gpu, blocking, dtype)
    print("gpu=%s dtype=%s blocking=%s" % (gpu.name, dtype.name, blocking))
    print("a = %10.2f cycles  (fixed per-CTA cost)" % params.a)
    print("b = %10.2f cycles  (partial-sum store)" % params.b)
    print("c = %10.2f cycles  (per MAC-loop iteration)" % params.c)
    print("d = %10.2f cycles  (per-peer fixup)" % params.d)
    return 0


def _cmd_cache(args) -> int:
    import os

    from .harness.parallel import wipe_eval_cache
    from .model.paramcache import default_cache_dir, wipe_calibration_cache

    root = default_cache_dir()
    eval_root = os.environ.get("REPRO_EVAL_CACHE_DIR") or root
    print("cache root : %s" % root)
    for sub, base in (("calibration", root), ("eval", eval_root)):
        d = os.path.join(base, sub)
        try:
            files = [os.path.join(d, f) for f in sorted(os.listdir(d))]
        except OSError:
            files = []
        size = sum(os.path.getsize(f) for f in files if os.path.isfile(f))
        print("  %-11s %d file(s), %d bytes  (%s)" % (sub, len(files), size, d))
    if args.wipe:
        n = wipe_calibration_cache() + wipe_eval_cache(eval_root)
        print("wiped %d cached file(s)" % n)
    return 0


def _cmd_trace(args) -> int:
    from .harness.runner import run_schedule
    from .obs.export import trace_to_chrome, write_chrome_trace
    from .schedules.registry import make_decomposition

    dtype, gpu = get_dtype_config(args.dtype), resolve_gpu(args.gpu)
    problem = GemmProblem(args.m, args.n, args.k, dtype=dtype)
    blocking = Blocking(*dtype.default_blocking)
    grid = TileGrid(problem, blocking)
    default_g = max(1, min(gpu.num_sms, grid.total_iters))
    kwargs: "dict[str, int]" = {}
    if args.schedule == "fixed_split":
        kwargs["s"] = args.g if args.g is not None else 2
    elif args.schedule == "stream_k":
        kwargs["g"] = args.g if args.g is not None else default_g
    elif args.schedule in ("two_tile_stream_k", "dp_one_tile_stream_k"):
        kwargs["p"] = gpu.num_sms
        if args.schedule == "two_tile_stream_k" and args.g is not None:
            kwargs["g_small"] = args.g
    schedule = make_decomposition(args.schedule, **kwargs).build(grid)
    run = run_schedule(schedule, gpu, execute_numeric=False)
    trace = run.result.trace
    doc = trace_to_chrome(
        trace,
        name="%s %dx%dx%d %s on %s"
        % (schedule.name, args.m, args.n, args.k, dtype.name, gpu.name),
        clock_hz=gpu.clock_hz,
    )
    write_chrome_trace(args.out, doc)
    print("schedule    : %s (g=%d) on %s" % (schedule.name, run.g, gpu.name))
    print("makespan    : %.0f cycles (%.2f us simulated)"
          % (trace.makespan, run.time_s * 1e6))
    print("utilization : %s (%d spin-wait cycles)"
          % (format_utilization(trace.utilization()), trace.total_wait_cycles))
    print("events      : %d across %d SM-slot tracks"
          % (len(doc["traceEvents"]), trace.num_sm_slots))
    print("wrote %s -- open it at https://ui.perfetto.dev "
          "(see docs/TRACING.md)" % args.out)
    return 0


def _cmd_faults(args) -> int:
    import dataclasses

    from .errors import ConfigurationError
    from .faults import FaultConfig, format_sweep_table, run_fault_sweep
    from .obs.counters import get_counter

    dtype, gpu = get_dtype_config(args.dtype), resolve_gpu(args.gpu)
    problem = GemmProblem(args.m, args.n, args.k, dtype=dtype)
    try:
        severities = tuple(
            float(s) for s in args.severities.split(",") if s.strip() != ""
        )
    except ValueError:
        raise ConfigurationError(
            "--severities must be comma-separated numbers, got %r"
            % args.severities
        ) from None
    names = (
        tuple(s for s in args.schedules.split(",") if s)
        if args.schedules
        else DECOMPOSITION_NAMES
    )

    def factory(severity, seed):
        cfg = FaultConfig.straggler_sweep_point(severity, seed)
        if args.drop_signals > 0.0:
            cfg = dataclasses.replace(cfg, signal_drop_prob=args.drop_signals)
        return cfg

    cells = run_fault_sweep(
        problem,
        gpu,
        severities=severities,
        schedule_names=names,
        seed=args.seed,
        config_factory=factory,
        check=not args.no_check,
    )
    print(
        "fault sweep: %dx%dx%d %s on %s, seed %d%s"
        % (
            args.m, args.n, args.k, dtype.name, gpu.name, args.seed,
            "" if args.no_check else " (every cell invariant-checked)",
        )
    )
    print(format_sweep_table(cells))
    injected = sum(len(c.injections) and sum(c.injections.values()) for c in cells)
    deadlocked = sum(1 for c in cells if c.deadlocked)
    print(
        "injected faults: %d across %d cells (%d deadlocked); "
        "invariant checks passed: %d"
        % (injected, len(cells), deadlocked, get_counter("faults.invariant_checks"))
    )
    return 0


def _cmd_crosshw(args) -> int:
    from .harness.crosshw import format_crosshw_table, run_crosshw
    from .harness.journal import default_journal_dir

    dtype = get_dtype_config(args.dtype)
    gpus = [g.strip() for g in args.gpus.split(",") if g.strip()]
    schedules = [s.strip() for s in args.schedules.split(",") if s.strip()]
    shapes = generate_corpus(CorpusSpec(size=args.size))
    result = run_crosshw(
        gpus,
        schedules,
        shapes,
        dtype,
        jobs=args.jobs,
        journal=args.journal or default_journal_dir(),
        resume=args.resume,
    )
    print(format_crosshw_table(result))
    print()
    for name in (spec_name for spec_name in result.winners):
        print("%-16s winner: %s" % (name, result.winners[name]))
    return 0


def _cmd_sweep(args) -> int:
    from .errors import ConfigurationError
    from .faults.chaos import ChaosKill, ChaosWorkerKill
    from .harness.journal import default_journal_dir, write_timings_npz
    from .harness.parallel import evaluate_corpus_sharded
    from .metrics.report import format_relative_table
    from .metrics.stats import relative_performance
    from .obs.counters import get_counter

    dtype, gpu = get_dtype_config(args.dtype), resolve_gpu(args.gpu)
    journal_dir = args.join or args.journal or default_journal_dir()
    if journal_dir is None:
        raise ConfigurationError(
            "repro sweep needs a journal directory: pass --journal DIR or "
            "set REPRO_JOURNAL_DIR (see docs/CHECKPOINTING.md)"
        )
    chaos = (
        ChaosKill(args.chaos_kill_after)
        if args.chaos_kill_after is not None
        else None
    )
    fabric_mode = args.join is not None or (args.workers or 0) > 1
    chaos_worker = None
    if args.chaos_worker_kill is not None:
        # Validate the spec up front so a typo fails fast instead of
        # deep inside a worker process.
        chaos_worker = ChaosWorkerKill.parse(args.chaos_worker_kill)
        if not fabric_mode:
            raise ConfigurationError(
                "--chaos-worker-kill targets lease-fabric workers: "
                "combine it with --workers N or --join DIR"
            )
    shapes = generate_corpus(CorpusSpec(size=args.size))
    res = evaluate_corpus_sharded(
        shapes,
        dtype,
        gpu,
        jobs=args.jobs,
        shard_rows=args.shard_rows,
        shard_timeout=(
            args.max_shard_seconds
            if args.max_shard_seconds is not None
            else 300.0
        ),
        journal=journal_dir,
        resume=args.resume or args.join is not None,
        chaos=chaos,
        workers=args.workers,
        join=args.join is not None,
        lease_seconds=args.lease_seconds,
        heartbeat_seconds=args.heartbeat_seconds,
        chaos_worker=chaos_worker,
    )
    skipped = get_counter("journal.skipped_shards")
    evaluated = get_counter("harness.shards_ok") + (
        get_counter("harness.shard_serial_fallbacks")
    )
    print("journal    : %s" % journal_dir)
    print("shards     : %d skipped (journal), %d evaluated%s"
          % (skipped, evaluated,
             "  [degraded: journal-less]"
             if get_counter("harness.journal.degraded") else ""))
    if fabric_mode:
        print("fabric     : %d claim(s), %d commit(s), %d lease(s) "
              "expired, %d reclaim(s)"
              % (get_counter("fabric.claims"),
                 get_counter("fabric.commits"),
                 get_counter("fabric.lease_expired"),
                 get_counter("fabric.reclaims")))
    if args.out:
        write_timings_npz(args.out, res)
        print("artifact   : wrote merged timings to %s" % args.out)
    cb = compute_bound_mask(shapes, dtype)
    cols = {
        "vs CUTLASS %dx%dx%d" % dtype.default_blocking: relative_performance(
            res.singleton, res.streamk
        ),
        "vs cuBLAS": relative_performance(res.cublas, res.streamk),
        "vs cuBLAS (CB)": relative_performance(res.cublas[cb], res.streamk[cb]),
        "vs oracle": relative_performance(res.oracle, res.streamk),
    }
    print(
        format_relative_table(
            cols,
            title="Stream-K %s relative performance (%d shapes, %d compute-bound)"
            % (dtype.name, args.size, int(np.sum(cb))),
        )
    )
    return 0


def _serve_config(args) -> "object":
    from .plan.service import ServeConfig

    return ServeConfig(
        batch_window_s=args.batch_window_ms / 1e3,
        max_batch=getattr(args, "max_batch", 256),
        cache_capacity=getattr(args, "cache_capacity", 65536),
        warm=not getattr(args, "no_warm", False),
        persist=not getattr(args, "no_persist", False),
        warm_bindings=((args.gpu, args.dtype),),
        adaptive=getattr(args, "adaptive", False),
        adaptive_filter_bits=getattr(args, "filter_bits", 65536),
        max_queue_depth=getattr(args, "max_queue_depth", 1024),
        breaker_threshold=getattr(args, "breaker_threshold", 3),
        breaker_cooldown_s=getattr(args, "breaker_cooldown_ms", 1000.0) / 1e3,
        chaos_spec=getattr(args, "chaos_plan", None),
    )


def _print_loadgen_report(report: dict) -> None:
    print("mode        : %s" % report["mode"])
    print(
        "requests    : %d completed, %d failed (universe %d, zipf s=%.2f, "
        "%d clients)"
        % (
            report["completed"], report["failed"], report["universe"],
            report["zipf_s"], report["clients"],
        )
    )
    print(
        "throughput  : %.0f req/s sustained (%.2f s elapsed)"
        % (report["qps"] or 0.0, report["elapsed_s"])
    )
    print(
        "hit rate    : %s (%d hits / %d misses)"
        % (
            format_utilization(report["hit_rate"] or 0.0),
            report["hits"], report["misses"],
        )
    )

    def us(v):
        return "%.1f us" % v if v is not None else "n/a"

    print("latency p50 : hit %s, miss %s"
          % (us(report["hit_p50_us"]), us(report["miss_p50_us"])))
    split = report["p99_speedup_hit_vs_miss"]
    print("latency p99 : hit %s, miss %s%s"
          % (us(report["hit_p99_us"]), us(report["miss_p99_us"]),
             "  (%.1fx split)" % split if split else ""))
    if report.get("retries") or report.get("hedges"):
        print("resilience  : %d retr%s, %d hedge(s) (%d won)"
              % (report["retries"],
                 "y" if report["retries"] == 1 else "ies",
                 report["hedges"], report["hedge_wins"]))
    if report.get("outcomes"):
        print("rejections  : %s"
              % ", ".join("%s=%d" % kv for kv in report["outcomes"].items()))


def _cmd_serve(args) -> int:
    from .plan.loadgen import LoadgenConfig, run_loadgen
    from .plan.server import PlanServer
    from .plan.service import PlanService

    service = PlanService(_serve_config(args))
    if args.demo is not None:
        # Self-contained demo for docs/CI: replay a small Zipf trace
        # against the in-process service, print stats, exit cleanly.
        report = run_loadgen(
            LoadgenConfig(
                requests=args.demo,
                universe=max(1, min(64, args.demo)),
                dtype=args.dtype,
                gpu=args.gpu,
            ),
            service=service,
        )
        service.close()
        print("serve demo (%d requests against the in-process service)"
              % args.demo)
        _print_loadgen_report(report)
        return 0

    server = PlanServer(
        service,
        host=args.host,
        port=args.port,
        recv_timeout_s=args.idle_timeout_s,
    )
    if args.port_file:
        with open(args.port_file, "w") as fh:
            fh.write("%d\n" % server.port)
    # Graceful drain on SIGTERM: stop admitting, flush in-flight
    # batches, exit 0.  Signal handlers can only be installed from the
    # main thread (tests drive main() from a worker thread).
    import signal
    import threading

    if threading.current_thread() is threading.main_thread():
        signal.signal(
            signal.SIGTERM,
            lambda signum, frame: server.request_shutdown(),
        )
    print("serving plans on %s:%d (batch window %.1f ms, protocol: "
          "docs/SERVING.md; send {\"op\": \"shutdown\"}, SIGTERM, or "
          "Ctrl-C to stop)"
          % (server.host, server.port, args.batch_window_ms))
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    stats = service.stats()
    print("served %d request(s), hit rate %s, %d micro-batch(es), "
          "%d shed"
          % (
              stats["requests"],
              format_utilization(stats["hit_rate"] or 0.0),
              stats["batches"],
              stats["shed"],
          ))
    return 0


def _cmd_loadgen(args) -> int:
    from .errors import ConfigurationError
    from .harness import write_json
    from .plan.loadgen import LoadgenConfig, run_loadgen

    config = LoadgenConfig(
        requests=args.requests,
        universe=args.universe,
        zipf_s=args.zipf_s,
        seed=args.seed,
        clients=args.clients,
        dtype=args.dtype,
        gpu=args.gpu,
        deadline_ms=args.deadline_ms,
        retries=args.retries,
        backoff_ms=args.backoff_ms,
        hedge_ms=args.hedge_ms,
    )
    connect = None
    if args.connect:
        host, sep, port = args.connect.rpartition(":")
        if not sep or not port.isdigit():
            raise ConfigurationError(
                "--connect expects HOST:PORT, got %r" % args.connect
            )
        connect = (host or "127.0.0.1", int(port))
    report = run_loadgen(
        config, connect=connect, serve_config=_serve_config(args)
    )
    _print_loadgen_report(report)
    if args.out:
        write_json(args.out, report)
        print("wrote %s" % args.out)
    return 0 if report["failed"] == 0 else 1


def _cmd_adapt(args) -> int:
    from .ensembles.adaptive import (
        AdaptiveConfig,
        AdaptiveReplayConfig,
        replay_adaptive,
    )
    from .harness import write_json

    report = replay_adaptive(
        AdaptiveReplayConfig(
            requests=args.requests,
            universe=args.universe,
            zipf_s=args.zipf_s,
            seed=args.seed,
            dtype=args.dtype,
            gpu=args.gpu,
            adaptive=AdaptiveConfig(
                filter_bits=args.filter_bits,
                num_hashes=args.hashes,
                counter_bits=args.counter_bits,
                filter_seed=args.seed,
                max_winners=args.max_winners,
            ),
            evaluator=args.evaluator,
        )
    )

    def us(v):
        return "%.1f us" % v if v is not None else "n/a"

    flt = report["filter"]
    reg = report["regret"]
    print(
        "adaptive replay: %d requests over %d distinct shapes "
        "(zipf s=%.2f, seed %d, %s evaluator)"
        % (
            report["requests"], report["distinct_shapes"], report["zipf_s"],
            report["seed"], report["evaluator"],
        )
    )
    print(
        "hit rate     : %s (%d winner hits / %d evaluations)"
        % (
            format_utilization(report["hit_rate"] or 0.0),
            report["hits"], report["misses"],
        )
    )
    print("selection p99: hit %s vs cold plan %s  (%.1fx)"
          % (
              us(report["hit_p99_us"]), us(report["cold_plan_p99_us"]),
              report["p99_speedup_hit_vs_cold"] or 0.0,
          ))
    print(
        "filter       : %d bits x %d hashes (%d-bit counters, seed %d) "
        "= %d bytes"
        % (
            flt["bits"], flt["num_hashes"], flt["counter_bits"],
            flt["seed"], flt["memory_bytes"],
        )
    )
    print(
        "fp rate      : measured %.2e vs analytic bound %.2e "
        "(%d disjoint probes, %d saturations)"
        % (
            flt["measured_fp_rate"], flt["analytic_fp_rate"],
            flt["probe_keys"], flt["saturations"],
        )
    )
    print("regret vs oracle (mean / p99):")
    for name, label in (
        ("adaptive", "adaptive"),
        ("analytic", "pure analytic"),
        ("cublas", "cuBLAS heuristic"),
    ):
        print("  %-16s %8.3f%% / %8.3f%%"
              % (
                  label,
                  100.0 * reg["%s_mean" % name],
                  100.0 * reg["%s_p99" % name],
              ))
    if args.out:
        write_json(args.out, report)
        print("wrote %s" % args.out)
    return 0


def _cmd_profile(args) -> int:
    from .harness.parallel import evaluate_corpus_cached
    from .obs import counters as _counters
    from .obs.export import profile_to_chrome, render_flamegraph, write_chrome_trace

    dtype, gpu = get_dtype_config(args.dtype), resolve_gpu(args.gpu)
    _profiler.enable_profiling()
    _profiler.reset_profile()
    _counters.reset_counters()
    shapes = generate_corpus(CorpusSpec(size=args.size))
    with _profiler.span("profile_corpus"):
        for _ in range(max(1, args.repeat)):
            res = evaluate_corpus_cached(shapes, dtype, gpu, jobs=args.jobs)
    print("profiled %d-shape %s corpus on %s (%d pass(es), jobs=%d)"
          % (res.shapes.shape[0], dtype.name, gpu.name,
             max(1, args.repeat), args.jobs))
    print()
    print(_profiler.profiler_report())
    print()
    print(_counters.counters_report())
    if args.flame:
        print()
        print(render_flamegraph(_profiler.get_profile()))
    if args.out:
        doc = profile_to_chrome(
            _profiler.get_profile(),
            name="corpus %d %s on %s" % (args.size, dtype.name, gpu.name),
        )
        write_chrome_trace(args.out, doc)
        print()
        print("wrote %s -- open it at https://ui.perfetto.dev" % args.out)
    return 0


_COMMANDS = {
    "plan": _cmd_plan,
    "simulate": _cmd_simulate,
    "model": _cmd_model,
    "corpus": _cmd_corpus,
    "calibrate": _cmd_calibrate,
    "cache": _cmd_cache,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "faults": _cmd_faults,
    "crosshw": _cmd_crosshw,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "adapt": _cmd_adapt,
}


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    # Honor REPRO_PROFILE regardless of import order: any command can be
    # profiled by setting the environment variable (docs in README.md).
    env_profiling = _profiler.sync_profiling_with_env()
    if getattr(args, "executor", None) is not None:
        # --executor wins over $REPRO_EXECUTOR for the whole process.
        set_default_executor(args.executor)
    try:
        rc = _COMMANDS[args.command](args)
    except SweepInterrupted as exc:
        # A drained SIGINT/SIGTERM: every in-flight completion has been
        # journaled, workers are gone.  Exit with the distinct resumable
        # status so wrappers know a --resume re-run will pick up the rest.
        from .harness.journal import RESUMABLE_EXIT_STATUS

        print("interrupted: %s" % exc, file=sys.stderr)
        rc = RESUMABLE_EXIT_STATUS
    if env_profiling and args.command != "profile":
        from .obs.counters import counters_report

        print("", file=sys.stderr)
        print(_profiler.profiler_report(), file=sys.stderr)
        print("", file=sys.stderr)
        print(counters_report(), file=sys.stderr)
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
