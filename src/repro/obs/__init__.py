"""Cross-cutting observability: span profiler, counters, trace exporters.

The paper's entire argument is read off execution timelines (per-SM
utilization, quantization stalls, fixup waits — Figures 1-3 and 9), and
the corpus engine's performance story is read off cache hit rates and
phase timings.  This package makes both first-class:

- :mod:`repro.obs.profiler` — a hierarchical span profiler
  (``with span("corpus/streamk"): ...``) with thread- and process-safe
  aggregation, a no-op fast path when disabled, and ``REPRO_PROFILE=1``
  environment activation;
- :mod:`repro.obs.counters` — a process-wide counters registry surfacing
  calibration/evaluation cache hit rates, executor dispatch/spin
  statistics, and L2-simulation hit rates;
- :mod:`repro.obs.export` — exporters turning
  :class:`~repro.gpu.trace.ExecutionTrace` objects and harness profiles
  into Chrome/Perfetto ``trace_event`` JSON (open in ``ui.perfetto.dev``;
  see ``docs/TRACING.md``) plus a compact text flamegraph renderer.

Quick tour::

    from repro import obs

    obs.enable_profiling()
    with obs.span("my_phase"):
        ...                        # timed, nests, merges across workers
    print(obs.profiler_report())
    print(obs.counters_report())

CLI surface: ``python -m repro trace <m n k> --out trace.json`` exports a
schedule timeline; ``python -m repro profile corpus ...`` profiles a
corpus sweep; ``REPRO_PROFILE=1 python -m repro <anything>`` prints a
span/counter report for any existing subcommand.
"""

from .counters import (
    counters_report,
    get_counter,
    hit_rate,
    inc_counter,
    merge_counters,
    reset_counters,
    snapshot_counters,
)
from .export import (
    SEGMENT_COLORS,
    profile_to_chrome,
    render_flamegraph,
    trace_to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from .profiler import (
    Profile,
    disable_profiling,
    enable_profiling,
    get_profile,
    merge_profile,
    profiler_report,
    profiled,
    profiling_enabled,
    reset_profile,
    snapshot_profile,
    span,
    sync_profiling_with_env,
)

__all__ = [
    "Profile",
    "SEGMENT_COLORS",
    "counters_report",
    "disable_profiling",
    "enable_profiling",
    "get_counter",
    "get_profile",
    "hit_rate",
    "inc_counter",
    "merge_counters",
    "merge_profile",
    "profile_to_chrome",
    "profiled",
    "profiler_report",
    "profiling_enabled",
    "render_flamegraph",
    "reset_counters",
    "reset_profile",
    "snapshot_counters",
    "snapshot_profile",
    "span",
    "sync_profiling_with_env",
    "trace_to_chrome",
    "validate_chrome_trace",
    "write_chrome_trace",
]
