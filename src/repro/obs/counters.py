"""Process-wide counters/metrics registry.

A flat, always-on registry of named monotonic counters.  Increments are a
dict update under a lock — cheap enough that instrumented subsystems
batch-report at natural boundaries (one executor run, one cache replay,
one calibration lookup) rather than per inner-loop event.

Naming convention: dotted ``subsystem.event`` names, with ``.hit`` /
``.miss`` pairs for anything cache-shaped so :func:`hit_rate` can derive
rates uniformly.  Counters wired in by this PR:

======================================  =================================
``paramcache.memo_hit|disk_hit|miss``   calibration cache lookups
``paramcache.write_failed``             calibration store hit ENOSPC/EROFS
``evalcache.memo_hit|disk_hit|miss``    corpus-evaluation memo lookups
``evalcache.write_failed``              evaluation store hit ENOSPC/EROFS
``executor.runs|ctas|segments``         discrete-event executor volume
``executor.spin_waits|signals``         flag-protocol events
``l2sim.fragment.hit|miss``             FragmentCache replay outcomes
``l2sim.fragment.hit_bytes|miss_bytes`` ...and their byte volumes
``l2sim.line.hit|miss`` (etc.)          SetAssociativeCache, when published
``journal.replayed``                    WAL records replayed on resume
``journal.skipped_shards``              digest-verified shards not re-run
``journal.torn_tail_truncated``         torn WAL tails dropped on replay
``journal.fingerprint_mismatch``        foreign journals ignored
``journal.digest_mismatch``             stale shard artifacts re-run
``journal.abandoned_shards``            watchdog-abandoned shards
``harness.journal.degraded``            journal writes hit ENOSPC/EROFS
``harness.drained_interrupts``          SIGINT/SIGTERM drains of a sweep
``faults.chaos_kills``                  chaos kill points fired
``plancache.hot_hit|disk_hit|miss``     tiered plan-cache lookups (serve)
``plancache.evicted``                   hot-tier LRU evictions
``plancache.corrupt_quarantined``       corrupt plan shards set aside
``plancache.flush_failed``              plan-shard writes hit ENOSPC/EROFS
``serve.requests``                      plan queries accepted by the daemon
``serve.cache_hit|cache_miss``          ...split by plan-cache outcome
``serve.adaptive_hit|adaptive_miss``    Stream-K++ winner-cache outcomes
``serve.batches|batched_queries``       micro-batches flushed / their size
``serve.unique_shapes``                 deduped shapes actually planned
``serve.shed``                          misses rejected at max_queue_depth
``serve.deadline_expired``              requests dropped past their budget
``serve.abandoned``                     timed-out waiters pulled off queue
``serve.degraded_rejected``             misses rejected by an open breaker
``serve.draining|draining_rejected``    drains started / requests refused
``serve.breaker_open``                  breaker trips (planner failing)
``serve.breaker_half_open``             cooldown probes admitted
``serve.breaker_closed``                probe succeeded; breaker recovered
``serve.chaos_injected``                planner chaos activations (seam)
``serve.oversized_line``                request lines over max_line_bytes
``serve.idle_disconnects``              idle connections reaped
``serve.stop_timeout``                  accept loop failed to stop in time
``bloom.insert|delete``                 counting-filter membership writes
``bloom.query_hit|query_miss``          counting-filter probe outcomes
``bloom.saturated``                     counters stuck at the ceiling
``adaptive.hit|miss``                   winner served vs evaluator run
``adaptive.filter_fp``                  filter said yes, table said no
``adaptive.evicted``                    winner-table LRU evictions
======================================  =================================

Like the profiler, worker processes ship :func:`snapshot_counters` back to
the parent, which folds them in with :func:`merge_counters` — so a sharded
corpus sweep reports one coherent set of totals.
"""

from __future__ import annotations

import threading

__all__ = [
    "counters_report",
    "get_counter",
    "hit_rate",
    "inc_counter",
    "merge_counters",
    "reset_counters",
    "snapshot_counters",
]

_LOCK = threading.Lock()
_COUNTERS: "dict[str, int]" = {}


def inc_counter(name: str, n: int = 1) -> int:
    """Add ``n`` to counter ``name`` (creating it at 0); returns the new value."""
    with _LOCK:
        value = _COUNTERS.get(name, 0) + int(n)
        _COUNTERS[name] = value
        return value


def get_counter(name: str) -> int:
    """Current value of ``name`` (0 if never incremented)."""
    with _LOCK:
        return _COUNTERS.get(name, 0)


def snapshot_counters() -> "dict[str, int]":
    """Copy of all counters (picklable; worker -> parent transport)."""
    with _LOCK:
        return dict(_COUNTERS)


def merge_counters(snapshot: "dict[str, int]") -> None:
    """Fold a worker snapshot into this process's registry (additive)."""
    with _LOCK:
        for name, value in snapshot.items():
            _COUNTERS[name] = _COUNTERS.get(name, 0) + int(value)


def reset_counters() -> None:
    """Zero the registry (tests, repeated CLI invocations)."""
    with _LOCK:
        _COUNTERS.clear()


def hit_rate(prefix: str) -> "float | None":
    """Hit rate for a ``<prefix>.*hit`` / ``<prefix>.*miss`` counter family.

    Any counter named ``<prefix>.X`` where ``X`` ends in ``hit`` counts as
    a hit (so ``memo_hit`` and ``disk_hit`` both do), and likewise for
    ``miss``; byte-volume counters (``*_bytes``) are excluded.  Returns
    ``None`` when nothing has been counted yet.
    """
    hits = misses = 0
    with _LOCK:
        for name, value in _COUNTERS.items():
            if not name.startswith(prefix + "."):
                continue
            leaf = name[len(prefix) + 1:]
            if leaf.endswith("_bytes"):
                continue
            if leaf.endswith("hit"):
                hits += value
            elif leaf.endswith("miss"):
                misses += value
    total = hits + misses
    if total == 0:
        return None
    return hits / total


def counters_report() -> str:
    """Text table of every counter, with derived hit rates appended."""
    snap = snapshot_counters()
    if not snap:
        return "(no counters recorded)"
    width = max(len(k) for k in snap)
    lines = ["%-*s %14s" % (width, "counter", "value")]
    lines.append("-" * (width + 15))
    for name in sorted(snap):
        lines.append("%-*s %14d" % (width, name, snap[name]))
    prefixes = sorted({n.rsplit(".", 1)[0] for n in snap if "." in n})
    rate_lines = []
    for prefix in prefixes:
        rate = hit_rate(prefix)
        if rate is not None:
            rate_lines.append("%-*s %13.1f%%" % (width, prefix + " hit rate", 100 * rate))
    if rate_lines:
        lines.append("-" * (width + 15))
        lines.extend(rate_lines)
    return "\n".join(lines)
