"""Hierarchical span profiler with thread/process-safe aggregation.

Design goals, in priority order:

1. **Near-zero overhead when disabled.**  :func:`span` performs one module
   flag check and returns a shared no-op context manager — no allocation,
   no clock read, no locking.  Instrumentation can therefore live
   permanently in hot-ish paths (the executor, the corpus engine phases).
2. **Hierarchical.**  Spans nest via a per-thread stack; every completed
   span records its full slash-joined path (``corpus/evaluate/streamk``),
   so reports and flamegraphs reconstruct the call tree without any
   global registration.
3. **Mergeable.**  The collected state is a flat, picklable event list.
   Worker processes (``evaluate_corpus_sharded``) ship
   :func:`snapshot_profile` dictionaries back to the parent, which folds
   them in with :func:`merge_profile`; per-event ``pid``/``tid`` fields
   keep the provenance for the Perfetto export
   (:func:`repro.obs.export.profile_to_chrome`).

Activation: programmatic (:func:`enable_profiling`) or via the
``REPRO_PROFILE=1`` environment variable (read at import, and re-read by
the CLI through :func:`sync_profiling_with_env` so ``REPRO_PROFILE=1
python -m repro ...`` always works).  Timestamps are
:func:`time.perf_counter` seconds; clock origins differ between
processes, so cross-process exports normalize per-``pid``.
"""

from __future__ import annotations

import functools
import os
import threading
import time

__all__ = [
    "Profile",
    "SpanEvent",
    "disable_profiling",
    "enable_profiling",
    "get_profile",
    "merge_profile",
    "profiled",
    "profiler_report",
    "profiling_enabled",
    "reset_profile",
    "snapshot_profile",
    "span",
    "sync_profiling_with_env",
]

_ENV_PROFILE = "REPRO_PROFILE"

_TRUE_VALUES = ("1", "true", "yes", "on")


def _env_enabled() -> bool:
    return os.environ.get(_ENV_PROFILE, "").strip().lower() in _TRUE_VALUES


class SpanEvent:
    """One completed span: immutable, tuple-backed, picklable."""

    __slots__ = ("path", "start", "end", "pid", "tid", "depth")

    def __init__(
        self,
        path: str,
        start: float,
        end: float,
        pid: int,
        tid: int,
        depth: int,
    ):
        self.path = path
        self.start = start
        self.end = end
        self.pid = pid
        self.tid = tid
        self.depth = depth

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    def as_tuple(self) -> tuple:
        return (self.path, self.start, self.end, self.pid, self.tid, self.depth)

    @classmethod
    def from_tuple(cls, t: tuple) -> "SpanEvent":
        return cls(*t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SpanEvent(%r, %.6f..%.6f, pid=%d, tid=%d, depth=%d)" % (
            self.path, self.start, self.end, self.pid, self.tid, self.depth
        )


class Profile:
    """Thread-safe collection of completed :class:`SpanEvent` records."""

    def __init__(self):
        self._lock = threading.Lock()
        self._events: "list[SpanEvent]" = []

    # -- recording ----------------------------------------------------- #

    def record(self, event: SpanEvent) -> None:
        with self._lock:
            self._events.append(event)

    # -- access -------------------------------------------------------- #

    @property
    def events(self) -> "list[SpanEvent]":
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- merge / snapshot ---------------------------------------------- #

    def snapshot(self) -> dict:
        """Picklable representation (ships across process boundaries)."""
        return {
            "version": 1,
            "events": [e.as_tuple() for e in self.events],
        }

    def merge(self, snapshot: "dict | Profile") -> None:
        """Fold another profile (or snapshot dict) into this one."""
        if isinstance(snapshot, Profile):
            incoming = snapshot.events
        else:
            incoming = [SpanEvent.from_tuple(t) for t in snapshot.get("events", ())]
        with self._lock:
            self._events.extend(incoming)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    # -- aggregation --------------------------------------------------- #

    def aggregate(self) -> "dict[str, dict]":
        """Per-path totals: ``{path: {count, total_s, self_s}}``.

        ``self_s`` is the time not attributed to any *direct* child span
        (children one path level deeper); it never goes below zero even
        for concurrent (multi-worker) children that overlap their parent.
        """
        agg: "dict[str, dict]" = {}
        for e in self.events:
            slot = agg.setdefault(e.path, {"count": 0, "total_s": 0.0, "self_s": 0.0})
            slot["count"] += 1
            slot["total_s"] += e.duration
        for path, slot in agg.items():
            child_total = sum(
                other["total_s"]
                for other_path, other in agg.items()
                if other_path.startswith(path + "/")
                and "/" not in other_path[len(path) + 1:]
            )
            slot["self_s"] = max(0.0, slot["total_s"] - child_total)
        return agg

    def report(self, min_fraction: float = 0.0) -> str:
        """Fixed-width text table of aggregated spans, sorted by path."""
        agg = self.aggregate()
        if not agg:
            return "(no spans recorded; is profiling enabled?)"
        roots = [
            p for p in agg
            if not any(p.startswith(q + "/") for q in agg if q != p)
        ]
        grand = sum(agg[p]["total_s"] for p in roots) or 1.0
        lines = [
            "%-44s %7s %10s %10s %6s"
            % ("span", "count", "total", "self", "%")
        ]
        lines.append("-" * 80)
        for path in sorted(agg):
            slot = agg[path]
            frac = slot["total_s"] / grand
            if frac < min_fraction:
                continue
            depth = path.count("/")
            label = "  " * depth + path.rsplit("/", 1)[-1]
            lines.append(
                "%-44s %7d %9.3fs %9.3fs %5.1f%%"
                % (label[:44], slot["count"], slot["total_s"], slot["self_s"],
                   100.0 * frac)
            )
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# Module-level profiler state                                            #
# --------------------------------------------------------------------- #

_PROFILE = Profile()
_ENABLED = _env_enabled()
_LOCAL = threading.local()


def profiling_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _ENABLED


def enable_profiling() -> None:
    """Start recording spans (idempotent)."""
    global _ENABLED
    _ENABLED = True


def disable_profiling() -> None:
    """Stop recording spans; already-recorded events are kept."""
    global _ENABLED
    _ENABLED = False


def sync_profiling_with_env() -> bool:
    """Re-read ``REPRO_PROFILE`` and set the enabled flag accordingly.

    The CLI calls this at entry so the environment variable works without
    caring about import order; returns the resulting enabled state.
    """
    global _ENABLED
    _ENABLED = _env_enabled()
    return _ENABLED


def get_profile() -> Profile:
    """The process-global profile all spans record into."""
    return _PROFILE


def reset_profile() -> None:
    """Drop all recorded spans and this thread's open-span stack.

    Clearing the stack matters for forked pool workers: the child
    inherits the parent's thread-local stack (the parent forks while
    inside ``span("sharded_pool")``), and without a reset every worker
    span would be misrooted under the parent's open span.  Worker entry
    points (``_eval_shard``) call this before recording anything.
    """
    _PROFILE.clear()
    _LOCAL.stack = []


def snapshot_profile() -> dict:
    """Picklable snapshot of the global profile (worker -> parent)."""
    return _PROFILE.snapshot()


def merge_profile(snapshot: "dict | Profile") -> None:
    """Merge a worker snapshot into the global profile."""
    _PROFILE.merge(snapshot)


def profiler_report(min_fraction: float = 0.0) -> str:
    """Text report of the global profile (see :meth:`Profile.report`)."""
    return _PROFILE.report(min_fraction=min_fraction)


# --------------------------------------------------------------------- #
# Spans                                                                  #
# --------------------------------------------------------------------- #


class _NullSpan:
    """Shared no-op context manager: the disabled-profiler fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span: pushes itself on the thread-local stack, records on exit."""

    __slots__ = ("name", "_path", "_depth", "_start")

    def __init__(self, name: str):
        self.name = name

    def __enter__(self):
        stack = getattr(_LOCAL, "stack", None)
        if stack is None:
            stack = _LOCAL.stack = []
        parent = stack[-1] if stack else None
        self._path = (parent + "/" + self.name) if parent else self.name
        self._depth = len(stack)
        stack.append(self._path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        end = time.perf_counter()
        _LOCAL.stack.pop()
        _PROFILE.record(
            SpanEvent(
                path=self._path,
                start=self._start,
                end=end,
                pid=os.getpid(),
                tid=threading.get_ident(),
                depth=self._depth,
            )
        )
        return False


def span(name: str):
    """Context manager timing one named, hierarchical span.

    Usage::

        with span("corpus/evaluate"):
            with span("streamk"):     # recorded as corpus/evaluate/streamk
                ...

    When profiling is disabled this returns a shared no-op object — the
    cost is a single module flag check, safe for permanently-instrumented
    code paths.
    """
    if not _ENABLED:
        return _NULL_SPAN
    return _Span(name)


def profiled(name: "str | None" = None):
    """Decorator form of :func:`span`; defaults to the function's name."""

    def wrap(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def inner(*args, **kwargs):
            if not _ENABLED:
                return fn(*args, **kwargs)
            with _Span(label):
                return fn(*args, **kwargs)

        return inner

    return wrap
