"""Exporters: execution traces and profiles to Chrome/Perfetto JSON.

Target format is the Chrome ``trace_event`` JSON object form — the one
both ``chrome://tracing`` and https://ui.perfetto.dev open directly:
``{"traceEvents": [...], "displayTimeUnit": ..., "otherData": {...}}``
with complete (``"ph": "X"``), instant (``"ph": "i"``), and metadata
(``"ph": "M"``) events.  The full schema contract this module guarantees
(track semantics, color mapping, clock domain) is specified in
``docs/TRACING.md``; :func:`validate_chrome_trace` checks it and the
round-trip test pins it.

Two sources export here:

- :func:`trace_to_chrome` — a simulated kernel's
  :class:`~repro.gpu.trace.ExecutionTrace`: one Perfetto track per SM
  slot, one colored slice per executed segment, spin-``WAIT`` slices
  flagged in red with their blocking peer slot, ``SIGNAL`` flag
  publications as instant events.  The clock domain is **simulated
  cycles**, rendered 1 cycle = 1 us so Perfetto's time ruler reads
  directly in cycles.
- :func:`profile_to_chrome` — a harness
  :class:`~repro.obs.profiler.Profile`: one track per (process, thread),
  wall-clock microseconds, normalized per process so multi-worker sweeps
  align at zero.

Plus :func:`render_flamegraph`, a dependency-free text flamegraph of a
profile for terminal use.
"""

from __future__ import annotations

import json

from .profiler import Profile

__all__ = [
    "SEGMENT_COLORS",
    "profile_to_chrome",
    "render_flamegraph",
    "trace_to_chrome",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: Chrome trace-viewer reserved color names per segment kind — the fixed
#: visual vocabulary of exported schedule timelines (docs/TRACING.md):
#: compute work green, the partial-sum fixup protocol in warning colors,
#: spin-waits red ("terrible"), epilogue/prologue neutral.
SEGMENT_COLORS = {
    "prologue": "grey",
    "compute": "good",
    "store_partials": "bad",
    "signal": "black",
    "wait": "terrible",
    "fixup": "yellow",
    "store_tile": "olive",
}

_VALID_PHASES = {"X", "i", "I", "M", "B", "E", "C"}


def trace_to_chrome(trace, name: str = "kernel", clock_hz: "float | None" = None) -> dict:
    """Convert an :class:`~repro.gpu.trace.ExecutionTrace` to Chrome JSON.

    Track layout: ``pid`` 0 is the simulated GPU; each SM slot is one
    ``tid`` (named ``SM slot N``).  Every executed segment becomes a
    complete event whose ``ts``/``dur`` are the segment's cycle interval
    (1 cycle rendered as 1 us), colored per :data:`SEGMENT_COLORS` and
    carrying ``args`` with the CTA id, segment kind, cycle bounds, and —
    for ``WAIT``/``FIXUP`` — the peer partial-sum slot being waited on.
    ``SIGNAL`` segments additionally emit an instant event marking the
    flag publication.  ``clock_hz``, when given, is recorded in
    ``otherData`` so cycle counts can be converted to seconds offline.
    """
    events: "list[dict]" = [
        {
            "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
            "args": {"name": "simulated GPU (%d SM slots)" % trace.num_sm_slots},
        }
    ]
    for slot in range(trace.num_sm_slots):
        events.append(
            {
                "ph": "M", "name": "thread_name", "pid": 0, "tid": slot,
                "args": {"name": "SM slot %d" % slot},
            }
        )
        events.append(
            {
                "ph": "M", "name": "thread_sort_index", "pid": 0, "tid": slot,
                "args": {"sort_index": slot},
            }
        )
    for rec in sorted(trace.ctas, key=lambda c: (c.sm_slot, c.start)):
        for seg in rec.segments:
            kind = seg.kind.value
            args = {
                "cta": rec.cta,
                "kind": kind,
                "start_cycle": seg.start,
                "end_cycle": seg.end,
            }
            if kind in ("wait", "fixup") and seg.slot is not None:
                args["peer_slot"] = seg.slot
            label = (
                "WAIT cta%d <- slot%s" % (rec.cta, seg.slot)
                if kind == "wait"
                else "%s cta%d" % (kind, rec.cta)
            )
            events.append(
                {
                    "ph": "X",
                    "name": label,
                    "cat": kind,
                    "pid": 0,
                    "tid": rec.sm_slot,
                    "ts": float(seg.start),
                    "dur": float(seg.duration),
                    "cname": SEGMENT_COLORS[kind],
                    "args": args,
                }
            )
            if kind == "signal":
                events.append(
                    {
                        "ph": "i",
                        "name": "flag slot%d published" % rec.cta,
                        "cat": "signal",
                        "pid": 0,
                        "tid": rec.sm_slot,
                        "ts": float(seg.end),
                        "s": "t",  # thread-scoped instant
                        "args": {"cta": rec.cta},
                    }
                )
    other = {
        "source": "repro.obs.export.trace_to_chrome",
        "trace_name": name,
        "clock_domain": "simulated cycles (1 cycle rendered as 1 us)",
        "num_sm_slots": trace.num_sm_slots,
        "makespan_cycles": trace.makespan,
        "utilization": trace.utilization(),
        "total_wait_cycles": trace.total_wait_cycles,
        "segment_colors": dict(SEGMENT_COLORS),
    }
    if clock_hz is not None:
        other["clock_hz"] = float(clock_hz)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def profile_to_chrome(profile: Profile, name: str = "repro profile") -> dict:
    """Convert a harness :class:`Profile` to Chrome JSON.

    One track per (pid, tid); span paths become slice names.  Timestamps
    are wall-clock microseconds normalized per process (each process's
    earliest span starts at 0), since ``perf_counter`` origins are not
    comparable across processes.
    """
    events_in = profile.events
    origins: "dict[int, float]" = {}
    for e in events_in:
        origins[e.pid] = min(origins.get(e.pid, e.start), e.start)
    events: "list[dict]" = []
    for pid in sorted(origins):
        events.append(
            {
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": "repro worker pid=%d" % pid},
            }
        )
    for e in sorted(events_in, key=lambda e: (e.pid, e.tid, e.start)):
        events.append(
            {
                "ph": "X",
                "name": e.path,
                "cat": "span",
                "pid": e.pid,
                "tid": e.tid,
                "ts": (e.start - origins[e.pid]) * 1e6,
                "dur": e.duration * 1e6,
                "args": {"path": e.path, "depth": e.depth},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs.export.profile_to_chrome",
            "trace_name": name,
            "clock_domain": "wall-clock microseconds, origin per process",
            "num_spans": len(events_in),
        },
    }


def validate_chrome_trace(doc: dict) -> None:
    """Validate a document against the Chrome ``trace_event`` object form.

    Raises :class:`ValueError` on the first violation.  Checks the
    containing object, and for each event: a known phase, integer
    ``pid``/``tid``, and — for complete events — a string name plus
    non-negative numeric ``ts``/``dur``.  Also verifies the whole document
    is JSON-serializable (the property the exporters must preserve).
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError("event %d is not an object" % i)
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            raise ValueError("event %d has unknown phase %r" % (i, ph))
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                raise ValueError("event %d lacks integer %s" % (i, field))
        if ph == "X":
            if not isinstance(ev.get("name"), str) or not ev["name"]:
                raise ValueError("event %d lacks a name" % i)
            for field in ("ts", "dur"):
                v = ev.get(field)
                if not isinstance(v, (int, float)) or v < 0:
                    raise ValueError(
                        "event %d has invalid %s: %r" % (i, field, v)
                    )
    try:
        json.dumps(doc, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ValueError("trace is not JSON-serializable: %s" % exc)


def write_chrome_trace(path: str, doc: dict) -> str:
    """Validate and write a trace document; returns ``path``."""
    validate_chrome_trace(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def render_flamegraph(profile: Profile, width: int = 40) -> str:
    """Compact text flamegraph of a profile's aggregated span tree.

    One line per span path, indented by depth, with a bar proportional to
    the span's share of the root total — a terminal stand-in for the
    Perfetto view when you just want the shape of where time went.
    """
    agg = profile.aggregate()
    if not agg:
        return "(no spans recorded)"
    roots = [
        p for p in agg
        if not any(p.startswith(q + "/") for q in agg if q != p)
    ]
    grand = sum(agg[p]["total_s"] for p in roots) or 1.0
    label_width = max(
        2 * p.count("/") + len(p.rsplit("/", 1)[-1]) for p in agg
    )
    label_width = max(label_width, 4)
    lines = []
    for path in sorted(agg):
        slot = agg[path]
        frac = slot["total_s"] / grand
        bar = "#" * max(1, int(round(frac * width)))
        depth = path.count("/")
        label = "  " * depth + path.rsplit("/", 1)[-1]
        lines.append(
            "%-*s |%-*s| %8.3fs %5.1f%% x%d"
            % (label_width, label, width, bar, slot["total_s"],
               100.0 * frac, slot["count"])
        )
    return "\n".join(lines)
