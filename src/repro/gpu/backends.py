"""Array executor backends: the vectorized simulation core.

The pure-Python :class:`~repro.gpu.executor.Executor` is this repo's
*bitwise oracle*: exact, heavily tested, and slow — every simulated
segment allocates a :class:`~repro.gpu.trace.SegmentRecord` and walks a
chain of frozen dataclasses.  This module re-runs the same discrete-event
model over flat numpy arrays (:class:`TaskArrays`) and is required to be
**bitwise identical** to the oracle: same ``ExecutionTrace`` segment
timings, same ``DeadlockError`` wait chains, same ``executor.*`` and
``faults.*`` counters.

Two array strategies, picked per run:

* **single-wave vectorized** — when every CTA launches immediately
  (``num_ctas <= num_sm_slots``) and, per CTA, its one ``SIGNAL``
  precedes its first ``WAIT`` (true of every schedule this repo builds;
  asserted structurally by ``one_wave_makespan``), all signal timestamps
  are closed-form prefix folds.  The simulation becomes two short loops
  over segment *positions* with all CTAs advanced as numpy vectors —
  the fold order of the floating-point adds is exactly the oracle's, so
  equality is bitwise, not approximate.
* **lean event loop** — the general fallback (multi-wave dispatch,
  adversarial hand-built tasks): the oracle's algorithm verbatim, but
  over flat arrays with zero per-segment allocation, consulting the
  fault injector in the oracle's exact query order.

Backend selection: ``python`` (the oracle), ``numpy`` (this module), or
``numba`` (:mod:`~repro.gpu.backend_numba`, an ``@njit`` twin of the
event loop that falls back to numpy when numba is not installed or when
fault callbacks are needed).  The default comes from the
``REPRO_EXECUTOR`` environment variable (CLI flag ``--executor``
overrides per invocation via :func:`set_default_executor`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, DeadlockError
from ..obs.counters import inc_counter
from ..obs.profiler import span
from ..schedules.flatten import (
    KIND_COMPUTE,
    KIND_NAMES,
    KIND_SIGNAL,
    KIND_WAIT,
)
from .cta import SegmentKind
from .trace import CtaRecord, ExecutionTrace, SegmentRecord

__all__ = [
    "EXECUTOR_BACKENDS",
    "ArrayTrace",
    "DeadlockCtaView",
    "TaskArrays",
    "diagnose_deadlock",
    "resolve_executor_backend",
    "run_task_arrays",
    "set_default_executor",
    "tasks_to_arrays",
]

#: Integer code -> SegmentKind, index-aligned with the flattener's codes.
CODE_TO_KIND = tuple(SegmentKind)
if tuple(k.value for k in CODE_TO_KIND) != KIND_NAMES:  # pragma: no cover
    raise AssertionError("segment-kind codes drifted from SegmentKind")
KIND_TO_CODE = {k: i for i, k in enumerate(CODE_TO_KIND)}

EXECUTOR_BACKENDS = ("python", "numpy", "numba")
_ENV_VAR = "REPRO_EXECUTOR"
_default_backend: "str | None" = None


def set_default_executor(name: "str | None") -> None:
    """Set the process-wide default backend.

    ``None`` restores the environment default (``REPRO_EXECUTOR``, else
    ``python``).  The CLI's ``--executor`` flag lands here.
    """
    global _default_backend
    if name is not None:
        name = _validate_backend(name)
    _default_backend = name


def resolve_executor_backend(name: "str | None" = None) -> str:
    """Resolve a backend request to a concrete backend name.

    Precedence: explicit ``name`` > :func:`set_default_executor` >
    ``REPRO_EXECUTOR`` env var > ``"python"``.  ``numba`` degrades
    gracefully to ``numpy`` when numba is not importable.
    """
    if name is None:
        name = _default_backend
    if name is None:
        name = os.environ.get(_ENV_VAR, "").strip() or "python"
    name = _validate_backend(name)
    if name == "numba":
        from . import backend_numba

        if not backend_numba.HAS_NUMBA:
            return "numpy"
    return name


def _validate_backend(name: str) -> str:
    name = str(name).lower()
    if name not in EXECUTOR_BACKENDS:
        raise ConfigurationError(
            "unknown executor backend %r; expected one of %s"
            % (name, ", ".join(EXECUTOR_BACKENDS))
        )
    return name


# ---------------------------------------------------------------------- #
# Task arrays                                                             #
# ---------------------------------------------------------------------- #


class TaskArrays:
    """A priced CTA/segment stream as flat parallel arrays.

    The array counterpart of ``list[CtaTask]``: ``ctas`` in launch
    order, CSR ``seg_off`` row pointers, and per-segment ``kinds``
    (flattener codes), ``cycles`` (base-priced, pre-fault-multiplier)
    and ``slots`` (-1 = none; ``SIGNAL`` rows carry the CTA's own slot).

    Derived per-CTA arrays are precomputed once: ``signal_local`` (the
    signal's index within its CTA, -1 if none), ``signal_slot`` (the
    slot it publishes, -1 if none) and ``first_wait_local``.
    """

    __slots__ = (
        "ctas",
        "seg_off",
        "kinds",
        "cycles",
        "slots",
        "signal_local",
        "signal_slot",
        "first_wait_local",
    )

    def __init__(self, ctas, seg_off, kinds, cycles, slots):
        self.ctas = np.ascontiguousarray(ctas, dtype=np.int64)
        self.seg_off = np.ascontiguousarray(seg_off, dtype=np.int64)
        self.kinds = np.ascontiguousarray(kinds, dtype=np.int8)
        self.cycles = np.ascontiguousarray(cycles, dtype=np.float64)
        self.slots = np.ascontiguousarray(slots, dtype=np.int64)
        n = self.ctas.shape[0]
        if np.unique(self.ctas).shape[0] != n:
            raise ConfigurationError("duplicate CTA ids in task list")
        rows = self.rows()
        self.signal_local = np.full(n, -1, dtype=np.int64)
        self.signal_slot = np.full(n, -1, dtype=np.int64)
        sig_idx = np.flatnonzero(self.kinds == KIND_SIGNAL)
        if sig_idx.size:
            srows = rows[sig_idx]
            self.signal_local[srows] = sig_idx - self.seg_off[srows]
            sslots = self.slots[sig_idx]
            self.signal_slot[srows] = np.where(
                sslots < 0, self.ctas[srows], sslots
            )
        self.first_wait_local = np.full(n, -1, dtype=np.int64)
        wait_idx = np.flatnonzero(self.kinds == KIND_WAIT)
        if wait_idx.size:
            wrows = rows[wait_idx]
            # Reverse assignment: the earliest wait of each row wins.
            self.first_wait_local[wrows[::-1]] = (
                wait_idx - self.seg_off[wrows]
            )[::-1]

    @property
    def num_ctas(self) -> int:
        return self.ctas.shape[0]

    @property
    def num_segments(self) -> int:
        return self.kinds.shape[0]

    def rows(self) -> np.ndarray:
        """CTA row index of every segment (CSR expansion)."""
        return np.repeat(
            np.arange(self.num_ctas, dtype=np.int64), np.diff(self.seg_off)
        )

    def local_indices(self) -> np.ndarray:
        """Each segment's index within its own CTA's segment list."""
        return (
            np.arange(self.num_segments, dtype=np.int64)
            - self.seg_off[self.rows()]
        )


def tasks_to_arrays(tasks) -> TaskArrays:
    """Lower a ``list[CtaTask]`` into :class:`TaskArrays`.

    The loop is the only per-object walk an array-backend run performs;
    schedules coming from a cost model should prefer
    :meth:`~repro.gpu.costmodel.KernelCostModel.build_task_arrays`,
    which never builds the task objects at all.
    """
    ctas: "list[int]" = []
    offs: "list[int]" = [0]
    kinds: "list[int]" = []
    cycles: "list[float]" = []
    slots: "list[int]" = []
    for t in tasks:
        ctas.append(t.cta)
        for s in t.segments:
            kinds.append(KIND_TO_CODE[s.kind])
            cycles.append(s.cycles)
            if s.slot is None:
                slots.append(t.cta if s.kind is SegmentKind.SIGNAL else -1)
            else:
                slots.append(s.slot)
        offs.append(len(kinds))
    return TaskArrays(ctas, offs, kinds, cycles, slots)


# ---------------------------------------------------------------------- #
# Lazy trace                                                              #
# ---------------------------------------------------------------------- #


class ArrayTrace(ExecutionTrace):
    """An :class:`~repro.gpu.trace.ExecutionTrace` backed by arrays.

    ``makespan`` comes straight from the finish-time array; the
    :class:`~repro.gpu.trace.CtaRecord` list materializes lazily on
    first access to ``ctas``, so throughput paths (benchmarks, corpus
    sweeps reading only the makespan) never pay for per-segment record
    objects.  Once materialized, records are bitwise identical to the
    oracle's — same values, same ordering (sorted by CTA id).
    """

    def __init__(
        self, num_sm_slots, arrays, seg_start, seg_end, sm_slot, start, finish
    ):
        self.num_sm_slots = num_sm_slots
        self._arrays = arrays
        self._seg_start = seg_start
        self._seg_end = seg_end
        self._sm_slot = sm_slot
        self._start = start
        self._finish = finish
        self._records: "list[CtaRecord] | None" = None

    @property
    def ctas(self) -> "list[CtaRecord]":
        if self._records is None:
            self._records = self._materialize()
        return self._records

    @ctas.setter
    def ctas(self, value) -> None:
        self._records = value

    @property
    def makespan(self) -> float:
        if self._finish.shape[0] == 0:
            return 0.0
        return float(self._finish.max())

    def _materialize(self) -> "list[CtaRecord]":
        a = self._arrays
        starts = self._seg_start.tolist()
        ends = self._seg_end.tolist()
        kinds = a.kinds.tolist()
        slots = a.slots.tolist()
        seg_off = a.seg_off.tolist()
        cta_ids = a.ctas.tolist()
        sm_slot = self._sm_slot.tolist()
        t0 = self._start.tolist()
        t1 = self._finish.tolist()
        records = []
        for i in sorted(range(len(cta_ids)), key=cta_ids.__getitem__):
            segs = tuple(
                SegmentRecord(
                    CODE_TO_KIND[kinds[j]],
                    starts[j],
                    ends[j],
                    slots[j] if slots[j] >= 0 else None,
                )
                for j in range(seg_off[i], seg_off[i + 1])
            )
            records.append(
                CtaRecord(
                    cta=cta_ids[i],
                    sm_slot=sm_slot[i],
                    start=t0[i],
                    finish=t1[i],
                    segments=segs,
                )
            )
        return records


# ---------------------------------------------------------------------- #
# Deadlock diagnosis (shared with the oracle)                             #
# ---------------------------------------------------------------------- #


@dataclass
class DeadlockCtaView:
    """The per-CTA facts deadlock diagnosis needs, backend-agnostic."""

    cta: int
    signals_slot: "int | None"
    launched: bool
    finished: bool
    blocked_on: "int | None"


def diagnose_deadlock(views, by_slot_signal, dropped_slots) -> DeadlockError:
    """Build the wait-chain diagnostic for an unprogressable run.

    For every blocked CTA: name the slot it waits on and *why* that
    signal can never arrive — the producer was never launched (no free
    slot), the producer itself is blocked (possibly forming a cycle),
    the producer's flag was dropped by fault injection, or no task ever
    signals the slot at all.  Detects and reports the first circular
    wait (the blocking CTA cycle) when one exists.  Every backend funnels
    through here, so wait chains are identical by construction.
    """
    by_cta = {v.cta: v for v in views}
    producer_of_slot = {
        v.signals_slot: v.cta for v in views if v.signals_slot is not None
    }
    blocked = sorted(
        v.cta for v in views if not v.finished and v.blocked_on is not None
    )

    wait_chain: "list[tuple[int, int, str]]" = []
    for cta in blocked:
        slot = by_cta[cta].blocked_on
        if slot in dropped_slots:
            reason = (
                "signal from CTA %d was dropped by fault injection"
                % producer_of_slot.get(slot, slot)
            )
        elif slot in by_slot_signal:  # pragma: no cover - defensive
            reason = "signal published but waiter not released"
        elif slot not in producer_of_slot:
            reason = "no CTA ever signals slot %d" % slot
        else:
            producer = by_cta[producer_of_slot[slot]]
            if not producer.launched:
                reason = (
                    "producer CTA %d never launched (all SM slots held "
                    "by blocked CTAs)" % producer.cta
                )
            elif producer.blocked_on is not None:
                reason = "producer CTA %d is itself blocked on slot %d" % (
                    producer.cta,
                    producer.blocked_on,
                )
            elif producer.finished:
                reason = (
                    "producer CTA %d finished without publishing"
                    % producer.cta
                )
            else:  # pragma: no cover - defensive
                reason = "producer CTA %d stalled" % producer.cta
        wait_chain.append((cta, slot, reason))

    cycle = _find_cycle(by_cta, producer_of_slot, blocked)
    return DeadlockError(blocked, wait_chain=wait_chain, cycle=cycle)


def _find_cycle(by_cta, producer_of_slot, blocked) -> "list[int] | None":
    """First circular wait among blocked CTAs, as a CTA id list."""
    for start in blocked:
        path: "list[int]" = []
        seen: "dict[int, int]" = {}
        cta = start
        while True:
            if cta in seen:
                return path[seen[cta]:]
            seen[cta] = len(path)
            path.append(cta)
            view = by_cta.get(cta)
            slot = view.blocked_on if view is not None else None
            if slot is None or slot not in producer_of_slot:
                break
            cta = producer_of_slot[slot]
    return None


# ---------------------------------------------------------------------- #
# Backend entry point                                                     #
# ---------------------------------------------------------------------- #


def run_task_arrays(
    arrays: TaskArrays, num_sm_slots: int, faults=None, backend: str = "numpy"
) -> ExecutionTrace:
    """Execute a :class:`TaskArrays` with an array backend.

    Publishes the same ``executor.*`` counters as the oracle (plus an
    ``executor.backend.<name>`` tally) and returns an
    :class:`ArrayTrace`; raises the oracle's exact ``DeadlockError`` /
    ``SimulationError`` on unprogressable or malformed runs.
    """
    if num_sm_slots <= 0:
        raise ConfigurationError(
            "need at least one SM slot, got %d" % num_sm_slots
        )
    with span("executor_run"):
        used = backend
        if backend == "numba":
            from . import backend_numba

            if backend_numba.usable(arrays, faults):
                trace, parks, n_signals = backend_numba.run(
                    arrays, num_sm_slots
                )
            else:
                used = "numpy"
                trace, parks, n_signals = _run_numpy(
                    arrays, num_sm_slots, faults
                )
        else:
            trace, parks, n_signals = _run_numpy(arrays, num_sm_slots, faults)

    inc_counter("executor.backend.%s" % used)
    inc_counter("executor.runs")
    inc_counter("executor.ctas", arrays.num_ctas)
    inc_counter("executor.segments", arrays.num_segments)
    inc_counter("executor.spin_waits", parks)
    inc_counter("executor.signals", n_signals)
    return trace


def _run_numpy(arrays, num_sm_slots, faults):
    if _single_wave_ok(arrays, num_sm_slots):
        return _run_single_wave(arrays, num_sm_slots, faults)
    return _run_event_loop(arrays, num_sm_slots, faults)


def _single_wave_ok(arrays: TaskArrays, num_sm_slots: int) -> bool:
    """Whether the vectorized single-wave path applies.

    Requires: every CTA launches immediately (one wave), each CTA's
    signal precedes its first wait (so signal timestamps are closed-form
    prefix sums — the structural invariant of every schedule this repo
    builds), and no two CTAs publish the same slot (the pathological
    double-signal case is left to the event loop, which reports it at
    the oracle's exact execution point).
    """
    if arrays.num_ctas > num_sm_slots:
        return False
    sig, fw = arrays.signal_local, arrays.first_wait_local
    if bool(np.any((sig >= 0) & (fw >= 0) & (fw < sig))):
        return False
    # One signal per CTA (hand-built arrays can violate what CtaTask
    # validation normally guarantees), and no two CTAs on one slot.
    if int(np.count_nonzero(arrays.kinds == KIND_SIGNAL)) != int(
        np.count_nonzero(sig >= 0)
    ):
        return False
    pub = arrays.signal_slot[arrays.signal_slot >= 0]
    if np.unique(pub).shape[0] != pub.shape[0]:
        return False
    return True


# ---------------------------------------------------------------------- #
# Vectorized single-wave path                                             #
# ---------------------------------------------------------------------- #


def _run_single_wave(arrays: TaskArrays, num_sm_slots: int, faults):
    """All CTAs launch at t=0 on slot == launch index; advance CTAs in
    lockstep over segment positions with numpy vectors.

    Floating-point parity with the oracle holds because every value is
    produced by the same op sequence: per segment one ``t + cycles`` add
    (cycles being ``base * slot_mult`` plus an optional penalty add), a
    ``max`` for waits (exact), and the two-add signal-delay sequence.
    """
    n = arrays.num_ctas
    S = arrays.num_segments
    seg_off = arrays.seg_off
    kinds = arrays.kinds
    cycles = arrays.cycles
    slots = arrays.slots
    nseg = np.diff(seg_off)
    rows = arrays.rows()
    local = arrays.local_indices()
    launch = np.arange(n, dtype=np.int64)

    # --- signal bookkeeping (drops, delays, producers) ----------------- #
    sig_rows = np.flatnonzero(arrays.signal_local >= 0)
    if faults is not None and sig_rows.size:
        # Every signal executes (it precedes its CTA's first wait), so
        # drop/delay sites are static — query them in launch order, the
        # oracle's dispatch order.
        dropped = faults.signal_drops(arrays.ctas[sig_rows])
    else:
        dropped = np.zeros(sig_rows.shape[0], dtype=bool)
    delay_by_row = np.zeros(n, dtype=np.float64)
    if faults is not None and sig_rows.size:
        live = sig_rows[~dropped]
        delay_by_row[live] = faults.signal_delays(arrays.ctas[live])

    pub_rows = sig_rows[~dropped]
    pub_slots = arrays.signal_slot[pub_rows]
    order = np.argsort(pub_slots)
    sorted_slots = pub_slots[order]
    sorted_rows = pub_rows[order]
    dropped_slot_ids = set(arrays.signal_slot[sig_rows[dropped]].tolist())

    # --- wait availability and blocked prefixes ------------------------ #
    wait_idx = np.flatnonzero(kinds == KIND_WAIT)
    wait_prod_row = np.full(S, -1, dtype=np.int64)
    if wait_idx.size and sorted_slots.size:
        wslots = slots[wait_idx]
        pos = np.searchsorted(sorted_slots, wslots)
        pos_c = np.minimum(pos, sorted_slots.size - 1)
        found = sorted_slots[pos_c] == wslots
        wait_prod_row[wait_idx[found]] = sorted_rows[pos_c[found]]
    stop_local = nseg.copy()
    if wait_idx.size:
        bad = wait_idx[wait_prod_row[wait_idx] < 0]
        if bad.size:
            brows = rows[bad]
            stop_local[brows[::-1]] = (local[bad])[::-1]
    executed = local < stop_local[rows]

    # --- fault pricing over executed sites ----------------------------- #
    if faults is None:
        exec_cycles = cycles
    else:
        nonwait_exec = executed & (kinds != KIND_WAIT)
        mult_rows = np.unique(rows[nonwait_exec])
        mult_by_row = np.ones(n, dtype=np.float64)
        if mult_rows.size:
            # Slot index == launch index in a single wave.
            mult_by_row[mult_rows] = faults.slot_multipliers(mult_rows)
        exec_cycles = cycles * mult_by_row[rows]
        pmask = (kinds == KIND_COMPUTE) & (cycles > 0.0) & executed
        if pmask.any():
            pen = faults.preempt_penalties(
                arrays.ctas[rows[pmask]], local[pmask], cycles[pmask]
            )
            exec_cycles[pmask] += pen

    # --- pass 1: signal timestamps (prefix folds, oracle op order) ----- #
    sig_time_by_row = np.zeros(n, dtype=np.float64)
    if sig_rows.size:
        soff = seg_off[sig_rows]
        sl = arrays.signal_local[sig_rows]
        t = np.zeros(sig_rows.size, dtype=np.float64)
        for p in range(int(sl.max()) + 1):
            act = sl >= p
            t[act] = t[act] + exec_cycles[soff[act] + p]
        if faults is not None:
            t = t + delay_by_row[sig_rows]
        sig_time_by_row[sig_rows] = t

    wait_sig = np.zeros(S, dtype=np.float64)
    avail = wait_prod_row >= 0
    wait_sig[avail] = sig_time_by_row[np.maximum(wait_prod_row[avail], 0)]

    # --- pass 2: the full fold ----------------------------------------- #
    seg_start = np.zeros(S, dtype=np.float64)
    seg_end = np.zeros(S, dtype=np.float64)
    tcur = np.zeros(n, dtype=np.float64)
    runmax = launch.copy()  # highest producer launch index seen per CTA
    parks = 0
    for p in range(int(nseg.max()) if n else 0):
        sel = np.flatnonzero(stop_local > p)
        if not sel.size:
            break
        idx = seg_off[sel] + p
        k = kinds[idx]
        tprev = tcur[sel]
        end = tprev + exec_cycles[idx]
        w = k == KIND_WAIT
        if w.any():
            widx = idx[w]
            end[w] = np.maximum(tprev[w], wait_sig[widx])
            prod = wait_prod_row[widx]
            msel = runmax[sel[w]]
            parks += int(np.count_nonzero(prod > msel))
            runmax[sel[w]] = np.maximum(msel, prod)
        if faults is not None:
            sg = k == KIND_SIGNAL
            if sg.any():
                end[sg] = end[sg] + delay_by_row[sel[sg]]
        seg_start[idx] = tprev
        seg_end[idx] = end
        tcur[sel] = end

    # Blocked CTAs also park once, at the wait they never clear.
    blocked_rows = np.flatnonzero(stop_local < nseg)
    parks += int(blocked_rows.size)

    if blocked_rows.size:
        by_slot_signal = dict(
            zip(sorted_slots.tolist(), sig_time_by_row[sorted_rows].tolist())
        )
        blocked_slot = slots[seg_off[blocked_rows] + stop_local[blocked_rows]]
        blocked_on = dict(zip(blocked_rows.tolist(), blocked_slot.tolist()))
        finished = stop_local == nseg
        views = [
            DeadlockCtaView(
                cta=int(arrays.ctas[i]),
                signals_slot=(
                    int(arrays.signal_slot[i])
                    if arrays.signal_slot[i] >= 0
                    else None
                ),
                launched=True,
                finished=bool(finished[i]),
                blocked_on=blocked_on.get(i),
            )
            for i in range(n)
        ]
        raise diagnose_deadlock(views, by_slot_signal, dropped_slot_ids)

    trace = ArrayTrace(
        num_sm_slots,
        arrays,
        seg_start,
        seg_end,
        sm_slot=launch,
        start=np.zeros(n, dtype=np.float64),
        finish=tcur,
    )
    return trace, parks, int(pub_rows.size)


# ---------------------------------------------------------------------- #
# Lean event-loop path (general fallback)                                 #
# ---------------------------------------------------------------------- #


def _run_event_loop(arrays: TaskArrays, num_sm_slots: int, faults):
    if faults is None:
        return _run_event_loop_pristine(arrays, num_sm_slots)
    return _run_event_loop_faulted(arrays, num_sm_slots, faults)


def _run_event_loop_pristine(arrays: TaskArrays, num_sm_slots: int):
    """Multi-wave dispatch without fault injection: two passes.

    Pass A replays the oracle's dispatch algorithm but touches Python
    only at WAIT/SIGNAL segments — runs of plain segments fold through
    ``sum(slice, t)``, and CPython's ``sum`` is the same strict
    left-to-right float fold as the oracle's per-segment ``t = t + c``,
    so every timestamp (and therefore every dispatch decision) is
    bitwise the oracle's.  Pass B then fills per-segment start/end
    times by advancing all CTAs in lockstep over segment *positions*
    (the same numpy op order), never looping over individual segments.
    """
    import heapq

    from ..errors import SimulationError

    n = arrays.num_ctas
    S = arrays.num_segments
    seg_off_arr = arrays.seg_off
    kinds_arr = arrays.kinds
    seg_off = seg_off_arr.tolist()
    kinds = kinds_arr.tolist()
    cyc = arrays.cycles.tolist()
    slots = arrays.slots.tolist()
    W, G = KIND_WAIT, KIND_SIGNAL

    # Per-CTA list of WAIT/SIGNAL segment indices, in stream order.
    specials: "list[list[int]]" = [[] for _ in range(n)]
    spec_idx = np.flatnonzero((kinds_arr == W) | (kinds_arr == G))
    if spec_idx.size:
        srows = np.searchsorted(seg_off_arr, spec_idx, side="right") - 1
        for row, j in zip(srows.tolist(), spec_idx.tolist()):
            specials[row].append(j)

    time_ = [0.0] * n
    start = [0.0] * n
    cursor = seg_off[:n]
    spec_ptr = [0] * n
    sm_slot = [-1] * n
    finished = [False] * n
    by_slot_signal: "dict[int, float]" = {}
    waiters: "dict[int, list[int]]" = {}
    free_slots = [(0.0, s) for s in range(num_sm_slots)]
    heapq.heapify(free_slots)
    parks = 0
    heappop, heappush = heapq.heappop, heapq.heappush

    def deadlock() -> DeadlockError:
        views = []
        for r in range(n):
            j = cursor[r]
            blocked_on = (
                slots[j] if (j < seg_off[r + 1] and kinds[j] == W) else None
            )
            views.append(
                DeadlockCtaView(
                    cta=int(arrays.ctas[r]),
                    signals_slot=(
                        int(arrays.signal_slot[r])
                        if arrays.signal_slot[r] >= 0
                        else None
                    ),
                    launched=sm_slot[r] >= 0,
                    finished=finished[r],
                    blocked_on=blocked_on,
                )
            )
        return diagnose_deadlock(views, by_slot_signal, set())

    if not spec_idx.size:
        # No waits or signals anywhere (e.g. data-parallel): dispatch is
        # a plain slot queue and each CTA is one left fold.
        for r in range(n):
            t, slot = heappop(free_slots)
            sm_slot[r] = slot
            start[r] = t
            t = sum(cyc[seg_off[r]:seg_off[r + 1]], t)
            time_[r] = t
            finished[r] = True
            heappush(free_slots, (t, slot))
        cursor = seg_off[1:]
    else:
        ready: "list[int]" = []
        nxt_cta = 0
        while nxt_cta < n:
            if not free_slots:
                raise deadlock()
            t, slot = heappop(free_slots)
            r = nxt_cta
            nxt_cta += 1
            sm_slot[r] = slot
            start[r] = time_[r] = t
            ready.append(r)
            while ready:
                r = ready.pop()
                j = cursor[r]
                b = seg_off[r + 1]
                t = time_[r]
                sp = specials[r]
                si = spec_ptr[r]
                ns = len(sp)
                while True:
                    nxt = sp[si] if si < ns else b
                    if nxt > j:
                        t = sum(cyc[j:nxt], t)
                        j = nxt
                    if j >= b:
                        break
                    if kinds[j] == W:
                        sig = by_slot_signal.get(slots[j])
                        if sig is None:
                            parks += 1
                            waiters.setdefault(slots[j], []).append(r)
                            break
                        t = max(t, sig)
                    else:
                        t = t + cyc[j]
                        slot = slots[j]
                        if slot in by_slot_signal:
                            raise SimulationError(
                                "slot %d signalled twice" % slot
                            )
                        by_slot_signal[slot] = t
                        for wr in waiters.pop(slot, []):
                            ready.append(wr)
                    j += 1
                    si += 1
                cursor[r] = j
                spec_ptr[r] = si
                time_[r] = t
                if j >= b:
                    finished[r] = True
                    heappush(free_slots, (t, sm_slot[r]))

        if not all(finished):
            raise deadlock()

    # --- pass B: vectorized per-segment recording ---------------------- #
    cycles = arrays.cycles
    nseg = np.diff(seg_off_arr)
    wait_sig = np.zeros(S, dtype=np.float64)
    wait_idx = np.flatnonzero(kinds_arr == W)
    if wait_idx.size:
        ps = np.fromiter(by_slot_signal, dtype=np.int64, count=len(by_slot_signal))
        pt = np.fromiter(
            by_slot_signal.values(), dtype=np.float64, count=len(by_slot_signal)
        )
        order = np.argsort(ps)
        ps, pt = ps[order], pt[order]
        # Every wait resolved (the run completed), so lookups all hit.
        wait_sig[wait_idx] = pt[np.searchsorted(ps, arrays.slots[wait_idx])]

    seg_start = np.zeros(S, dtype=np.float64)
    seg_end = np.zeros(S, dtype=np.float64)
    tcur = np.array(start, dtype=np.float64)
    for p in range(int(nseg.max()) if n else 0):
        sel = np.flatnonzero(nseg > p)
        idx = seg_off_arr[sel] + p
        tprev = tcur[sel]
        end = tprev + cycles[idx]
        w = kinds_arr[idx] == W
        if w.any():
            end[w] = np.maximum(tprev[w], wait_sig[idx[w]])
        seg_start[idx] = tprev
        seg_end[idx] = end
        tcur[sel] = end

    trace = ArrayTrace(
        num_sm_slots,
        arrays,
        seg_start,
        seg_end,
        sm_slot=np.array(sm_slot, dtype=np.int64),
        start=np.array(start, dtype=np.float64),
        finish=np.array(time_, dtype=np.float64),
    )
    return trace, parks, len(by_slot_signal)


def _run_event_loop_faulted(arrays: TaskArrays, num_sm_slots: int, faults):
    """The oracle's algorithm verbatim over flat arrays.

    No per-segment allocation: start/end times land in flat lists turned
    into the ArrayTrace's arrays at the end.  Injector queries happen in
    the oracle's exact order, so even the injection *log order* matches.
    """
    import heapq

    from ..errors import SimulationError

    n = arrays.num_ctas
    S = arrays.num_segments
    seg_off = arrays.seg_off.tolist()
    kinds = arrays.kinds.tolist()
    cyc = arrays.cycles.tolist()
    slots = arrays.slots.tolist()
    cta_ids = arrays.ctas.tolist()

    seg_start = [0.0] * S
    seg_end = [0.0] * S
    time = [0.0] * n
    start = [0.0] * n
    cursor = [seg_off[i] for i in range(n)]
    sm_slot = [-1] * n
    finished = [False] * n

    by_slot_signal: "dict[int, float]" = {}
    dropped_slots: "set[int]" = set()
    waiters: "dict[int, list[int]]" = {}
    free_slots = [(0.0, s) for s in range(num_sm_slots)]
    heapq.heapify(free_slots)
    inj = faults
    parks = 0
    W, G = KIND_WAIT, KIND_SIGNAL

    def advance(ready: "list[int]") -> None:
        nonlocal parks
        while ready:
            r = ready.pop()
            j = cursor[r]
            end_j = seg_off[r + 1]
            t = time[r]
            while j < end_j:
                k = kinds[j]
                if k == W:
                    sig = by_slot_signal.get(slots[j])
                    if sig is None:
                        parks += 1
                        waiters.setdefault(slots[j], []).append(r)
                        break
                    end = max(t, sig)
                else:
                    c = cyc[j]
                    if inj is not None:
                        c = inj.segment_cycles(
                            cta_ids[r],
                            j - seg_off[r],
                            CODE_TO_KIND[k],
                            c,
                            sm_slot[r],
                        )
                    end = t + c
                    if k == G:
                        slot = slots[j]
                        if slot in by_slot_signal or slot in dropped_slots:
                            raise SimulationError(
                                "slot %d signalled twice" % slot
                            )
                        if inj is not None and inj.signal_dropped(cta_ids[r]):
                            dropped_slots.add(slot)
                        else:
                            if inj is not None:
                                end += inj.signal_delay(cta_ids[r])
                            by_slot_signal[slot] = end
                            for wr in waiters.pop(slot, []):
                                ready.append(wr)
                seg_start[j] = t
                seg_end[j] = end
                t = end
                j += 1
            cursor[r] = j
            time[r] = t
            if j >= end_j:
                finished[r] = True
                heapq.heappush(free_slots, (t, sm_slot[r]))

    def deadlock() -> DeadlockError:
        views = []
        for r in range(n):
            j = cursor[r]
            blocked_on = (
                slots[j] if (j < seg_off[r + 1] and kinds[j] == W) else None
            )
            views.append(
                DeadlockCtaView(
                    cta=cta_ids[r],
                    signals_slot=(
                        int(arrays.signal_slot[r])
                        if arrays.signal_slot[r] >= 0
                        else None
                    ),
                    launched=sm_slot[r] >= 0,
                    finished=finished[r],
                    blocked_on=blocked_on,
                )
            )
        return diagnose_deadlock(views, by_slot_signal, dropped_slots)

    nxt = 0
    while nxt < n:
        if not free_slots:
            raise deadlock()
        t, slot = heapq.heappop(free_slots)
        r = nxt
        nxt += 1
        sm_slot[r] = slot
        start[r] = time[r] = t
        advance([r])

    if not all(finished):
        raise deadlock()

    trace = ArrayTrace(
        num_sm_slots,
        arrays,
        np.array(seg_start, dtype=np.float64),
        np.array(seg_end, dtype=np.float64),
        sm_slot=np.array(sm_slot, dtype=np.int64),
        start=np.array(start, dtype=np.float64),
        finish=np.array(time, dtype=np.float64),
    )
    return trace, parks, len(by_slot_signal)
