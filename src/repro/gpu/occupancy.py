"""Shared-memory occupancy estimation.

How many CTAs of a given blocking can be co-resident on one SM is bounded by
the shared-memory footprint of the software-pipelined fragment buffers.  The
paper's kernels use maximal tiles, so occupancy is one CTA per SM in its
evaluation; this module exists so smaller-tile ensemble variants (and
user-supplied blockings) get a defensible residency estimate, and so the
Stream-K residency requirement (``g`` CTAs must all be co-resident for the
flag protocol to make progress) can be checked up front.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig
from ..gemm.tiling import Blocking
from .spec import GpuSpec

__all__ = ["smem_bytes_per_cta", "estimate_occupancy", "max_streamk_grid"]

# A100 shared-memory capacity per SM (164 KB usable).
DEFAULT_SMEM_PER_SM = 164 * 1024

# Hardware cap on resident CTAs per SM regardless of resources.
MAX_CTAS_PER_SM = 32

# Pipeline stages of fragment double/triple buffering.
_STAGES = 2


def smem_bytes_per_cta(blocking: Blocking, dtype: DtypeConfig) -> int:
    """Shared-memory footprint of one CTA's staged fragments."""
    frag_a = blocking.blk_m * blocking.blk_k * dtype.input_bytes
    frag_b = blocking.blk_k * blocking.blk_n * dtype.input_bytes
    return _STAGES * (frag_a + frag_b)


def estimate_occupancy(
    blocking: Blocking,
    dtype: DtypeConfig,
    smem_per_sm: int = DEFAULT_SMEM_PER_SM,
) -> int:
    """CTAs of this blocking resident per SM (at least 1 must fit)."""
    need = smem_bytes_per_cta(blocking, dtype)
    if need > smem_per_sm:
        raise ConfigurationError(
            "blocking %s needs %d B of shared memory > %d B per SM"
            % (blocking, need, smem_per_sm)
        )
    return max(1, min(MAX_CTAS_PER_SM, smem_per_sm // need))


def max_streamk_grid(
    gpu: GpuSpec,
    blocking: Blocking,
    dtype: DtypeConfig,
    smem_per_sm: int = DEFAULT_SMEM_PER_SM,
) -> int:
    """Largest Stream-K grid whose CTAs can all be co-resident.

    Stream-K owners spin-wait on flags from *later-launched* CTAs, so the
    whole grid must fit on the processor at once; this is the hard upper
    bound the grid-size model must respect.
    """
    return gpu.num_sms * min(
        gpu.occupancy, estimate_occupancy(blocking, dtype, smem_per_sm)
    )
