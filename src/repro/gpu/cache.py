"""Cache simulators for DRAM-traffic measurement.

Two granularities:

* :class:`SetAssociativeCache` — a classic line-granular set-associative
  LRU cache, the general substrate.
* :class:`FragmentCache` — a fully-associative LRU over variable-sized
  *fragments* (the ``BLK_M x BLK_K`` / ``BLK_K x BLK_N`` staging blocks GEMM
  kernels actually stream), which is the granularity the L2 reuse argument
  of Section 5.2 is about.  Backed by an ordered dict; capacity is enforced
  in bytes.

Both report hit/miss byte counts; the memory models convert misses into
DRAM traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["SetAssociativeCache", "FragmentCache", "CacheStats"]


@dataclass
class CacheStats:
    """Aggregate access statistics."""

    accesses: int = 0
    hits: int = 0
    hit_bytes: int = 0
    miss_bytes: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def total_bytes(self) -> int:
        return self.hit_bytes + self.miss_bytes


class SetAssociativeCache:
    """Line-granular set-associative LRU cache over a flat address space."""

    def __init__(self, capacity_bytes: int, line_bytes: int, ways: int = 16):
        if capacity_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ConfigurationError("cache geometry must be positive")
        lines = capacity_bytes // line_bytes
        if lines < ways:
            raise ConfigurationError(
                "capacity %d holds %d lines < %d ways"
                % (capacity_bytes, lines, ways)
            )
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = max(1, lines // ways)
        self._sets: "list[OrderedDict[int, None]]" = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    def access(self, addr: int, size: int) -> int:
        """Touch [addr, addr + size); return bytes missed (DRAM-fetched)."""
        if size <= 0:
            return 0
        first = addr // self.line_bytes
        last = (addr + size - 1) // self.line_bytes
        missed = 0
        for line in range(first, last + 1):
            s = self._sets[line % self.num_sets]
            self.stats.accesses += 1
            if line in s:
                s.move_to_end(line)
                self.stats.hits += 1
                self.stats.hit_bytes += self.line_bytes
            else:
                if len(s) >= self.ways:
                    s.popitem(last=False)
                s[line] = None
                missed += self.line_bytes
                self.stats.miss_bytes += self.line_bytes
        return missed

    def flush(self) -> None:
        for s in self._sets:
            s.clear()


class FragmentCache:
    """Fully-associative LRU over variable-sized keyed blocks."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._blocks: "OrderedDict[object, int]" = OrderedDict()
        self._occupied = 0
        self.stats = CacheStats()

    def access(self, key: object, size: int) -> int:
        """Touch one fragment; return bytes missed.

        A fragment larger than the whole cache always misses and is not
        retained (it would evict everything for no reuse).
        """
        if size <= 0:
            return 0
        self.stats.accesses += 1
        if key in self._blocks:
            self._blocks.move_to_end(key)
            self.stats.hits += 1
            self.stats.hit_bytes += size
            return 0
        self.stats.miss_bytes += size
        if size > self.capacity_bytes:
            return size
        while self._occupied + size > self.capacity_bytes:
            _, evicted = self._blocks.popitem(last=False)
            self._occupied -= evicted
        self._blocks[key] = size
        self._occupied += size
        return size

    @property
    def occupied_bytes(self) -> int:
        return self._occupied

    def flush(self) -> None:
        self._blocks.clear()
        self._occupied = 0
