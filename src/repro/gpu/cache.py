"""Cache simulators for DRAM-traffic measurement.

Two granularities:

* :class:`SetAssociativeCache` — a classic line-granular set-associative
  LRU cache, the general substrate.
* :class:`FragmentCache` — a fully-associative LRU over variable-sized
  *fragments* (the ``BLK_M x BLK_K`` / ``BLK_K x BLK_N`` staging blocks GEMM
  kernels actually stream), which is the granularity the L2 reuse argument
  of Section 5.2 is about.  Backed by an ordered dict; capacity is enforced
  in bytes.

Both report hit/miss byte counts; the memory models convert misses into
DRAM traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..obs.counters import inc_counter

__all__ = ["SetAssociativeCache", "FragmentCache", "CacheStats"]


@dataclass
class CacheStats:
    """Aggregate access statistics."""

    accesses: int = 0
    hits: int = 0
    hit_bytes: int = 0
    miss_bytes: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def total_bytes(self) -> int:
        return self.hit_bytes + self.miss_bytes

    def publish(self, prefix: str) -> None:
        """Add this snapshot to the global counters registry.

        Counter names follow the ``<prefix>.hit|miss|hit_bytes|miss_bytes``
        convention of :mod:`repro.obs.counters`, so
        ``obs.hit_rate(prefix)`` yields the simulated cache hit rate.
        Callers publish once per replay (not per access), keeping the
        cache's inner loop free of registry traffic.
        """
        inc_counter(prefix + ".hit", self.hits)
        inc_counter(prefix + ".miss", self.misses)
        inc_counter(prefix + ".hit_bytes", self.hit_bytes)
        inc_counter(prefix + ".miss_bytes", self.miss_bytes)


class SetAssociativeCache:
    """Line-granular set-associative LRU cache over a flat address space.

    The tag store is a pair of dense ``(num_sets, ways)`` arrays — line tags
    (−1 = invalid) and monotonically increasing recency stamps — so a whole
    run of consecutive lines is resolved with vectorized numpy set lookups
    instead of per-line dict operations.  Within one :meth:`access` the
    touched lines are consecutive, so any window of ≤ ``num_sets`` lines maps
    to pairwise-distinct sets and can be processed as a single batch without
    read-after-write hazards; the per-line sequential LRU semantics of the
    classic OrderedDict implementation are preserved exactly (unique stamps
    in line order reproduce its recency ordering, and invalid ways carry
    stamp −1 so they are always victimized first).
    """

    def __init__(self, capacity_bytes: int, line_bytes: int, ways: int = 16):
        if capacity_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ConfigurationError("cache geometry must be positive")
        lines = capacity_bytes // line_bytes
        if lines < ways:
            raise ConfigurationError(
                "capacity %d holds %d lines < %d ways"
                % (capacity_bytes, lines, ways)
            )
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = max(1, lines // ways)
        self._tags = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self._stamps = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    def access(self, addr: int, size: int) -> int:
        """Touch [addr, addr + size); return bytes missed (DRAM-fetched)."""
        if size <= 0:
            return 0
        first = addr // self.line_bytes
        last = (addr + size - 1) // self.line_bytes
        n = last - first + 1
        missed_lines = 0
        # Consecutive lines hit consecutive sets (mod num_sets), so any
        # window of <= num_sets lines touches pairwise-distinct sets and is
        # safe to resolve as one vectorized batch.
        for lo in range(first, last + 1, self.num_sets):
            batch = min(self.num_sets, last + 1 - lo)
            missed_lines += self._access_batch(lo, batch)
        self.stats.accesses += n
        hits = n - missed_lines
        self.stats.hits += hits
        self.stats.hit_bytes += hits * self.line_bytes
        self.stats.miss_bytes += missed_lines * self.line_bytes
        return missed_lines * self.line_bytes

    def _access_batch(self, first_line: int, n: int) -> int:
        """Touch ``n`` consecutive lines mapping to distinct sets; return the
        number of missed lines."""
        lines = np.arange(first_line, first_line + n, dtype=np.int64)
        sets = lines % self.num_sets
        tag_rows = self._tags[sets]  # (n, ways) gather
        way_hit = tag_rows == lines[:, None]
        hit = way_hit.any(axis=1)
        stamps = np.arange(self._clock, self._clock + n, dtype=np.int64)
        self._clock += n
        # Invalid ways carry stamp -1, so argmin picks (in order): the first
        # free way if any, else the least recently used one -- exactly the
        # OrderedDict fill-then-evict policy.
        victim = np.argmin(self._stamps[sets], axis=1)
        way = np.where(hit, np.argmax(way_hit, axis=1), victim)
        self._tags[sets, way] = lines
        self._stamps[sets, way] = stamps
        return int(n - np.count_nonzero(hit))

    def flush(self) -> None:
        self._tags.fill(-1)
        self._stamps.fill(-1)
        self._clock = 0


class FragmentCache:
    """Fully-associative LRU over variable-sized keyed blocks."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._blocks: "OrderedDict[object, int]" = OrderedDict()
        self._occupied = 0
        self.stats = CacheStats()

    def access(self, key: object, size: int) -> int:
        """Touch one fragment; return bytes missed.

        A fragment larger than the whole cache always misses and is not
        retained (it would evict everything for no reuse).
        """
        if size <= 0:
            return 0
        self.stats.accesses += 1
        if key in self._blocks:
            self._blocks.move_to_end(key)
            self.stats.hits += 1
            self.stats.hit_bytes += size
            return 0
        self.stats.miss_bytes += size
        if size > self.capacity_bytes:
            return size
        while self._occupied + size > self.capacity_bytes:
            _, evicted = self._blocks.popitem(last=False)
            self._occupied -= evicted
        self._blocks[key] = size
        self._occupied += size
        return size

    @property
    def occupied_bytes(self) -> int:
        return self._occupied

    def flush(self) -> None:
        self._blocks.clear()
        self._occupied = 0
