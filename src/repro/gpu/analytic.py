"""Closed-form makespans for the schedule families.

The discrete-event executor is the ground truth, but sweeping 32,824
problems through it is not how you build a corpus harness (the guides'
first rule: vectorize the hot path).  This module provides:

* **exact** closed forms where the schedule structure admits them —
  data-parallel waves (equal-cost CTAs under in-order earliest-slot
  dispatch) and any *single-wave* schedule (``g <= slots``, e.g. Stream-K
  and the hybrids), where all CTAs start at zero and every signal time is
  independent of every wait;
* **approximate** closed forms for multi-wave fixed-split grids, documented
  and bounded by tests against the executor.

All functions work on plain scalar arithmetic so
:mod:`repro.harness.vectorized` can re-express them over numpy arrays
unchanged.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..gemm.tiling import ceil_div
from ..schedules.base import Schedule
from .costmodel import KernelCostModel

__all__ = [
    "data_parallel_makespan",
    "persistent_dp_makespan",
    "persistent_dp_makespan_batch",
    "fixed_split_makespan",
    "fixed_split_makespan_batch",
    "one_wave_makespan",
    "two_tile_hybrid_makespan",
    "two_tile_hybrid_makespan_batch",
    "dp_one_tile_hybrid_makespan",
    "dp_one_tile_hybrid_makespan_batch",
    "basic_streamk_makespan",
    "basic_streamk_makespan_batch",
]

#: Row-chunk size for the batched Stream-K walk: bounds the transient
#: (rows, g_max) matrices (plus the log2(g_max)-level sparse max table) to a
#: few tens of MB regardless of corpus size.
_BATCH_ROW_CHUNK = 4096


def data_parallel_makespan(
    t: int, p: int, ipt: int, cost: KernelCostModel
) -> float:
    """Exact makespan of Algorithm 2: ``ceil(t/p)`` waves of equal CTAs.

    Every CTA costs ``prologue + c*ipt + store``; with equal costs,
    earliest-slot in-order dispatch degenerates to full waves, which is the
    quantization staircase of Figure 1.
    """
    waves = ceil_div(t, p)
    cta = cost.prologue_cycles + cost.cycles_per_iter * ipt + cost.store_tile_cycles
    return waves * cta


def persistent_dp_makespan(
    t: int, p: int, ipt: int, cost: KernelCostModel
) -> float:
    """Exact makespan of the persistent data-parallel form.

    ``min(p, t)`` CTAs each loop over ``ceil(t/g)`` tiles at most; the
    prologue is paid once per CTA rather than once per wave.
    """
    g = min(p, t)
    tiles_max = ceil_div(t, g)
    per_tile = cost.cycles_per_iter * ipt + cost.store_tile_cycles
    return cost.prologue_cycles + tiles_max * per_tile


def fixed_split_makespan(
    t: int, s: int, p: int, ipt: int, cost: KernelCostModel
) -> float:
    """Approximate makespan of Algorithm 4 with splitting factor ``s``.

    Aggregate-work list-scheduling model.  Each tile occupies its ``s``
    CTAs' slots for ``s - 1`` contributor durations ``D_c = prologue +
    c*share + store_partials`` plus one owner duration ``D_o``: when
    ``s <= p`` a tile's owner launches in the same wave as its peers and
    spin-waits until their signals (so its slot is busy ``D_c`` before the
    serial fixups even start); when ``s > p`` the peers finished waves ago
    and only the owner's own work remains.  List scheduling of near-equal
    tasks gives ``makespan ~= (total - D_last)/p + D_last``.  Wave-boundary
    effects make this an approximation (bounded against the executor in
    the test suite); exact at ``s = 1``.
    """
    s = min(s, ipt)
    share = ceil_div(ipt, s)
    c = cost.cycles_per_iter
    if s == 1:
        return data_parallel_makespan(t, p, ipt, cost)
    d_c = cost.prologue_cycles + c * share + cost.store_partials_cycles
    fixup_tail = (s - 1) * cost.fixup_cycles_per_peer + cost.store_tile_cycles
    if s <= p:
        d_o = d_c + fixup_tail
    else:
        d_o = cost.prologue_cycles + c * share + fixup_tail
    if t * s <= p:
        # Single wave: the owner's spin-wait path is the exact makespan.
        return d_o
    total = t * ((s - 1) * d_c + d_o)
    # List-scheduling estimate: per-slot share of the aggregate plus half
    # the Graham tail slack for the long-pole owners.
    return max(d_o, total / p + 0.5 * (p - 1) / p * d_o)


def one_wave_makespan(schedule: Schedule, cost: KernelCostModel, slots: int) -> float:
    """Exact makespan of any schedule whose grid fits in one wave.

    With ``g <= slots`` every CTA starts at cycle zero.  In every schedule
    this library builds, a CTA's one contributor segment is preceded only by
    wait-free owner segments (full data-parallel tiles), so its signal time
    never depends on any wait: signals resolve in one pass and finishes in a
    second — no event queue required.  This is the validation reference for
    the Stream-K/hybrid closed forms below and is itself validated against
    the executor.
    """
    if schedule.g > slots:
        raise ConfigurationError(
            "one_wave_makespan needs g=%d <= slots=%d" % (schedule.g, slots)
        )
    c = cost.cycles_per_iter
    pro = cost.prologue_cycles
    sp = cost.store_partials_cycles
    fx = cost.fixup_cycles_per_peer
    st = cost.store_tile_cycles

    signal: "dict[int, float]" = {}
    for w in schedule.work_items:
        contrib = next(
            (i for i, s in enumerate(w.segments) if not s.is_owner), None
        )
        if contrib is None:
            continue
        now = pro
        for seg in w.segments[:contrib]:
            if seg.peers:
                # A waiting segment ahead of a contributor would make the
                # signal wait-dependent; no schedule we build does this.
                raise ConfigurationError(
                    "CTA %d has a fixup-owning segment before its "
                    "contributor segment; signal time would depend on waits"
                    % w.cta
                )
            now += c * seg.num_iters + st
        signal[w.cta] = now + c * w.segments[contrib].num_iters + sp

    makespan = 0.0
    for w in schedule.work_items:
        now = pro
        for seg in w.segments:
            now += c * seg.num_iters
            if seg.is_owner:
                for peer in seg.peers:
                    now = max(now, signal[peer]) + fx
                now += st
            else:
                now += sp
        makespan = max(makespan, now)
    return makespan


def basic_streamk_makespan(
    t: int, g: int, ipt: int, cost: KernelCostModel
) -> float:
    """Exact one-wave makespan of basic Stream-K, by arithmetic walk.

    Replays the balanced-partition geometry of
    :func:`~repro.schedules.stream_k.partition_region` without building any
    schedule objects: per CTA, the timeline is (prologue, head contribution
    + partial store, a run of owned tiles, and for each tile finished by
    later CTAs a spin-wait on each peer's signal followed by a serial
    fixup).  All CTAs start at cycle zero, which is exact whenever
    ``g <= slots`` — the regime Stream-K requires anyway (co-residency).
    O(g + t); agreement with the event executor is asserted in the tests.
    """
    total = t * ipt
    g = min(g, total)
    base, rem = divmod(total, g)
    c = cost.cycles_per_iter
    pro = cost.prologue_cycles
    sp = cost.store_partials_cycles
    fx = cost.fixup_cycles_per_peer
    st = cost.store_tile_cycles

    def begin(x: int) -> int:
        return x * base + min(x, rem)

    # Signal time of every CTA that enters its range mid-tile: prologue,
    # the head compute (clamped to its share), then the partial store.
    sigs: "dict[int, float]" = {}
    for x in range(1, g):
        b = begin(x)
        head = (-b) % ipt
        if head:
            share = base + (1 if x < rem else 0)
            sigs[x] = pro + c * min(head, share) + sp

    makespan = 0.0
    for x in range(g):
        b = begin(x)
        e = b + base + (1 if x < rem else 0)
        now = pro
        pos = b
        head = (-b) % ipt
        if head:
            hh = min(head, e - b)
            now += c * hh + sp
            pos += hh
        while pos < e:
            tile_end = pos + ipt
            seg_end = min(e, tile_end)
            now += c * (seg_end - pos)
            if seg_end < tile_end:
                # This CTA owns the tile but later CTAs finish it: serial
                # reduction over every peer whose range starts inside it.
                y = x + 1
                while y < g and begin(y) < tile_end:
                    now = max(now, sigs[y]) + fx
                    y += 1
            now += st
            pos = seg_end
        makespan = max(makespan, now)
    return makespan


def basic_streamk_makespan_batch(
    t: np.ndarray,
    g: np.ndarray,
    ipt: np.ndarray,
    cost: KernelCostModel,
    row_chunk: int = _BATCH_ROW_CHUNK,
) -> np.ndarray:
    """Vectorized :func:`basic_streamk_makespan` over N independent problems.

    Replays the same balanced-partition walk, but broadcast over an
    ``(rows, g_max)`` CTA grid per fixed-size row chunk:

    * head contribution + partial-store signal per CTA;
    * the run of fully-owned tiles;
    * for a CTA whose range ends mid-tile, the serial fixup chain
      ``now = max(now, sig(y)) + fx`` over every peer ``y`` whose range
      starts inside that tile.  The chain unrolls to
      ``max(own_end + J*fx, max_y (sig(y) - y*fx) + (Y+1)*fx)`` — a range
      maximum over the contiguous peer window ``[x+1, Y]`` answered with a
      sparse (doubling) max table, O(g log g) instead of O(g^2).

    Element-for-element agreement with the scalar walk (and therefore with
    the discrete-event executor) is asserted in the test suite; the only
    difference is float summation order over a CTA's owned-tile run, which
    is bounded well below 1e-12 relative.
    """
    t = np.asarray(t, dtype=np.int64)
    g = np.asarray(g, dtype=np.int64)
    ipt = np.asarray(ipt, dtype=np.int64)
    if not (t.shape == g.shape == ipt.shape) or t.ndim != 1:
        raise ConfigurationError("t, g, ipt must be equal-length 1-D arrays")
    if t.size == 0:
        return np.empty(0, dtype=np.float64)
    if np.any(t <= 0) or np.any(g <= 0) or np.any(ipt <= 0):
        raise ConfigurationError("t, g, ipt must be positive")

    out = np.empty(t.shape[0], dtype=np.float64)
    for lo in range(0, t.shape[0], max(1, row_chunk)):
        sl = slice(lo, min(lo + max(1, row_chunk), t.shape[0]))
        out[sl] = _streamk_walk_chunk(t[sl], g[sl], ipt[sl], cost)
    return out


def _streamk_walk_chunk(
    t: np.ndarray, g: np.ndarray, ipt: np.ndarray, cost: KernelCostModel
) -> np.ndarray:
    """One row chunk of :func:`basic_streamk_makespan_batch`."""
    c = cost.cycles_per_iter
    pro = cost.prologue_cycles
    sp = cost.store_partials_cycles
    fx = cost.fixup_cycles_per_peer
    st = cost.store_tile_cycles

    total = t * ipt
    # All geometry lives in iteration space bounded by `total`; int32
    # halves the bandwidth and roughly doubles integer div/mod throughput
    # on the hot (rows, g) matrices whenever the corpus permits it.
    geo = np.int32 if int(total.max()) < np.iinfo(np.int32).max else np.int64
    total = total.astype(geo)
    ipt = ipt.astype(geo)
    g_eff = np.minimum(g.astype(geo), total)
    base = (total // g_eff)[:, None]
    rem = (total % g_eff)[:, None]
    gmax = int(g_eff.max())
    x = np.arange(gmax + 1, dtype=geo)[None, :]
    begins = x * base + np.minimum(x, rem)  # (n, gmax+1) range boundaries
    b = begins[:, :-1]
    e = begins[:, 1:]
    ipt_c = ipt[:, None]
    valid = x[:, :-1] < g_eff[:, None]

    share = e - b
    head = (-b) % ipt_c
    hh = np.minimum(head, share)
    # Signal time of every mid-tile entrant (head > 0): prologue, clamped
    # head compute, partial store.  Only such CTAs are ever waited on.
    sig = pro + c * hh + sp

    rem_iters = share - hh  # tile-aligned remainder of the range
    n_full = rem_iters // ipt_c
    last_part = rem_iters % ipt_c
    now = np.where(head > 0, pro + (c * hh + sp), float(pro))
    now = now + n_full * (c * ipt_c + st)
    own_end = now + c * last_part

    # Owner-with-peers path: the CTA's range ends inside a tile it started.
    use_fix = (last_part > 0) & valid
    tile_end = b + hh + (n_full + 1) * ipt_c  # first iter past the tile
    # Index of the CTA holding iteration q = tile_end - 1 (the tile's last):
    # ranges [begin(x), begin(x+1)) tile the iteration space, so this is the
    # last peer whose range starts inside the tile.
    q = np.where(use_fix, tile_end - 1, 0)
    cut = rem * (base + 1)  # iterations owned by the first `rem` CTAs
    y_last = np.where(q < cut, q // (base + 1), rem + (q - cut) // base)
    peers = np.where(use_fix, y_last - x[:, :-1], 0)  # J >= 1 where used

    # Range max of sig(y) - y*fx over the contiguous window [x+1, y_last].
    val = np.where(valid & (head > 0), sig - fx * x[:, :-1], -np.inf)
    win_max = _range_max(val, use_fix, y_last)
    fix_end = (
        np.maximum(own_end + peers * fx, win_max + (y_last + 1) * fx) + st
    )

    finish = np.where(use_fix, fix_end, own_end)
    finish = np.where(valid, finish, -np.inf)
    return finish.max(axis=1)


def _range_max(
    val: np.ndarray, use: np.ndarray, right: np.ndarray
) -> np.ndarray:
    """Per-element contiguous range max: for each (row, x) with ``use``
    set, ``max(val[row, x+1 : right[row, x] + 1])`` via a sparse table."""
    n, gmax = val.shape
    levels = max(1, gmax.bit_length())
    table = np.empty((levels, n, gmax), dtype=np.float64)
    table[0] = val
    for k in range(1, levels):
        off = 1 << (k - 1)
        prev = table[k - 1]
        table[k][:, : gmax - off] = np.maximum(
            prev[:, : gmax - off], prev[:, off:]
        )
        table[k][:, gmax - off:] = prev[:, gmax - off:]

    log2 = np.zeros(gmax + 1, dtype=np.int64)
    for i in range(2, gmax + 1):
        log2[i] = log2[i >> 1] + 1

    x = np.arange(gmax, dtype=np.int64)[None, :]
    left = np.minimum(x + 1, gmax - 1)
    r = np.clip(np.where(use, right, left), left, gmax - 1)
    length = r - left + 1
    k = log2[length]
    rows = np.arange(n, dtype=np.int64)[:, None]
    hi_start = r - (1 << k) + 1
    out = np.maximum(table[k, rows, left], table[k, rows, hi_start])
    return np.where(use, out, -np.inf)


def two_tile_hybrid_makespan(
    t: int, p: int, ipt: int, cost: KernelCostModel
) -> float:
    """Estimate of the two-tile-Stream-K + data-parallel hybrid makespan.

    Mirrors :func:`~repro.schedules.hybrid.two_tile_schedule`'s regimes:
    perfect quantization -> persistent DP (exact); fewer tiles than SMs ->
    basic Stream-K at ``g = p`` (Appendix-shaped estimate); otherwise an
    *exact* per-CTA walk of the Stream-K residual region — every CTA holds
    between one and two tiles' worth, so its timeline is head contribution,
    fully-owned tiles, at most one single-peer fixup, then ``w - 1``
    data-parallel tiles — maximized over the one-wave grid.  Agreement with
    the event executor is asserted in the test suite.
    """
    if t % p == 0:
        return persistent_dp_makespan(t, p, ipt, cost)
    w = t // p
    if w == 0:
        return basic_streamk_makespan(t, p, ipt, cost)
    sk_tiles = t - (w - 1) * p
    region = sk_tiles * ipt
    base, rem = divmod(region, p)
    c = cost.cycles_per_iter
    pro = cost.prologue_cycles
    sp = cost.store_partials_cycles
    fx = cost.fixup_cycles_per_peer
    st = cost.store_tile_cycles
    dp_tail = (w - 1) * (c * ipt + st)

    def begin(x: int) -> int:
        return x * base + min(x, rem)

    def head(x: int) -> int:
        return (-begin(x)) % ipt

    makespan = 0.0
    for x in range(p):
        b = begin(x)
        e = begin(x + 1) if x + 1 < p else region
        h = head(x)
        last_part = e % ipt
        n_owned = ceil_div(e, ipt) - ceil_div(b, ipt)
        fully_owned = n_owned - (1 if last_part else 0)
        now = pro
        if h:
            now += c * h + sp
        now += fully_owned * (c * ipt + st)
        if last_part:
            now += c * (last_part if n_owned else 0)
            peer_signal = pro + c * head(x + 1) + sp
            now = max(now, peer_signal) + fx + st
        makespan = max(makespan, now + dp_tail)
    return makespan


def dp_one_tile_hybrid_makespan(
    t: int, p: int, ipt: int, cost: KernelCostModel
) -> float:
    """Estimate of the data-parallel + one-tile-Stream-K hybrid makespan.

    Mirrors :func:`~repro.schedules.hybrid.dp_one_tile_schedule`'s
    structure exactly: perfect quantization -> persistent DP (exact);
    otherwise every CTA runs the same ``w = floor(t/p)`` full DP tiles
    before the residual ``r = t - w*p`` tiles are Stream-K-balanced over
    ``g = min(p, r*ipt)`` CTAs.  Because the DP prefix is identical for
    every CTA, the Stream-K region is the basic Stream-K walk uniformly
    time-shifted — ``max`` commutes with the shift, so the makespan is
    the shift plus :func:`basic_streamk_makespan` of the residual.
    Agreement with the event executor is asserted in the test suite.
    """
    w, r = divmod(t, p)
    if r == 0:
        return persistent_dp_makespan(t, p, ipt, cost)
    c = cost.cycles_per_iter
    st = cost.store_tile_cycles
    dp_prefix = w * (c * ipt + st)
    g = min(p, r * ipt)
    return dp_prefix + basic_streamk_makespan(r, g, ipt, cost)


def _validated_batch(t, ipt) -> "tuple[np.ndarray, np.ndarray]":
    t = np.asarray(t, dtype=np.int64)
    ipt = np.asarray(ipt, dtype=np.int64)
    if t.shape != ipt.shape or t.ndim != 1:
        raise ConfigurationError("t and ipt must be equal-length 1-D arrays")
    if t.size and (np.any(t <= 0) or np.any(ipt <= 0)):
        raise ConfigurationError("t and ipt must be positive")
    return t, ipt


def _ceil_div_arr(a: np.ndarray, b) -> np.ndarray:
    return -(-a // b)


def persistent_dp_makespan_batch(
    t: np.ndarray, p: int, ipt: np.ndarray, cost: KernelCostModel
) -> np.ndarray:
    """Vectorized :func:`persistent_dp_makespan` over N problems.

    Same arithmetic broadcast elementwise, so it agrees with the scalar
    form bitwise (asserted in the test suite).
    """
    t, ipt = _validated_batch(t, ipt)
    if p <= 0:
        raise ConfigurationError("p must be positive, got %d" % p)
    g = np.minimum(p, t)
    tiles_max = _ceil_div_arr(t, g)
    per_tile = cost.cycles_per_iter * ipt + cost.store_tile_cycles
    return cost.prologue_cycles + tiles_max * per_tile


def fixed_split_makespan_batch(
    t: np.ndarray, s: int, p: int, ipt: np.ndarray, cost: KernelCostModel
) -> np.ndarray:
    """Vectorized :func:`fixed_split_makespan` over N problems.

    Elementwise the same list-scheduling estimate (and the same exact
    regimes at ``s_eff == 1`` and single-wave grids), op for op, so the
    scalar and batch forms agree bitwise.
    """
    t, ipt = _validated_batch(t, ipt)
    if s <= 0 or p <= 0:
        raise ConfigurationError("s and p must be positive")
    c = cost.cycles_per_iter
    s_eff = np.minimum(s, ipt)
    share = _ceil_div_arr(ipt, s_eff)
    d_c = cost.prologue_cycles + c * share + cost.store_partials_cycles
    fixup_tail = (
        (s_eff - 1) * cost.fixup_cycles_per_peer + cost.store_tile_cycles
    )
    d_o = np.where(
        s_eff <= p,
        d_c + fixup_tail,
        cost.prologue_cycles + c * share + fixup_tail,
    )
    total = t * ((s_eff - 1) * d_c + d_o)
    multiwave = np.maximum(d_o, total / p + 0.5 * (p - 1) / p * d_o)
    dp_cta = cost.prologue_cycles + c * ipt + cost.store_tile_cycles
    return np.where(
        s_eff == 1,
        _ceil_div_arr(t, p) * dp_cta,
        np.where(t * s_eff <= p, d_o, multiwave),
    )


def dp_one_tile_hybrid_makespan_batch(
    t: np.ndarray, p: int, ipt: np.ndarray, cost: KernelCostModel
) -> np.ndarray:
    """Vectorized :func:`dp_one_tile_hybrid_makespan` over N problems."""
    t, ipt = _validated_batch(t, ipt)
    if p <= 0:
        raise ConfigurationError("p must be positive, got %d" % p)
    if t.size == 0:
        return np.empty(0, dtype=np.float64)
    out = np.empty(t.shape[0], dtype=np.float64)
    w = t // p
    r = t - w * p
    mask_dp = r == 0
    if mask_dp.any():
        out[mask_dp] = persistent_dp_makespan_batch(
            t[mask_dp], p, ipt[mask_dp], cost
        )
    mask_sk = ~mask_dp
    if mask_sk.any():
        c = cost.cycles_per_iter
        st = cost.store_tile_cycles
        r_sk, ipt_sk = r[mask_sk], ipt[mask_sk]
        dp_prefix = w[mask_sk] * (c * ipt_sk + st)
        g = np.minimum(p, r_sk * ipt_sk)
        out[mask_sk] = dp_prefix + basic_streamk_makespan_batch(
            r_sk, g, ipt_sk, cost
        )
    return out


def two_tile_hybrid_makespan_batch(
    t: np.ndarray,
    p: int,
    ipt: np.ndarray,
    cost: KernelCostModel,
    row_chunk: int = _BATCH_ROW_CHUNK,
) -> np.ndarray:
    """Vectorized :func:`two_tile_hybrid_makespan` over N problems.

    Splits the rows into the scalar form's three regimes (perfect
    quantization, fewer tiles than SMs, main two-tile walk) and solves
    each with the matching batched machinery; the main-regime walk
    broadcasts the scalar per-CTA timeline over ``(rows, p)`` chunks.
    """
    t, ipt = _validated_batch(t, ipt)
    if p <= 0:
        raise ConfigurationError("p must be positive, got %d" % p)
    if t.size == 0:
        return np.empty(0, dtype=np.float64)
    out = np.empty(t.shape[0], dtype=np.float64)
    mask_dp = t % p == 0
    if mask_dp.any():
        out[mask_dp] = persistent_dp_makespan_batch(
            t[mask_dp], p, ipt[mask_dp], cost
        )
    mask_sk = (~mask_dp) & (t < p)
    if mask_sk.any():
        g = np.full(int(mask_sk.sum()), p, dtype=np.int64)
        out[mask_sk] = basic_streamk_makespan_batch(
            t[mask_sk], g, ipt[mask_sk], cost
        )
    mask_walk = (~mask_dp) & (t >= p)
    if mask_walk.any():
        t_w, ipt_w = t[mask_walk], ipt[mask_walk]
        res = np.empty(t_w.shape[0], dtype=np.float64)
        for lo in range(0, t_w.shape[0], max(1, row_chunk)):
            sl = slice(lo, min(lo + max(1, row_chunk), t_w.shape[0]))
            res[sl] = _two_tile_chunk(t_w[sl], ipt_w[sl], p, cost)
        out[mask_walk] = res
    return out


def _two_tile_chunk(
    t: np.ndarray, ipt: np.ndarray, p: int, cost: KernelCostModel
) -> np.ndarray:
    """One row chunk of the two-tile main-regime walk (``w >= 1``,
    ``t % p != 0``): the scalar per-CTA timeline over a (rows, p) grid."""
    c = cost.cycles_per_iter
    pro = cost.prologue_cycles
    sp = cost.store_partials_cycles
    fx = cost.fixup_cycles_per_peer
    st = cost.store_tile_cycles

    geo = (
        np.int32
        if int(t.max()) * int(ipt.max()) < np.iinfo(np.int32).max
        else np.int64
    )
    t2 = t[:, None].astype(geo)
    ipt_c = ipt[:, None].astype(geo)
    w = t2 // geo(p)
    sk_tiles = t2 - (w - 1) * geo(p)
    region = sk_tiles * ipt_c
    base, rem = np.divmod(region, geo(p))
    x = np.arange(p + 1, dtype=geo)[None, :]
    begins = x * base + np.minimum(x, rem)
    heads_all = (-begins) % ipt_c
    head = heads_all[:, :-1]
    head_next = heads_all[:, 1:]
    share = begins[:, 1:] - begins[:, :-1]
    # Every share >= ipt in this regime, so b + head is tile-aligned and
    # the owned-tile count reduces to one integer division.
    last_part = np.where(head_next != 0, ipt_c - head_next, 0)
    fully = (share - head - last_part) // ipt_c

    now = pro + np.where(head > 0, c * head + sp, 0.0)
    now = now + fully * (c * ipt_c + st)
    own_end = now + np.where(last_part > 0, c * last_part, 0.0)
    peer_signal = pro + c * head_next + sp
    now = np.where(
        last_part > 0, np.maximum(own_end, peer_signal) + fx + st, own_end
    )
    finish = now + (w - 1) * (c * ipt_c + st)
    return finish.max(axis=1)
