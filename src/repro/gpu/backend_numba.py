"""Optional Numba executor backend: an ``@njit`` twin of the event loop.

Selected with ``REPRO_EXECUTOR=numba`` (or ``--executor numba``).  The
kernel below is the lean event loop of :mod:`repro.gpu.backends` written
against primitive arrays only, so numba can compile it; when numba is
not installed the backend resolves to ``numpy`` instead (graceful
fallback — no import error, no behavior change).  The *un*-jitted
function is still importable and runnable, which is how its logic is
parity-tested on machines without numba.

Scope: the pristine (fault-free) path only.  Fault injection needs
callback-style injector queries in execution order, which would defeat
compilation; :func:`usable` reports ``False`` for faulted runs and the
dispatcher falls back to the numpy backend, which is bitwise identical
anyway.

Parity notes mirrored from the oracle:

* dispatch picks the earliest-freeing free slot, lowest index on ties —
  exactly the oracle's ``(free_time, slot)`` heap order;
* released waiters are pushed so the *last-arrived* waiter resumes
  first, the oracle's LIFO ``ready`` stack behavior (this is what the
  in-place reversal below is for);
* wait ends are ``max(t, sig)`` and all adds happen in the oracle's
  order, so timings are bitwise identical, not approximately equal.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..schedules.flatten import KIND_SIGNAL, KIND_WAIT

__all__ = ["HAS_NUMBA", "usable", "run"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - the common case in this image
    numba = None
    HAS_NUMBA = False


def _event_loop_kernel(
    seg_off,
    kinds,
    cycles,
    wait_prod_row,
    num_slots,
    seg_start,
    seg_end,
    sm_slot,
    cta_start,
    cta_finish,
    cursor,
    finished,
    published,
    sig_time,
    waiter_head,
    waiter_next,
    ready_stack,
):
    """Run the event loop; returns ``(status, spin_parks, n_signals)``.

    status 0 = completed; 1 = deadlock (the caller diagnoses it from the
    output arrays); 2 = a slot was signalled twice (the second return
    value then carries the offending row instead of the park count).
    """
    n = sm_slot.shape[0]
    parks = 0
    n_pub = 0
    free_time = np.zeros(num_slots, dtype=np.float64)
    is_free = np.ones(num_slots, dtype=np.bool_)
    for nxt in range(n):
        best = -1
        bt = 0.0
        for s in range(num_slots):
            if is_free[s] and (best < 0 or free_time[s] < bt):
                best = s
                bt = free_time[s]
        if best < 0:
            return 1, parks, n_pub
        is_free[best] = False
        sm_slot[nxt] = best
        cta_start[nxt] = bt
        cta_finish[nxt] = bt
        top = 0
        ready_stack[top] = nxt
        top += 1
        while top > 0:
            top -= 1
            r = ready_stack[top]
            j = cursor[r]
            end_j = seg_off[r + 1]
            t = cta_finish[r]
            while j < end_j:
                k = kinds[j]
                if k == 4:  # WAIT
                    pr = wait_prod_row[j]
                    if pr < 0 or not published[pr]:
                        parks += 1
                        if pr >= 0:
                            waiter_next[r] = waiter_head[pr]
                            waiter_head[pr] = r
                        break
                    sig = sig_time[pr]
                    end = t if t > sig else sig
                else:
                    end = t + cycles[j]
                    if k == 3:  # SIGNAL
                        if published[r]:
                            return 2, r, n_pub
                        published[r] = True
                        sig_time[r] = end
                        n_pub += 1
                        # Collect waiters (list head = last arrived),
                        # then reverse so the stack pops last-arrived
                        # first, matching the oracle's LIFO cascade.
                        base = top
                        w = waiter_head[r]
                        while w >= 0:
                            ready_stack[top] = w
                            top += 1
                            w2 = waiter_next[w]
                            waiter_next[w] = -1
                            w = w2
                        waiter_head[r] = -1
                        lo = base
                        hi = top - 1
                        while lo < hi:
                            tmp = ready_stack[lo]
                            ready_stack[lo] = ready_stack[hi]
                            ready_stack[hi] = tmp
                            lo += 1
                            hi -= 1
                seg_start[j] = t
                seg_end[j] = end
                t = end
                j += 1
            cursor[r] = j
            cta_finish[r] = t
            if j >= end_j:
                finished[r] = True
                is_free[sm_slot[r]] = True
                free_time[sm_slot[r]] = t
    for r in range(n):
        if not finished[r]:
            return 1, parks, n_pub
    return 0, parks, n_pub


if HAS_NUMBA:  # pragma: no cover - exercised only where numba is installed
    _kernel = numba.njit(cache=True)(_event_loop_kernel)
else:
    _kernel = _event_loop_kernel


def usable(arrays, faults) -> bool:
    """Whether the jitted kernel can run this workload.

    Requires numba, no fault injector (callback queries don't compile),
    at most one signal per CTA and unique published slots — anything
    else falls back to the numpy backend, which handles the general
    case bitwise-identically.
    """
    if not HAS_NUMBA or faults is not None:
        return False
    return _well_formed_signals(arrays)


def _well_formed_signals(arrays) -> bool:
    if int(np.count_nonzero(arrays.kinds == KIND_SIGNAL)) != int(
        np.count_nonzero(arrays.signal_local >= 0)
    ):
        return False
    pub = arrays.signal_slot[arrays.signal_slot >= 0]
    return np.unique(pub).shape[0] == pub.shape[0]


def run(arrays, num_sm_slots: int):
    """Execute ``arrays`` with the (possibly jitted) kernel.

    Returns ``(ArrayTrace, spin_parks, n_signals)`` like the numpy
    backend's internals; raises the oracle's exact ``DeadlockError`` /
    ``SimulationError`` on unprogressable or malformed runs.
    """
    from .backends import ArrayTrace, DeadlockCtaView, diagnose_deadlock

    n = arrays.num_ctas
    S = arrays.num_segments

    # Map each WAIT to its producer's ROW (slot ids -> rows), so the
    # kernel never touches raw slot ids.
    wait_prod_row = np.full(S, -1, dtype=np.int64)
    sig_rows = np.flatnonzero(arrays.signal_local >= 0)
    wait_idx = np.flatnonzero(arrays.kinds == KIND_WAIT)
    if wait_idx.size and sig_rows.size:
        pub_slots = arrays.signal_slot[sig_rows]
        order = np.argsort(pub_slots)
        sorted_slots = pub_slots[order]
        sorted_rows = sig_rows[order]
        wslots = arrays.slots[wait_idx]
        pos = np.searchsorted(sorted_slots, wslots)
        pos_c = np.minimum(pos, sorted_slots.size - 1)
        found = sorted_slots[pos_c] == wslots
        wait_prod_row[wait_idx[found]] = sorted_rows[pos_c[found]]

    seg_start = np.zeros(S, dtype=np.float64)
    seg_end = np.zeros(S, dtype=np.float64)
    sm_slot = np.full(n, -1, dtype=np.int64)
    cta_start = np.zeros(n, dtype=np.float64)
    cta_finish = np.zeros(n, dtype=np.float64)
    cursor = arrays.seg_off[:-1].astype(np.int64).copy()
    finished = np.zeros(n, dtype=np.bool_)
    published = np.zeros(n, dtype=np.bool_)
    sig_time = np.zeros(n, dtype=np.float64)
    waiter_head = np.full(n, -1, dtype=np.int64)
    waiter_next = np.full(n, -1, dtype=np.int64)
    ready_stack = np.zeros(max(n, 1), dtype=np.int64)

    status, parks, n_pub = _kernel(
        arrays.seg_off,
        arrays.kinds,
        arrays.cycles,
        wait_prod_row,
        num_sm_slots,
        seg_start,
        seg_end,
        sm_slot,
        cta_start,
        cta_finish,
        cursor,
        finished,
        published,
        sig_time,
        waiter_head,
        waiter_next,
        ready_stack,
    )

    if status == 2:
        # `parks` carries the offending row in this status.
        raise SimulationError(
            "slot %d signalled twice" % int(arrays.signal_slot[parks])
        )
    if status == 1:
        by_slot_signal = {
            int(arrays.signal_slot[r]): float(sig_time[r])
            for r in np.flatnonzero(published)
        }
        views = []
        seg_off = arrays.seg_off
        for r in range(n):
            j = int(cursor[r])
            blocked_on = None
            if j < seg_off[r + 1] and arrays.kinds[j] == KIND_WAIT:
                blocked_on = int(arrays.slots[j])
            views.append(
                DeadlockCtaView(
                    cta=int(arrays.ctas[r]),
                    signals_slot=(
                        int(arrays.signal_slot[r])
                        if arrays.signal_slot[r] >= 0
                        else None
                    ),
                    launched=bool(sm_slot[r] >= 0),
                    finished=bool(finished[r]),
                    blocked_on=blocked_on,
                )
            )
        raise diagnose_deadlock(views, by_slot_signal, set())

    trace = ArrayTrace(
        num_sm_slots,
        arrays,
        seg_start,
        seg_end,
        sm_slot=sm_slot,
        start=cta_start,
        finish=cta_finish,
    )
    return trace, int(parks), int(n_pub)
