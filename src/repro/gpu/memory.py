"""DRAM-traffic models.

Kernel wall-clock time in the simulator is
``max(compute makespan, dram_bytes / bandwidth) + launch latency``;
this module supplies ``dram_bytes``.  Two models:

* :class:`AnalyticalMemoryModel` — closed-form wave-reuse estimate, cheap
  enough to sweep the 32,824-problem corpus.  It understands the one
  schedule property that matters for L2 reuse: whether CTAs resident
  together step the k axis *temporally aligned* (data-parallel waves) or
  *skewed* (basic Stream-K) — the Section 5.2 cache argument.
* :class:`CacheSimMemoryModel` — replays the schedule's fragment access
  stream (with per-iteration timestamps interpolated from an execution
  trace) through an LRU fragment cache.  Used for the illustrative figures
  and to validate the analytical model.

Both count, besides input-fragment traffic: the compulsory output-tile
writes, the optional C read (beta != 0), and the partial-sum store+load
round trips — the fixup traffic whose O(g) bound is a headline property of
Stream-K.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..gemm.tiling import ceil_div
from ..obs.profiler import span
from ..schedules.base import Schedule
from .cache import FragmentCache
from .costmodel import KernelCostModel
from .cta import SegmentKind
from .spec import GpuSpec
from .trace import ExecutionTrace

__all__ = [
    "TrafficBreakdown",
    "AnalyticalMemoryModel",
    "CacheSimMemoryModel",
]

# Fraction of L2 the model treats as usable for cross-CTA fragment reuse
# (the rest is claimed by output traffic, metadata, and replacement noise).
_L2_RESIDENCY = 0.8

# Software pipelining keeps two k-steps of fragments in flight.
_PIPELINE_STAGES = 2

# DRAM amplification multiplier for k-skewed schedules, relative to the
# aligned wave.  Skewed CTAs stream the same fragments at the same *rate*
# but offset in time, so L2 capacity still captures a large share of the
# cross-CTA reuse; the paper's own measurement bounds the total cost of
# skew — Stream-K never drops below 0.80x of the temporally-aligned
# data-parallel kernel of the same blocking (Table 2 Min) — which a 2x
# traffic ceiling reproduces.  Section 5.2's hybrids exist to shrink the
# skewed fraction, and this constant is what they save.
_SKEW_AMPLIFICATION = 2.0


@dataclass(frozen=True)
class TrafficBreakdown:
    """DRAM bytes by category."""

    input_a: float
    input_b: float
    output: float
    partials: float

    @property
    def total(self) -> float:
        return self.input_a + self.input_b + self.output + self.partials


def _output_and_partial_bytes(
    schedule: Schedule, cost: KernelCostModel
) -> "tuple[float, float]":
    problem = schedule.grid.problem
    out = problem.m * problem.n * problem.dtype.output_bytes
    if problem.beta != 0.0:
        out *= 2  # C is read once and written once
    # Each partial accumulator is written once and read once by its owner.
    partials = schedule.total_fixup_stores * cost.tile_accum_bytes * 2.0
    return float(out), float(partials)


class AnalyticalMemoryModel:
    """Closed-form wave-reuse DRAM traffic estimate.

    Model: a wave of ``W = min(g, slots)`` co-resident CTAs covers ``w_m``
    distinct tile rows and ``w_n`` distinct tile columns of the (row-major
    rasterized) tile grid.  When the wave steps k in lockstep, each k-step
    fetches ``w_m`` A fragments and ``w_n`` B fragments which the whole
    wave reuses from L2, so the per-operand DRAM amplification over the
    compulsory single pass is ``tiles_n / w_n`` for A and ``tiles_m / w_m``
    for B.  A skewed wave (Stream-K's staggered k offsets) gets no
    cross-CTA reuse: every CTA streams its own fragments, i.e. full
    amplification ``tiles_n`` / ``tiles_m``.  Schedules blend the two by
    their ``k_aligned_fraction``.  Two capacity guards bound the estimate:
    if the wave's pipelined working set exceeds usable L2, aligned reuse
    degrades to none; if *both operands entirely* fit in usable L2, the
    amplification collapses to one regardless of skew.
    """

    name = "analytical"

    def traffic(
        self, schedule: Schedule, gpu: GpuSpec, cost: KernelCostModel
    ) -> TrafficBreakdown:
        grid = schedule.grid
        problem = grid.problem
        blk = grid.blocking
        in_b = problem.dtype.input_bytes

        # Padded operand passes (edge tiles fetch full fragments).
        a_pass = grid.tiles_m * blk.blk_m * problem.k * in_b
        b_pass = grid.tiles_n * blk.blk_n * problem.k * in_b

        usable_l2 = gpu.l2_bytes * _L2_RESIDENCY
        if a_pass + b_pass <= usable_l2:
            # Whole problem resident: one compulsory pass each.
            amp_a = amp_b = 1.0
        else:
            w = max(1, min(schedule.g, gpu.total_cta_slots))
            w_n = min(w, grid.tiles_n)
            w_m = min(grid.tiles_m, ceil_div(w, grid.tiles_n))
            working_set = (
                _PIPELINE_STAGES
                * (w_m * blk.blk_m + w_n * blk.blk_n)
                * blk.blk_k
                * in_b
            )
            if working_set > usable_l2:
                amp_a_aligned = float(grid.tiles_n)
                amp_b_aligned = float(grid.tiles_m)
            else:
                amp_a_aligned = grid.tiles_n / w_n
                amp_b_aligned = grid.tiles_m / w_m
            amp_a_skewed = min(grid.tiles_n, _SKEW_AMPLIFICATION * amp_a_aligned)
            amp_b_skewed = min(grid.tiles_m, _SKEW_AMPLIFICATION * amp_b_aligned)
            f = schedule.k_aligned_fraction
            amp_a = f * amp_a_aligned + (1.0 - f) * amp_a_skewed
            amp_b = f * amp_b_aligned + (1.0 - f) * amp_b_skewed

        out, partials = _output_and_partial_bytes(schedule, cost)
        return TrafficBreakdown(
            input_a=a_pass * amp_a,
            input_b=b_pass * amp_b,
            output=out,
            partials=partials,
        )


class CacheSimMemoryModel:
    """Replay the fragment access stream through an LRU fragment cache.

    Requires the schedule's :class:`~repro.gpu.trace.ExecutionTrace` so the
    per-CTA iteration streams can be interleaved in simulated time — the
    interleaving is exactly what determines whether skewed CTAs defeat
    reuse.  Per-iteration timestamps are linearly interpolated inside each
    COMPUTE segment.
    """

    name = "cache_sim"

    def traffic(
        self,
        schedule: Schedule,
        gpu: GpuSpec,
        cost: KernelCostModel,
        trace: ExecutionTrace,
    ) -> TrafficBreakdown:
        grid = schedule.grid
        frag_a_bytes = grid.fragment_bytes_a()
        frag_b_bytes = grid.fragment_bytes_b()

        accesses: "list[tuple[float, int, tuple, int]]" = []
        for w in schedule.work_items:
            rec = trace.cta_record(w.cta)
            computes = [
                s for s in rec.segments if s.kind is SegmentKind.COMPUTE
            ]
            if len(computes) != len(w.segments):
                raise ConfigurationError(
                    "trace for CTA %d has %d compute segments, schedule has "
                    "%d — trace does not belong to this schedule"
                    % (w.cta, len(computes), len(w.segments))
                )
            for sched_seg, time_seg in zip(w.segments, computes):
                n = sched_seg.num_iters
                row, col = grid.tile_coords(sched_seg.tile_idx)
                dt = time_seg.duration / n
                for i, it in enumerate(
                    range(sched_seg.iter_begin, sched_seg.iter_end)
                ):
                    t = time_seg.start + (i + 0.5) * dt
                    accesses.append((t, w.cta, ("a", row, it), frag_a_bytes))
                    accesses.append((t, w.cta, ("b", it, col), frag_b_bytes))

        accesses.sort(key=lambda rec: (rec[0], rec[1]))
        cache = FragmentCache(int(gpu.l2_bytes * _L2_RESIDENCY))
        a_miss = 0.0
        b_miss = 0.0
        with span("cache_sim_replay"):
            for _, _, key, size in accesses:
                missed = cache.access(key, size)
                if key[0] == "a":
                    a_miss += missed
                else:
                    b_miss += missed
        # Surface the simulated L2 hit rate: obs.hit_rate("l2sim.fragment").
        cache.stats.publish("l2sim.fragment")

        out, partials = _output_and_partial_bytes(schedule, cost)
        return TrafficBreakdown(
            input_a=a_miss, input_b=b_miss, output=out, partials=partials
        )
