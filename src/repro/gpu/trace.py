"""Execution traces produced by the discrete-event executor.

A :class:`ExecutionTrace` records, for every CTA: which SM slot ran it, when
each segment started and ended, and how long it spent spin-waiting.  From
that it derives the quantities the paper plots — makespan, per-SM busy time,
utilization, and Gantt rows for the schedule diagrams (Figures 1–3, 9).

Traces have two renderers: the ASCII Gantt charts in
``examples/schedule_visualizer.py``, and
:func:`repro.obs.export.trace_to_chrome`, which exports the same timeline
as Chrome/Perfetto ``trace_event`` JSON (one track per SM slot, colored
segment kinds, spin-waits flagged red) — ``python -m repro trace`` on the
command line, schema contract in ``docs/TRACING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cta import SegmentKind

__all__ = ["SegmentRecord", "CtaRecord", "ExecutionTrace"]


@dataclass(frozen=True)
class SegmentRecord:
    """One executed segment: [start, end) in cycles."""

    kind: SegmentKind
    start: float
    end: float
    slot: "int | None" = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CtaRecord:
    """One CTA's executed timeline."""

    cta: int
    sm_slot: int
    start: float
    finish: float
    segments: "tuple[SegmentRecord, ...]"

    @property
    def wait_cycles(self) -> float:
        """Total cycles spent spin-waiting on peer flags."""
        return sum(
            s.duration for s in self.segments if s.kind is SegmentKind.WAIT
        )

    @property
    def busy_cycles(self) -> float:
        """Cycles doing intrinsic work (everything but waits)."""
        return (self.finish - self.start) - self.wait_cycles


@dataclass
class ExecutionTrace:
    """Complete record of one simulated kernel execution."""

    num_sm_slots: int
    ctas: "list[CtaRecord]" = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Cycles from launch to the last CTA's completion."""
        return max((c.finish for c in self.ctas), default=0.0)

    @property
    def total_busy_cycles(self) -> float:
        return sum(c.busy_cycles for c in self.ctas)

    @property
    def total_wait_cycles(self) -> float:
        return sum(c.wait_cycles for c in self.ctas)

    def utilization(self) -> float:
        """Fraction of slot-cycles spent on intrinsic work.

        This is the processor-utilization quantity from the paper's Figure 1
        discussion: busy cycles over (slots x makespan).  Spin-waiting and
        idle tail cycles both count against it.
        """
        span = self.makespan
        if span <= 0.0:
            return 1.0
        return self.total_busy_cycles / (self.num_sm_slots * span)

    def slot_busy_cycles(self) -> "dict[int, float]":
        """Per-SM-slot intrinsic-work cycles."""
        busy: "dict[int, float]" = {s: 0.0 for s in range(self.num_sm_slots)}
        for c in self.ctas:
            busy[c.sm_slot] = busy.get(c.sm_slot, 0.0) + c.busy_cycles
        return busy

    def gantt_rows(self) -> "list[tuple[int, int, float, float, str]]":
        """(sm_slot, cta, start, end, kind) rows for schedule diagrams."""
        rows = []
        for c in sorted(self.ctas, key=lambda r: (r.sm_slot, r.start)):
            for s in c.segments:
                rows.append((c.sm_slot, c.cta, s.start, s.end, s.kind.value))
        return rows

    def cta_record(self, cta: int) -> CtaRecord:
        for c in self.ctas:
            if c.cta == cta:
                return c
        raise KeyError("no record for CTA %d" % cta)

    def render_ascii(self, width: int = 80) -> str:
        """Render the schedule as a text Gantt chart, one row per SM slot.

        One character per time slice: a base-62 glyph identifies the CTA,
        ``~`` marks spin-waiting on a peer flag, ``.`` is an idle slot —
        the paper's Figures 1–3 in terminal form.
        """
        alphabet = (
            "0123456789abcdefghijklmnopqrstuvwxyz"
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        )
        span = self.makespan
        if span <= 0:
            return "\n".join(
                "SM%-3d |%s|" % (s, "." * width)
                for s in range(self.num_sm_slots)
            )
        rows = [["."] * width for _ in range(self.num_sm_slots)]
        for rec in self.ctas:
            glyph = alphabet[rec.cta % len(alphabet)]
            for seg in rec.segments:
                lo = int(seg.start / span * width)
                hi = max(lo + 1, int(seg.end / span * width))
                ch = "~" if seg.kind is SegmentKind.WAIT else glyph
                for x in range(lo, min(hi, width)):
                    rows[rec.sm_slot][x] = ch
        return "\n".join(
            "SM%-3d |%s|" % (s, "".join(row)) for s, row in enumerate(rows)
        )
