"""End-to-end kernel timing: schedule -> simulated wall-clock.

``simulate_kernel`` composes the pieces of this subpackage:

1. the :class:`~repro.gpu.costmodel.KernelCostModel` prices the schedule's
   work into timed CTA tasks;
2. the discrete-event :class:`~repro.gpu.executor.Executor` produces the
   compute makespan (waves, spin-waits, fixup serialization included);
3. a memory model estimates DRAM traffic;
4. kernel time is ``max(makespan / clock, dram_bytes / bandwidth) +
   launch latency`` — the roofline composition: a kernel cannot run faster
   than its compute schedule nor faster than its memory traffic drains.

The returned :class:`KernelResult` carries everything the evaluation
needs: seconds, TFLOP/s, percent-of-peak, utilization, traffic breakdown,
and the raw trace for the schedule-diagram figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..schedules.base import Schedule
from .backends import resolve_executor_backend
from .costmodel import KernelCostModel
from .executor import Executor
from .memory import AnalyticalMemoryModel, CacheSimMemoryModel, TrafficBreakdown
from .spec import GpuSpec
from .trace import ExecutionTrace

__all__ = ["KernelResult", "simulate_kernel"]


@dataclass(frozen=True)
class KernelResult:
    """Simulated execution of one schedule on one GPU."""

    schedule_name: str
    gpu_name: str
    makespan_cycles: float
    compute_time_s: float
    memory_time_s: float
    launch_latency_s: float
    traffic: TrafficBreakdown
    trace: ExecutionTrace
    flops: int
    peak_tflops: float

    @property
    def time_s(self) -> float:
        """Kernel wall-clock: roofline of compute and memory, plus launch."""
        return max(self.compute_time_s, self.memory_time_s) + self.launch_latency_s

    @property
    def tflops(self) -> float:
        return self.flops / self.time_s / 1e12

    @property
    def percent_of_peak(self) -> float:
        """Percent of the device's rated throughput — the y axis of the
        paper's roofline landscapes (Figures 5 and 6)."""
        return 100.0 * self.tflops / self.peak_tflops

    @property
    def bound(self) -> str:
        """Which roofline ceiling binds: ``"compute"`` or ``"memory"``."""
        return "compute" if self.compute_time_s >= self.memory_time_s else "memory"


def simulate_kernel(
    schedule: Schedule,
    gpu: GpuSpec,
    memory_model: str = "analytical",
    validate: bool = False,
    faults=None,
    check_invariants: bool = False,
    executor: "str | None" = None,
) -> KernelResult:
    """Simulate one schedule end to end.

    Parameters
    ----------
    schedule:
        A decomposition of one problem (see :mod:`repro.schedules`).
    gpu:
        Hardware description.
    memory_model:
        ``"analytical"`` (fast, corpus-scale) or ``"cache_sim"`` (replays
        the fragment stream through an LRU cache; small problems only).
    validate:
        Run :meth:`Schedule.validate` first (cheap insurance in examples;
        the harness validates at construction).
    faults:
        Optional fault environment: a
        :class:`~repro.faults.config.FaultConfig` (a fresh injector is
        created for this run) or an already-constructed
        :class:`~repro.faults.injector.FaultInjector` (shared across
        runs when the caller wants one injection log).  ``None`` is the
        pristine simulator, bitwise identical to a zero-fault config.
    check_invariants:
        Replay the resulting trace through the protocol invariant
        checker (:func:`repro.faults.checker.check_protocol_invariants`)
        and raise :class:`~repro.errors.ProtocolViolation` on any breach
        of the partials/fixup carry protocol.
    executor:
        Executor backend: ``"python"`` (the bitwise oracle), ``"numpy"``
        or ``"numba"`` (vectorized, bitwise identical — see
        :mod:`repro.gpu.backends`).  ``None`` defers to the process
        default (CLI ``--executor``, else ``REPRO_EXECUTOR``, else
        python).  Array backends price the schedule straight into
        arrays, never building per-segment task objects.
    """
    if validate:
        schedule.validate()
    injector = faults
    if injector is not None and not hasattr(injector, "segment_cycles"):
        from ..faults.injector import FaultInjector

        injector = FaultInjector(injector)
    problem = schedule.grid.problem
    cost = KernelCostModel(gpu=gpu, blocking=schedule.grid.blocking, dtype=problem.dtype)
    backend = resolve_executor_backend(executor)
    if backend == "python":
        tasks = cost.build_tasks(schedule, faults=injector)
        trace = Executor(
            gpu.total_cta_slots, faults=injector, backend=backend
        ).run(tasks)
    else:
        arrays = cost.build_task_arrays(schedule, faults=injector)
        trace = Executor(
            gpu.total_cta_slots, faults=injector, backend=backend
        ).run_arrays(arrays)
    if check_invariants:
        from ..faults.checker import check_protocol_invariants

        check_protocol_invariants(schedule, trace)

    if memory_model == "analytical":
        traffic = AnalyticalMemoryModel().traffic(schedule, gpu, cost)
    elif memory_model == "cache_sim":
        traffic = CacheSimMemoryModel().traffic(schedule, gpu, cost, trace)
    else:
        raise ConfigurationError(
            "unknown memory model %r (use 'analytical' or 'cache_sim')"
            % (memory_model,)
        )

    bandwidth = float(gpu.achieved_bandwidth(schedule.g))
    return KernelResult(
        schedule_name=schedule.name,
        gpu_name=gpu.name,
        makespan_cycles=trace.makespan,
        compute_time_s=trace.makespan / gpu.clock_hz,
        memory_time_s=traffic.total / bandwidth,
        launch_latency_s=gpu.launch_latency_s,
        traffic=traffic,
        trace=trace,
        flops=problem.flops,
        peak_tflops=gpu.peak_tflops(problem.dtype),
    )
