"""Discrete-event execution of CTA tasks on a simulated GPU.

The executor models the GPU block scheduler the paper's analysis assumes:

* ``num_sm_slots = num_sms * occupancy`` CTA slots;
* CTAs dispatch strictly in launch order, each onto the earliest-freeing
  slot (this produces the "wave" structure of data-parallel execution);
* a CTA runs its segments back to back; a ``WAIT`` on a peer flag spin-waits
  *holding its slot* until the peer's ``SIGNAL`` timestamp (Algorithm 4/5
  semantics);
* the slot frees when the CTA finishes.

The simulation is exact for this model: all signal timestamps among
dispatched CTAs are fully resolved before the next dispatch decision, so no
approximation or iteration-to-fixpoint is involved.  If every resident CTA
is blocked on flags owned by CTAs that cannot launch, the executor raises
:class:`~repro.errors.DeadlockError` — the same hang a real GPU would
experience with a waiter-before-producer launch order and full residency.
The error carries a structured wait-chain diagnostic naming, for every
blocked CTA, the slot it waits on and why that signal can never arrive
(including circular waits, reported as the blocking CTA cycle).

Fault injection (:mod:`repro.faults`) threads through here: an optional
:class:`~repro.faults.injector.FaultInjector` scales segment durations
per SM slot (stragglers/clock skew), adds preempt/restart penalties to
compute segments, delays flag publications, and drops signals outright —
dropped signals surface as the same clean ``DeadlockError`` (a discrete-
event simulator cannot literally hang, so the "GPU hang" is always
reported as a diagnosis, never experienced as one).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from ..errors import ConfigurationError, DeadlockError, SimulationError
from ..obs.counters import inc_counter
from ..obs.profiler import span
from .backends import (
    DeadlockCtaView,
    diagnose_deadlock,
    resolve_executor_backend,
    run_task_arrays,
    tasks_to_arrays,
)
from .cta import CtaTask, SegmentKind
from .trace import CtaRecord, ExecutionTrace, SegmentRecord

__all__ = ["execute_tasks", "Executor"]


@dataclass
class _CtaState:
    task: CtaTask
    sm_slot: int = -1
    time: float = 0.0
    start: float = 0.0
    cursor: int = 0
    records: "list[SegmentRecord]" = field(default_factory=list)
    finished: bool = False

    @property
    def blocked_on(self) -> "int | None":
        segs = self.task.segments
        if self.cursor < len(segs) and segs[self.cursor].kind is SegmentKind.WAIT:
            return segs[self.cursor].slot
        return None

    @property
    def launched(self) -> bool:
        return self.sm_slot >= 0


class Executor:
    """Runs a list of :class:`~repro.gpu.cta.CtaTask` to completion.

    ``faults``, when given, is a :class:`~repro.faults.injector.
    FaultInjector` consulted at every injection site; ``None`` (the
    default) is the pristine fast path and is bitwise identical to a
    null-config injector.

    ``backend`` selects the simulation core: ``"python"`` (this module —
    the bitwise oracle), ``"numpy"`` or ``"numba"`` (the array backends
    of :mod:`repro.gpu.backends`, bitwise identical and much faster).
    ``None`` defers to the process default (CLI ``--executor`` flag,
    else the ``REPRO_EXECUTOR`` environment variable, else python).
    """

    def __init__(self, num_sm_slots: int, faults=None, backend=None):
        if num_sm_slots <= 0:
            raise ConfigurationError(
                "need at least one SM slot, got %d" % num_sm_slots
            )
        self.num_sm_slots = num_sm_slots
        self.faults = faults
        self.backend = backend

    def run(self, tasks: "list[CtaTask]") -> ExecutionTrace:
        """Execute ``tasks`` in launch order; return the full trace.

        Besides returning the trace, each run publishes volume counters to
        :mod:`repro.obs.counters` (``executor.runs|ctas|segments``,
        ``executor.spin_waits|signals``, ``executor.backend.<name>``,
        plus ``faults.*`` from the injector) — one batched update per
        run, so the per-segment hot loop stays untouched.
        """
        backend = resolve_executor_backend(self.backend)
        if backend != "python":
            return run_task_arrays(
                tasks_to_arrays(tasks),
                self.num_sm_slots,
                faults=self.faults,
                backend=backend,
            )
        return self._run_python(tasks)

    def run_arrays(self, arrays) -> ExecutionTrace:
        """Execute a pre-flattened :class:`~repro.gpu.backends.TaskArrays`.

        The fast path for callers that price schedules straight into
        arrays (:meth:`~repro.gpu.costmodel.KernelCostModel.
        build_task_arrays`) — no task objects are ever built.  Always
        runs an array backend: a ``python`` resolution executes the
        (bitwise-identical) numpy core, since the oracle walks task
        objects.
        """
        backend = resolve_executor_backend(self.backend)
        if backend == "python":
            backend = "numpy"
        return run_task_arrays(
            arrays, self.num_sm_slots, faults=self.faults, backend=backend
        )

    def _run_python(self, tasks: "list[CtaTask]") -> ExecutionTrace:
        """The oracle: the original pure-Python discrete-event loop."""
        ids = [t.cta for t in tasks]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate CTA ids in task list")

        inj = self.faults
        spin_parks = [0]  # CTAs that actually blocked on an unpublished flag
        states = [_CtaState(task=t) for t in tasks]
        by_slot_signal: "dict[int, float]" = {}  # partial slot -> signal time
        dropped_slots: "set[int]" = set()  # slots whose signal was dropped
        waiters: "dict[int, list[_CtaState]]" = {}
        pending = deque(states)
        # (free_time, slot_index); one entry per currently-free slot.
        free_slots: "list[tuple[float, int]]" = [
            (0.0, s) for s in range(self.num_sm_slots)
        ]
        heapq.heapify(free_slots)
        trace = ExecutionTrace(num_sm_slots=self.num_sm_slots)

        def advance(ready: "list[_CtaState]") -> None:
            """Drain a stack of runnable CTAs, cascading through signals."""
            while ready:
                st = ready.pop()
                segs = st.task.segments
                while st.cursor < len(segs):
                    seg = segs[st.cursor]
                    if seg.kind is SegmentKind.WAIT:
                        sig = by_slot_signal.get(seg.slot)
                        if sig is None:
                            # Spin-wait, holding the SM slot.
                            spin_parks[0] += 1
                            waiters.setdefault(seg.slot, []).append(st)
                            break
                        end = max(st.time, sig)
                        st.records.append(
                            SegmentRecord(seg.kind, st.time, end, seg.slot)
                        )
                        st.time = end
                    else:
                        cycles = seg.cycles
                        if inj is not None:
                            cycles = inj.segment_cycles(
                                st.task.cta,
                                st.cursor,
                                seg.kind,
                                cycles,
                                st.sm_slot,
                            )
                        end = st.time + cycles
                        if seg.kind is SegmentKind.SIGNAL:
                            slot = st.task.cta if seg.slot is None else seg.slot
                            if slot in by_slot_signal or slot in dropped_slots:
                                raise SimulationError(
                                    "slot %d signalled twice" % slot
                                )
                            if inj is not None and inj.signal_dropped(
                                st.task.cta
                            ):
                                # The flag never becomes visible: waiters on
                                # this slot stay parked and are diagnosed as
                                # a deadlock when the run cannot complete.
                                dropped_slots.add(slot)
                            else:
                                if inj is not None:
                                    # Slow flag propagation: publication is
                                    # charged as the segment's duration, so
                                    # the trace shows when the flag landed.
                                    end += inj.signal_delay(st.task.cta)
                                by_slot_signal[slot] = end
                                for w in waiters.pop(slot, []):
                                    ready.append(w)
                        st.records.append(
                            SegmentRecord(seg.kind, st.time, end, seg.slot)
                        )
                        st.time = end
                    st.cursor += 1
                else:
                    st.finished = True
                    trace.ctas.append(
                        CtaRecord(
                            cta=st.task.cta,
                            sm_slot=st.sm_slot,
                            start=st.start,
                            finish=st.time,
                            segments=tuple(st.records),
                        )
                    )
                    heapq.heappush(free_slots, (st.time, st.sm_slot))

        with span("executor_run"):
            while pending:
                if not free_slots:
                    raise self._deadlock(states, by_slot_signal, dropped_slots)
                t, slot = heapq.heappop(free_slots)
                st = pending.popleft()
                st.sm_slot = slot
                st.start = st.time = t
                advance([st])

            unfinished = [s for s in states if not s.finished]
            if unfinished:
                raise self._deadlock(states, by_slot_signal, dropped_slots)

        inc_counter("executor.backend.python")
        inc_counter("executor.runs")
        inc_counter("executor.ctas", len(tasks))
        inc_counter("executor.segments", sum(len(t.segments) for t in tasks))
        inc_counter("executor.spin_waits", spin_parks[0])
        inc_counter("executor.signals", len(by_slot_signal))

        trace.ctas.sort(key=lambda c: c.cta)
        return trace

    # ------------------------------------------------------------------ #
    # Deadlock diagnosis                                                  #
    # ------------------------------------------------------------------ #

    def _deadlock(
        self,
        states: "list[_CtaState]",
        by_slot_signal: "dict[int, float]",
        dropped_slots: "set[int]",
    ) -> DeadlockError:
        """Build the wait-chain diagnostic for an unprogressable run.

        The diagnosis itself lives in :func:`repro.gpu.backends.
        diagnose_deadlock`, shared with the array backends so every
        backend reports bitwise-identical wait chains; this method just
        projects the oracle's states onto the shared view.
        """
        views = [
            DeadlockCtaView(
                cta=s.task.cta,
                signals_slot=s.task.signals_slot,
                launched=s.launched,
                finished=s.finished,
                blocked_on=s.blocked_on,
            )
            for s in states
        ]
        return diagnose_deadlock(views, by_slot_signal, dropped_slots)


def execute_tasks(
    tasks: "list[CtaTask]", num_sm_slots: int, faults=None, backend=None
) -> ExecutionTrace:
    """Convenience wrapper: ``Executor(num_sm_slots, faults).run(tasks)``."""
    return Executor(num_sm_slots, faults=faults, backend=backend).run(tasks)
