"""Discrete-event execution of CTA tasks on a simulated GPU.

The executor models the GPU block scheduler the paper's analysis assumes:

* ``num_sm_slots = num_sms * occupancy`` CTA slots;
* CTAs dispatch strictly in launch order, each onto the earliest-freeing
  slot (this produces the "wave" structure of data-parallel execution);
* a CTA runs its segments back to back; a ``WAIT`` on a peer flag spin-waits
  *holding its slot* until the peer's ``SIGNAL`` timestamp (Algorithm 4/5
  semantics);
* the slot frees when the CTA finishes.

The simulation is exact for this model: all signal timestamps among
dispatched CTAs are fully resolved before the next dispatch decision, so no
approximation or iteration-to-fixpoint is involved.  If every resident CTA
is blocked on flags owned by CTAs that cannot launch, the executor raises
:class:`~repro.errors.DeadlockError` — the same hang a real GPU would
experience with a waiter-before-producer launch order and full residency.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from ..errors import ConfigurationError, DeadlockError, SimulationError
from ..obs.counters import inc_counter
from ..obs.profiler import span
from .cta import CtaTask, SegmentKind
from .trace import CtaRecord, ExecutionTrace, SegmentRecord

__all__ = ["execute_tasks", "Executor"]


@dataclass
class _CtaState:
    task: CtaTask
    sm_slot: int = -1
    time: float = 0.0
    start: float = 0.0
    cursor: int = 0
    records: "list[SegmentRecord]" = field(default_factory=list)
    finished: bool = False

    @property
    def blocked_on(self) -> "int | None":
        segs = self.task.segments
        if self.cursor < len(segs) and segs[self.cursor].kind is SegmentKind.WAIT:
            return segs[self.cursor].slot
        return None


class Executor:
    """Runs a list of :class:`~repro.gpu.cta.CtaTask` to completion."""

    def __init__(self, num_sm_slots: int):
        if num_sm_slots <= 0:
            raise ConfigurationError(
                "need at least one SM slot, got %d" % num_sm_slots
            )
        self.num_sm_slots = num_sm_slots

    def run(self, tasks: "list[CtaTask]") -> ExecutionTrace:
        """Execute ``tasks`` in launch order; return the full trace.

        Besides returning the trace, each run publishes volume counters to
        :mod:`repro.obs.counters` (``executor.runs|ctas|segments``,
        ``executor.spin_waits|signals``) — one batched update per run, so
        the per-segment hot loop stays untouched.
        """
        ids = [t.cta for t in tasks]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate CTA ids in task list")

        spin_parks = [0]  # CTAs that actually blocked on an unpublished flag
        states = [_CtaState(task=t) for t in tasks]
        by_slot_signal: "dict[int, float]" = {}  # partial slot -> signal time
        waiters: "dict[int, list[_CtaState]]" = {}
        pending = deque(states)
        # (free_time, slot_index); one entry per currently-free slot.
        free_slots: "list[tuple[float, int]]" = [
            (0.0, s) for s in range(self.num_sm_slots)
        ]
        heapq.heapify(free_slots)
        trace = ExecutionTrace(num_sm_slots=self.num_sm_slots)

        def advance(ready: "list[_CtaState]") -> None:
            """Drain a stack of runnable CTAs, cascading through signals."""
            while ready:
                st = ready.pop()
                segs = st.task.segments
                while st.cursor < len(segs):
                    seg = segs[st.cursor]
                    if seg.kind is SegmentKind.WAIT:
                        sig = by_slot_signal.get(seg.slot)
                        if sig is None:
                            # Spin-wait, holding the SM slot.
                            spin_parks[0] += 1
                            waiters.setdefault(seg.slot, []).append(st)
                            break
                        end = max(st.time, sig)
                        st.records.append(
                            SegmentRecord(seg.kind, st.time, end, seg.slot)
                        )
                        st.time = end
                    else:
                        end = st.time + seg.cycles
                        st.records.append(
                            SegmentRecord(seg.kind, st.time, end, seg.slot)
                        )
                        st.time = end
                        if seg.kind is SegmentKind.SIGNAL:
                            slot = st.task.cta if seg.slot is None else seg.slot
                            if slot in by_slot_signal:
                                raise SimulationError(
                                    "slot %d signalled twice" % slot
                                )
                            by_slot_signal[slot] = end
                            for w in waiters.pop(slot, []):
                                ready.append(w)
                    st.cursor += 1
                else:
                    st.finished = True
                    trace.ctas.append(
                        CtaRecord(
                            cta=st.task.cta,
                            sm_slot=st.sm_slot,
                            start=st.start,
                            finish=st.time,
                            segments=tuple(st.records),
                        )
                    )
                    heapq.heappush(free_slots, (st.time, st.sm_slot))

        with span("executor_run"):
            while pending:
                if not free_slots:
                    blocked = [
                        s.task.cta for s in states if s.blocked_on is not None
                    ]
                    raise DeadlockError(blocked)
                t, slot = heapq.heappop(free_slots)
                st = pending.popleft()
                st.sm_slot = slot
                st.start = st.time = t
                advance([st])

            unfinished = [s for s in states if not s.finished]
            if unfinished:
                raise DeadlockError([s.task.cta for s in unfinished])

        inc_counter("executor.runs")
        inc_counter("executor.ctas", len(tasks))
        inc_counter("executor.segments", sum(len(t.segments) for t in tasks))
        inc_counter("executor.spin_waits", spin_parks[0])
        inc_counter("executor.signals", len(by_slot_signal))

        trace.ctas.sort(key=lambda c: c.cta)
        return trace


def execute_tasks(tasks: "list[CtaTask]", num_sm_slots: int) -> ExecutionTrace:
    """Convenience wrapper: ``Executor(num_sm_slots).run(tasks)``."""
    return Executor(num_sm_slots).run(tasks)
