"""GPU execution simulator: the paper's A100 testbed, substituted.

The subpackage layers, bottom up:

* :mod:`~repro.gpu.spec` — the hardware spec registry (A100/H100/V100/
  RTX-3090-class presets, the 4-SM illustration GPU, custom devices from
  JSON; see docs/HARDWARE.md);
* :mod:`~repro.gpu.cta` / :mod:`~repro.gpu.executor` /
  :mod:`~repro.gpu.trace` — timed CTA tasks, the discrete-event wave
  scheduler with spin-wait flag semantics, and execution traces;
* :mod:`~repro.gpu.costmodel` — cycle costs (the simulator-side ground
  truth for the Appendix A.1 constants);
* :mod:`~repro.gpu.cache` / :mod:`~repro.gpu.memory` — L2/DRAM traffic;
* :mod:`~repro.gpu.analytic` — closed-form makespans for corpus sweeps;
* :mod:`~repro.gpu.simulate` — end-to-end kernel timing.
"""

from .analytic import (
    basic_streamk_makespan,
    basic_streamk_makespan_batch,
    data_parallel_makespan,
    dp_one_tile_hybrid_makespan,
    dp_one_tile_hybrid_makespan_batch,
    fixed_split_makespan,
    fixed_split_makespan_batch,
    one_wave_makespan,
    persistent_dp_makespan,
    persistent_dp_makespan_batch,
    two_tile_hybrid_makespan,
    two_tile_hybrid_makespan_batch,
)
from .backends import (
    EXECUTOR_BACKENDS,
    TaskArrays,
    resolve_executor_backend,
    run_task_arrays,
    set_default_executor,
    tasks_to_arrays,
)
from .cache import CacheStats, FragmentCache, SetAssociativeCache
from .costmodel import KernelCostModel
from .cta import CtaTask, SegmentKind, TimedSegment
from .executor import Executor, execute_tasks
from .memory import AnalyticalMemoryModel, CacheSimMemoryModel, TrafficBreakdown
from .occupancy import (
    DEFAULT_SMEM_PER_SM,
    estimate_occupancy,
    max_streamk_grid,
    smem_bytes_per_cta,
)
from .simulate import KernelResult, simulate_kernel
from .spec import (
    A100,
    DEFAULT_GPU_NAME,
    GPU_PRESETS,
    H100_SXM,
    HYPOTHETICAL_4SM,
    RTX3090,
    V100_SXM2,
    GpuSpec,
    available_gpus,
    default_gpu,
    get_gpu,
    register_gpu,
    resolve_gpu,
)
from .trace import CtaRecord, ExecutionTrace, SegmentRecord

__all__ = [
    "A100",
    "AnalyticalMemoryModel",
    "DEFAULT_GPU_NAME",
    "H100_SXM",
    "RTX3090",
    "V100_SXM2",
    "CacheSimMemoryModel",
    "CacheStats",
    "CtaRecord",
    "CtaTask",
    "DEFAULT_SMEM_PER_SM",
    "EXECUTOR_BACKENDS",
    "ExecutionTrace",
    "Executor",
    "FragmentCache",
    "GPU_PRESETS",
    "GpuSpec",
    "HYPOTHETICAL_4SM",
    "KernelCostModel",
    "KernelResult",
    "SegmentKind",
    "SegmentRecord",
    "SetAssociativeCache",
    "TaskArrays",
    "TimedSegment",
    "TrafficBreakdown",
    "available_gpus",
    "basic_streamk_makespan",
    "basic_streamk_makespan_batch",
    "data_parallel_makespan",
    "default_gpu",
    "dp_one_tile_hybrid_makespan",
    "dp_one_tile_hybrid_makespan_batch",
    "fixed_split_makespan_batch",
    "persistent_dp_makespan_batch",
    "two_tile_hybrid_makespan_batch",
    "estimate_occupancy",
    "execute_tasks",
    "fixed_split_makespan",
    "get_gpu",
    "register_gpu",
    "resolve_executor_backend",
    "resolve_gpu",
    "run_task_arrays",
    "max_streamk_grid",
    "one_wave_makespan",
    "persistent_dp_makespan",
    "set_default_executor",
    "simulate_kernel",
    "smem_bytes_per_cta",
    "tasks_to_arrays",
    "two_tile_hybrid_makespan",
]
