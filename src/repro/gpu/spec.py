"""GPU hardware descriptions for the execution simulator.

A :class:`GpuSpec` captures the handful of architectural quantities the
paper's analysis depends on: SM count, (locked) clock, per-SM MAC throughput
per precision, DRAM bandwidth, L2 capacity, and kernel-launch latency.

The ``A100`` preset reproduces the paper's measurement configuration
(Section 6): 108 SMs locked at 1005 MHz, giving tensor-core peaks of
13.9 FP64 TFLOP/s and 222.3 FP16->32 TFLOP/s.  Working backwards, those
peaks correspond to exactly 64 and 1024 MACs/SM/cycle — the DMMA and HMMA
tensor-core rates — which is how the preset encodes them.

``HYPOTHETICAL_4SM`` is the four-SM processor used by the paper's
illustrative Figures 1–3 and 9.

Beyond the paper's testbed, this module is a **spec registry**
(``docs/HARDWARE.md``): presets for H100-, V100-, and RTX-3090-class parts
with distinct SM counts, occupancies, and per-precision rate tables
(every preset follows the paper's locked-clock convention — clocks pinned
below boost for run-to-run stability, so peaks are the *locked* peaks,
not the datasheet boost peaks); :meth:`GpuSpec.from_json` /
:meth:`GpuSpec.to_json` so users define custom devices from a file; and
:func:`resolve_gpu`, which every CLI ``--gpu`` flag routes through to
accept either a registered preset name or a path to a spec JSON.
Per-spec calibration caching keys off :func:`repro.model.paramcache.
gpu_fingerprint`, which hashes every field here — any custom or edited
spec calibrates (and caches) independently.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig

__all__ = [
    "GpuSpec",
    "A100",
    "H100_SXM",
    "V100_SXM2",
    "RTX3090",
    "HYPOTHETICAL_4SM",
    "GPU_PRESETS",
    "DEFAULT_GPU_NAME",
    "available_gpus",
    "default_gpu",
    "get_gpu",
    "register_gpu",
    "resolve_gpu",
]


#: JSON schema of a custom spec: required and optional keys with the
#: dataclass defaults (see docs/HARDWARE.md for a worked example).
_REQUIRED_JSON_KEYS = (
    "name",
    "num_sms",
    "clock_hz",
    "macs_per_sm_per_cycle",
    "dram_bandwidth",
    "l2_bytes",
)
_OPTIONAL_JSON_KEYS = (
    "l2_line_bytes",
    "occupancy",
    "launch_latency_s",
    "sm_max_bandwidth",
)


@dataclass(frozen=True)
class GpuSpec:
    """Architectural parameters of a simulated GPU.

    Attributes
    ----------
    name:
        Preset identifier.
    num_sms:
        Streaming-multiprocessor core count (the paper's ``p``).
    clock_hz:
        SM clock.  The paper locks the A100 at 1005 MHz for stability.
    macs_per_sm_per_cycle:
        Map of dtype-config name to multiply-accumulates one SM retires per
        cycle at 100% utilization.
    dram_bandwidth:
        Device-memory bandwidth in bytes/s.
    l2_bytes:
        Last-level cache capacity.
    l2_line_bytes:
        Cache-line granularity for the detailed cache simulator.
    occupancy:
        CTAs co-resident per SM.  The paper's kernels use maximal tiles, so
        one CTA per SM is the realistic default.
    launch_latency_s:
        Fixed host-side kernel launch latency added to every kernel.
    sm_max_bandwidth:
        DRAM bandwidth one SM can sustain on its own, in bytes/s — bounded
        by per-SM outstanding-transaction limits, not by the device total.
        A kernel with only a few resident CTAs cannot saturate HBM; this is
        what makes single-tile data-parallel schedules slow on real
        hardware and is essential to the strong-scaling comparisons.
    """

    name: str
    num_sms: int
    clock_hz: float
    macs_per_sm_per_cycle: "dict[str, float]"
    dram_bandwidth: float
    l2_bytes: int
    l2_line_bytes: int = 128
    occupancy: int = 1
    launch_latency_s: float = 2.0e-6
    sm_max_bandwidth: float = 30.0e9

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ConfigurationError("num_sms must be positive")
        if self.clock_hz <= 0 or self.dram_bandwidth <= 0:
            raise ConfigurationError("clock and bandwidth must be positive")
        if self.l2_bytes < 0 or self.l2_line_bytes <= 0:
            raise ConfigurationError("invalid cache geometry")
        if self.occupancy <= 0:
            raise ConfigurationError("occupancy must be positive")
        if not self.macs_per_sm_per_cycle:
            raise ConfigurationError(
                "macs_per_sm_per_cycle must name at least one precision"
            )
        for dtype_name, rate in self.macs_per_sm_per_cycle.items():
            if not (isinstance(rate, (int, float)) and math.isfinite(rate)) or rate <= 0:
                raise ConfigurationError(
                    "MAC rate for dtype %r must be a positive finite number, "
                    "got %r" % (dtype_name, rate)
                )

    # ------------------------------------------------------------------ #
    # Derived rates                                                       #
    # ------------------------------------------------------------------ #

    def mac_rate(self, dtype: DtypeConfig) -> float:
        """MACs/SM/cycle for a precision; raises for unknown precisions."""
        try:
            return self.macs_per_sm_per_cycle[dtype.name]
        except KeyError:
            raise ConfigurationError(
                "GPU %s has no MAC rate for dtype %r (knows: %s)"
                % (self.name, dtype.name, ", ".join(self.macs_per_sm_per_cycle))
            ) from None

    def supports_dtype(self, dtype: DtypeConfig) -> bool:
        """Whether this device has a MAC rate for ``dtype`` (e.g. V100 has
        no BF16 path)."""
        return dtype.name in self.macs_per_sm_per_cycle

    def peak_tflops(self, dtype: DtypeConfig) -> float:
        """Device peak in TFLOP/s (2 FLOPs per MAC)."""
        return (
            2.0 * self.mac_rate(dtype) * self.num_sms * self.clock_hz / 1e12
        )

    @property
    def bytes_per_cycle_per_sm(self) -> float:
        """Fair DRAM bandwidth share of one SM, in bytes per SM cycle."""
        return self.dram_bandwidth / (self.num_sms * self.clock_hz)

    @property
    def total_cta_slots(self) -> int:
        """Concurrently resident CTAs (num_sms * occupancy)."""
        return self.num_sms * self.occupancy

    def achieved_bandwidth(self, active_ctas) -> "float":
        """DRAM bandwidth achievable with ``active_ctas`` resident CTAs.

        ``min(device bandwidth, active * per-SM limit)``; accepts scalars
        or numpy arrays.  Never below one SM's worth.
        """
        active = np.maximum(np.minimum(active_ctas, self.total_cta_slots), 1)
        return np.minimum(self.dram_bandwidth, active * self.sm_max_bandwidth)

    def with_sms(self, num_sms: int) -> "GpuSpec":
        """A copy with a different SM count (scaling studies)."""
        return GpuSpec(
            name="%s_%dsm" % (self.name, num_sms),
            num_sms=num_sms,
            clock_hz=self.clock_hz,
            macs_per_sm_per_cycle=dict(self.macs_per_sm_per_cycle),
            dram_bandwidth=self.dram_bandwidth * num_sms / self.num_sms,
            l2_bytes=self.l2_bytes,
            l2_line_bytes=self.l2_line_bytes,
            occupancy=self.occupancy,
            launch_latency_s=self.launch_latency_s,
            sm_max_bandwidth=self.sm_max_bandwidth,
        )

    # ------------------------------------------------------------------ #
    # JSON round trip (custom devices from a file)                        #
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        """Serialize every field as a JSON document.

        The output round-trips through :meth:`from_json` bit-exactly and is
        the canonical custom-spec file format (docs/HARDWARE.md).
        """
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, source: "str | dict") -> "GpuSpec":
        """Build a validated spec from a JSON document (text or dict).

        Raises :class:`~repro.errors.ConfigurationError` on unparsable
        JSON, missing or unknown keys, a non-positive SM count, an empty
        (or non-positive) MAC-rate table, or a device bandwidth that does
        not exceed the per-SM bandwidth limit — every rule a registered
        preset already obeys, enforced here so custom device files fail
        loudly instead of producing quietly absurd simulations.
        """
        if isinstance(source, str):
            try:
                doc = json.loads(source)
            except ValueError as exc:
                raise ConfigurationError(
                    "GPU spec JSON does not parse: %s" % exc
                ) from None
        else:
            doc = dict(source)
        if not isinstance(doc, dict):
            raise ConfigurationError(
                "GPU spec JSON must be an object, got %s" % type(doc).__name__
            )
        missing = [k for k in _REQUIRED_JSON_KEYS if k not in doc]
        if missing:
            raise ConfigurationError(
                "GPU spec JSON missing required key(s): %s (required: %s)"
                % (", ".join(missing), ", ".join(_REQUIRED_JSON_KEYS))
            )
        known = set(_REQUIRED_JSON_KEYS) | set(_OPTIONAL_JSON_KEYS)
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ConfigurationError(
                "GPU spec JSON has unknown key(s): %s (known: %s)"
                % (", ".join(unknown), ", ".join(sorted(known)))
            )
        if not isinstance(doc["name"], str) or not doc["name"]:
            raise ConfigurationError("GPU spec 'name' must be a non-empty string")
        rates = doc["macs_per_sm_per_cycle"]
        if not isinstance(rates, dict) or not rates:
            raise ConfigurationError(
                "GPU spec 'macs_per_sm_per_cycle' must be a non-empty "
                "{dtype name: MACs/SM/cycle} object"
            )
        try:
            spec = cls(
                name=str(doc["name"]),
                num_sms=int(doc["num_sms"]),
                clock_hz=float(doc["clock_hz"]),
                macs_per_sm_per_cycle={
                    str(k): float(v) for k, v in rates.items()
                },
                dram_bandwidth=float(doc["dram_bandwidth"]),
                l2_bytes=int(doc["l2_bytes"]),
                l2_line_bytes=int(doc.get("l2_line_bytes", 128)),
                occupancy=int(doc.get("occupancy", 1)),
                launch_latency_s=float(doc.get("launch_latency_s", 2.0e-6)),
                sm_max_bandwidth=float(doc.get("sm_max_bandwidth", 30.0e9)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                "GPU spec JSON has mistyped field: %s" % exc
            ) from None
        if spec.dram_bandwidth <= spec.sm_max_bandwidth:
            raise ConfigurationError(
                "device dram_bandwidth (%.3g B/s) must exceed the per-SM "
                "sm_max_bandwidth (%.3g B/s); a whole device slower than "
                "one SM's DRAM path is not a GPU"
                % (spec.dram_bandwidth, spec.sm_max_bandwidth)
            )
        return spec

    @classmethod
    def from_json_file(cls, path: str) -> "GpuSpec":
        """Load and validate a custom spec from a JSON file on disk."""
        try:
            with open(path) as fh:
                text = fh.read()
        except OSError as exc:
            raise ConfigurationError(
                "cannot read GPU spec file %r: %s" % (path, exc)
            ) from None
        return cls.from_json(text)


# --------------------------------------------------------------------- #
# Presets                                                                #
# --------------------------------------------------------------------- #

# Tensor-core MAC rates per SM per cycle.  At 108 SMs x 1005 MHz these give
# the paper's measured peaks: 64 * 2 * 108 * 1.005e9 = 13.9 TFLOP/s (FP64)
# and 1024 * 2 * 108 * 1.005e9 = 222.3 TFLOP/s (FP16->32).
_A100_RATES = {
    "fp64": 64.0,
    "fp16_fp32": 1024.0,
    "bf16_fp32": 1024.0,
    "fp32": 90.0,  # ~19.5 TF fp32 via TF32-style paths; extension only
}

A100 = GpuSpec(
    name="a100",
    num_sms=108,
    clock_hz=1.005e9,
    macs_per_sm_per_cycle=dict(_A100_RATES),
    dram_bandwidth=1.555e12,  # A100-40GB HBM2e
    l2_bytes=40 * 1024 * 1024,
    l2_line_bytes=128,
    occupancy=1,
    launch_latency_s=2.0e-6,
)

# H100-SXM-class part under the same locked-clock convention the paper
# applies to the A100 (clock pinned below boost for stability): 132 SMs,
# 4th-gen tensor cores retiring twice the A100's MACs/SM/cycle per
# precision (DMMA 128, HMMA 2048), HBM3, 50 MB L2.  Locked peaks:
# 59.3 FP64 / 948.6 FP16->32 TFLOP/s at 1.755 GHz.
H100_SXM = GpuSpec(
    name="h100_sxm",
    num_sms=132,
    clock_hz=1.755e9,
    macs_per_sm_per_cycle={
        "fp64": 128.0,
        "fp16_fp32": 2048.0,
        "bf16_fp32": 2048.0,
        "fp32": 512.0,  # TF32-style path
    },
    dram_bandwidth=3.35e12,  # HBM3
    l2_bytes=50 * 1024 * 1024,
    l2_line_bytes=128,
    occupancy=1,
    launch_latency_s=2.0e-6,
    sm_max_bandwidth=45.0e9,
)

# V100-SXM2-class part: 80 SMs locked at the 1.38 GHz base clock,
# 1st-gen tensor cores (HMMA 512 MACs/SM/cycle), FP64 through the FMA
# pipes (32 MACs/SM/cycle), HBM2, 6 MB L2.  Deliberately has **no BF16
# entry** — the architecture predates bfloat16, and the registry treats a
# missing rate as "precision unsupported" (mac_rate raises).
V100_SXM2 = GpuSpec(
    name="v100_sxm2",
    num_sms=80,
    clock_hz=1.38e9,
    macs_per_sm_per_cycle={
        "fp64": 32.0,
        "fp16_fp32": 512.0,
        "fp32": 64.0,
    },
    dram_bandwidth=0.9e12,  # HBM2
    l2_bytes=6 * 1024 * 1024,
    l2_line_bytes=128,
    occupancy=1,
    launch_latency_s=2.0e-6,
    sm_max_bandwidth=20.0e9,
)

# RTX-3090-class consumer part: 82 SMs locked at the 1.395 GHz base clock,
# GDDR6X instead of HBM, tiny 6 MB L2, FP64 deliberately crippled to
# 1:64 of FP32 (2 MACs/SM/cycle) and FP16-with-FP32-accumulate tensor
# throughput halved as on GeForce parts (256 MACs/SM/cycle).  Smaller
# register/SMEM footprints per CTA let two CTAs co-reside per SM
# (occupancy=2), making this the registry's uneven-occupancy point:
# total_cta_slots = 164 on 82 SMs.
RTX3090 = GpuSpec(
    name="rtx3090",
    num_sms=82,
    clock_hz=1.395e9,
    macs_per_sm_per_cycle={
        "fp64": 2.0,
        "fp16_fp32": 256.0,
        "bf16_fp32": 256.0,
        "fp32": 128.0,  # TF32-style path
    },
    dram_bandwidth=0.936e12,  # GDDR6X
    l2_bytes=6 * 1024 * 1024,
    l2_line_bytes=128,
    occupancy=2,
    launch_latency_s=2.0e-6,
    sm_max_bandwidth=25.0e9,
)

HYPOTHETICAL_4SM = GpuSpec(
    name="hypothetical_4sm",
    num_sms=4,
    clock_hz=1.0e9,
    macs_per_sm_per_cycle=dict(_A100_RATES),
    # Scale bandwidth and L2 with width so the 4-SM device has the same
    # balance point as the A100 (the figures reason about utilization, not
    # absolute bandwidth).
    dram_bandwidth=1.555e12 * 4 / 108,
    l2_bytes=4 * 1024 * 1024,
    l2_line_bytes=128,
    occupancy=1,
    launch_latency_s=2.0e-6,
)

GPU_PRESETS: "dict[str, GpuSpec]" = {
    g.name: g
    for g in (A100, H100_SXM, V100_SXM2, RTX3090, HYPOTHETICAL_4SM)
}

#: The registry's default device — the paper's testbed.  Every layer that
#: needs a GPU and was given none resolves this name through the registry
#: (no module imports the A100 constant as a default anymore), so swapping
#: the fleet-wide default is a one-line change here.
DEFAULT_GPU_NAME = "a100"


def available_gpus() -> "tuple[str, ...]":
    """Sorted names of every registered preset."""
    return tuple(sorted(GPU_PRESETS))


def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU preset by name.

    Raises :class:`~repro.errors.ConfigurationError` naming every
    registered preset on an unknown name.
    """
    try:
        return GPU_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            "unknown GPU %r; available presets: %s (or pass a path to a "
            "custom spec JSON — see docs/HARDWARE.md)"
            % (name, ", ".join(available_gpus()))
        ) from None
    except TypeError:
        raise ConfigurationError(
            "GPU name must be a string, got %r" % (name,)
        ) from None


def default_gpu() -> GpuSpec:
    """The registry's default device (:data:`DEFAULT_GPU_NAME`)."""
    return get_gpu(DEFAULT_GPU_NAME)


def register_gpu(spec: GpuSpec, overwrite: bool = False) -> GpuSpec:
    """Add a spec to the registry under ``spec.name``.

    Registered names become valid everywhere a ``--gpu``/``gpu`` name is
    accepted (CLI, harness, cross-hardware sweeps).  Re-registering an
    existing name raises unless ``overwrite=True`` — silently shadowing
    the paper's ``a100`` would invalidate every committed number.
    """
    if not isinstance(spec, GpuSpec):
        raise ConfigurationError(
            "register_gpu needs a GpuSpec, got %r" % (spec,)
        )
    if spec.name in GPU_PRESETS and not overwrite:
        raise ConfigurationError(
            "GPU %r is already registered; pass overwrite=True to replace"
            % spec.name
        )
    GPU_PRESETS[spec.name] = spec
    return spec


def resolve_gpu(ref: "str | GpuSpec") -> GpuSpec:
    """Resolve a ``--gpu`` reference: preset name, spec JSON path, or spec.

    The rule every CLI flag and harness entry point shares: a
    :class:`GpuSpec` passes through; a string naming a registered preset
    resolves from the registry; a string that looks like a file path
    (ends in ``.json``, contains a path separator, or exists on disk)
    loads through :meth:`GpuSpec.from_json_file` with full validation.
    """
    if isinstance(ref, GpuSpec):
        return ref
    if not isinstance(ref, str):
        raise ConfigurationError(
            "GPU reference must be a preset name, spec-JSON path, or "
            "GpuSpec; got %r" % (ref,)
        )
    if ref in GPU_PRESETS:
        return GPU_PRESETS[ref]
    looks_like_path = (
        ref.endswith(".json") or os.sep in ref or os.path.exists(ref)
    )
    if looks_like_path:
        return GpuSpec.from_json_file(ref)
    return get_gpu(ref)  # raises, listing the presets
