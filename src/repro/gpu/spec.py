"""GPU hardware descriptions for the execution simulator.

A :class:`GpuSpec` captures the handful of architectural quantities the
paper's analysis depends on: SM count, (locked) clock, per-SM MAC throughput
per precision, DRAM bandwidth, L2 capacity, and kernel-launch latency.

The ``A100`` preset reproduces the paper's measurement configuration
(Section 6): 108 SMs locked at 1005 MHz, giving tensor-core peaks of
13.9 FP64 TFLOP/s and 222.3 FP16->32 TFLOP/s.  Working backwards, those
peaks correspond to exactly 64 and 1024 MACs/SM/cycle — the DMMA and HMMA
tensor-core rates — which is how the preset encodes them.

``HYPOTHETICAL_4SM`` is the four-SM processor used by the paper's
illustrative Figures 1–3 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig

__all__ = ["GpuSpec", "A100", "HYPOTHETICAL_4SM", "GPU_PRESETS", "get_gpu"]


@dataclass(frozen=True)
class GpuSpec:
    """Architectural parameters of a simulated GPU.

    Attributes
    ----------
    name:
        Preset identifier.
    num_sms:
        Streaming-multiprocessor core count (the paper's ``p``).
    clock_hz:
        SM clock.  The paper locks the A100 at 1005 MHz for stability.
    macs_per_sm_per_cycle:
        Map of dtype-config name to multiply-accumulates one SM retires per
        cycle at 100% utilization.
    dram_bandwidth:
        Device-memory bandwidth in bytes/s.
    l2_bytes:
        Last-level cache capacity.
    l2_line_bytes:
        Cache-line granularity for the detailed cache simulator.
    occupancy:
        CTAs co-resident per SM.  The paper's kernels use maximal tiles, so
        one CTA per SM is the realistic default.
    launch_latency_s:
        Fixed host-side kernel launch latency added to every kernel.
    sm_max_bandwidth:
        DRAM bandwidth one SM can sustain on its own, in bytes/s — bounded
        by per-SM outstanding-transaction limits, not by the device total.
        A kernel with only a few resident CTAs cannot saturate HBM; this is
        what makes single-tile data-parallel schedules slow on real
        hardware and is essential to the strong-scaling comparisons.
    """

    name: str
    num_sms: int
    clock_hz: float
    macs_per_sm_per_cycle: "dict[str, float]"
    dram_bandwidth: float
    l2_bytes: int
    l2_line_bytes: int = 128
    occupancy: int = 1
    launch_latency_s: float = 2.0e-6
    sm_max_bandwidth: float = 30.0e9

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ConfigurationError("num_sms must be positive")
        if self.clock_hz <= 0 or self.dram_bandwidth <= 0:
            raise ConfigurationError("clock and bandwidth must be positive")
        if self.l2_bytes < 0 or self.l2_line_bytes <= 0:
            raise ConfigurationError("invalid cache geometry")
        if self.occupancy <= 0:
            raise ConfigurationError("occupancy must be positive")

    # ------------------------------------------------------------------ #
    # Derived rates                                                       #
    # ------------------------------------------------------------------ #

    def mac_rate(self, dtype: DtypeConfig) -> float:
        """MACs/SM/cycle for a precision; raises for unknown precisions."""
        try:
            return self.macs_per_sm_per_cycle[dtype.name]
        except KeyError:
            raise ConfigurationError(
                "GPU %s has no MAC rate for dtype %r (knows: %s)"
                % (self.name, dtype.name, ", ".join(self.macs_per_sm_per_cycle))
            ) from None

    def peak_tflops(self, dtype: DtypeConfig) -> float:
        """Device peak in TFLOP/s (2 FLOPs per MAC)."""
        return (
            2.0 * self.mac_rate(dtype) * self.num_sms * self.clock_hz / 1e12
        )

    @property
    def bytes_per_cycle_per_sm(self) -> float:
        """Fair DRAM bandwidth share of one SM, in bytes per SM cycle."""
        return self.dram_bandwidth / (self.num_sms * self.clock_hz)

    @property
    def total_cta_slots(self) -> int:
        """Concurrently resident CTAs (num_sms * occupancy)."""
        return self.num_sms * self.occupancy

    def achieved_bandwidth(self, active_ctas) -> "float":
        """DRAM bandwidth achievable with ``active_ctas`` resident CTAs.

        ``min(device bandwidth, active * per-SM limit)``; accepts scalars
        or numpy arrays.  Never below one SM's worth.
        """
        active = np.maximum(np.minimum(active_ctas, self.total_cta_slots), 1)
        return np.minimum(self.dram_bandwidth, active * self.sm_max_bandwidth)

    def with_sms(self, num_sms: int) -> "GpuSpec":
        """A copy with a different SM count (scaling studies)."""
        return GpuSpec(
            name="%s_%dsm" % (self.name, num_sms),
            num_sms=num_sms,
            clock_hz=self.clock_hz,
            macs_per_sm_per_cycle=dict(self.macs_per_sm_per_cycle),
            dram_bandwidth=self.dram_bandwidth * num_sms / self.num_sms,
            l2_bytes=self.l2_bytes,
            l2_line_bytes=self.l2_line_bytes,
            occupancy=self.occupancy,
            launch_latency_s=self.launch_latency_s,
        )


# Tensor-core MAC rates per SM per cycle.  At 108 SMs x 1005 MHz these give
# the paper's measured peaks: 64 * 2 * 108 * 1.005e9 = 13.9 TFLOP/s (FP64)
# and 1024 * 2 * 108 * 1.005e9 = 222.3 TFLOP/s (FP16->32).
_A100_RATES = {
    "fp64": 64.0,
    "fp16_fp32": 1024.0,
    "bf16_fp32": 1024.0,
    "fp32": 90.0,  # ~19.5 TF fp32 via TF32-style paths; extension only
}

A100 = GpuSpec(
    name="a100",
    num_sms=108,
    clock_hz=1.005e9,
    macs_per_sm_per_cycle=dict(_A100_RATES),
    dram_bandwidth=1.555e12,  # A100-40GB HBM2e
    l2_bytes=40 * 1024 * 1024,
    l2_line_bytes=128,
    occupancy=1,
    launch_latency_s=2.0e-6,
)

HYPOTHETICAL_4SM = GpuSpec(
    name="hypothetical_4sm",
    num_sms=4,
    clock_hz=1.0e9,
    macs_per_sm_per_cycle=dict(_A100_RATES),
    # Scale bandwidth and L2 with width so the 4-SM device has the same
    # balance point as the A100 (the figures reason about utilization, not
    # absolute bandwidth).
    dram_bandwidth=1.555e12 * 4 / 108,
    l2_bytes=4 * 1024 * 1024,
    l2_line_bytes=128,
    occupancy=1,
    launch_latency_s=2.0e-6,
)

GPU_PRESETS = {g.name: g for g in (A100, HYPOTHETICAL_4SM)}


def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU preset by name."""
    try:
        return GPU_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            "unknown GPU %r; available: %s"
            % (name, ", ".join(sorted(GPU_PRESETS)))
        ) from None
