"""Kernel cost model: cycle costs for a (GPU, blocking, dtype) combination.

The model assigns cycle costs to the four workload components the paper's
Appendix A.1 identifies, and is therefore the simulator-side ground truth
the analytical model's ``{a, b, c, d}`` constants are calibrated against:

``a``  fixed per-CTA cost — launch/prologue plus the output-tile store;
``b``  conditional cost of writing a partial accumulator to global storage;
``c``  cost of one MAC-loop iteration;
``d``  per-peer cost of reading and accumulating one partial tile.

Compute cost.  One MAC-loop iteration performs ``BLK_M*BLK_N*BLK_K`` MACs;
an SM retires ``mac_rate`` of them per cycle at full tensor-core
utilization, derated by a *pipeline efficiency* that saturates with the
tile's work volume: small tiles cannot hide global/shared-memory latency
and spend a larger fraction of their schedule stalled (the paper's stated
drawback of small blocking factors, Section 3.2).  The efficiency curve
``eff = 1 - exp(-tile_macs / tau)`` is anchored so the paper's chosen
blocking factors achieve 99% of peak — exactly how the authors selected
them ("the smallest CTA-wide tile size capable of achieving 99% of the
GPU's peak", Section 5.1).

Memory-side costs (partial stores, fixup loads, tile stores) are modeled as
the moved bytes over one SM's fair share of DRAM bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..gemm.dtypes import DtypeConfig
from ..gemm.tiling import Blocking, TileGrid
from ..schedules.base import Schedule
from .cta import CtaTask, SegmentKind, TimedSegment
from .spec import GpuSpec

__all__ = ["KernelCostModel"]

# eff(default blocking) = 1 - exp(-_EFF_ANCHOR) = 0.99.
_EFF_ANCHOR = -math.log(1.0 - 0.99)

# Fixed prologue cycles: launch-to-first-MAC latency (grid setup, first
# cold fragment loads filling the software pipeline).
_PROLOGUE_CYCLES = 1500.0

# Flag publish/poll round-trip through L2 (memory-order release/acquire).
_SIGNAL_CYCLES = 120.0



@dataclass(frozen=True)
class KernelCostModel:
    """Cycle costs for kernels of one blocking at one precision on one GPU."""

    gpu: GpuSpec
    blocking: Blocking
    dtype: DtypeConfig

    def __post_init__(self) -> None:
        # Fail fast if the GPU has no rate for this precision.
        self.gpu.mac_rate(self.dtype)

    # ------------------------------------------------------------------ #
    # Component costs (cycles)                                            #
    # ------------------------------------------------------------------ #

    @property
    def pipeline_efficiency(self) -> float:
        """Fraction of the SM's MAC rate this blocking sustains.

        ``eff = 1 - exp(-(tile_macs / tau)^q)`` with ``tau`` anchored so
        the precision's shipped blocking achieves exactly 99% (how the
        paper chose those blockings) and ``q`` the precision's
        latency-hiding steepness (see
        :attr:`repro.gemm.dtypes.DtypeConfig.efficiency_exponent`).
        """
        default_macs = (
            self.dtype.default_blocking[0]
            * self.dtype.default_blocking[1]
            * self.dtype.default_blocking[2]
        )
        q = self.dtype.efficiency_exponent
        tau = default_macs / _EFF_ANCHOR ** (1.0 / q)
        return 1.0 - math.exp(-((self.blocking.tile_macs / tau) ** q))

    @property
    def cycles_per_iter(self) -> float:
        """``c``: cycles for one MAC-loop iteration."""
        rate = self.gpu.mac_rate(self.dtype) * self.pipeline_efficiency
        return self.blocking.tile_macs / rate

    @property
    def tile_accum_bytes(self) -> int:
        """Bytes of one tile's accumulator block (partials are stored in
        the accumulation precision)."""
        return (
            self.blocking.blk_m
            * self.blocking.blk_n
            * self.dtype.output_bytes
        )

    @property
    def _bytes_per_cycle(self) -> float:
        return self.gpu.bytes_per_cycle_per_sm

    @property
    def store_tile_cycles(self) -> float:
        """Output-tile store (part of ``a``)."""
        return self.tile_accum_bytes / self._bytes_per_cycle

    @property
    def prologue_cycles(self) -> float:
        """Fixed startup (the other part of ``a``)."""
        return _PROLOGUE_CYCLES

    @property
    def fixed_cycles(self) -> float:
        """``a``: total fixed cost of a tile-outputting CTA."""
        return self.prologue_cycles + self.store_tile_cycles

    @property
    def store_partials_cycles(self) -> float:
        """``b``: write one partial accumulator + publish the flag.

        Priced at one SM's fair DRAM share.  Together with ``d`` this puts
        the per-peer fixup cost at ~9 MAC-loop iterations for the shipped
        blockings — inside the (4c, 16c) band the paper's Figure 8c
        optimum (g_best = 8 for a 512-iteration tile) implies, and it
        reproduces all three Figure 8 grid-size optima exactly.
        """
        return self.tile_accum_bytes / self._bytes_per_cycle + _SIGNAL_CYCLES

    @property
    def fixup_cycles_per_peer(self) -> float:
        """``d``: read one peer's partials and accumulate them.

        The BLK_M*BLK_N adds retire far faster than the read streams in,
        so the add folds into a small constant on top of the read.
        """
        return self.tile_accum_bytes / self._bytes_per_cycle + _SIGNAL_CYCLES

    # ------------------------------------------------------------------ #
    # Schedule -> timed tasks                                             #
    # ------------------------------------------------------------------ #

    def build_tasks(self, schedule: Schedule, faults=None) -> "list[CtaTask]":
        """Attach cycle costs to every CTA of a schedule.

        Segment order follows the work item's execution order; the one
        partial store a CTA may perform is signalled on its own slot, and
        owners emit a ``WAIT`` + ``FIXUP`` pair per peer in reduction order.

        ``faults``, when given, is a :class:`~repro.faults.injector.
        FaultInjector`: DRAM/L2-latency-priced segments (partial stores,
        fixups, tile stores) are stretched by its per-(CTA, segment)
        memory-jitter multiplier at pricing time, so latency variance is
        part of the task's intrinsic cycle cost.  ``None`` (and a
        null-config injector, whose multipliers are exactly 1.0) leaves
        costs bitwise untouched.
        """
        if schedule.grid.blocking != self.blocking:
            raise ConfigurationError(
                "schedule blocked %s but cost model is for %s"
                % (schedule.grid.blocking, self.blocking)
            )

        def priced(cta: int, index: int, kind: SegmentKind, cycles: float) -> float:
            if faults is None:
                return cycles
            return cycles * faults.mem_latency_multiplier(cta, index, kind)

        tasks = []
        for w in schedule.work_items:
            segs = [TimedSegment(SegmentKind.PROLOGUE, self.prologue_cycles)]
            for s in w.segments:
                segs.append(
                    TimedSegment(
                        SegmentKind.COMPUTE,
                        self.cycles_per_iter * s.num_iters,
                    )
                )
                if s.is_owner:
                    for peer in s.peers:
                        segs.append(TimedSegment(SegmentKind.WAIT, 0.0, peer))
                        segs.append(
                            TimedSegment(
                                SegmentKind.FIXUP,
                                priced(
                                    w.cta,
                                    len(segs),
                                    SegmentKind.FIXUP,
                                    self.fixup_cycles_per_peer,
                                ),
                                peer,
                            )
                        )
                    segs.append(
                        TimedSegment(
                            SegmentKind.STORE_TILE,
                            priced(
                                w.cta,
                                len(segs),
                                SegmentKind.STORE_TILE,
                                self.store_tile_cycles,
                            ),
                        )
                    )
                else:
                    segs.append(
                        TimedSegment(
                            SegmentKind.STORE_PARTIALS,
                            priced(
                                w.cta,
                                len(segs),
                                SegmentKind.STORE_PARTIALS,
                                self.store_partials_cycles,
                            ),
                        )
                    )
                    segs.append(TimedSegment(SegmentKind.SIGNAL, 0.0, w.cta))
            tasks.append(CtaTask(cta=w.cta, segments=tuple(segs)))
        return tasks

    def build_task_arrays(self, schedule: Schedule, faults=None):
        """Price a schedule straight into :class:`~repro.gpu.backends.
        TaskArrays` — the array-backend twin of :meth:`build_tasks`.

        No ``CtaTask``/``TimedSegment`` objects are built: the schedule
        is flattened once (:func:`~repro.schedules.flatten.
        flatten_work_items`) and cycle costs are attached as vectorized
        array ops.  Pricing is bitwise identical to :meth:`build_tasks`,
        including memory-jitter fault draws, which go through the
        injector's bulk API against the exact same ``(cta, segment)``
        sites — so mixing this path and the scalar path in one process
        sees one consistent, once-logged set of draws.
        """
        import numpy as np

        from ..schedules.flatten import (
            KIND_COMPUTE,
            KIND_FIXUP,
            KIND_PROLOGUE,
            KIND_STORE_PARTIALS,
            KIND_STORE_TILE,
            MEMORY_KIND_CODES,
            flatten_work_items,
        )
        from .backends import TaskArrays

        if schedule.grid.blocking != self.blocking:
            raise ConfigurationError(
                "schedule blocked %s but cost model is for %s"
                % (schedule.grid.blocking, self.blocking)
            )
        flat = flatten_work_items(schedule)
        cycles = np.zeros(flat.num_segments, dtype=np.float64)
        kinds = flat.kinds
        cycles[kinds == KIND_PROLOGUE] = self.prologue_cycles
        cmask = kinds == KIND_COMPUTE
        cycles[cmask] = self.cycles_per_iter * flat.iters[cmask]
        cycles[kinds == KIND_FIXUP] = self.fixup_cycles_per_peer
        cycles[kinds == KIND_STORE_TILE] = self.store_tile_cycles
        cycles[kinds == KIND_STORE_PARTIALS] = self.store_partials_cycles
        if faults is not None:
            mem = np.isin(kinds, np.array(MEMORY_KIND_CODES, dtype=kinds.dtype))
            if mem.any():
                rows = flat.rows()
                local = flat.local_indices()
                cycles[mem] = cycles[mem] * faults.mem_latency_multipliers(
                    flat.ctas[rows[mem]], local[mem]
                )
        return TaskArrays(
            flat.ctas, flat.seg_off, kinds, cycles, flat.slots
        )

    # ------------------------------------------------------------------ #
    # Convenience aggregates                                              #
    # ------------------------------------------------------------------ #

    def tile_compute_cycles(self, grid: TileGrid) -> float:
        """Cycles of one full tile's MAC loop under this model."""
        return self.cycles_per_iter * grid.iters_per_tile

    def abcd(self) -> "tuple[float, float, float, float]":
        """The ground-truth (a, b, c, d) this model embodies."""
        return (
            self.fixed_cycles,
            self.store_partials_cycles,
            self.cycles_per_iter,
            self.fixup_cycles_per_peer,
        )
