"""Timed CTA tasks: the executor's unit of scheduling.

A :class:`CtaTask` is the *timing* counterpart of a
:class:`~repro.schedules.workitem.CtaWorkItem`: an ordered list of
:class:`TimedSegment`\\ s with cycle costs attached by a kernel cost model.
Segment kinds mirror the operations in the paper's listings:

====================  ====================================================
``COMPUTE``           a run of MAC-loop iterations
``STORE_PARTIALS``    write a partial accumulator to temporary storage
``SIGNAL``            publish a flag (instantaneous; timestamp recorded)
``WAIT``              spin until another CTA's flag is published
``FIXUP``             read + accumulate one peer's partials
``STORE_TILE``        epilogue: write the output tile to C
``PROLOGUE``          fixed per-CTA startup (launch, first cold loads)
====================  ====================================================

``WAIT`` segments cost no intrinsic cycles; their duration is whatever the
executor observes.  ``SIGNAL`` publishes the CTA's own slot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = ["SegmentKind", "TimedSegment", "CtaTask"]


class SegmentKind(enum.Enum):
    PROLOGUE = "prologue"
    COMPUTE = "compute"
    STORE_PARTIALS = "store_partials"
    SIGNAL = "signal"
    WAIT = "wait"
    FIXUP = "fixup"
    STORE_TILE = "store_tile"


@dataclass(frozen=True)
class TimedSegment:
    """One timed step of a CTA.

    ``cycles`` is the intrinsic duration; ``slot`` identifies the partial-
    sum slot for ``SIGNAL`` (own) and ``WAIT``/``FIXUP`` (peer) segments.
    """

    kind: SegmentKind
    cycles: float = 0.0
    slot: "int | None" = None

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ConfigurationError(
                "segment cycles must be non-negative, got %r" % (self.cycles,)
            )
        if self.kind in (SegmentKind.WAIT, SegmentKind.FIXUP) and self.slot is None:
            raise ConfigurationError("%s segments need a peer slot" % self.kind)
        if self.kind is SegmentKind.WAIT and self.cycles != 0.0:
            raise ConfigurationError(
                "WAIT has no intrinsic cost; its duration is observed"
            )


@dataclass(frozen=True)
class CtaTask:
    """An ordered, costed list of segments for one CTA."""

    cta: int
    segments: "tuple[TimedSegment, ...]" = field(default=())

    def __post_init__(self) -> None:
        if self.cta < 0:
            raise ConfigurationError("negative CTA index %d" % self.cta)
        signals = [s for s in self.segments if s.kind is SegmentKind.SIGNAL]
        if len(signals) > 1:
            raise ConfigurationError(
                "CTA %d signals %d times; the one-partial-slot-per-CTA "
                "protocol allows at most one" % (self.cta, len(signals))
            )
        for s in signals:
            if s.slot is not None and s.slot != self.cta:
                raise ConfigurationError(
                    "CTA %d may only signal its own slot, not %d"
                    % (self.cta, s.slot)
                )

    @property
    def intrinsic_cycles(self) -> float:
        """Cycles excluding wait time — the CTA's own workload."""
        return sum(s.cycles for s in self.segments)

    @property
    def wait_slots(self) -> "tuple[int, ...]":
        return tuple(
            s.slot for s in self.segments if s.kind is SegmentKind.WAIT
        )

    @property
    def signals_slot(self) -> "int | None":
        for s in self.segments:
            if s.kind is SegmentKind.SIGNAL:
                return self.cta if s.slot is None else s.slot
        return None
