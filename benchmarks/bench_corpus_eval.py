"""Corpus-evaluation engine throughput (the perf budget of every bench).

Every table/figure bench in this directory pays one or more corpus sweeps
through :func:`repro.harness.evaluate_corpus`.  This bench times the engine
itself — FP64 and FP16->FP32 over the paper corpus — and records the
numbers next to the seed engine's timings so regressions (or wins) in the
vectorized fast paths show up as first-class artifacts.

Two numbers per precision:

* **cold** — first evaluation in the process.  Includes calibration (via
  the persistent cache when one is populated) and numpy warmup.
* **warm** — steady-state re-evaluation, the cost every *additional*
  table/figure sharing the corpus would pay without the content-keyed
  memo in :mod:`repro.harness.parallel` (with it, they pay ~0).

The artifact is written both under ``benchmarks/artifacts/`` and as
``BENCH_corpus_eval.json`` at the repo root (the committed before/after
record).  ``REPRO_CORPUS_SIZE`` shrinks the corpus for smoke runs; the
5x acceptance assertion only fires on the full 32,824-shape corpus.
"""

import os
import time

from repro.corpus import PAPER_CORPUS, generate_corpus
from repro.gemm import FP16_FP32, FP64
from repro.gpu import A100
from repro.harness import evaluate_corpus, write_json

from .common import banner, corpus_spec, emit

#: Seed-engine timings (pre-vectorization), measured on the reference
#: container over the full 32,824-shape FP64 corpus.  "cold" is the first
#: evaluation in a fresh process; "warm" is a steady-state re-evaluation.
SEED_BASELINE_S = {"fp64_cold": 9.66, "fp64_warm": 3.18}

ROOT_ARTIFACT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_corpus_eval.json",
)


def run_corpus_eval(shapes):
    """Time cold/warm FP64 and FP16->FP32 sweeps; return seconds."""
    timings = {}
    t0 = time.perf_counter()
    evaluate_corpus(shapes, FP64, A100)
    timings["fp64_cold_s"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    evaluate_corpus(shapes, FP64, A100)
    timings["fp64_warm_s"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    evaluate_corpus(shapes, FP16_FP32, A100)
    timings["fp16_fp32_s"] = time.perf_counter() - t0
    return timings


def test_corpus_eval_engine(benchmark):
    spec = corpus_spec()
    shapes = generate_corpus(spec)
    timings = benchmark.pedantic(
        run_corpus_eval, args=(shapes,), rounds=1, iterations=1
    )
    n = shapes.shape[0]
    full = spec.size == PAPER_CORPUS.size

    banner("Corpus evaluation engine (%d shapes)" % n)
    print("FP64 cold      : %7.3f s  (%8.0f shapes/s)"
          % (timings["fp64_cold_s"], n / timings["fp64_cold_s"]))
    print("FP64 warm      : %7.3f s  (%8.0f shapes/s)"
          % (timings["fp64_warm_s"], n / timings["fp64_warm_s"]))
    print("FP16->FP32     : %7.3f s  (%8.0f shapes/s)"
          % (timings["fp16_fp32_s"], n / timings["fp16_fp32_s"]))
    if full:
        print("seed FP64 cold : %7.3f s  -> %.1fx faster"
              % (SEED_BASELINE_S["fp64_cold"],
                 SEED_BASELINE_S["fp64_cold"] / timings["fp64_cold_s"]))
        print("seed FP64 warm : %7.3f s  -> %.1fx faster"
              % (SEED_BASELINE_S["fp64_warm"],
                 SEED_BASELINE_S["fp64_warm"] / timings["fp64_warm_s"]))

    payload = {
        "corpus_size": int(n),
        "full_corpus": bool(full),
        "measured_s": timings,
        "seed_baseline_s": SEED_BASELINE_S,
        "shapes_per_s": {k: n / v for k, v in timings.items()},
    }
    emit("corpus_eval", payload)
    if full:
        write_json(ROOT_ARTIFACT, payload)
        # Acceptance bar: >= 5x over the seed single-process engine.
        assert SEED_BASELINE_S["fp64_cold"] / timings["fp64_cold_s"] >= 5.0
    # Engine throughput floor holds at any corpus size.
    assert n / timings["fp64_warm_s"] > 5_000
