"""Table 1: Stream-K FP64 relative performance over the evaluation corpus.

Paper (NVIDIA A100, 32,824 shapes):

            vs CUTLASS 64x64x16   vs cuBLAS   vs cuBLAS >150 ops/B   vs oracle
  Average   1.23x                 1.06x       1.03x                  1.05x
  StdDev    0.45                  0.10        0.03                   0.09
  Min       0.77x                 0.68x       0.99x                  0.70x
  Max       5.63x                 2.55x       1.24x                  1.64x
"""

from repro.gemm import FP64
from repro.harness import relative_performance_table
from repro.metrics import format_relative_table

from .common import banner, corpus_spec, emit, paper_vs_measured

PAPER = {
    "vs CUTLASS 64x64x16": (1.23, 0.45, 0.77, 5.63),
    "vs cuBLAS": (1.06, 0.10, 0.68, 2.55),
    "vs cuBLAS >150 ops/B": (1.03, 0.03, 0.99, 1.24),
    "vs CUTLASS oracle": (1.05, 0.09, 0.70, 1.64),
}


def test_table1_fp64(benchmark):
    spec = corpus_spec()
    cols = benchmark.pedantic(
        relative_performance_table, args=(FP64,), kwargs={"spec": spec},
        rounds=1, iterations=1,
    )
    banner("Table 1. Stream-K FP64 Relative Performance (%d shapes)" % spec.size)
    print(format_relative_table(cols, title=""))
    print()
    for (name, rp), paper_key in zip(cols.items(), PAPER):
        pa, ps, pmin, pmax = PAPER[paper_key]
        paper_vs_measured(
            [
                (name + " avg", "%.2fx" % pa, "%.2fx" % rp.average),
                (name + " std", "%.2f" % ps, "%.2f" % rp.stddev),
                (name + " min", "%.2fx" % pmin, "%.2fx" % rp.minimum),
                (name + " max", "%.2fx" % pmax, "%.2fx" % rp.maximum),
            ]
        )
        print()
    emit("table1_fp64", {"measured": cols, "paper": PAPER})

    # Directional assertions: who wins must match the paper.
    assert cols["vs CUTLASS 64x64x16"].average > 1.1
    assert cols["vs cuBLAS"].average > 1.0
    assert cols["vs cuBLAS >150 ops/B"].minimum > 0.95
    assert cols["vs CUTLASS oracle"].average > 1.0
