"""Figure 4: the 32,824-shape evaluation corpus.

Paper: m, n, k log-sampled in [128, 8192]; computation volumes spanning
~six orders of magnitude (the extreme corners 128^3 .. 8192^3 span 5.4
decades; the realized log-sample spans slightly less).
"""

from repro.harness import fig4_corpus_statistics

from .common import banner, corpus_spec, emit, paper_vs_measured


def test_fig4_corpus(benchmark):
    spec = corpus_spec()
    out = benchmark.pedantic(
        fig4_corpus_statistics, args=(spec,), rounds=1, iterations=1
    )
    banner("Figure 4. Evaluation corpus")
    paper_vs_measured(
        [
            ("shapes", "32,824", "{:,}".format(out["count"])),
            ("axis domain", "128..8192", "%d..%d" % (out["axis_min"], out["axis_max"])),
            ("volume span (decades)", "~6", "%.1f" % out["volume_orders_of_magnitude"]),
        ]
    )
    emit("fig4_corpus", out)
    assert out["count"] == spec.size
    assert out["axis_min"] >= 128 and out["axis_max"] <= 8192
    assert out["volume_orders_of_magnitude"] > 4.5
