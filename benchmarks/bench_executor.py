"""Executor backend throughput: the oracle vs the vectorized core.

The pure-Python :class:`~repro.gpu.executor.Executor` is the repo's
bitwise oracle; the ``numpy`` backend re-runs the same discrete-event
model over flat :class:`~repro.gpu.backends.TaskArrays`.  This bench
times both ends of that contract — ``build_tasks`` + oracle run against
``build_task_arrays`` + array run — across every registered
decomposition at two problem sizes, checks the traces agree bitwise,
and records segment throughput.

Two numbers per cell, following ``bench_corpus_eval``'s convention:

* **cold** — first simulation of a fresh schedule.  Pays the work-item
  flattening that :func:`~repro.schedules.flatten.flatten_work_items`
  memoizes per schedule.
* **warm** — steady-state re-simulation (min over ``REPRO_BENCH_ROUNDS``
  rounds), the cost every *additional* pricing of the same schedule
  pays: a fault-sweep cell, a backend comparison, a repeated run.

The artifact lands under ``benchmarks/artifacts/`` and, for a full-scale
run, as ``BENCH_executor.json`` at the repo root (the committed
before/after record).  ``REPRO_BENCH_EXECUTOR_MN`` shrinks the size grid
for smoke runs; the 10x acceptance assertion fires only at full scale,
and a reduced-scale floor of half the expected smoke speedup catches
>2x regressions in CI without tripping on box noise.
"""

import os

from repro.faults.sweep import build_registered_schedule
from repro.gemm import FP64, Blocking, GemmProblem, TileGrid
from repro.gpu import A100, Executor, KernelCostModel
from repro.harness import write_json
from repro.schedules.registry import DECOMPOSITION_NAMES

from .common import banner, emit, geomean, min_of_k

#: Full-scale size grid (m = n, fixed k).  Crosses both array regimes:
#: every Stream-K family stays single-wave (vectorized path) while
#: data-parallel and fixed-split go multi-wave (event-loop path).
FULL_MN = (4096, 8192)
_K = 4096

#: Acceptance bar at full scale: warm geomean speedup over the oracle.
FULL_SPEEDUP_FLOOR = 10.0
#: Reduced-scale CI floor — half the expected smoke-scale speedup, so a
#: >2x backend regression fails the perf smoke job.
SMOKE_SPEEDUP_FLOOR = 5.0

ROOT_ARTIFACT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_executor.json",
)


def _size_grid() -> "tuple[int, ...]":
    env = os.environ.get("REPRO_BENCH_EXECUTOR_MN")
    if env:
        return tuple(int(s) for s in env.split(",") if s.strip())
    return FULL_MN


def _rounds() -> int:
    return int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))


def run_backend_grid(sizes, rounds):
    """Time oracle vs numpy backend over families x sizes; return cells."""
    blocking = Blocking(*FP64.default_blocking)
    cost = KernelCostModel(gpu=A100, blocking=blocking, dtype=FP64)
    slots = A100.total_cta_slots
    cells = []
    for mn in sizes:
        grid = TileGrid(GemmProblem(mn, mn, _K, dtype=FP64), blocking)
        for name in DECOMPOSITION_NAMES:
            schedule = build_registered_schedule(name, grid, A100)

            def oracle():
                return Executor(slots).run(cost.build_tasks(schedule))

            def fast():
                return Executor(slots, backend="numpy").run_arrays(
                    cost.build_task_arrays(schedule)
                )

            # Cold first: the schedule is fresh, so this pays flattening.
            cold = min_of_k(fast, k=1)
            oracle_t = min_of_k(oracle, k=rounds)
            warm = min_of_k(fast, k=rounds)
            # The contract behind the speedup: same trace, bitwise.
            assert fast().makespan == oracle().makespan
            segs = cost.build_task_arrays(schedule).num_segments
            cells.append(
                {
                    "family": name,
                    "mn": mn,
                    "k": _K,
                    "num_segments": int(segs),
                    "oracle_s": oracle_t,
                    "fast_cold_s": cold["best_s"],
                    "fast_warm_s": warm,
                    "speedup_cold": oracle_t["best_s"] / cold["best_s"],
                    "speedup_warm": oracle_t["best_s"] / warm["best_s"],
                    "oracle_segs_per_s": segs / oracle_t["best_s"],
                    "fast_segs_per_s": segs / warm["best_s"],
                }
            )
    return cells


def test_executor_backend_throughput(benchmark):
    sizes = _size_grid()
    rounds = _rounds()
    cells = benchmark.pedantic(
        run_backend_grid, args=(sizes, rounds), rounds=1, iterations=1
    )
    full = sizes == FULL_MN
    geo_cold = geomean(c["speedup_cold"] for c in cells)
    geo_warm = geomean(c["speedup_warm"] for c in cells)

    banner("Executor backends: oracle vs numpy (%d cells)" % len(cells))
    print(
        "%-22s %6s %9s  %9s %9s  %7s %7s"
        % ("family", "m=n", "segments", "oracle", "numpy", "cold", "warm")
    )
    for c in cells:
        print(
            "%-22s %6d %9d  %8.4fs %8.4fs  %6.1fx %6.1fx"
            % (
                c["family"],
                c["mn"],
                c["num_segments"],
                c["oracle_s"]["best_s"],
                c["fast_warm_s"]["best_s"],
                c["speedup_cold"],
                c["speedup_warm"],
            )
        )
    print(
        "geomean speedup     : %5.1fx cold, %5.1fx warm  (floor %.0fx %s)"
        % (
            geo_cold,
            geo_warm,
            FULL_SPEEDUP_FLOOR if full else SMOKE_SPEEDUP_FLOOR,
            "full" if full else "smoke",
        )
    )

    payload = {
        "sizes": list(sizes),
        "rounds": rounds,
        "full_scale": bool(full),
        "cells": cells,
        "geomean_speedup_cold": geo_cold,
        "geomean_speedup_warm": geo_warm,
        "speedup_floor": FULL_SPEEDUP_FLOOR if full else SMOKE_SPEEDUP_FLOOR,
    }
    emit("executor", payload)
    if full:
        write_json(ROOT_ARTIFACT, payload)
        # Acceptance bar: >= 10x steady-state over the bitwise oracle.
        assert geo_warm >= FULL_SPEEDUP_FLOOR
    else:
        # CI perf smoke: fail on a >2x regression from the expected
        # smoke-scale speedup, with headroom for box noise.
        assert geo_warm >= SMOKE_SPEEDUP_FLOOR
