"""Ablation: the Section 5.2 hybridization choices.

Compares, over a corpus slice simulated with the event executor on the
A100, the three Stream-K scheduling policies — basic (whole problem
balanced), data-parallel + one-tile Stream-K, and the shipped two-tile
Stream-K + data-parallel — plus plain data-parallel as the floor.  The
design claim being ablated: two-tile should be the best or tied-best
policy nearly everywhere.
"""

import numpy as np

from repro.corpus import CorpusSpec, generate_corpus
from repro.ensembles import StreamKLibrary
from repro.gemm import FP16_FP32, GemmProblem, TileGrid
from repro.gpu import A100, simulate_kernel
from repro.schedules import (
    data_parallel_schedule,
    dp_one_tile_schedule,
    stream_k_schedule,
)

from .common import banner, emit

# Event-simulated per-problem, so a slice rather than the full corpus.
SLICE = CorpusSpec(size=120, seed=11)


def run_slice():
    shapes = generate_corpus(SLICE)
    lib = StreamKLibrary(A100, FP16_FP32)
    times = {
        "data_parallel": [],
        "basic_stream_k": [],
        "dp_one_tile": [],
        "two_tile (shipped)": [],
    }
    for m, n, k in shapes:
        problem = GemmProblem(int(m), int(n), int(k), dtype=FP16_FP32)
        grid = TileGrid(problem, lib.blocking)
        p = A100.num_sms
        times["data_parallel"].append(
            simulate_kernel(data_parallel_schedule(grid), A100).time_s
        )
        times["basic_stream_k"].append(
            simulate_kernel(
                stream_k_schedule(grid, min(p, grid.total_iters)), A100
            ).time_s
        )
        times["dp_one_tile"].append(
            simulate_kernel(dp_one_tile_schedule(grid, p), A100).time_s
        )
        # The shipped policy: two-tile hybrid with the A.1 model choosing
        # the grid in the fewer-tiles-than-SMs regime.
        times["two_tile (shipped)"].append(
            simulate_kernel(lib.build_schedule(problem), A100).time_s
        )
    return {k: np.array(v) for k, v in times.items()}


def test_ablation_hybrid(benchmark):
    times = benchmark.pedantic(run_slice, rounds=1, iterations=1)
    banner(
        "Ablation: hybridization policy (%d shapes, event-simulated)" % SLICE.size
    )
    base = times["two_tile (shipped)"]
    for name, t in times.items():
        rel = t / base
        wins = float(np.mean(rel >= 0.999))
        print(
            "%-20s geomean vs shipped: %.3fx   (shipped at least ties on %4.0f%%)"
            % (name, float(np.exp(np.log(rel).mean())), 100 * wins)
        )
    emit(
        "ablation_hybrid",
        {k: float(np.exp(np.log(v / base).mean())) for k, v in times.items()},
    )

    # The shipped two-tile policy wins on (geometric) average against each
    # alternative; individual memory-bound shapes may still prefer the
    # fully aligned data-parallel schedule (the skew cost the hybrid
    # bounds but cannot always eliminate).
    for name in ("data_parallel", "basic_stream_k", "dp_one_tile"):
        rel = times[name] / base
        assert float(np.exp(np.log(rel).mean())) > 0.99
        assert rel.min() > 0.45
