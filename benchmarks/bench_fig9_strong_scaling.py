"""Figure 9: strong scaling of 128x128x384 on the 4-SM GPU.

Paper: data-parallel confines the enormous k dimension to a single CTA
(25% of the machine); Stream-K parallelizes across k and uses all four SMs.
"""

from repro.harness import fig9_strong_scaling

from .common import banner, emit, paper_vs_measured


def test_fig9_strong_scaling(benchmark):
    out = benchmark.pedantic(fig9_strong_scaling, rounds=1, iterations=1)
    banner("Figure 9. Strong scaling, 128x128x384 on 4 SMs")
    paper_vs_measured(
        [
            ("data-parallel CTAs", "1", str(out["data_parallel"]["g"])),
            ("data-parallel SM use", "25%", "%.0f%%" % (100 * out["data_parallel"]["utilization"])),
            ("Stream-K CTAs", "4", str(out["stream_k"]["g"])),
            ("Stream-K SM use", "~100%", "%.0f%%" % (100 * out["stream_k"]["utilization"])),
        ]
    )
    print("speedup: %.2fx" % out["speedup"])
    emit("fig9_strong_scaling", out)

    assert out["data_parallel"]["g"] == 1
    assert out["stream_k"]["g"] == 4
    assert out["speedup"] > 2.0
