"""Figure 5: FP16->32 roofline utilization landscapes over the corpus.

Paper: the data-parallel singleton (5a) and cuBLAS (5b) show wide dynamic
ranges per intensity regime; the oracle (5c) is tighter; Stream-K (5d) is
the tightest and hugs the ceilings.
"""

from repro.gemm import FP16_FP32
from repro.harness import roofline_landscapes
from repro.metrics import format_roofline_rows

from .common import banner, corpus_spec, emit


def test_fig5_roofline_fp16(benchmark):
    spec = corpus_spec()
    out = benchmark.pedantic(
        roofline_landscapes, args=(FP16_FP32,), kwargs={"spec": spec},
        rounds=1, iterations=1,
    )
    banner("Figure 5. FP16->32 roofline landscapes (%d shapes)" % spec.size)
    for system, data in out.items():
        print()
        print(
            format_roofline_rows(
                data["summary"],
                "%s  (band width %.1f points, median %.1f%% of peak)"
                % (system, data["band_width"], data["median_percent_of_peak"]),
            )
        )
    emit("fig5_roofline_fp16", out)

    # The paper's band-ordering claim.
    assert out["stream_k"]["band_width"] < out["data_parallel_singleton"]["band_width"]
    assert out["stream_k"]["band_width"] < out["cublas_like"]["band_width"]
