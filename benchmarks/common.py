"""Shared benchmark-harness utilities.

Every bench regenerates one paper table/figure: it runs the experiment
(timed by pytest-benchmark, one round — these are sweeps, not
microbenchmarks), prints the same rows the paper reports side by side with
the paper's published values, and drops a JSON artifact under
``benchmarks/artifacts/``.

Set ``REPRO_CORPUS_SIZE`` to shrink the corpus for smoke runs; the default
is the paper's full 32,824 shapes.
"""

import gc
import math
import os
import time

from repro.corpus import PAPER_CORPUS, CorpusSpec
from repro.harness import write_json

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")


def min_of_k(fn, k: int = 3) -> "dict[str, float]":
    """Time ``fn()`` ``k`` times; report best, mean and population stddev.

    Each repetition is preceded by a ``gc.collect()`` so one round's
    garbage (the oracle's task objects, mainly) is not billed to the
    next.  ``best_s`` is the headline number — for deterministic CPU
    work the minimum is the least-noise estimator — and ``pstdev_s``
    (population stddev: these are all k runs, not a sample) records how
    noisy the box was.
    """
    if k < 1:
        raise ValueError("need at least one repetition, got k=%d" % k)
    times = []
    for _ in range(k):
        gc.collect()
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    mean = sum(times) / k
    return {
        "best_s": min(times),
        "mean_s": mean,
        "pstdev_s": math.sqrt(sum((t - mean) ** 2 for t in times) / k),
        "rounds": float(k),
    }


def geomean(values) -> float:
    """Geometric mean of positive ratios (speedups)."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of no values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def corpus_spec() -> CorpusSpec:
    """The corpus used by the corpus-scale benches (env-overridable)."""
    size = os.environ.get("REPRO_CORPUS_SIZE")
    if size:
        return CorpusSpec(size=int(size))
    return PAPER_CORPUS


def emit(name: str, payload) -> str:
    """Write a bench's artifact and return its path."""
    return write_json(os.path.join(ARTIFACT_DIR, name + ".json"), payload)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def paper_vs_measured(rows: "list[tuple[str, str, str]]") -> None:
    """Print a (quantity, paper, measured) comparison block."""
    width = max(len(r[0]) for r in rows)
    print("%-*s  %12s  %12s" % (width, "", "paper", "measured"))
    for label, paper, measured in rows:
        print("%-*s  %12s  %12s" % (width, label, paper, measured))
