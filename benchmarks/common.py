"""Shared benchmark-harness utilities.

Every bench regenerates one paper table/figure: it runs the experiment
(timed by pytest-benchmark, one round — these are sweeps, not
microbenchmarks), prints the same rows the paper reports side by side with
the paper's published values, and drops a JSON artifact under
``benchmarks/artifacts/``.

Set ``REPRO_CORPUS_SIZE`` to shrink the corpus for smoke runs; the default
is the paper's full 32,824 shapes.
"""

import os

from repro.corpus import PAPER_CORPUS, CorpusSpec
from repro.harness import write_json

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")


def corpus_spec() -> CorpusSpec:
    """The corpus used by the corpus-scale benches (env-overridable)."""
    size = os.environ.get("REPRO_CORPUS_SIZE")
    if size:
        return CorpusSpec(size=int(size))
    return PAPER_CORPUS


def emit(name: str, payload) -> str:
    """Write a bench's artifact and return its path."""
    return write_json(os.path.join(ARTIFACT_DIR, name + ".json"), payload)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def paper_vs_measured(rows: "list[tuple[str, str, str]]") -> None:
    """Print a (quantity, paper, measured) comparison block."""
    width = max(len(r[0]) for r in rows)
    print("%-*s  %12s  %12s" % (width, "", "paper", "measured"))
    for label, paper, measured in rows:
        print("%-*s  %12s  %12s" % (width, label, paper, measured))
