"""Figure 1: data-parallel quantization on the hypothetical 4-SM GPU.

Paper: 384x384x128 GEMM; (a) 128x128 tiles -> 9 CTAs, 75% utilization
ceiling; (b) 128x64 tiles -> 18 CTAs, 90% ceiling.
"""

from repro.harness import fig1_data_parallel_quantization

from .common import banner, emit, paper_vs_measured


def test_fig1_data_parallel(benchmark):
    out = benchmark.pedantic(
        fig1_data_parallel_quantization, rounds=1, iterations=1
    )
    banner("Figure 1. Data-parallel schedules, 384x384x128 on 4 SMs")
    paper_vs_measured(
        [
            ("(a) 128x128 tiles", "9", str(out["a_128x128"]["tiles"])),
            ("(a) utilization ceiling", "75%", "%.0f%%" % (100 * out["a_128x128"]["utilization"])),
            ("(b) 128x64 tiles", "18", str(out["b_128x64"]["tiles"])),
            ("(b) utilization ceiling", "90%", "%.0f%%" % (100 * out["b_128x64"]["utilization"])),
        ]
    )
    emit("fig1_data_parallel", out)
    assert abs(out["a_128x128"]["utilization"] - 0.75) < 1e-9
    assert abs(out["b_128x64"]["utilization"] - 0.90) < 1e-9
    assert out["a_128x128"]["max_rel_error"] < 1e-4  # fp16 inputs, fp32 accum
