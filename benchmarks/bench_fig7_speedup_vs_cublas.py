"""Figure 7: Stream-K speedup vs the cuBLAS-like ensemble.

Paper: in the compute-bound regime (FP64 >150 ops/B, FP16->32 >400 ops/B)
Stream-K achieves "unilaterally higher performance" — virtually no
slowdowns; below the thresholds the relative performance is noisy.
"""

import numpy as np
import pytest

from repro.gemm import FP16_FP32, FP64
from repro.harness import fig7_speedup_vs_cublas

from .common import banner, corpus_spec, emit


@pytest.mark.parametrize("dtype", [FP64, FP16_FP32], ids=lambda d: d.name)
def test_fig7_speedup_vs_cublas(benchmark, dtype):
    spec = corpus_spec()
    out = benchmark.pedantic(
        fig7_speedup_vs_cublas, args=(dtype,), kwargs={"spec": spec},
        rounds=1, iterations=1,
    )
    banner("Figure 7. %s Stream-K speedup vs cuBLAS-like" % dtype.name)
    print("overall       :", out["overall"])
    print("compute-bound :", out["compute_bound"], "(n=%d)" % out["compute_bound_count"])
    print("slowdown fraction overall        : %.3f" % out["slowdown_fraction_overall"])
    print("slowdown fraction compute-bound  : %.3f" % out["slowdown_fraction_compute_bound"])
    # the speedup-vs-intensity series (the scatter of the figure),
    # summarized as deciles of speedup by intensity halves:
    med = float(np.median(out["intensity"]))
    lo = out["speedup"][out["intensity"] < med]
    hi = out["speedup"][out["intensity"] >= med]
    print("low-intensity half  median speedup: %.2fx" % float(np.median(lo)))
    print("high-intensity half median speedup: %.2fx" % float(np.median(hi)))
    emit(
        "fig7_speedup_%s" % dtype.name,
        {k: v for k, v in out.items() if k not in ("intensity", "speedup")},
    )

    assert out["compute_bound"].minimum > 0.85
    assert out["slowdown_fraction_compute_bound"] < 0.10
    # the noisy sub-threshold regime is allowed to contain slowdowns
    assert out["slowdown_fraction_overall"] >= out["slowdown_fraction_compute_bound"]
