"""Ablation: Morton-order tile traversal (the paper's Section 7 future work).

"For future works, we identify cache-aware, tile-access patterns such as
Morton Order, an avenue for optimization."  We replay the fragment access
stream of persistent data-parallel schedules under row-major and Morton
tile orders through the L2 simulator on a cache-constrained device, where
the Z-curve's square footprint should reduce input DRAM traffic for
wide tile grids.
"""

import dataclasses

from repro.gemm import FP16_FP32, Blocking, GemmProblem, TileGrid, get_traversal
from repro.gpu import A100, CacheSimMemoryModel, Executor, KernelCostModel
from repro.schedules import persistent_data_parallel_schedule

from .common import banner, emit

# Constrain L2 so traversal order matters (a full 40 MB L2 hides it for
# these medium shapes).
GPU = dataclasses.replace(A100, l2_bytes=2 * 1024 * 1024)

SHAPES = [(4096, 4096, 512), (2048, 8192, 256), (6144, 3072, 384)]


def traffic_for(order: str, problem: GemmProblem) -> float:
    blk = Blocking(128, 128, 32)
    grid = TileGrid(problem, blk)
    traversal = get_traversal(order, grid.tiles_m, grid.tiles_n)
    sched = persistent_data_parallel_schedule(grid, GPU.num_sms, traversal)
    cost = KernelCostModel(gpu=GPU, blocking=blk, dtype=problem.dtype)
    trace = Executor(GPU.total_cta_slots).run(cost.build_tasks(sched))
    tr = CacheSimMemoryModel().traffic(sched, GPU, cost, trace)
    return tr.input_a + tr.input_b


def run_ablation():
    rows = []
    for m, n, k in SHAPES:
        problem = GemmProblem(m, n, k, dtype=FP16_FP32)
        rows.append(
            (
                (m, n, k),
                traffic_for("row_major", problem),
                traffic_for("morton", problem),
            )
        )
    return rows


def test_ablation_morton(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    banner("Ablation: Morton vs row-major tile order (2 MiB L2, cache replay)")
    print("%-20s %16s %16s %8s" % ("shape", "row-major B", "morton B", "ratio"))
    improvements = []
    for shape, rm, mo in rows:
        print("%-20s %16.0f %16.0f %8.3f" % (str(shape), rm, mo, mo / rm))
        improvements.append(mo / rm)
    emit(
        "ablation_morton",
        {"ratios": improvements, "shapes": [list(s) for s in SHAPES]},
    )

    # Z-order should help (or at worst tie) on every wide grid here.
    assert min(improvements) < 0.95
    assert max(improvements) < 1.05
