"""Figure 6: FP64 roofline utilization landscapes over the corpus.

Same structure as Figure 5 at double precision: Stream-K's band is
narrower than the singleton's and the heuristic ensemble's.
"""

from repro.gemm import FP64
from repro.harness import roofline_landscapes
from repro.metrics import format_roofline_rows

from .common import banner, corpus_spec, emit


def test_fig6_roofline_fp64(benchmark):
    spec = corpus_spec()
    out = benchmark.pedantic(
        roofline_landscapes, args=(FP64,), kwargs={"spec": spec},
        rounds=1, iterations=1,
    )
    banner("Figure 6. FP64 roofline landscapes (%d shapes)" % spec.size)
    for system, data in out.items():
        print()
        print(
            format_roofline_rows(
                data["summary"],
                "%s  (band width %.1f points, median %.1f%% of peak)"
                % (system, data["band_width"], data["median_percent_of_peak"]),
            )
        )
    emit("fig6_roofline_fp64", out)

    assert out["stream_k"]["band_width"] < out["data_parallel_singleton"]["band_width"]
    assert out["stream_k"]["median_percent_of_peak"] >= (
        out["data_parallel_singleton"]["median_percent_of_peak"]
    )
