"""Stream-K++ adaptive selection: winner-cache replay vs cold planning.

``repro adapt`` replays a deterministic Zipf trace through the
Bloom-guarded winner cache (:mod:`repro.ensembles.adaptive`); this bench
pins the four acceptance numbers of ISSUE 9 on the full 20k-request /
512-shape trace:

* **hit-path latency** — winner-table selection p99 at least 5x below
  the *cold* ``plan_query`` p99 (the latency a repeat shape would pay
  without the adaptive layer);
* **regret** — mean chosen-vs-oracle makespan regret <= 1% (zero by
  construction with the ensemble evaluator: the first visit remembers
  the oracle winner), reported against the honest nonzero regrets of
  the pure-analytic path and the cuBLAS-style heuristic;
* **false positives** — the realized filter FP rate, measured on a
  disjoint probe corpus, within 2x of the analytic occupancy bound
  (plus binomial sampling slack at the probe count);
* **memory** — the filter footprint behind those numbers.

The artifact lands under ``benchmarks/artifacts/`` and, for a
full-scale run, as ``BENCH_adaptive.json`` at the repo root (the
committed before/after record).  ``REPRO_BENCH_ADAPTIVE_REQUESTS``
shrinks the trace for smoke runs; the CI ``adaptive`` job's gate
derives from the committed record (>2x hit-path p99 regression fails),
mirroring the serve/executor gates.
"""

import json
import math
import os

from repro.ensembles.adaptive import (
    AdaptiveConfig,
    AdaptiveReplayConfig,
    replay_adaptive,
)
from repro.harness import write_json

from .common import banner, emit

FULL_REQUESTS = 20000
FULL_UNIVERSE = 512

#: Acceptance bars at full scale (ISSUE 9).
FULL_SPEEDUP_FLOOR = 5.0
REGRET_CEILING = 0.01
FP_BOUND_FACTOR = 2.0

#: Reduced-scale CI floor: fewer hit samples => noisier p99, half the bar.
SMOKE_SPEEDUP_FLOOR = 2.5

#: Absolute hit-path p99 ceiling (us) for the smoke gate fallback, and
#: the floor/cap bracket for the gate derived from the committed record
#: (a fast dev box must not ratchet the CI bar past runner noise).
SMOKE_HIT_P99_CEILING_US = 500.0
SMOKE_HIT_P99_GATE_FLOOR_US = 100.0

ROOT_ARTIFACT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_adaptive.json",
)


def _scale() -> "tuple[int, int]":
    env = os.environ.get("REPRO_BENCH_ADAPTIVE_REQUESTS")
    if env:
        n = int(env)
        return n, max(8, min(FULL_UNIVERSE, n // 8))
    return FULL_REQUESTS, FULL_UNIVERSE


def _smoke_hit_p99_gate() -> float:
    """>2x hit-path latency regression gate vs the committed record."""
    try:
        with open(ROOT_ARTIFACT) as fh:
            committed = float(json.load(fh)["hit_p99_us"])
    except (OSError, KeyError, ValueError):
        return SMOKE_HIT_P99_CEILING_US
    return min(
        SMOKE_HIT_P99_CEILING_US,
        max(SMOKE_HIT_P99_GATE_FLOOR_US, committed * 2.0),
    )


def run_adaptive_replay(requests, universe):
    return replay_adaptive(
        AdaptiveReplayConfig(
            requests=requests,
            universe=universe,
            seed=0,
            adaptive=AdaptiveConfig(),
            evaluator="ensemble",
        )
    )


def test_adaptive_selection(benchmark):
    requests, universe = _scale()
    report = benchmark.pedantic(
        run_adaptive_replay, args=(requests, universe), rounds=1, iterations=1
    )
    full = (requests, universe) == (FULL_REQUESTS, FULL_UNIVERSE)
    flt, reg = report["filter"], report["regret"]
    speedup = report["p99_speedup_hit_vs_cold"]

    banner(
        "Stream-K++ adaptive selection: %d-request Zipf trace over %d "
        "shapes" % (requests, universe)
    )
    print("hit rate    : %5.1f%% (%d winner hits / %d evaluations)"
          % (100.0 * report["hit_rate"], report["hits"], report["misses"]))
    print("hit latency : p50 %8.1f us   p99 %8.1f us"
          % (report["hit_p50_us"], report["hit_p99_us"]))
    print("cold plan   : p50 %8.1f us   p99 %8.1f us"
          % (report["cold_plan_p50_us"], report["cold_plan_p99_us"]))
    print("p99 speedup : %6.1fx  (floor %.1fx %s)"
          % (speedup, FULL_SPEEDUP_FLOOR if full else SMOKE_SPEEDUP_FLOOR,
             "full" if full else "smoke"))
    print("regret mean : adaptive %.4f%%, analytic %.2f%%, cuBLAS %.2f%%"
          % (100.0 * reg["adaptive_mean"], 100.0 * reg["analytic_mean"],
             100.0 * reg["cublas_mean"]))
    print("filter      : %d bytes, FP measured %.2e vs analytic %.2e "
          "(%d probes)"
          % (flt["memory_bytes"], flt["measured_fp_rate"],
             flt["analytic_fp_rate"], flt["probe_keys"]))

    payload = {
        "requests": requests,
        "universe": universe,
        "full_scale": bool(full),
        "hit_rate": report["hit_rate"],
        "hit_p50_us": report["hit_p50_us"],
        "hit_p99_us": report["hit_p99_us"],
        "cold_plan_p50_us": report["cold_plan_p50_us"],
        "cold_plan_p99_us": report["cold_plan_p99_us"],
        "p99_speedup_hit_vs_cold": speedup,
        "speedup_floor": FULL_SPEEDUP_FLOOR if full else SMOKE_SPEEDUP_FLOOR,
        "regret": reg,
        "regret_ceiling": REGRET_CEILING,
        "filter": flt,
        "hit_p99_gate_us": None if full else _smoke_hit_p99_gate(),
        "report": report,
    }
    emit("adaptive", payload)

    # Correctness bars hold at every scale.
    assert report["misses"] == report["distinct_shapes"]  # one eval/shape
    assert reg["adaptive_mean"] <= REGRET_CEILING
    if flt["probe_keys"]:
        # Realized FP within 2x of the analytic bound, plus three-sigma
        # binomial slack for the finite probe set.
        bound = flt["analytic_fp_rate"]
        slack = 3.0 * math.sqrt(
            max(bound * (1.0 - bound), 1e-12) / flt["probe_keys"]
        )
        assert flt["measured_fp_rate"] <= FP_BOUND_FACTOR * bound + slack

    if full:
        write_json(ROOT_ARTIFACT, payload)
        assert speedup >= FULL_SPEEDUP_FLOOR
        assert report["hit_rate"] > 0.9
    else:
        # CI perf smoke: >2x hit-path regression vs the committed record
        # (or the absolute ceiling if no record is checked in yet).
        assert speedup >= SMOKE_SPEEDUP_FLOOR
        assert report["hit_p99_us"] <= _smoke_hit_p99_gate()
