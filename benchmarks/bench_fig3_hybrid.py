"""Figure 3: basic Stream-K vs the Section 5.2 hybrids, 896x384x128 on 4 SMs.

The paper's claims: the two-tile hybrid matches basic Stream-K's balance
while (1) hiding the partial-sum exchange latency that the one-tile hybrid
exposes as spin-waits, and (2) confining the k-skew that degrades cache
reuse to a bounded region (its aligned fraction is high).
"""

from repro.harness import fig3_hybrid_schedules

from .common import banner, emit


def test_fig3_hybrid_schedules(benchmark):
    out = benchmark.pedantic(
        fig3_hybrid_schedules, kwargs={"memory_model": "cache_sim"},
        rounds=1, iterations=1,
    )
    banner("Figure 3. Hybrid schedules, 896x384x128 (21 tiles) on 4 SMs")
    print(
        "%-22s %5s %10s %12s %14s %10s"
        % ("schedule", "g", "util", "wait cyc", "input DRAM B", "time us")
    )
    for name, row in out.items():
        print(
            "%-22s %5d %9.1f%% %12.0f %14.0f %10.2f"
            % (
                name,
                row["g"],
                100 * row["utilization"],
                row["wait_cycles"],
                row["input_dram_bytes"],
                row["time_s"] * 1e6,
            )
        )
    emit("fig3_hybrid", out)

    # Two-tile beats the one-tile hybrid on both utilization and waits.
    assert out["c_two_tile_dp"]["utilization"] > out["b_dp_one_tile"]["utilization"]
    assert out["c_two_tile_dp"]["wait_cycles"] <= out["b_dp_one_tile"]["wait_cycles"]
    # And confines the skew: most iterations run temporally aligned.
    assert out["c_two_tile_dp"]["k_aligned_fraction"] > 0.5
    assert out["a_basic_stream_k"]["k_aligned_fraction"] == 0.0
