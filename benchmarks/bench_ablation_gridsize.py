"""Ablation: the Appendix A.1 grid-size model vs fixed policies.

In the fewer-tiles-than-SMs regime the model picks g per problem; the
alternatives a library could ship instead are "always fill the machine"
(g = p) and "never split" (g = t).  The design claim: the model is at
least as good as both across the strong-scaling slice, and strictly
better somewhere against each.
"""

import numpy as np

from repro.gemm import FP16_FP32, Blocking, GemmProblem, TileGrid
from repro.gpu import A100, KernelCostModel, basic_streamk_makespan
from repro.model import calibrate, select_grid_size

from .common import banner, emit

# Strong-scaling slice: few tiles, deep k.
SHAPES = [
    (128, 128, k) for k in (1024, 2048, 4096, 8192, 16384, 32768)
] + [
    (256, 256, k) for k in (2048, 8192, 16384)
] + [
    (256, 3584, 8192),
    (1024, 1024, 1024),
    (512, 1536, 4096),
    (384, 896, 12288),
]


def run_ablation():
    blk = Blocking(128, 128, 32)
    cost = KernelCostModel(gpu=A100, blocking=blk, dtype=FP16_FP32)
    params = calibrate(A100, blk, FP16_FP32)
    rows = []
    for m, n, k in SHAPES:
        grid = TileGrid(GemmProblem(m, n, k, dtype=FP16_FP32), blk)
        t, ipt = grid.num_tiles, grid.iters_per_tile
        g_model = select_grid_size(grid, params, A100.num_sms).g
        spans = {
            "model": basic_streamk_makespan(t, g_model, ipt, cost),
            "fill (g=p)": basic_streamk_makespan(t, A100.num_sms, ipt, cost),
            "no-split (g=t)": basic_streamk_makespan(t, t, ipt, cost),
        }
        rows.append(((m, n, k), g_model, spans))
    return rows


def test_ablation_gridsize(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    banner("Ablation: grid-size selection policy (strong-scaling slice)")
    print("%-22s %8s %12s %12s %12s" % ("shape", "g_model", "model", "g=p", "g=t"))
    ratios_p, ratios_t = [], []
    for (shape, g_model, spans) in rows:
        print(
            "%-22s %8d %12.0f %12.0f %12.0f"
            % (str(shape), g_model, spans["model"], spans["fill (g=p)"], spans["no-split (g=t)"])
        )
        ratios_p.append(spans["fill (g=p)"] / spans["model"])
        ratios_t.append(spans["no-split (g=t)"] / spans["model"])
    print(
        "geomean slowdown if always g=p: %.2fx; if never splitting: %.2fx"
        % (np.exp(np.mean(np.log(ratios_p))), np.exp(np.mean(np.log(ratios_t))))
    )
    emit(
        "ablation_gridsize",
        {
            "always_fill_geomean": float(np.exp(np.mean(np.log(ratios_p)))),
            "never_split_geomean": float(np.exp(np.mean(np.log(ratios_t)))),
        },
    )

    # The model never loses to either fixed policy (it considered both)...
    assert min(ratios_p) > 0.999 and min(ratios_t) > 0.999
    # ...and strictly beats each somewhere on this slice.
    assert max(ratios_p) > 1.2
    assert max(ratios_t) > 1.2
