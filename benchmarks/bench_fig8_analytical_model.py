"""Figure 8: the Appendix A.1 analytical model's grid-size curves.

Paper (FP16->32, 128x128x32 blocking on the A100's 108 SMs):

  (a) 256x3584x8192 : 56 tiles, 256 iters/tile -> g_best = 108
  (b) 1024x1024x1024: 64 tiles,  32 iters/tile -> g_best = 64
  (c) 128x128x16384 :  1 tile,  512 iters/tile -> g_best = 8
"""

from repro.harness import fig8_analytical_model

from .common import banner, emit, paper_vs_measured


def test_fig8_analytical_model(benchmark):
    out = benchmark.pedantic(fig8_analytical_model, rounds=1, iterations=1)
    banner("Figure 8. Analytical grid-size model (A100, fp16 128x128x32)")
    print(
        "calibrated constants: a=%.1f b=%.1f c=%.2f d=%.1f cycles"
        % (out["params"]["a"], out["params"]["b"], out["params"]["c"], out["params"]["d"])
    )
    rows = []
    for key in ("a_256x3584x8192", "b_1024x1024x1024", "c_128x128x16384"):
        sc = out[key]
        rows.append(
            ("g_best %s (t=%d)" % (key, sc["tiles"]), str(sc["paper_g_best"]), str(sc["g_best"]))
        )
    paper_vs_measured(rows)
    # print the (c) curve coarsely — the dip structure of the figure
    sc = out["c_128x128x16384"]
    print("\nmodeled cycles vs g for (c):")
    for g in (1, 2, 4, 8, 16, 32, 64, 108):
        idx = g - 1
        print("  g=%3d  %10.0f cycles" % (g, sc["predicted_cycles"][idx]))
    emit(
        "fig8_model",
        {
            k: (v if k == "params" else {kk: vv for kk, vv in v.items()})
            for k, v in out.items()
        },
    )

    for key in ("a_256x3584x8192", "b_1024x1024x1024", "c_128x128x16384"):
        assert out[key]["g_best"] == out[key]["paper_g_best"]
