"""Ablation: the two-kernel Stream-K ensemble (Section 6 future work).

The paper closes its evaluation by noting Stream-K's one weakness — small
bandwidth-bound problems where its largish blocking "does not compete
well" — and proposes "the bundling of a second Stream-K kernel having
smaller tile size into a two-kernel ensemble."  This bench builds that
ensemble and measures what the second kernel buys over the corpus: the
sub-threshold losses shrink while the compute-bound behaviour is
untouched (the dispatch rule is one intensity compare, still no trained
heuristics).
"""

import numpy as np

from repro.corpus import CorpusSpec, compute_bound_mask, generate_corpus
from repro.ensembles import StreamKDuoLibrary
from repro.gemm import FP16_FP32, GemmProblem
from repro.gpu import A100
from repro.harness import evaluate_corpus
from repro.metrics import relative_performance

from .common import banner, emit

SLICE = CorpusSpec(size=800, seed=31)


def run_ablation():
    shapes = generate_corpus(SLICE)
    res = evaluate_corpus(shapes, FP16_FP32, A100)
    duo = StreamKDuoLibrary(A100, FP16_FP32)
    duo_times = np.array(
        [
            duo.time_s(GemmProblem(int(m), int(n), int(k), dtype=FP16_FP32))
            for m, n, k in shapes
        ]
    )
    return shapes, res, duo_times


def test_ablation_two_kernel_ensemble(benchmark):
    shapes, res, duo_times = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    cb = compute_bound_mask(shapes, FP16_FP32)
    mb = ~cb
    banner("Ablation: two-kernel Stream-K ensemble (%d shapes)" % SLICE.size)
    single_vs_cublas = relative_performance(res.cublas, res.streamk)
    duo_vs_cublas = relative_performance(res.cublas, duo_times)
    print("vs cuBLAS-like, single kernel : %s" % single_vs_cublas)
    print("vs cuBLAS-like, two kernels   : %s" % duo_vs_cublas)
    single_mb = relative_performance(res.cublas[mb], res.streamk[mb])
    duo_mb = relative_performance(res.cublas[mb], duo_times[mb])
    print("memory-bound regime, single   : %s" % single_mb)
    print("memory-bound regime, duo      : %s" % duo_mb)
    emit(
        "ablation_duo",
        {
            "single_vs_cublas": single_vs_cublas,
            "duo_vs_cublas": duo_vs_cublas,
            "single_memory_bound": single_mb,
            "duo_memory_bound": duo_mb,
        },
    )

    # The second kernel lifts the memory-bound regime...
    assert duo_mb.average > single_mb.average
    assert duo_mb.minimum >= single_mb.minimum
    # ...without touching compute-bound dispatch (identical there).
    assert np.allclose(duo_times[cb], res.streamk[cb], rtol=1e-9)