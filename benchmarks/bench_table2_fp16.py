"""Table 2: Stream-K FP16->32 relative performance over the corpus.

Paper (NVIDIA A100, 32,824 shapes):

            vs CUTLASS 128x128x32   vs cuBLAS   vs cuBLAS >400 ops/B*  vs oracle
  Average   1.63x                   1.13x       1.15x                  1.12x
  StdDev    1.46                    0.45        0.12                   0.37
  Min       0.80x                   0.64x       0.98x                  0.61x
  Max       14.7x                   6.74x       1.85x                  4.63x

(*the paper prints the column as ">150 ops/B" but defines the FP16->32
compute-bound threshold as 400 ops/byte in the text; we use 400.)

Known deviation (EXPERIMENTS.md): our simulator compresses the extreme
strong-scaling tail (max speedups of ~2-4x rather than 14.7x) and weights
the memory-bound small-shape regime more heavily, so the all-problem
averages are lower than the paper's; the compute-bound column and every
directional claim reproduce.
"""

from repro.gemm import FP16_FP32
from repro.harness import relative_performance_table
from repro.metrics import format_relative_table

from .common import banner, corpus_spec, emit, paper_vs_measured

PAPER = {
    "vs CUTLASS 128x128x32": (1.63, 1.46, 0.80, 14.7),
    "vs cuBLAS": (1.13, 0.45, 0.64, 6.74),
    "vs cuBLAS >400 ops/B": (1.15, 0.12, 0.98, 1.85),
    "vs CUTLASS oracle": (1.12, 0.37, 0.61, 4.63),
}


def test_table2_fp16(benchmark):
    spec = corpus_spec()
    cols = benchmark.pedantic(
        relative_performance_table, args=(FP16_FP32,), kwargs={"spec": spec},
        rounds=1, iterations=1,
    )
    banner(
        "Table 2. Stream-K FP16->32 Relative Performance (%d shapes)" % spec.size
    )
    print(format_relative_table(cols, title=""))
    print()
    for (name, rp), paper_key in zip(cols.items(), PAPER):
        pa, ps, pmin, pmax = PAPER[paper_key]
        paper_vs_measured(
            [
                (name + " avg", "%.2fx" % pa, "%.2fx" % rp.average),
                (name + " std", "%.2f" % ps, "%.2f" % rp.stddev),
                (name + " min", "%.2fx" % pmin, "%.2fx" % rp.minimum),
                (name + " max", "%.2fx" % pmax, "%.2fx" % rp.maximum),
            ]
        )
        print()
    emit("table2_fp16", {"measured": cols, "paper": PAPER})

    assert cols["vs CUTLASS 128x128x32"].average > 1.05
    assert cols["vs cuBLAS >400 ops/B"].average > 1.05
    assert cols["vs cuBLAS >400 ops/B"].minimum > 0.85
