"""Figure 2: tile-splitting schedules for 384x384x128 on 4 SMs.

Paper: (a) fixed-split s=2 -> 18 CTAs, 90% quantization efficiency;
(b) basic Stream-K g=4 -> 72 MAC-loop iterations per CTA, ~100%
quantization efficiency.
"""

from repro.harness import fig2_tile_splitting

from .common import banner, emit, paper_vs_measured


def test_fig2_tile_splitting(benchmark):
    out = benchmark.pedantic(fig2_tile_splitting, rounds=1, iterations=1)
    banner("Figure 2. Tile-splitting schedules, 384x384x128 on 4 SMs")
    fs, sk = out["a_fixed_split_s2"], out["b_stream_k_g4"]
    paper_vs_measured(
        [
            ("(a) fixed-split grid", "18", str(fs["g"])),
            ("(a) quantization eff", "90%", "%.0f%%" % (100 * fs["quantization_efficiency"])),
            ("(b) Stream-K grid", "4", str(sk["g"])),
            ("(b) iters per CTA", "72", str(sk["iters_per_cta"])),
            ("(b) quantization eff", "~100%", "%.1f%%" % (100 * sk["quantization_efficiency"])),
        ]
    )
    emit("fig2_tile_splitting", out)
    assert sk["quantization_efficiency"] == 1.0
    assert sk["iters_per_cta"] == 72
    assert fs["quantization_efficiency"] == 0.90
