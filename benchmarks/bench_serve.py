"""Serving-path throughput and tail latency: the plan cache at work.

``repro serve`` fronts the planning layer (:mod:`repro.plan`) with a
tiered plan cache and a micro-batching window.  This bench replays the
same deterministic Zipf trace ``repro loadgen`` ships, twice, against
one in-process :class:`~repro.plan.PlanService`:

* **cold replay** — the cache starts empty, so every first touch of a
  shape is a genuinely cold plan riding a micro-batched
  ``plan_batch``.  This pass supplies the *miss* latency column.
* **warm replay** — the identical trace again: 100% cache hits, no
  batches in flight.  This pass supplies the *hit* latency column and
  the steady-state QPS headline.

Two passes rather than one because a mixed replay contaminates the hit
tail: a hit is a microsecond lock-and-lookup, but while the batcher
thread is planning a cold micro-batch the GIL stretches concurrent
hits to milliseconds.  Splitting the phases measures what the serving
contract (docs/SERVING.md) actually promises — the cost of a cold plan
vs the cost of a cached one — and the acceptance bar is a >= 10x p99
split at full scale.

The service runs with ``persist=False`` so the cold pass is cold even
when a previous run flushed a disk shard for the same binding.

The artifact lands under ``benchmarks/artifacts/`` and, for a
full-scale run, as ``BENCH_serve.json`` at the repo root (the committed
before/after record).  ``REPRO_BENCH_SERVE_REQUESTS`` shrinks the trace
for smoke runs; the 10x split assertion fires only at full scale, and
the smoke-scale QPS gate derives from the committed ``BENCH_serve.json``
(half the committed throughput, capped at a noise-safe absolute) so a
>2x serving regression fails CI without tripping on box speed.
"""

import json
import os

from repro.harness import write_json
from repro.plan import LoadgenConfig, PlanService, ServeConfig, run_loadgen

from .common import banner, emit

FULL_REQUESTS = 20000
FULL_UNIVERSE = 512

#: Acceptance bar at full scale: cache-hit p99 at least 10x below the
#: cold-plan (miss) p99.
FULL_SPLIT_FLOOR = 10.0
#: Reduced-scale CI floor for the same split (fewer samples => noisier
#: percentiles, so half the full bar).
SMOKE_SPLIT_FLOOR = 5.0

#: Absolute steady-state QPS floors: a serving path slower than this is
#: broken regardless of box speed.
FULL_QPS_FLOOR = 1000.0
SMOKE_QPS_FLOOR = 500.0
#: Ceiling for the gate derived from the committed BENCH_serve.json —
#: keeps a fast dev box from ratcheting the CI bar past runner noise.
SMOKE_QPS_GATE_CAP = 1000.0

ROOT_ARTIFACT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_serve.json",
)


def _scale() -> "tuple[int, int]":
    env = os.environ.get("REPRO_BENCH_SERVE_REQUESTS")
    if env:
        n = int(env)
        return n, max(8, min(FULL_UNIVERSE, n // 8))
    return FULL_REQUESTS, FULL_UNIVERSE


def _smoke_qps_gate() -> float:
    """>2x regression gate vs the committed full-scale record."""
    try:
        with open(ROOT_ARTIFACT) as fh:
            committed = float(json.load(fh)["qps"])
    except (OSError, KeyError, ValueError):
        return SMOKE_QPS_FLOOR
    return max(SMOKE_QPS_FLOOR, min(SMOKE_QPS_GATE_CAP, committed / 2.0))


def run_serving_trace(requests, universe):
    """Replay the Zipf trace cold then warm against one service.

    One client thread, deliberately: the latency columns are *service
    time*, and extra closed-loop clients only add GIL queueing delay
    (the interpreter parks a waiting thread for multiples of the 5 ms
    switch interval, which would swamp a microsecond hit path).  Python
    threads add no throughput to pure-Python work either, so the QPS
    headline is what one client sustains back-to-back.
    """
    config = LoadgenConfig(
        requests=requests, universe=universe, seed=0, clients=1
    )
    service = PlanService(ServeConfig(persist=False))
    try:
        cold = run_loadgen(config, service=service)
        warm = run_loadgen(config, service=service)
    finally:
        service.close()
    return cold, warm


def test_serving_throughput(benchmark):
    requests, universe = _scale()
    cold, warm = benchmark.pedantic(
        run_serving_trace, args=(requests, universe), rounds=1, iterations=1
    )
    full = (requests, universe) == (FULL_REQUESTS, FULL_UNIVERSE)
    split = cold["miss_p99_us"] / warm["hit_p99_us"]

    banner(
        "Serving path: %d-request Zipf trace over %d shapes, replayed "
        "cold then warm" % (requests, universe)
    )
    print("cold replay : %7.0f req/s, %5.1f%% hit rate (%d cold plans)"
          % (cold["qps"], 100.0 * cold["hit_rate"], cold["misses"]))
    print("warm replay : %7.0f req/s, %5.1f%% hit rate"
          % (warm["qps"], 100.0 * warm["hit_rate"]))
    print("hit latency : p50 %8.1f us   p99 %8.1f us   (warm replay)"
          % (warm["hit_p50_us"], warm["hit_p99_us"]))
    print("miss latency: p50 %8.1f us   p99 %8.1f us   (cold plans)"
          % (cold["miss_p50_us"], cold["miss_p99_us"]))
    print("p99 split   : %6.1fx  (floor %.0fx %s)"
          % (split, FULL_SPLIT_FLOOR if full else SMOKE_SPLIT_FLOOR,
             "full" if full else "smoke"))

    payload = {
        "requests": requests,
        "universe": universe,
        "full_scale": bool(full),
        "qps": warm["qps"],
        "qps_cold_replay": cold["qps"],
        "hit_rate_cold_replay": cold["hit_rate"],
        "hit_p50_us": warm["hit_p50_us"],
        "hit_p99_us": warm["hit_p99_us"],
        "miss_p50_us": cold["miss_p50_us"],
        "miss_p99_us": cold["miss_p99_us"],
        "p99_split_hit_vs_miss": split,
        "split_floor": FULL_SPLIT_FLOOR if full else SMOKE_SPLIT_FLOOR,
        "qps_floor": FULL_QPS_FLOOR if full else _smoke_qps_gate(),
        "cold_replay": cold,
        "warm_replay": warm,
    }
    emit("serve", payload)

    assert cold["failed"] == 0 and warm["failed"] == 0
    assert warm["misses"] == 0  # the warm replay must be pure hits
    if full:
        write_json(ROOT_ARTIFACT, payload)
        # Acceptance bar: cache hits an order of magnitude under misses.
        assert split >= FULL_SPLIT_FLOOR
        assert warm["qps"] >= FULL_QPS_FLOOR
    else:
        # CI perf smoke: >2x QPS regression vs the committed record (or
        # the absolute floor if no record is checked in yet).
        assert split >= SMOKE_SPLIT_FLOOR
        assert warm["qps"] >= _smoke_qps_gate()
