"""Ablation: quantization inefficiency vs processor width.

The paper's introduction argues the problem is getting worse: "an
increased core count will require fewer waves to produce a given tile
count", so oversubscription — and with it data-parallel utilization —
shrinks as GPUs widen.  This bench sweeps machine width at fixed problem
sizes and measures (a) how the data-parallel ensemble's efficiency decays
and (b) that Stream-K's does not — the structural claim that motivates
the whole paper.
"""

import numpy as np

from repro.corpus import CorpusSpec, generate_corpus
from repro.gemm import FP16_FP32
from repro.gpu import A100
from repro.harness import evaluate_corpus
from repro.metrics import relative_performance

from .common import banner, emit

SLICE = CorpusSpec(size=600, seed=41)
WIDTHS = (27, 54, 108, 216)


def run_sweep():
    shapes = generate_corpus(SLICE)
    rows = []
    for width in WIDTHS:
        gpu = A100.with_sms(width)
        res = evaluate_corpus(shapes, FP16_FP32, gpu)
        rows.append(
            (
                width,
                relative_performance(res.singleton, res.streamk),
                relative_performance(res.oracle, res.streamk),
            )
        )
    return rows


def test_ablation_processor_width(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    banner("Ablation: Stream-K advantage vs processor width (%d shapes)" % SLICE.size)
    print("%8s %28s %28s" % ("SMs", "vs singleton (avg/max)", "vs oracle (avg/max)"))
    for width, vs_single, vs_oracle in rows:
        print(
            "%8d %17.2fx / %.2fx %19.2fx / %.2fx"
            % (width, vs_single.average, vs_single.maximum,
               vs_oracle.average, vs_oracle.maximum)
        )
    emit(
        "ablation_width",
        {
            str(w): {"vs_singleton": s, "vs_oracle": o}
            for w, s, o in rows
        },
    )

    # The motivating trend: the singleton's quantization penalty — and so
    # Stream-K's average advantage over it — grows with machine width.
    averages = [s.average for _, s, _ in rows]
    assert averages[-1] > averages[0]
    assert all(a > 0.95 for a in averages)