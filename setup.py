"""Legacy setup shim.

This environment has no network and no `wheel` package, so PEP-517 editable
installs (`pip install -e .` with build isolation, or bdist_wheel) cannot
run.  `python setup.py develop` works with the stock setuptools; all real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
