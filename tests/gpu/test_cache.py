"""Cache simulator tests."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu import FragmentCache, SetAssociativeCache


class _ReferenceSetAssociativeCache:
    """The original per-line OrderedDict LRU loop, kept as an oracle for the
    vectorized :class:`SetAssociativeCache`."""

    def __init__(self, capacity_bytes, line_bytes, ways=16):
        lines = capacity_bytes // line_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = max(1, lines // ways)
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.accesses = 0
        self.hits = 0

    def access(self, addr, size):
        if size <= 0:
            return 0
        first = addr // self.line_bytes
        last = (addr + size - 1) // self.line_bytes
        missed = 0
        for line in range(first, last + 1):
            s = self._sets[line % self.num_sets]
            self.accesses += 1
            if line in s:
                s.move_to_end(line)
                self.hits += 1
            else:
                if len(s) >= self.ways:
                    s.popitem(last=False)
                s[line] = None
                missed += self.line_bytes
        return missed


class TestFragmentCache:
    def test_miss_then_hit(self):
        c = FragmentCache(1024)
        assert c.access("a", 100) == 100
        assert c.access("a", 100) == 0
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_lru_eviction_order(self):
        c = FragmentCache(300)
        c.access("a", 100)
        c.access("b", 100)
        c.access("c", 100)
        c.access("a", 100)  # refresh a; b is now LRU
        assert c.access("d", 100) == 100  # evicts b
        assert c.access("a", 100) == 0
        assert c.access("b", 100) == 100  # b was evicted

    def test_oversized_block_not_retained(self):
        c = FragmentCache(100)
        assert c.access("big", 500) == 500
        assert c.occupied_bytes == 0
        assert c.access("big", 500) == 500  # still a miss

    def test_capacity_accounting(self):
        c = FragmentCache(250)
        c.access("a", 100)
        c.access("b", 100)
        assert c.occupied_bytes == 200
        c.access("c", 100)  # evicts a
        assert c.occupied_bytes == 200

    def test_flush(self):
        c = FragmentCache(1024)
        c.access("a", 10)
        c.flush()
        assert c.access("a", 10) == 10

    def test_zero_size_access_free(self):
        c = FragmentCache(16)
        assert c.access("x", 0) == 0
        assert c.stats.accesses == 0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            FragmentCache(0)


class TestSetAssociativeCache:
    def test_line_granularity(self):
        c = SetAssociativeCache(capacity_bytes=1 << 16, line_bytes=64, ways=4)
        missed = c.access(addr=0, size=100)  # touches lines 0 and 1
        assert missed == 128
        assert c.access(addr=0, size=100) == 0

    def test_way_conflict_eviction(self):
        # 2 ways, 1 set: third distinct line evicts the LRU one.
        c = SetAssociativeCache(capacity_bytes=128, line_bytes=64, ways=2)
        assert c.num_sets == 1
        c.access(0, 1)
        c.access(64, 1)
        c.access(128, 1)  # evicts line 0
        assert c.access(0, 1) == 64

    def test_set_mapping_spreads_conflicts(self):
        c = SetAssociativeCache(capacity_bytes=4 * 64, line_bytes=64, ways=2)
        assert c.num_sets == 2
        # even lines -> set 0, odd lines -> set 1; no cross-set eviction
        c.access(0, 1)
        c.access(64, 1)
        c.access(128, 1)
        assert c.access(64, 1) == 0

    def test_stats_totals(self):
        c = SetAssociativeCache(capacity_bytes=1 << 12, line_bytes=64, ways=4)
        c.access(0, 256)
        c.access(0, 256)
        assert c.stats.accesses == 8
        assert c.stats.hit_rate == pytest.approx(0.5)
        assert c.stats.total_bytes == 512

    def test_flush(self):
        c = SetAssociativeCache(capacity_bytes=1 << 12, line_bytes=64, ways=4)
        c.access(0, 64)
        c.flush()
        assert c.access(0, 64) == 64

    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(0, 64)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(64, 64, ways=4)  # 1 line < 4 ways

    @pytest.mark.parametrize(
        "capacity,line,ways",
        [
            (128, 64, 2),  # 1 set: every access conflicts
            (4 * 64, 64, 2),  # 2 sets
            (1 << 12, 64, 4),  # 16 sets
            (1 << 14, 128, 16),  # 8 sets, wide
        ],
    )
    def test_matches_reference_loop(self, capacity, line, ways):
        """Vectorized implementation reproduces the per-line OrderedDict
        oracle on randomized access streams (including multi-line strides,
        re-touches, and spans longer than num_sets lines)."""
        rng = np.random.default_rng(0xCAC4E + capacity + ways)
        new = SetAssociativeCache(capacity, line, ways)
        ref = _ReferenceSetAssociativeCache(capacity, line, ways)
        for _ in range(400):
            addr = int(rng.integers(0, 64 * line))
            size = int(rng.integers(1, 8 * line * new.num_sets))
            assert new.access(addr, size) == ref.access(addr, size)
        assert new.stats.accesses == ref.accesses
        assert new.stats.hits == ref.hits

    def test_matches_reference_after_flush(self):
        new = SetAssociativeCache(1 << 12, 64, 4)
        ref = _ReferenceSetAssociativeCache(1 << 12, 64, 4)
        rng = np.random.default_rng(7)
        for _ in range(50):
            addr = int(rng.integers(0, 4096))
            size = int(rng.integers(1, 512))
            assert new.access(addr, size) == ref.access(addr, size)
        new.flush()
        ref._sets = [OrderedDict() for _ in range(ref.num_sets)]
        for _ in range(50):
            addr = int(rng.integers(0, 4096))
            size = int(rng.integers(1, 512))
            assert new.access(addr, size) == ref.access(addr, size)
