"""Discrete-event executor tests: waves, waits, signals, deadlock."""

import pytest

from repro.errors import ConfigurationError, DeadlockError
from repro.gpu import CtaTask, Executor, SegmentKind, TimedSegment, execute_tasks


def compute_task(cta, cycles):
    return CtaTask(
        cta=cta, segments=(TimedSegment(SegmentKind.COMPUTE, cycles),)
    )


def contributor_task(cta, compute, store):
    return CtaTask(
        cta=cta,
        segments=(
            TimedSegment(SegmentKind.COMPUTE, compute),
            TimedSegment(SegmentKind.STORE_PARTIALS, store),
            TimedSegment(SegmentKind.SIGNAL, 0.0, cta),
        ),
    )


def owner_task(cta, compute, peer, fixup):
    return CtaTask(
        cta=cta,
        segments=(
            TimedSegment(SegmentKind.COMPUTE, compute),
            TimedSegment(SegmentKind.WAIT, 0.0, peer),
            TimedSegment(SegmentKind.FIXUP, fixup, peer),
        ),
    )


class TestWaveDispatch:
    def test_equal_ctas_form_ceil_waves(self):
        trace = execute_tasks([compute_task(i, 100.0) for i in range(9)], 4)
        assert trace.makespan == pytest.approx(300.0)  # ceil(9/4) waves

    def test_single_wave(self):
        trace = execute_tasks([compute_task(i, 50.0) for i in range(4)], 4)
        assert trace.makespan == pytest.approx(50.0)

    def test_unequal_ctas_list_scheduled(self):
        # durations 100, 10, 10, then next CTA lands on an early slot
        tasks = [compute_task(0, 100.0), compute_task(1, 10.0),
                 compute_task(2, 10.0), compute_task(3, 5.0)]
        trace = execute_tasks(tasks, 2)
        # slot0: cta0 [0,100); slot1: cta1 [0,10) cta2 [10,20) cta3 [20,25)
        assert trace.makespan == pytest.approx(100.0)
        rec3 = trace.cta_record(3)
        assert rec3.start == pytest.approx(20.0)

    def test_dispatch_is_in_launch_order(self):
        tasks = [compute_task(i, 10.0 * (i + 1)) for i in range(6)]
        trace = execute_tasks(tasks, 2)
        starts = {c.cta: c.start for c in trace.ctas}
        assert starts[0] == 0.0 and starts[1] == 0.0
        assert starts[2] == pytest.approx(10.0)  # slot of cta0


class TestSignalsAndWaits:
    def test_owner_waits_for_later_contributor(self):
        tasks = [
            owner_task(0, compute=10.0, peer=1, fixup=5.0),
            contributor_task(1, compute=30.0, store=2.0),
        ]
        trace = execute_tasks(tasks, 2)
        rec0 = trace.cta_record(0)
        # signal fires at 32; owner finished compute at 10, waits 22, fixup 5
        assert rec0.finish == pytest.approx(37.0)
        assert rec0.wait_cycles == pytest.approx(22.0)

    def test_no_wait_when_signal_already_fired(self):
        tasks = [
            contributor_task(0, compute=5.0, store=1.0),
            owner_task(1, compute=50.0, peer=0, fixup=3.0),
        ]
        trace = execute_tasks(tasks, 2)
        rec1 = trace.cta_record(1)
        assert rec1.wait_cycles == 0.0
        assert rec1.finish == pytest.approx(53.0)

    def test_waiter_holds_slot(self):
        """A blocked CTA must not release its SM to pending CTAs."""
        tasks = [
            owner_task(0, compute=1.0, peer=2, fixup=1.0),
            contributor_task(1, compute=10.0, store=0.0),
            contributor_task(2, compute=7.0, store=0.0),
        ]
        trace = execute_tasks(tasks, 2)
        # CTA 2 can only start once CTA 1's slot frees at t=10; CTA 0 spins
        # from t=1 until CTA 2 signals at 17.
        assert trace.cta_record(2).start == pytest.approx(10.0)
        assert trace.cta_record(0).finish == pytest.approx(18.0)

    def test_signal_cascade_chain(self):
        """owner0 <- owner1-as-contributor <- contributor2 resolves fully."""
        t0 = owner_task(0, compute=1.0, peer=1, fixup=1.0)
        t1 = CtaTask(
            cta=1,
            segments=(
                TimedSegment(SegmentKind.COMPUTE, 2.0),
                TimedSegment(SegmentKind.WAIT, 0.0, 2),
                TimedSegment(SegmentKind.FIXUP, 1.0, 2),
                TimedSegment(SegmentKind.STORE_PARTIALS, 1.0),
                TimedSegment(SegmentKind.SIGNAL, 0.0, 1),
            ),
        )
        t2 = contributor_task(2, compute=5.0, store=1.0)
        trace = execute_tasks([t0, t1, t2], 3)
        # cta2 signals at 6; cta1 resumes, fixup 1, store 1, signals at 8;
        # cta0 resumes at 8, fixup 1 -> 9.
        assert trace.cta_record(0).finish == pytest.approx(9.0)


class TestDeadlock:
    def test_waiter_before_producer_with_one_slot(self):
        tasks = [
            owner_task(0, compute=1.0, peer=1, fixup=1.0),
            contributor_task(1, compute=1.0, store=0.0),
        ]
        with pytest.raises(DeadlockError) as exc:
            execute_tasks(tasks, 1)
        assert 0 in exc.value.blocked

    def test_wait_on_never_signalled_slot(self):
        tasks = [owner_task(0, compute=1.0, peer=7, fixup=1.0)]
        with pytest.raises(DeadlockError):
            execute_tasks(tasks, 4)

    def test_enough_slots_resolves(self):
        tasks = [
            owner_task(0, compute=1.0, peer=1, fixup=1.0),
            contributor_task(1, compute=1.0, store=0.0),
        ]
        trace = execute_tasks(tasks, 2)
        assert trace.makespan == pytest.approx(2.0)


class TestTraceContents:
    def test_utilization_of_full_machine(self):
        trace = execute_tasks([compute_task(i, 10.0) for i in range(4)], 4)
        assert trace.utilization() == pytest.approx(1.0)

    def test_utilization_counts_idle_slots(self):
        trace = execute_tasks([compute_task(0, 10.0)], 4)
        assert trace.utilization() == pytest.approx(0.25)

    def test_wait_cycles_excluded_from_busy(self):
        tasks = [
            owner_task(0, compute=10.0, peer=1, fixup=5.0),
            contributor_task(1, compute=30.0, store=2.0),
        ]
        trace = execute_tasks(tasks, 2)
        rec = trace.cta_record(0)
        assert rec.busy_cycles == pytest.approx(15.0)

    def test_gantt_rows_sorted_by_slot(self):
        trace = execute_tasks([compute_task(i, 5.0) for i in range(3)], 2)
        rows = trace.gantt_rows()
        assert rows and all(len(r) == 5 for r in rows)

    def test_missing_record_raises(self):
        trace = execute_tasks([compute_task(0, 1.0)], 1)
        with pytest.raises(KeyError):
            trace.cta_record(99)


class TestValidation:
    def test_duplicate_cta_ids_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            execute_tasks([compute_task(0, 1.0), compute_task(0, 1.0)], 2)

    def test_zero_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            Executor(0)

    def test_empty_task_list(self):
        trace = execute_tasks([], 4)
        assert trace.makespan == 0.0
        assert trace.utilization() == 1.0
