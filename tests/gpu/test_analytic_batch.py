"""Batched Stream-K makespan vs the scalar closed form and the executor.

``basic_streamk_makespan_batch`` is the corpus engine's Regime-B fast path;
it must agree with the scalar fixup-chain walk (which in turn is pinned to
the discrete-event executor in test_analytic.py) to tight tolerance on the
same fixture families.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64, Blocking, GemmProblem, TileGrid
from repro.gpu import (
    A100,
    H100_SXM,
    HYPOTHETICAL_4SM,
    RTX3090,
    V100_SXM2,
    Executor,
    KernelCostModel,
    basic_streamk_makespan,
    basic_streamk_makespan_batch,
)
from repro.schedules import stream_k_schedule


def grid_of(tiles_m, tiles_n, ipt, dtype=FP64):
    p = GemmProblem(tiles_m * 16, tiles_n * 16, ipt * 8, dtype=dtype)
    return TileGrid(p, Blocking(16, 16, 8))


def executor_makespan(schedule, gpu, cost):
    return Executor(gpu.total_cta_slots).run(cost.build_tasks(schedule)).makespan


@pytest.fixture(scope="module")
def cost_4sm():
    return KernelCostModel(
        gpu=HYPOTHETICAL_4SM, blocking=Blocking(16, 16, 8), dtype=FP64
    )


@pytest.fixture(scope="module")
def cost_a100():
    return KernelCostModel(
        gpu=A100, blocking=Blocking(128, 128, 32), dtype=FP16_FP32
    )


class TestBatchEqualsScalar:
    def test_random_batch(self, cost_4sm):
        rng = np.random.default_rng(0x5EED)
        t = rng.integers(1, 64, size=500)
        ipt = rng.integers(1, 48, size=500)
        g = rng.integers(1, 8, size=500)
        batch = basic_streamk_makespan_batch(t, g, ipt, cost_4sm)
        for i in range(t.shape[0]):
            scalar = basic_streamk_makespan(
                int(t[i]), int(g[i]), int(ipt[i]), cost_4sm
            )
            assert batch[i] == pytest.approx(scalar, rel=1e-12), (
                "t=%d g=%d ipt=%d" % (t[i], g[i], ipt[i])
            )

    def test_a100_grid_sizes(self, cost_a100):
        """The g values the paper actually launches (Fig. 8 regimes)."""
        grid = TileGrid(
            GemmProblem(512, 2048, 256, dtype=FP16_FP32), Blocking(128, 128, 32)
        )
        gs = np.array([1, 7, 64, 107, 108], dtype=np.int64)
        t = np.full_like(gs, grid.num_tiles)
        ipt = np.full_like(gs, grid.iters_per_tile)
        batch = basic_streamk_makespan_batch(t, gs, ipt, cost_a100)
        for i, g in enumerate(gs):
            scalar = basic_streamk_makespan(
                grid.num_tiles, int(g), grid.iters_per_tile, cost_a100
            )
            assert batch[i] == pytest.approx(scalar, rel=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        tiles_m=st.integers(1, 8),
        tiles_n=st.integers(1, 8),
        ipt=st.integers(1, 24),
        g=st.integers(1, 4),
    )
    def test_matches_executor(self, cost_4sm, tiles_m, tiles_n, ipt, g):
        """Direct pin against the discrete-event executor, same fixture
        family as TestStreamKExact in test_analytic.py."""
        gpu = HYPOTHETICAL_4SM
        grid = grid_of(tiles_m, tiles_n, ipt)
        ev = executor_makespan(stream_k_schedule(grid, g), gpu, cost_4sm)
        batch = basic_streamk_makespan_batch(
            np.array([grid.num_tiles]), np.array([g]), np.array([ipt]), cost_4sm
        )
        assert batch[0] == pytest.approx(ev, rel=1e-9)

    def test_chunking_invariant(self, cost_4sm):
        rng = np.random.default_rng(11)
        t = rng.integers(1, 64, size=131)
        ipt = rng.integers(1, 48, size=131)
        g = rng.integers(1, 8, size=131)
        ref = basic_streamk_makespan_batch(t, g, ipt, cost_4sm)
        for chunk in (1, 13, 130, 131, 4096):
            got = basic_streamk_makespan_batch(t, g, ipt, cost_4sm, row_chunk=chunk)
            np.testing.assert_array_equal(got, ref)


class TestBatchEqualsScalarCrossHardware:
    """PR-1 proved batch == scalar == executor on A100/4-SM shapes only;
    the multi-backend registry makes the same identity a per-spec
    obligation: distinct SM counts, rate tables, and occupancy (RTX3090's
    two CTAs per SM) must not perturb the closed forms."""

    SPECS = [H100_SXM, V100_SXM2, RTX3090]

    @pytest.mark.parametrize("gpu", SPECS, ids=lambda g: g.name)
    def test_random_batch_matches_scalar(self, gpu):
        cost = KernelCostModel(
            gpu=gpu, blocking=Blocking(128, 128, 32), dtype=FP16_FP32
        )
        rng = np.random.default_rng(0xC0FFEE)
        t = rng.integers(1, 64, size=300)
        ipt = rng.integers(1, 48, size=300)
        g = rng.integers(1, gpu.num_sms + 1, size=300)
        batch = basic_streamk_makespan_batch(t, g, ipt, cost)
        for i in range(t.shape[0]):
            scalar = basic_streamk_makespan(
                int(t[i]), int(g[i]), int(ipt[i]), cost
            )
            assert batch[i] == pytest.approx(scalar, rel=1e-12), (
                "%s: t=%d g=%d ipt=%d" % (gpu.name, t[i], g[i], ipt[i])
            )

    @pytest.mark.parametrize("gpu", SPECS, ids=lambda g: g.name)
    @settings(max_examples=25, deadline=None)
    @given(
        tiles_m=st.integers(1, 6),
        tiles_n=st.integers(1, 6),
        ipt=st.integers(1, 16),
        g_frac=st.floats(0.01, 1.0),
    )
    def test_matches_executor(self, gpu, tiles_m, tiles_n, ipt, g_frac):
        """Closed form == discrete-event executor on every new preset,
        including grid sizes scaled to each device's own SM count."""
        cost = KernelCostModel(
            gpu=gpu, blocking=Blocking(16, 16, 8), dtype=FP16_FP32
        )
        grid = grid_of(tiles_m, tiles_n, ipt, dtype=FP16_FP32)
        g = max(1, min(int(g_frac * gpu.num_sms), grid.total_iters))
        ev = executor_makespan(stream_k_schedule(grid, g), gpu, cost)
        batch = basic_streamk_makespan_batch(
            np.array([grid.num_tiles]), np.array([g]), np.array([ipt]), cost
        )
        assert batch[0] == pytest.approx(ev, rel=1e-9)

    def test_specs_disagree_with_each_other(self):
        """Sanity: the cross-hardware fixtures are not vacuous — distinct
        rate tables produce distinct makespans for the same workload."""
        t = np.array([50]); g = np.array([40]); ipt = np.array([8])
        spans = {
            gpu.name: basic_streamk_makespan_batch(
                t, g, ipt,
                KernelCostModel(
                    gpu=gpu, blocking=Blocking(128, 128, 32), dtype=FP16_FP32
                ),
            )[0]
            for gpu in (A100, H100_SXM, V100_SXM2)
        }
        assert len(set(spans.values())) == len(spans)


class TestValidation:
    def test_empty(self, cost_4sm):
        e = np.empty(0, dtype=np.int64)
        assert basic_streamk_makespan_batch(e, e, e, cost_4sm).shape == (0,)

    def test_rejects_nonpositive(self, cost_4sm):
        with pytest.raises(ConfigurationError):
            basic_streamk_makespan_batch(
                np.array([0]), np.array([1]), np.array([1]), cost_4sm
            )

    def test_rejects_mismatched_lengths(self, cost_4sm):
        with pytest.raises(ConfigurationError):
            basic_streamk_makespan_batch(
                np.array([1, 2]), np.array([1]), np.array([1]), cost_4sm
            )
