"""Property-based tests of the discrete-event executor.

Random schedules drawn from the real decomposition family are the best
fuzzer for the executor: they exercise arbitrary wave structures, wait
chains, and cascades, while the invariants below must hold universally.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gemm import FP64, Blocking, GemmProblem, TileGrid
from repro.gpu import Executor, KernelCostModel, HYPOTHETICAL_4SM, SegmentKind
from repro.schedules import (
    data_parallel_schedule,
    dp_one_tile_schedule,
    fixed_split_schedule,
    stream_k_schedule,
    two_tile_schedule,
)

COST = KernelCostModel(
    gpu=HYPOTHETICAL_4SM, blocking=Blocking(16, 16, 8), dtype=FP64
)


def random_schedule(draw):
    tiles_m = draw(st.integers(1, 6))
    tiles_n = draw(st.integers(1, 6))
    ipt = draw(st.integers(1, 12))
    grid = TileGrid(
        GemmProblem(tiles_m * 16, tiles_n * 16, ipt * 8, dtype=FP64),
        Blocking(16, 16, 8),
    )
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return data_parallel_schedule(grid)
    if kind == 1:
        return fixed_split_schedule(grid, draw(st.integers(1, 4)))
    if kind == 2:
        return stream_k_schedule(grid, draw(st.integers(1, 4)))
    if kind == 3:
        return two_tile_schedule(grid, 4)
    return dp_one_tile_schedule(grid, 4)


@st.composite
def schedules(draw):
    return random_schedule(draw)


class TestExecutorInvariants:
    @settings(max_examples=60, deadline=None)
    @given(sched=schedules())
    def test_conservation_and_bounds(self, sched):
        tasks = COST.build_tasks(sched)
        trace = Executor(HYPOTHETICAL_4SM.total_cta_slots).run(tasks)

        # Every CTA ran, exactly once.
        assert len(trace.ctas) == len(tasks)
        assert sorted(c.cta for c in trace.ctas) == sorted(t.cta for t in tasks)

        # Work conservation: busy time equals intrinsic task time.
        intrinsic = sum(t.intrinsic_cycles for t in tasks)
        assert np.isclose(trace.total_busy_cycles, intrinsic)

        # Makespan bounds: at least the per-slot share and the longest CTA;
        # at most the fully serialized sum plus all waits.
        slots = HYPOTHETICAL_4SM.total_cta_slots
        assert trace.makespan >= intrinsic / slots - 1e-9
        assert trace.makespan >= max(t.intrinsic_cycles for t in tasks) - 1e-9
        assert trace.makespan <= intrinsic + trace.total_wait_cycles + 1e-9

        # Utilization in (0, 1].
        assert 0 < trace.utilization() <= 1.0 + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(sched=schedules())
    def test_causality(self, sched):
        """No segment starts before its CTA; waits end exactly at the
        peer's signal or later; slot timelines never overlap."""
        tasks = COST.build_tasks(sched)
        trace = Executor(HYPOTHETICAL_4SM.total_cta_slots).run(tasks)

        signal_time = {}
        for rec in trace.ctas:
            prev_end = rec.start
            for seg in rec.segments:
                assert seg.start >= prev_end - 1e-9
                prev_end = seg.end
                if seg.kind is SegmentKind.SIGNAL:
                    signal_time[rec.cta] = seg.end
            assert prev_end == rec.finish

        for rec in trace.ctas:
            for seg in rec.segments:
                if seg.kind is SegmentKind.WAIT:
                    assert seg.end >= signal_time[seg.slot] - 1e-9

        # Per-slot serialization.
        by_slot = {}
        for rec in trace.ctas:
            by_slot.setdefault(rec.sm_slot, []).append((rec.start, rec.finish))
        for spans in by_slot.values():
            spans.sort()
            for (s1, e1), (s2, _) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(sched=schedules())
    def test_determinism(self, sched):
        tasks = COST.build_tasks(sched)
        t1 = Executor(4).run(tasks)
        t2 = Executor(4).run(tasks)
        assert t1.makespan == t2.makespan
        assert [c.finish for c in t1.ctas] == [c.finish for c in t2.ctas]

    @settings(max_examples=40, deadline=None)
    @given(sched=schedules(), extra=st.integers(1, 8))
    def test_more_slots_never_slower(self, sched, extra):
        """Adding SM slots can only help (no scheduling anomalies in the
        equal-priority in-order dispatcher for these workloads)."""
        tasks = COST.build_tasks(sched)
        base = Executor(4).run(tasks).makespan
        wider = Executor(4 + extra).run(tasks).makespan
        assert wider <= base + 1e-9
