"""Executor failure diagnostics: wait chains, cycles, internal defenses.

``DeadlockError`` must carry an actionable diagnosis — which CTA is
blocked on which slot, and why that signal can never arrive — for every
way a run can wedge: waiter-before-producer launch orders under full
residency, waits on slots nobody signals, circular waits, and (in
``tests/faults``) dropped signals.
"""

from types import SimpleNamespace

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.gpu import CtaTask, Executor, SegmentKind, TimedSegment, execute_tasks


def owner(cta, peer, compute=1.0):
    return CtaTask(
        cta=cta,
        segments=(
            TimedSegment(SegmentKind.COMPUTE, compute),
            TimedSegment(SegmentKind.WAIT, 0.0, peer),
            TimedSegment(SegmentKind.FIXUP, 1.0, peer),
        ),
    )


def contributor(cta, compute=1.0):
    return CtaTask(
        cta=cta,
        segments=(
            TimedSegment(SegmentKind.COMPUTE, compute),
            TimedSegment(SegmentKind.STORE_PARTIALS, 0.0),
            TimedSegment(SegmentKind.SIGNAL, 0.0, cta),
        ),
    )


def wait_then_signal(cta, peer):
    """A CTA that waits on ``peer`` before publishing its own flag."""
    return CtaTask(
        cta=cta,
        segments=(
            TimedSegment(SegmentKind.COMPUTE, 1.0),
            TimedSegment(SegmentKind.WAIT, 0.0, peer),
            TimedSegment(SegmentKind.FIXUP, 1.0, peer),
            TimedSegment(SegmentKind.STORE_PARTIALS, 0.0),
            TimedSegment(SegmentKind.SIGNAL, 0.0, cta),
        ),
    )


class TestWaitChainDiagnostics:
    def test_unlaunchable_producer_named(self):
        """Waiter-before-producer under full residency: mid-dispatch raise."""
        tasks = [owner(0, peer=1), contributor(1)]
        with pytest.raises(DeadlockError) as exc:
            execute_tasks(tasks, 1)
        err = exc.value
        assert err.blocked == [0]
        assert err.cycle is None
        ((cta, slot, reason),) = err.wait_chain
        assert (cta, slot) == (0, 1)
        assert "never launched" in reason
        assert "CTA 1" in reason
        assert "CTA 0 waits on slot 1" in str(err)

    def test_wait_on_slot_nobody_signals(self):
        tasks = [owner(0, peer=7)]
        with pytest.raises(DeadlockError) as exc:
            execute_tasks(tasks, 4)
        ((cta, slot, reason),) = exc.value.wait_chain
        assert (cta, slot) == (0, 7)
        assert "no CTA ever signals slot 7" in reason
        assert exc.value.cycle is None

    def test_circular_wait_reported_as_cycle(self):
        tasks = [wait_then_signal(0, peer=1), wait_then_signal(1, peer=0)]
        with pytest.raises(DeadlockError) as exc:
            execute_tasks(tasks, 2)
        err = exc.value
        assert err.blocked == [0, 1]
        assert err.cycle is not None and sorted(err.cycle) == [0, 1]
        reasons = {cta: reason for cta, _, reason in err.wait_chain}
        assert "itself blocked on slot 0" in reasons[0]
        assert "itself blocked on slot 1" in reasons[1]
        assert "wait cycle: CTA" in str(err)

    def test_three_cta_cycle(self):
        tasks = [
            wait_then_signal(0, peer=1),
            wait_then_signal(1, peer=2),
            wait_then_signal(2, peer=0),
        ]
        with pytest.raises(DeadlockError) as exc:
            execute_tasks(tasks, 3)
        assert sorted(exc.value.cycle) == [0, 1, 2]

    def test_chain_into_unlaunched_producer(self):
        """A wait chain that terminates off-machine is not a cycle."""
        tasks = [
            wait_then_signal(0, peer=1),  # blocked on 1
            wait_then_signal(1, peer=2),  # blocked on 2
            contributor(2),               # never launches: 2 slots, both held
        ]
        with pytest.raises(DeadlockError) as exc:
            execute_tasks(tasks, 2)
        err = exc.value
        assert err.cycle is None
        reasons = {cta: reason for cta, _, reason in err.wait_chain}
        assert "itself blocked on slot 2" in reasons[0]
        assert "never launched" in reasons[1]

    def test_partial_progress_still_recorded(self):
        """CTAs that finished before the wedge are not in the chain."""
        tasks = [contributor(2), owner(0, peer=1), contributor(1)]
        with pytest.raises(DeadlockError) as exc:
            execute_tasks(tasks, 1)
        # CTA 2 ran to completion on the single slot; then CTA 0 wedged it.
        assert exc.value.blocked == [0]
        assert all(cta != 2 for cta, _, _ in exc.value.wait_chain)


class TestInternalDefenses:
    def test_double_signal_is_simulation_error(self):
        """The executor defends against double publication even though
        CtaTask validation makes it unreachable through the public API."""
        rogue = SimpleNamespace(
            cta=0,
            segments=(
                TimedSegment(SegmentKind.SIGNAL, 0.0, 0),
                TimedSegment(SegmentKind.SIGNAL, 0.0, 0),
            ),
        )
        with pytest.raises(SimulationError, match="signalled twice"):
            Executor(1).run([rogue])

    def test_deadlock_is_a_simulation_error(self):
        assert issubclass(DeadlockError, SimulationError)
