"""Batched makespans for the non-Stream-K families vs scalar + executor.

The fixed-split, persistent-DP, two-tile and dp-one-tile batch forms are
corpus fast paths; each is differentially tested against its scalar twin
(bitwise where the ops are elementwise-identical, 1e-12 relative where
regime dispatch reorders float folds) and, through the scalar, against
the discrete-event executor.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64, Blocking, GemmProblem, TileGrid
from repro.gpu import (
    A100,
    HYPOTHETICAL_4SM,
    Executor,
    KernelCostModel,
    dp_one_tile_hybrid_makespan,
    dp_one_tile_hybrid_makespan_batch,
    fixed_split_makespan,
    fixed_split_makespan_batch,
    persistent_dp_makespan,
    persistent_dp_makespan_batch,
    two_tile_hybrid_makespan,
    two_tile_hybrid_makespan_batch,
)
from repro.schedules import dp_one_tile_schedule


def grid_of(tiles_m, tiles_n, ipt, dtype=FP64):
    p = GemmProblem(tiles_m * 16, tiles_n * 16, ipt * 8, dtype=dtype)
    return TileGrid(p, Blocking(16, 16, 8))


def executor_makespan(schedule, gpu, cost):
    return Executor(gpu.total_cta_slots).run(cost.build_tasks(schedule)).makespan


@pytest.fixture(scope="module")
def cost_4sm():
    return KernelCostModel(
        gpu=HYPOTHETICAL_4SM, blocking=Blocking(16, 16, 8), dtype=FP64
    )


@pytest.fixture(scope="module")
def cost_a100():
    return KernelCostModel(
        gpu=A100, blocking=Blocking(128, 128, 32), dtype=FP16_FP32
    )


def _random_t_ipt(seed, size=400, t_hi=200, ipt_hi=64):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(1, t_hi, size=size),
        rng.integers(1, ipt_hi, size=size),
    )


class TestPersistentDpBatch:
    def test_bitwise_vs_scalar(self, cost_4sm):
        t, ipt = _random_t_ipt(0xD0)
        batch = persistent_dp_makespan_batch(t, 4, ipt, cost_4sm)
        for i in range(t.shape[0]):
            scalar = persistent_dp_makespan(int(t[i]), 4, int(ipt[i]), cost_4sm)
            assert batch[i] == scalar, "t=%d ipt=%d" % (t[i], ipt[i])

    def test_a100(self, cost_a100):
        t, ipt = _random_t_ipt(0xD1, size=200)
        batch = persistent_dp_makespan_batch(t, A100.num_sms, ipt, cost_a100)
        for i in range(t.shape[0]):
            scalar = persistent_dp_makespan(
                int(t[i]), A100.num_sms, int(ipt[i]), cost_a100
            )
            assert batch[i] == scalar


class TestFixedSplitBatch:
    @pytest.mark.parametrize("s", [1, 2, 3, 4, 8, 64])
    def test_bitwise_vs_scalar(self, cost_4sm, s):
        t, ipt = _random_t_ipt(0xF0 + s)
        batch = fixed_split_makespan_batch(t, s, 4, ipt, cost_4sm)
        for i in range(t.shape[0]):
            scalar = fixed_split_makespan(int(t[i]), s, 4, int(ipt[i]), cost_4sm)
            assert batch[i] == scalar, "s=%d t=%d ipt=%d" % (s, t[i], ipt[i])

    def test_s_above_p_regime(self, cost_4sm):
        """s > p flips the owner-duration branch; pin it explicitly."""
        t = np.array([3, 17, 40])
        ipt = np.array([32, 32, 48])
        batch = fixed_split_makespan_batch(t, 8, 4, ipt, cost_4sm)
        for i in range(t.shape[0]):
            assert batch[i] == fixed_split_makespan(
                int(t[i]), 8, 4, int(ipt[i]), cost_4sm
            )


class TestTwoTileBatch:
    def test_vs_scalar_all_regimes(self, cost_4sm):
        t, ipt = _random_t_ipt(0x22, size=600, t_hi=40, ipt_hi=32)
        batch = two_tile_hybrid_makespan_batch(t, 4, ipt, cost_4sm)
        for i in range(t.shape[0]):
            scalar = two_tile_hybrid_makespan(int(t[i]), 4, int(ipt[i]), cost_4sm)
            assert batch[i] == pytest.approx(scalar, rel=1e-12), (
                "t=%d ipt=%d" % (t[i], ipt[i])
            )

    def test_vs_scalar_a100(self, cost_a100):
        t, ipt = _random_t_ipt(0x23, size=300, t_hi=500)
        batch = two_tile_hybrid_makespan_batch(t, A100.num_sms, ipt, cost_a100)
        for i in range(t.shape[0]):
            scalar = two_tile_hybrid_makespan(
                int(t[i]), A100.num_sms, int(ipt[i]), cost_a100
            )
            assert batch[i] == pytest.approx(scalar, rel=1e-12)

    def test_chunking_invariant(self, cost_4sm):
        t, ipt = _random_t_ipt(0x24, size=97, t_hi=40)
        ref = two_tile_hybrid_makespan_batch(t, 4, ipt, cost_4sm)
        for chunk in (1, 7, 96, 97, 4096):
            got = two_tile_hybrid_makespan_batch(
                t, 4, ipt, cost_4sm, row_chunk=chunk
            )
            np.testing.assert_array_equal(got, ref)


class TestDpOneTile:
    @settings(max_examples=40, deadline=None)
    @given(
        tiles_m=st.integers(1, 10),
        tiles_n=st.integers(1, 10),
        ipt=st.integers(1, 24),
    )
    def test_scalar_matches_executor(self, tiles_m, tiles_n, ipt):
        gpu = HYPOTHETICAL_4SM
        grid = grid_of(tiles_m, tiles_n, ipt)
        cost = KernelCostModel(gpu=gpu, blocking=grid.blocking, dtype=FP64)
        ev = executor_makespan(dp_one_tile_schedule(grid, gpu.num_sms), gpu, cost)
        cf = dp_one_tile_hybrid_makespan(grid.num_tiles, gpu.num_sms, ipt, cost)
        assert cf == pytest.approx(ev, rel=1e-9)

    def test_scalar_matches_executor_a100(self, cost_a100):
        grid = TileGrid(
            GemmProblem(512, 2048, 256, dtype=FP16_FP32), Blocking(128, 128, 32)
        )
        ev = executor_makespan(
            dp_one_tile_schedule(grid, A100.num_sms), A100, cost_a100
        )
        cf = dp_one_tile_hybrid_makespan(
            grid.num_tiles, A100.num_sms, grid.iters_per_tile, cost_a100
        )
        assert cf == pytest.approx(ev, rel=1e-9)

    def test_batch_vs_scalar(self, cost_4sm):
        t, ipt = _random_t_ipt(0x1A, size=500, t_hi=60, ipt_hi=32)
        batch = dp_one_tile_hybrid_makespan_batch(t, 4, ipt, cost_4sm)
        for i in range(t.shape[0]):
            scalar = dp_one_tile_hybrid_makespan(
                int(t[i]), 4, int(ipt[i]), cost_4sm
            )
            assert batch[i] == pytest.approx(scalar, rel=1e-12), (
                "t=%d ipt=%d" % (t[i], ipt[i])
            )

    def test_batch_vs_scalar_a100(self, cost_a100):
        t, ipt = _random_t_ipt(0x1B, size=250, t_hi=400)
        batch = dp_one_tile_hybrid_makespan_batch(t, A100.num_sms, ipt, cost_a100)
        for i in range(t.shape[0]):
            scalar = dp_one_tile_hybrid_makespan(
                int(t[i]), A100.num_sms, int(ipt[i]), cost_a100
            )
            assert batch[i] == pytest.approx(scalar, rel=1e-12)


class TestValidation:
    def test_empty(self, cost_4sm):
        e = np.empty(0, dtype=np.int64)
        assert persistent_dp_makespan_batch(e, 4, e, cost_4sm).shape == (0,)
        assert fixed_split_makespan_batch(e, 2, 4, e, cost_4sm).shape == (0,)
        assert two_tile_hybrid_makespan_batch(e, 4, e, cost_4sm).shape == (0,)
        assert dp_one_tile_hybrid_makespan_batch(e, 4, e, cost_4sm).shape == (0,)

    def test_rejects_nonpositive(self, cost_4sm):
        bad = np.array([0])
        one = np.array([1])
        for fn in (
            lambda: persistent_dp_makespan_batch(bad, 4, one, cost_4sm),
            lambda: fixed_split_makespan_batch(one, 2, 0, one, cost_4sm),
            lambda: two_tile_hybrid_makespan_batch(one, -1, one, cost_4sm),
            lambda: dp_one_tile_hybrid_makespan_batch(bad, 4, one, cost_4sm),
        ):
            with pytest.raises(ConfigurationError):
                fn()

    def test_rejects_mismatched_lengths(self, cost_4sm):
        with pytest.raises(ConfigurationError):
            fixed_split_makespan_batch(
                np.array([1, 2]), 2, 4, np.array([1]), cost_4sm
            )
