"""Executor backend differential suite: numpy/numba vs the Python oracle.

The pure-Python discrete-event loop in :mod:`repro.gpu.executor` is the
bitwise oracle; the array backends of :mod:`repro.gpu.backends` (and the
optional numba kernel) must reproduce it **exactly** — identical
``SegmentRecord`` timings, identical ``CtaRecord`` slot placements,
identical ``DeadlockError`` wait-chain text, identical injector draw
logs and counters — across every schedule family, every GPU preset, and
every fault dimension.  Nothing here is approximate: every assertion is
``==`` on floats.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DeadlockError, SimulationError
from repro.faults import FaultConfig, FaultInjector
from repro.faults.sweep import build_registered_schedule
from repro.gemm import FP16_FP32, FP64, Blocking, GemmProblem, TileGrid
from repro.gpu import (
    Executor,
    KernelCostModel,
    execute_tasks,
    resolve_executor_backend,
    run_task_arrays,
    set_default_executor,
    tasks_to_arrays,
)
from repro.gpu import backend_numba
from repro.gpu.cta import CtaTask, SegmentKind, TimedSegment
from repro.gpu.spec import GPU_PRESETS
from repro.obs.counters import reset_counters, snapshot_counters
from repro.schedules.registry import DECOMPOSITION_NAMES

PRESETS = sorted(GPU_PRESETS)

# One completing fault environment exercising every live injection
# dimension at once (drops excluded: those runs deadlock and are covered
# by TestDeadlockParity).
FAULTY = FaultConfig(
    seed=13,
    straggler_prob=0.35,
    straggler_severity=0.75,
    clock_skew=0.15,
    mem_jitter=0.25,
    signal_delay_prob=0.5,
    signal_delay_cycles=300.0,
    preempt_prob=0.25,
    preempt_penalty_cycles=150.0,
)

PROBLEMS = [
    GemmProblem(384, 384, 512, dtype=FP16_FP32),
    GemmProblem(100, 70, 530, dtype=FP16_FP32),  # ragged: partial waves
]


def _build(name, spec, problem, dtype=FP16_FP32):
    blocking = Blocking(*dtype.default_blocking)
    grid = TileGrid(problem, blocking)
    schedule = build_registered_schedule(name, grid, spec)
    cost = KernelCostModel(gpu=spec, blocking=blocking, dtype=dtype)
    return schedule, cost


def _oracle_run(schedule, cost, spec, config):
    reset_counters()
    inj = FaultInjector(config) if config else None
    tasks = cost.build_tasks(schedule, faults=inj)
    trace = Executor(spec.total_cta_slots, faults=inj, backend="python").run(
        tasks
    )
    return trace, inj, snapshot_counters()


def _array_run(schedule, cost, spec, config, backend="numpy"):
    reset_counters()
    inj = FaultInjector(config) if config else None
    arrays = cost.build_task_arrays(schedule, faults=inj)
    trace = Executor(spec.total_cta_slots, faults=inj, backend=backend).run_arrays(
        arrays
    )
    return trace, inj, snapshot_counters()


def assert_traces_identical(a, b, ctx=""):
    assert a.num_sm_slots == b.num_sm_slots, ctx
    assert a.makespan == b.makespan, ctx
    ra, rb = a.ctas, b.ctas
    assert len(ra) == len(rb), ctx
    for x, y in zip(ra, rb):
        assert x == y, "%s cta=%d\noracle: %r\nfast:   %r" % (ctx, x.cta, x, y)


class TestTraceParity:
    """Bitwise trace equality, every family x preset x fault point."""

    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("name", DECOMPOSITION_NAMES)
    def test_pristine(self, name, preset):
        spec = GPU_PRESETS[preset]
        for problem in PROBLEMS:
            schedule, cost = _build(name, spec, problem)
            oracle, _, oc = _oracle_run(schedule, cost, spec, None)
            fast, _, fc = _array_run(schedule, cost, spec, None)
            assert_traces_identical(oracle, fast, "%s/%s" % (name, preset))
            for key in ("runs", "ctas", "segments", "spin_waits", "signals"):
                assert oc["executor." + key] == fc["executor." + key], key

    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("name", DECOMPOSITION_NAMES)
    def test_faulted(self, name, preset):
        spec = GPU_PRESETS[preset]
        for problem in PROBLEMS:
            schedule, cost = _build(name, spec, problem)
            oracle, oi, _ = _oracle_run(schedule, cost, spec, FAULTY)
            fast, fi, _ = _array_run(schedule, cost, spec, FAULTY)
            assert_traces_identical(oracle, fast, "%s/%s" % (name, preset))
            assert oi.injection_counts() == fi.injection_counts()

    @pytest.mark.parametrize(
        "dimension",
        [
            FaultConfig(seed=5, straggler_prob=0.5, straggler_severity=1.0),
            FaultConfig(seed=5, clock_skew=0.3),
            FaultConfig(seed=5, mem_jitter=0.4),
            FaultConfig(seed=5, preempt_prob=0.4, preempt_penalty_cycles=200.0),
            FaultConfig(
                seed=5, signal_delay_prob=0.7, signal_delay_cycles=500.0
            ),
        ],
        ids=["straggler", "skew", "jitter", "preempt", "delay"],
    )
    def test_each_fault_dimension_alone(self, dimension):
        spec = GPU_PRESETS["a100"]
        for name in DECOMPOSITION_NAMES:
            schedule, cost = _build(name, spec, PROBLEMS[1])
            oracle, oi, _ = _oracle_run(schedule, cost, spec, dimension)
            fast, fi, _ = _array_run(schedule, cost, spec, dimension)
            assert_traces_identical(oracle, fast, name)
            assert oi.injection_counts() == fi.injection_counts()

    def test_fp64_blocking(self):
        spec = GPU_PRESETS["hypothetical_4sm"]
        problem = GemmProblem(96, 96, 120, dtype=FP64)
        for name in DECOMPOSITION_NAMES:
            schedule, cost = _build(name, spec, problem, dtype=FP64)
            oracle, _, _ = _oracle_run(schedule, cost, spec, None)
            fast, _, _ = _array_run(schedule, cost, spec, None)
            assert_traces_identical(oracle, fast, name)

    def test_tasks_to_arrays_roundtrip(self):
        """run(tasks) under an array backend (tasks -> arrays conversion)
        equals both the oracle and the direct build_task_arrays path."""
        spec = GPU_PRESETS["a100"]
        schedule, cost = _build("stream_k", spec, PROBLEMS[0])
        tasks = cost.build_tasks(schedule)
        oracle = Executor(spec.total_cta_slots, backend="python").run(tasks)
        via_tasks = Executor(spec.total_cta_slots, backend="numpy").run(tasks)
        direct = Executor(spec.total_cta_slots, backend="numpy").run_arrays(
            cost.build_task_arrays(schedule)
        )
        assert_traces_identical(oracle, via_tasks)
        assert_traces_identical(oracle, direct)


class TestDeadlockParity:
    """Dropped signals must yield the oracle's exact wait-chain text."""

    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("name", DECOMPOSITION_NAMES)
    def test_dropped_signals(self, name, preset):
        spec = GPU_PRESETS[preset]
        config = FaultConfig(seed=11, signal_drop_prob=0.6)
        schedule, cost = _build(name, spec, PROBLEMS[0])

        def outcome(runner):
            try:
                return ("completed", runner().makespan)
            except DeadlockError as e:
                return ("deadlock", str(e))

        reset_counters()
        oi = FaultInjector(config)
        tasks = cost.build_tasks(schedule, faults=oi)
        a = outcome(
            lambda: Executor(
                spec.total_cta_slots, faults=oi, backend="python"
            ).run(tasks)
        )
        reset_counters()
        fi = FaultInjector(config)
        arrays = cost.build_task_arrays(schedule, faults=fi)
        b = outcome(
            lambda: Executor(
                spec.total_cta_slots, faults=fi, backend="numpy"
            ).run_arrays(arrays)
        )
        assert a == b, "%s/%s" % (name, preset)
        assert oi.injection_counts() == fi.injection_counts()

    def test_waiter_before_producer_without_faults(self):
        """A hand-built waiter-first task list deadlocks identically."""
        tasks = [
            CtaTask(
                cta=0,
                segments=(
                    TimedSegment(SegmentKind.PROLOGUE, 10.0),
                    TimedSegment(SegmentKind.WAIT, 0.0, 7),
                    TimedSegment(SegmentKind.FIXUP, 5.0, 7),
                    TimedSegment(SegmentKind.STORE_TILE, 5.0),
                ),
            ),
        ]
        with pytest.raises(DeadlockError) as py_err:
            execute_tasks(tasks, 2, backend="python")
        with pytest.raises(DeadlockError) as np_err:
            execute_tasks(tasks, 2, backend="numpy")
        assert str(py_err.value) == str(np_err.value)

    def test_circular_wait_cycle_reported_identically(self):
        def cta(i, wait_on):
            return CtaTask(
                cta=i,
                segments=(
                    TimedSegment(SegmentKind.PROLOGUE, 10.0),
                    TimedSegment(SegmentKind.WAIT, 0.0, wait_on),
                    TimedSegment(SegmentKind.FIXUP, 5.0, wait_on),
                    TimedSegment(SegmentKind.COMPUTE, 5.0),
                    TimedSegment(SegmentKind.STORE_PARTIALS, 5.0),
                    TimedSegment(SegmentKind.SIGNAL, 0.0, i),
                ),
            )

        tasks = [cta(0, 1), cta(1, 0)]
        with pytest.raises(DeadlockError) as py_err:
            execute_tasks(tasks, 4, backend="python")
        with pytest.raises(DeadlockError) as np_err:
            execute_tasks(tasks, 4, backend="numpy")
        assert str(py_err.value) == str(np_err.value)

    def test_double_signal_rejected_with_oracle_message(self):
        """CtaTask validation makes a double signal unreachable from task
        objects, but raw TaskArrays can express it; the array backend
        must reject it with the oracle loop's exact message."""
        from repro.gpu.backends import TaskArrays
        from repro.schedules.flatten import KIND_PROLOGUE, KIND_SIGNAL

        arrays = TaskArrays(
            np.array([0, 1]),
            np.array([0, 2, 4]),
            np.array([KIND_PROLOGUE, KIND_SIGNAL] * 2, dtype=np.int8),
            np.array([10.0, 0.0, 10.0, 0.0]),
            np.array([-1, 3, -1, 3]),
        )
        with pytest.raises(SimulationError, match="slot 3 signalled twice"):
            run_task_arrays(arrays, 4)


class TestNumbaKernel:
    """The (possibly un-jitted) numba event loop is parity-tested even on
    machines without numba: the plain-Python function runs the same
    algorithm over the same primitive arrays."""

    @pytest.mark.parametrize("name", DECOMPOSITION_NAMES)
    def test_kernel_matches_oracle(self, name):
        spec = GPU_PRESETS["a100"]
        for problem in PROBLEMS:
            schedule, cost = _build(name, spec, problem)
            tasks = cost.build_tasks(schedule)
            oracle = Executor(spec.total_cta_slots, backend="python").run(tasks)
            trace, parks, n_pub = backend_numba.run(
                cost.build_task_arrays(schedule), spec.total_cta_slots
            )
            assert_traces_identical(oracle, trace, name)

    def test_multiwave_kernel_matches_oracle(self):
        spec = GPU_PRESETS["hypothetical_4sm"]
        schedule, cost = _build(
            "data_parallel", spec, GemmProblem(160, 160, 64, dtype=FP64), FP64
        )
        tasks = cost.build_tasks(schedule)
        oracle = Executor(spec.total_cta_slots, backend="python").run(tasks)
        trace, _, _ = backend_numba.run(
            cost.build_task_arrays(schedule), spec.total_cta_slots
        )
        assert_traces_identical(oracle, trace)

    def test_usable_gates_on_faults(self):
        spec = GPU_PRESETS["a100"]
        schedule, cost = _build("stream_k", spec, PROBLEMS[0])
        arrays = cost.build_task_arrays(schedule)
        assert not backend_numba.usable(arrays, FaultInjector(FAULTY))
        if not backend_numba.HAS_NUMBA:
            assert not backend_numba.usable(arrays, None)

    def test_numba_backend_dispatch_never_fails(self):
        """backend='numba' must run (via fallback when numba is absent)
        and agree with the oracle."""
        spec = GPU_PRESETS["a100"]
        schedule, cost = _build("two_tile_stream_k", spec, PROBLEMS[1])
        tasks = cost.build_tasks(schedule)
        oracle = Executor(spec.total_cta_slots, backend="python").run(tasks)
        fast = Executor(spec.total_cta_slots, backend="numba").run(tasks)
        assert_traces_identical(oracle, fast)


class TestBackendResolution:
    def teardown_method(self):
        set_default_executor(None)

    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert resolve_executor_backend(None) == "python"

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "numpy")
        assert resolve_executor_backend("python") == "python"

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "numpy")
        assert resolve_executor_backend(None) == "numpy"

    def test_process_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "python")
        set_default_executor("numpy")
        assert resolve_executor_backend(None) == "numpy"

    def test_numba_falls_back_without_numba(self):
        resolved = resolve_executor_backend("numba")
        if backend_numba.HAS_NUMBA:
            assert resolved == "numba"
        else:
            assert resolved == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_executor_backend("fortran")
        with pytest.raises(ConfigurationError):
            set_default_executor("fortran")

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "cuda")
        with pytest.raises(ConfigurationError):
            resolve_executor_backend(None)

    def test_backend_counter_published(self):
        spec = GPU_PRESETS["hypothetical_4sm"]
        schedule, cost = _build(
            "stream_k", spec, GemmProblem(64, 64, 64, dtype=FP64), FP64
        )
        tasks = cost.build_tasks(schedule)
        reset_counters()
        Executor(spec.total_cta_slots, backend="python").run(tasks)
        assert snapshot_counters()["executor.backend.python"] == 1
        reset_counters()
        Executor(spec.total_cta_slots, backend="numpy").run(tasks)
        assert snapshot_counters()["executor.backend.numpy"] == 1


class TestArrayTraceBehavesLikeExecutionTrace:
    """ArrayTrace is a drop-in ExecutionTrace: downstream consumers
    (gantt rendering, utilization, the invariant checker) see identical
    structure."""

    def _pair(self):
        spec = GPU_PRESETS["hypothetical_4sm"]
        schedule, cost = _build(
            "stream_k", spec, GemmProblem(96, 96, 160, dtype=FP64), FP64
        )
        tasks = cost.build_tasks(schedule)
        oracle = Executor(spec.total_cta_slots, backend="python").run(tasks)
        fast = Executor(spec.total_cta_slots, backend="numpy").run_arrays(
            cost.build_task_arrays(schedule)
        )
        return oracle, fast

    def test_utilization_identical(self):
        oracle, fast = self._pair()
        assert fast.utilization() == oracle.utilization()

    def test_gantt_rows_identical(self):
        oracle, fast = self._pair()
        assert fast.gantt_rows() == oracle.gantt_rows()

    def test_render_ascii_identical(self):
        oracle, fast = self._pair()
        assert fast.render_ascii(width=72) == oracle.render_ascii(width=72)

    def test_checker_accepts_fast_trace(self):
        from repro.faults.checker import check_protocol_invariants

        spec = GPU_PRESETS["a100"]
        schedule, cost = _build("two_tile_stream_k", spec, PROBLEMS[1])
        fast = Executor(spec.total_cta_slots, backend="numpy").run_arrays(
            cost.build_task_arrays(schedule)
        )
        report = check_protocol_invariants(schedule, fast)
        assert report.num_tiles == schedule.grid.num_tiles


class TestFlattenCorrespondence:
    def test_kind_codes_pin_segmentkind_order(self):
        from repro.schedules.flatten import KIND_NAMES

        assert tuple(k.value for k in SegmentKind) == KIND_NAMES

    def test_flat_stream_equals_build_tasks_stream(self):
        from repro.schedules.flatten import KIND_NAMES, flatten_work_items

        spec = GPU_PRESETS["a100"]
        schedule, cost = _build("stream_k", spec, PROBLEMS[1])
        flat = flatten_work_items(schedule)
        tasks = cost.build_tasks(schedule)
        assert flat.num_ctas == len(tasks)
        for r, task in enumerate(tasks):
            lo, hi = int(flat.seg_off[r]), int(flat.seg_off[r + 1])
            assert flat.ctas[r] == task.cta
            assert hi - lo == len(task.segments)
            for j, seg in enumerate(task.segments):
                assert KIND_NAMES[flat.kinds[lo + j]] == seg.kind.value
                slot = int(flat.slots[lo + j])
                assert (None if slot < 0 else slot) == seg.slot

    def test_duplicate_cta_ids_rejected_identically(self):
        spec = GPU_PRESETS["a100"]
        schedule, cost = _build("stream_k", spec, PROBLEMS[0])
        tasks = cost.build_tasks(schedule)
        dup = tasks + [tasks[0]]
        with pytest.raises(ConfigurationError) as py_err:
            execute_tasks(dup, spec.total_cta_slots, backend="python")
        with pytest.raises(ConfigurationError) as np_err:
            tasks_to_arrays(dup)
        assert str(py_err.value) == str(np_err.value)

    def test_pricing_is_bitwise_identical(self):
        """build_task_arrays prices segments bitwise like build_tasks,
        jitter draws included."""
        spec = GPU_PRESETS["a100"]
        for config in (None, FAULTY):
            schedule, cost = _build("fixed_split", spec, PROBLEMS[1])
            ia = FaultInjector(config) if config else None
            tasks = cost.build_tasks(schedule, faults=ia)
            ib = FaultInjector(config) if config else None
            arrays = cost.build_task_arrays(schedule, faults=ib)
            flat_cycles = np.concatenate(
                [[s.cycles for s in t.segments] for t in tasks]
            )
            np.testing.assert_array_equal(arrays.cycles, flat_cycles)


class TestSimulateKernelBackendParity:
    def test_simulate_kernel_executor_param(self):
        from repro.gpu import simulate_kernel

        spec = GPU_PRESETS["a100"]
        schedule, _ = _build("stream_k", spec, PROBLEMS[0])
        py = simulate_kernel(schedule, spec, executor="python")
        fast = simulate_kernel(schedule, spec, executor="numpy")
        assert fast.makespan_cycles == py.makespan_cycles
        assert fast.time_s == py.time_s
        assert fast.trace.ctas == py.trace.ctas

    def test_simulate_kernel_check_invariants_on_fast_backend(self):
        from repro.gpu import simulate_kernel

        spec = GPU_PRESETS["a100"]
        schedule, _ = _build("two_tile_stream_k", spec, PROBLEMS[1])
        result = simulate_kernel(
            schedule, spec, executor="numpy", check_invariants=True
        )
        assert result.makespan_cycles > 0.0

    def test_fault_sweep_backend_invariant(self):
        from repro.faults.sweep import run_fault_sweep

        spec = GPU_PRESETS["hypothetical_4sm"]
        problem = GemmProblem(96, 96, 120, dtype=FP64)
        py = run_fault_sweep(
            problem, spec, severities=(0.0, 1.0), seed=2, executor="python"
        )
        fast = run_fault_sweep(
            problem, spec, severities=(0.0, 1.0), seed=2, executor="numpy"
        )
        assert py == fast
