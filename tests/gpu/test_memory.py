"""DRAM-traffic model tests: analytical model and cache-sim replay."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.gemm import FP16_FP32, FP64, Blocking, GemmProblem, TileGrid
from repro.gpu import (
    A100,
    HYPOTHETICAL_4SM,
    AnalyticalMemoryModel,
    CacheSimMemoryModel,
    Executor,
    KernelCostModel,
)
from repro.schedules import data_parallel_schedule, fixed_split_schedule, stream_k_schedule


def setup(m, n, k, blk=(16, 16, 8), dtype=FP64, gpu=HYPOTHETICAL_4SM):
    grid = TileGrid(GemmProblem(m, n, k, dtype=dtype), Blocking(*blk))
    cost = KernelCostModel(gpu=gpu, blocking=grid.blocking, dtype=dtype)
    return grid, cost, gpu


class TestAnalyticalModel:
    def test_compulsory_floor(self):
        """Traffic never drops below one pass of inputs plus the output."""
        grid, cost, gpu = setup(64, 64, 64)
        tr = AnalyticalMemoryModel().traffic(data_parallel_schedule(grid), gpu, cost)
        p = grid.problem
        assert tr.input_a >= p.m * p.k * p.dtype.input_bytes
        assert tr.input_b >= p.k * p.n * p.dtype.input_bytes
        assert tr.output == p.m * p.n * p.dtype.output_bytes

    def test_resident_problem_single_pass(self):
        """A problem whose operands fit in L2 reads each input once."""
        grid, cost, gpu = setup(64, 64, 64)
        tr = AnalyticalMemoryModel().traffic(data_parallel_schedule(grid), gpu, cost)
        p = grid.problem
        assert tr.input_a == pytest.approx(
            grid.tiles_m * 16 * p.k * p.dtype.input_bytes
        )

    def test_dp_has_no_partial_traffic(self):
        grid, cost, gpu = setup(64, 64, 64)
        tr = AnalyticalMemoryModel().traffic(data_parallel_schedule(grid), gpu, cost)
        assert tr.partials == 0.0

    def test_fixed_split_partials_scale_with_s(self):
        grid, cost, gpu = setup(64, 64, 64)
        model = AnalyticalMemoryModel()
        t2 = model.traffic(fixed_split_schedule(grid, 2), gpu, cost).partials
        t4 = model.traffic(fixed_split_schedule(grid, 4), gpu, cost).partials
        assert t4 == pytest.approx(3 * t2)
        # write + read per contributor
        assert t2 == pytest.approx(grid.num_tiles * cost.tile_accum_bytes * 2)

    def test_skew_costs_more_than_aligned_but_bounded(self):
        """Large problem: skewed Stream-K pays more DRAM traffic than the
        aligned DP wave, but no more than the 2x cap."""
        grid, cost, gpu = setup(8192, 8192, 4096, blk=(128, 128, 32), dtype=FP16_FP32, gpu=A100)
        model = AnalyticalMemoryModel()
        dp = model.traffic(data_parallel_schedule(grid), gpu, cost)
        sk = model.traffic(stream_k_schedule(grid, gpu.num_sms), gpu, cost)
        aligned_inputs = dp.input_a + dp.input_b
        skewed_inputs = sk.input_a + sk.input_b
        assert skewed_inputs > aligned_inputs
        assert skewed_inputs <= 2.0 * aligned_inputs + 1e-6

    def test_beta_doubles_output_traffic(self):
        grid, cost, gpu = setup(64, 64, 64)
        p2 = dataclasses.replace(grid.problem, beta=1.0)
        grid2 = TileGrid(p2, grid.blocking)
        tr = AnalyticalMemoryModel().traffic(data_parallel_schedule(grid2), gpu, cost)
        base = AnalyticalMemoryModel().traffic(data_parallel_schedule(grid), gpu, cost)
        assert tr.output == pytest.approx(2 * base.output)

    def test_breakdown_total(self):
        grid, cost, gpu = setup(64, 64, 64)
        tr = AnalyticalMemoryModel().traffic(fixed_split_schedule(grid, 2), gpu, cost)
        assert tr.total == pytest.approx(
            tr.input_a + tr.input_b + tr.output + tr.partials
        )


class TestCacheSimModel:
    def _traffic(self, schedule, grid, cost, gpu):
        trace = Executor(gpu.total_cta_slots).run(cost.build_tasks(schedule))
        return CacheSimMemoryModel().traffic(schedule, gpu, cost, trace)

    def test_small_problem_compulsory_only(self):
        """Everything fits in L2: each fragment misses exactly once."""
        grid, cost, gpu = setup(64, 48, 40)
        tr = self._traffic(data_parallel_schedule(grid), grid, cost, gpu)
        expect_a = grid.num_tiles // grid.tiles_n  # distinct tile rows...
        # each (row, k-iter) A fragment missed once:
        a_frags = grid.tiles_m * grid.iters_per_tile
        assert tr.input_a == pytest.approx(a_frags * grid.fragment_bytes_a())

    def test_skewed_schedule_misses_more_when_cache_tiny(self):
        """With a tiny L2, a skewed Stream-K grid (tiles not divisible by
        g, so every CTA runs at a different k offset) re-fetches fragments
        the aligned persistent-DP schedule would have reused — the Section
        5.2 cache argument, observed in the replayed fragment stream."""
        from repro.schedules import persistent_data_parallel_schedule

        gpu_tiny = dataclasses.replace(HYPOTHETICAL_4SM, l2_bytes=8 * 1024)
        grid, cost, _ = setup(112, 96, 512, gpu=gpu_tiny)  # 42 tiles, g=4
        aligned = self._traffic(
            persistent_data_parallel_schedule(grid, 4), grid, cost, gpu_tiny
        )
        skewed = self._traffic(stream_k_schedule(grid, 4), grid, cost, gpu_tiny)
        assert skewed.input_a + skewed.input_b > aligned.input_a + aligned.input_b

    def test_wrong_trace_rejected(self):
        grid, cost, gpu = setup(64, 48, 40)
        sched_a = data_parallel_schedule(grid)
        sched_b = stream_k_schedule(grid, 3)
        trace_b = Executor(gpu.total_cta_slots).run(cost.build_tasks(sched_b))
        with pytest.raises(ConfigurationError, match="does not belong"):
            CacheSimMemoryModel().traffic(sched_a, gpu, cost, trace_b)

    def test_agrees_with_analytical_on_resident_problem(self):
        """When the whole problem is cache-resident both models should see
        compulsory-only input traffic (within fragment padding)."""
        grid, cost, gpu = setup(64, 48, 40)
        sched = data_parallel_schedule(grid)
        sim = self._traffic(sched, grid, cost, gpu)
        ana = AnalyticalMemoryModel().traffic(sched, gpu, cost)
        assert sim.input_a == pytest.approx(ana.input_a, rel=0.25)
        assert sim.input_b == pytest.approx(ana.input_b, rel=0.25)
