"""Timed CTA task validation tests."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu import CtaTask, SegmentKind, TimedSegment


class TestTimedSegment:
    def test_negative_cycles_rejected(self):
        with pytest.raises(ConfigurationError):
            TimedSegment(SegmentKind.COMPUTE, -1.0)

    def test_wait_requires_slot(self):
        with pytest.raises(ConfigurationError):
            TimedSegment(SegmentKind.WAIT, 0.0)

    def test_fixup_requires_slot(self):
        with pytest.raises(ConfigurationError):
            TimedSegment(SegmentKind.FIXUP, 5.0)

    def test_wait_has_no_intrinsic_cost(self):
        with pytest.raises(ConfigurationError):
            TimedSegment(SegmentKind.WAIT, 10.0, 1)


class TestCtaTask:
    def test_intrinsic_cycles_sum(self):
        task = CtaTask(
            cta=0,
            segments=(
                TimedSegment(SegmentKind.PROLOGUE, 10.0),
                TimedSegment(SegmentKind.COMPUTE, 30.0),
                TimedSegment(SegmentKind.WAIT, 0.0, 1),
                TimedSegment(SegmentKind.FIXUP, 5.0, 1),
            ),
        )
        assert task.intrinsic_cycles == pytest.approx(45.0)
        assert task.wait_slots == (1,)

    def test_double_signal_rejected(self):
        with pytest.raises(ConfigurationError, match="at most one"):
            CtaTask(
                cta=0,
                segments=(
                    TimedSegment(SegmentKind.SIGNAL, 0.0, 0),
                    TimedSegment(SegmentKind.SIGNAL, 0.0, 0),
                ),
            )

    def test_signal_foreign_slot_rejected(self):
        with pytest.raises(ConfigurationError, match="own slot"):
            CtaTask(
                cta=0,
                segments=(TimedSegment(SegmentKind.SIGNAL, 0.0, 3),),
            )

    def test_signals_slot_default_is_own(self):
        task = CtaTask(
            cta=5, segments=(TimedSegment(SegmentKind.SIGNAL, 0.0),)
        )
        assert task.signals_slot == 5

    def test_no_signal_returns_none(self):
        assert CtaTask(cta=0, segments=()).signals_slot is None

    def test_negative_cta_rejected(self):
        with pytest.raises(ConfigurationError):
            CtaTask(cta=-1, segments=())
