"""Property-based tests of the DRAM-traffic models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gemm import FP16_FP32, FP64, Blocking, GemmProblem, TileGrid
from repro.gpu import A100, AnalyticalMemoryModel, KernelCostModel
from repro.schedules import (
    data_parallel_schedule,
    fixed_split_schedule,
    stream_k_schedule,
    two_tile_schedule,
)


@st.composite
def grids(draw):
    dtype = draw(st.sampled_from([FP64, FP16_FP32]))
    blocking = Blocking(*dtype.default_blocking)
    m = draw(st.integers(128, 4096))
    n = draw(st.integers(128, 4096))
    k = draw(st.integers(128, 4096))
    return TileGrid(GemmProblem(m, n, k, dtype=dtype), blocking)


class TestAnalyticalModelProperties:
    @settings(max_examples=50, deadline=None)
    @given(grid=grids(), g=st.integers(1, 108))
    def test_compulsory_floor_and_finiteness(self, grid, g):
        """Input traffic is at least one (padded) pass and at most the
        no-reuse upper bound; everything finite and non-negative."""
        cost = KernelCostModel(
            gpu=A100, blocking=grid.blocking, dtype=grid.problem.dtype
        )
        sched = stream_k_schedule(grid, g)
        tr = AnalyticalMemoryModel().traffic(sched, A100, cost)
        p = grid.problem
        in_b = p.dtype.input_bytes
        a_pass = grid.tiles_m * grid.blocking.blk_m * p.k * in_b
        b_pass = grid.tiles_n * grid.blocking.blk_n * p.k * in_b
        assert a_pass - 1e-6 <= tr.input_a <= a_pass * grid.tiles_n + 1e-6
        assert b_pass - 1e-6 <= tr.input_b <= b_pass * grid.tiles_m + 1e-6
        assert tr.partials >= 0 and np.isfinite(tr.total)

    @settings(max_examples=40, deadline=None)
    @given(grid=grids())
    def test_hybrid_never_exceeds_basic_streamk_traffic(self, grid):
        """The point of the two-tile hybrid: its aligned fraction can only
        reduce input traffic relative to fully-skewed basic Stream-K."""
        cost = KernelCostModel(
            gpu=A100, blocking=grid.blocking, dtype=grid.problem.dtype
        )
        model = AnalyticalMemoryModel()
        basic = model.traffic(stream_k_schedule(grid, A100.num_sms), A100, cost)
        hybrid = model.traffic(two_tile_schedule(grid, A100.num_sms), A100, cost)
        assert (
            hybrid.input_a + hybrid.input_b
            <= basic.input_a + basic.input_b + 1e-6
        )

    @settings(max_examples=40, deadline=None)
    @given(grid=grids(), s=st.integers(2, 8))
    def test_partials_traffic_linear_in_contributors(self, grid, s):
        cost = KernelCostModel(
            gpu=A100, blocking=grid.blocking, dtype=grid.problem.dtype
        )
        sched = fixed_split_schedule(grid, s)
        tr = AnalyticalMemoryModel().traffic(sched, A100, cost)
        assert tr.partials == sched.total_fixup_stores * cost.tile_accum_bytes * 2

    @settings(max_examples=40, deadline=None)
    @given(grid=grids())
    def test_dp_is_the_traffic_floor_among_schedules(self, grid):
        """Aligned, fixup-free data-parallel moves the least DRAM data."""
        cost = KernelCostModel(
            gpu=A100, blocking=grid.blocking, dtype=grid.problem.dtype
        )
        model = AnalyticalMemoryModel()
        dp = model.traffic(data_parallel_schedule(grid), A100, cost).total
        for sched in (
            stream_k_schedule(grid, A100.num_sms),
            fixed_split_schedule(grid, 4),
            two_tile_schedule(grid, A100.num_sms),
        ):
            assert model.traffic(sched, A100, cost).total >= dp - 1e-6
